"""Node-level power/energy models (Fig. 1, Fig. 6, battery lifetime)."""

from .abstraction import AbstractionLadder, LADDER_LEVELS, LadderRung
from .battery import Battery
from .dutycycle import DutyCycledRadio, DutyCyclePolicy
from .mcu import FrontEndModel, McuModel
from .node import EnergyBreakdown, NodeEnergyModel, figure6_breakdowns
from .radio import (
    ACK_BYTES,
    Ieee802154Link,
    MAC_OVERHEAD_BYTES,
    MTU_BYTES,
    PHY_OVERHEAD_BYTES,
    RadioModel,
    TransmissionCost,
)

__all__ = [
    "ACK_BYTES",
    "AbstractionLadder",
    "Battery",
    "DutyCycledRadio",
    "DutyCyclePolicy",
    "EnergyBreakdown",
    "FrontEndModel",
    "Ieee802154Link",
    "LADDER_LEVELS",
    "LadderRung",
    "MAC_OVERHEAD_BYTES",
    "MTU_BYTES",
    "McuModel",
    "NodeEnergyModel",
    "PHY_OVERHEAD_BYTES",
    "RadioModel",
    "TransmissionCost",
    "figure6_breakdowns",
]
