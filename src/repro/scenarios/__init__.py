"""Deterministic fault-injection scenarios and campaign runner.

The fleet layer (:mod:`repro.fleet`) models well-behaved nodes on a
perfect uplink; this package stress-tests the same chain under the
real-world mess the paper's node is designed for: motion artifacts and
baseline wander on the electrodes (§III-B), lead-off and saturation at
the front end, and a lossy low-power radio (§V) between node and
gateway.

* :mod:`repro.scenarios.spec` — the declarative DSL: timed
  :class:`FaultEvent` episodes + :class:`LinkSpec` impairments bundled
  into named :class:`ScenarioSpec` objects, with builtin scenarios and
  the single-master-seed derivation (:func:`derive_seed`) that makes
  every campaign bit-reproducible.
* :mod:`repro.scenarios.inject` — applies fault episodes to synthesized
  recordings (:func:`apply_faults`).
* :mod:`repro.scenarios.channel` — :class:`ImpairedLink`, the
  deterministic lossy channel model (loss / duplication / reordering /
  jitter, with acknowledged delivery for alarm packets).
* :mod:`repro.scenarios.campaign` — :class:`CampaignRunner` sweeps one
  cohort across a scenario grid and emits a structured, reproducible
  :class:`CampaignReport`.
"""

from .campaign import (
    SENTINEL_PREFIX,
    CampaignConfig,
    CampaignReport,
    CampaignRunner,
    ScenarioResult,
)
from .channel import ImpairedLink
from .inject import LEAD_OFF_RESIDUAL_MV, apply_faults
from .spec import (
    FAULT_BATTERY_DRAIN,
    FAULT_GOVERNOR_STRESS,
    FAULT_KINDS,
    FAULT_LEAD_OFF,
    FAULT_MOTION,
    FAULT_SATURATION,
    FAULT_WANDER,
    NODE_FAULT_KINDS,
    SIGNAL_FAULT_KINDS,
    FaultEvent,
    LinkSpec,
    ScenarioSpec,
    battery_drain_scenario,
    clean_scenario,
    default_grid,
    derive_seed,
    governed_grid,
    governor_stress_scenario,
    lead_off_scenario,
    motion_burst_scenario,
    packet_loss_scenario,
    stress_scenario,
)

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "CampaignRunner",
    "FAULT_BATTERY_DRAIN",
    "FAULT_GOVERNOR_STRESS",
    "FAULT_KINDS",
    "FAULT_LEAD_OFF",
    "FAULT_MOTION",
    "FAULT_SATURATION",
    "FAULT_WANDER",
    "FaultEvent",
    "ImpairedLink",
    "LEAD_OFF_RESIDUAL_MV",
    "LinkSpec",
    "NODE_FAULT_KINDS",
    "SENTINEL_PREFIX",
    "SIGNAL_FAULT_KINDS",
    "ScenarioResult",
    "ScenarioSpec",
    "apply_faults",
    "battery_drain_scenario",
    "clean_scenario",
    "default_grid",
    "derive_seed",
    "governed_grid",
    "governor_stress_scenario",
    "lead_off_scenario",
    "motion_burst_scenario",
    "packet_loss_scenario",
    "stress_scenario",
]
