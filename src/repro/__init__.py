"""repro — reproduction of "Ultra-Low Power Design of Wearable Cardiac
Monitoring Systems" (Braojos et al., DAC 2014).

Subpackages (see DESIGN.md for the full system inventory):

* :mod:`repro.signals` — synthetic annotated ECG/PPG substrate.
* :mod:`repro.dsp` — sliding windows, wavelet banks, fixed point.
* :mod:`repro.filtering` — morphological/spline/RMS/AICF/EA filtering.
* :mod:`repro.delineation` — R-peak detection, wavelet and MMD delineators.
* :mod:`repro.compression` — compressed sensing (single- and multi-lead).
* :mod:`repro.classification` — random projections, neuro-fuzzy, AF.
* :mod:`repro.power` — radio/MCU/front-end energy, Fig. 1/6 models.
* :mod:`repro.hwsim` — multi-core WBSN instruction-level simulator (Fig. 7).
* :mod:`repro.multimodal` — PAT/PWV/BP and SpO2 estimation.
* :mod:`repro.pipeline` — the end-to-end node application.
* :mod:`repro.fleet` — multi-patient gateway: cohorts, uplink packets,
  server-side CS reconstruction, triage.
* :mod:`repro.scenarios` — deterministic fault-injection scenarios and
  campaign runner over the fleet.
"""

__version__ = "1.0.0"

__all__ = [
    "classification",
    "compression",
    "delineation",
    "dsp",
    "filtering",
    "fleet",
    "hwsim",
    "multimodal",
    "pipeline",
    "power",
    "scenarios",
    "signals",
]
