"""Multi-patient fleet: cohorts, uplink, gateway reconstruction, triage.

The paper's node (§V) transmits CS-compressed excerpts "periodically or
when an abnormality is detected" — and stops there.  This package models
the receiving half at fleet scale: a cohort of heterogeneous virtual
patients (:mod:`repro.fleet.cohort`), per-patient node proxies emitting
timestamped uplink packets (:mod:`repro.fleet.node_proxy`), a gateway
that demultiplexes the uplink, reconstructs the CS excerpts server-side
and re-checks node alarms (:mod:`repro.fleet.gateway`), per-patient
triage state machines with fleet aggregates (:mod:`repro.fleet.triage`),
and a batched scheduler that drives many patients per tick
(:mod:`repro.fleet.scheduler`).
"""

from .cohort import (
    CohortConfig,
    PatientProfile,
    make_cohort,
    synthesize_patient,
)
from .gateway import (
    Gateway,
    GatewayConfig,
    PatientChannel,
    ReconstructedExcerpt,
)
from .node_proxy import (
    PACKET_ALARM,
    PACKET_EXCERPT,
    PACKET_TELEMETRY,
    TELEMETRY_BITS,
    NodeProxy,
    NodeProxyConfig,
    UplinkPacket,
)
from .scheduler import (
    AcuityOverride,
    BatchExcerptEncoder,
    ExtraLoad,
    FleetReport,
    FleetScheduler,
    GovernorFactory,
    SchedulerConfig,
    UplinkChannel,
)
from .triage import (
    STATE_ALERT,
    STATE_OK,
    STATE_WATCH,
    FleetSummary,
    PatientTriage,
    TriageBoard,
    TriageConfig,
    fleet_summary,
)

__all__ = [
    "AcuityOverride",
    "BatchExcerptEncoder",
    "CohortConfig",
    "ExtraLoad",
    "FleetReport",
    "FleetScheduler",
    "FleetSummary",
    "Gateway",
    "GatewayConfig",
    "GovernorFactory",
    "NodeProxy",
    "NodeProxyConfig",
    "PACKET_ALARM",
    "PACKET_EXCERPT",
    "PACKET_TELEMETRY",
    "TELEMETRY_BITS",
    "PatientChannel",
    "PatientProfile",
    "PatientTriage",
    "ReconstructedExcerpt",
    "STATE_ALERT",
    "STATE_OK",
    "STATE_WATCH",
    "SchedulerConfig",
    "TriageBoard",
    "TriageConfig",
    "UplinkChannel",
    "UplinkPacket",
    "fleet_summary",
    "make_cohort",
    "synthesize_patient",
]
