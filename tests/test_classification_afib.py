"""AF-detection tests (paper exp T3: 96 % Se / 93 % Sp)."""

import numpy as np
import pytest

from repro.classification import (
    AF_LABEL,
    AfDetector,
    NON_AF_LABEL,
    rr_irregularity_features,
    window_features,
)
from repro.signals import BeatAnnotation, WaveFiducials


class TestRrFeatures:
    def test_regular_rhythm_low_scores(self):
        rr = np.full(30, 0.8)
        cv, nrmssd, pnn50 = rr_irregularity_features(rr)
        assert cv == pytest.approx(0.0, abs=1e-12)
        assert nrmssd == pytest.approx(0.0, abs=1e-12)
        assert pnn50 == 0.0

    def test_af_rhythm_high_scores(self, rng):
        rr = rng.lognormal(np.log(0.6), 0.2, 40)
        cv, nrmssd, pnn50 = rr_irregularity_features(rr)
        assert cv > 0.1 and nrmssd > 0.1 and pnn50 > 0.4

    def test_needs_two_intervals(self):
        with pytest.raises(ValueError, match="at least two"):
            rr_irregularity_features(np.array([0.8]))


def _annotated_beats(n, fs, rr_s, rhythm, p_present):
    beats = []
    sample = 1000
    p = WaveFiducials(0, 5, 10)
    for _ in range(n):
        beats.append(BeatAnnotation(
            r_peak=sample, rhythm=rhythm,
            p_wave=p if p_present else WaveFiducials(-1, -1, -1)))
        sample += int(rr_s * fs)
    return beats


class TestWindowFeatures:
    def test_truth_labels(self):
        fs = 250.0
        nsr = _annotated_beats(30, fs, 0.8, "NSR", True)
        windows = window_features(nsr, fs, window_beats=16, step_beats=8)
        assert windows and all(w.truth == NON_AF_LABEL for w in windows)

    def test_af_truth_and_p_absence(self):
        fs = 250.0
        af = _annotated_beats(30, fs, 0.6, "AF", False)
        windows = window_features(af, fs, window_beats=16, step_beats=8)
        assert all(w.truth == AF_LABEL for w in windows)
        assert all(w.features[-1] == 1.0 for w in windows)

    def test_validation(self):
        with pytest.raises(ValueError, match="window_beats"):
            window_features([], 250.0, window_beats=2)
        with pytest.raises(ValueError, match="step_beats"):
            window_features([], 250.0, step_beats=0)

    def test_too_few_beats_yields_nothing(self):
        beats = _annotated_beats(5, 250.0, 0.8, "NSR", True)
        assert window_features(beats, 250.0, window_beats=24) == []


class TestDetector:
    @pytest.fixture(scope="class")
    def trained(self, af_train_corpus):
        return AfDetector().fit(list(af_train_corpus))

    def test_paper_band_performance(self, trained, af_test_corpus):
        report = trained.evaluate(list(af_test_corpus))
        # Paper: 96 % sensitivity, 93 % specificity; require >= 90/88
        # on the held-out synthetic corpus.
        assert report.sensitivity(AF_LABEL) >= 0.90
        assert report.specificity(AF_LABEL) >= 0.88

    def test_predictions_cover_both_labels(self, trained, af_test_corpus):
        _, labels = trained.predict_record(af_test_corpus.records[0])
        assert set(labels) <= {AF_LABEL, NON_AF_LABEL}

    def test_training_needs_both_classes(self, nsr_record):
        with pytest.raises(ValueError, match="both AF and non-AF"):
            AfDetector().fit([nsr_record])

    def test_pwl_membership_variant(self, af_train_corpus, af_test_corpus):
        detector = AfDetector(membership="pwl").fit(list(af_train_corpus))
        report = detector.evaluate(list(af_test_corpus))
        assert report.sensitivity(AF_LABEL) >= 0.88
