"""Unit + property tests for repro.dsp.windows (sliding extrema)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.dsp import (
    StreamingExtremum,
    closing,
    dilation,
    erosion,
    moving_average,
    moving_sum,
    opening,
    sliding_max,
    sliding_min,
)

signals = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=120),
    elements=st.floats(min_value=-1e6, max_value=1e6,
                       allow_nan=False, allow_infinity=False),
)
widths = st.integers(min_value=1, max_value=25)


def naive_sliding_max(x: np.ndarray, width: int) -> np.ndarray:
    return np.array([x[max(0, i - width + 1):i + 1].max()
                     for i in range(x.shape[0])])


class TestSlidingExtrema:
    @settings(max_examples=60, deadline=None)
    @given(x=signals, width=widths)
    def test_sliding_max_matches_naive(self, x, width):
        assert np.array_equal(sliding_max(x, width), naive_sliding_max(x, width))

    @settings(max_examples=60, deadline=None)
    @given(x=signals, width=widths)
    def test_min_max_duality(self, x, width):
        assert np.array_equal(sliding_min(x, width),
                              -sliding_max(-x, width))

    def test_width_one_is_identity(self, rng):
        x = rng.standard_normal(50)
        assert np.array_equal(sliding_max(x, 1), x)

    def test_invalid_width(self):
        with pytest.raises(ValueError, match=">= 1"):
            sliding_max(np.zeros(5), 0)

    @settings(max_examples=40, deadline=None)
    @given(x=signals, width=widths)
    def test_streaming_matches_batch(self, x, width):
        stream = StreamingExtremum(width, "max")
        out = np.array([stream.push(v) for v in x])
        assert np.array_equal(out, sliding_max(x, width))

    def test_streaming_min_mode(self, rng):
        x = rng.standard_normal(40)
        stream = StreamingExtremum(7, "min")
        out = np.array([stream.push(v) for v in x])
        assert np.array_equal(out, sliding_min(x, 7))

    def test_streaming_invalid_mode(self):
        with pytest.raises(ValueError, match="mode"):
            StreamingExtremum(3, "median")


class TestMorphologicalLaws:
    @settings(max_examples=40, deadline=None)
    @given(x=signals, width=st.integers(min_value=1, max_value=15))
    def test_erosion_below_dilation(self, x, width):
        assert np.all(erosion(x, width) <= x + 1e-12)
        assert np.all(dilation(x, width) >= x - 1e-12)

    @settings(max_examples=40, deadline=None)
    @given(x=signals, width=st.integers(min_value=1, max_value=15))
    def test_opening_antiextensive_closing_extensive(self, x, width):
        assert np.all(opening(x, width) <= x + 1e-9)
        assert np.all(closing(x, width) >= x - 1e-9)

    @settings(max_examples=30, deadline=None)
    @given(x=signals, width=st.integers(min_value=1, max_value=9))
    def test_opening_idempotent(self, x, width):
        once = opening(x, width)
        assert np.allclose(opening(once, width), once)

    def test_opening_removes_narrow_peak(self):
        x = np.zeros(60)
        x[30] = 5.0  # one-sample spike
        assert np.max(opening(x, 5)) == 0.0

    def test_closing_fills_narrow_pit(self):
        x = np.zeros(60)
        x[30] = -5.0
        assert np.min(closing(x, 5)) == 0.0

    def test_erosion_centered_on_plateau(self):
        x = np.zeros(40)
        x[10:20] = 1.0
        eroded = erosion(x, 5)
        # Plateau shrinks by width//2 on each side.
        assert eroded[12] == 1.0
        assert eroded[10] == 0.0


class TestMovingWindows:
    def test_moving_sum_matches_naive(self, rng):
        x = rng.standard_normal(100)
        width = 9
        naive = np.array([x[max(0, i - width + 1):i + 1].sum()
                          for i in range(100)])
        assert np.allclose(moving_sum(x, width), naive)

    def test_moving_average_edges_use_true_length(self):
        x = np.ones(20)
        avg = moving_average(x, 8)
        assert np.allclose(avg, 1.0)

    def test_moving_average_of_ramp(self):
        x = np.arange(10, dtype=float)
        avg = moving_average(x, 3)
        assert avg[0] == 0.0
        assert avg[2] == pytest.approx(1.0)
        assert avg[9] == pytest.approx(8.0)

    def test_moving_sum_invalid_width(self):
        with pytest.raises(ValueError, match=">= 1"):
            moving_sum(np.zeros(4), 0)
