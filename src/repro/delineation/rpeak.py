"""QRS (R-peak) detection, Pan-Tompkins class.

Every higher-level stage in the paper — delineation search windows, beat
classification, AF RR-regularity analysis, spline baseline knots — hangs off
the R-peak train, so the detector is implemented as a shared substrate.
The structure follows Pan & Tompkins (1985): band-pass, derivative, square,
moving-window integration, adaptive dual thresholds with search-back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

from ..dsp.windows import moving_average
from ..signals.types import EcgRecord


@dataclass(frozen=True)
class RPeakConfig:
    """Tuning constants of the detector (Pan-Tompkins defaults).

    Attributes:
        band_hz: Pass band emphasizing QRS energy.
        integration_window_s: Moving-window integration length.
        refractory_s: Minimum spacing between accepted beats.
        threshold_fraction: Position of the detection threshold between
            the running noise and signal peak estimates.
        searchback_factor: Trigger search-back when the gap since the last
            beat exceeds this multiple of the running RR average.
        refine_window_s: Half-width of the window used to align the fiducial
            mark with the raw-signal extremum.
    """

    band_hz: tuple[float, float] = (5.0, 15.0)
    integration_window_s: float = 0.150
    refractory_s: float = 0.200
    threshold_fraction: float = 0.25
    searchback_factor: float = 1.66
    refine_window_s: float = 0.060


class RPeakDetector:
    """Pan-Tompkins-class R-peak detector.

    Args:
        fs: Sampling frequency in Hz.
        config: Tuning constants.
    """

    def __init__(self, fs: float, config: RPeakConfig | None = None) -> None:
        if fs <= 0:
            raise ValueError("sampling frequency must be positive")
        self.fs = fs
        self.config = config or RPeakConfig()
        low, high = self.config.band_hz
        high = min(high, 0.45 * fs)
        self._sos = sp_signal.butter(2, [low, high], btype="bandpass",
                                     fs=fs, output="sos")

    def feature_signal(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Compute (band-passed, integrated) detection signals."""
        x = np.asarray(x, dtype=float)
        bandpassed = sp_signal.sosfiltfilt(self._sos, x)
        # Five-point derivative from the original paper.
        derivative = np.zeros_like(bandpassed)
        derivative[2:-2] = (
            2 * bandpassed[4:] + bandpassed[3:-1]
            - bandpassed[1:-3] - 2 * bandpassed[:-4]
        ) / 8.0
        squared = derivative ** 2
        width = max(1, int(round(self.config.integration_window_s * self.fs)))
        integrated = moving_average(squared, width)
        return bandpassed, integrated

    def detect(self, x: np.ndarray) -> np.ndarray:
        """Detect R peaks in a single-lead waveform.

        Returns:
            Sorted array of R-peak sample indices.
        """
        x = np.asarray(x, dtype=float)
        if x.shape[0] < int(0.5 * self.fs):
            return np.empty(0, dtype=int)
        bandpassed, integrated = self.feature_signal(x)
        refractory = int(round(self.config.refractory_s * self.fs))
        candidates, _ = sp_signal.find_peaks(integrated, distance=refractory)
        if candidates.shape[0] == 0:
            return np.empty(0, dtype=int)

        spki = float(np.percentile(integrated[candidates], 75)) * 0.5
        npki = float(np.percentile(integrated, 50))
        accepted: list[int] = []
        rr_history: list[float] = []

        def threshold() -> float:
            return npki + self.config.threshold_fraction * (spki - npki)

        pending: list[int] = []  # rejected candidates (search-back pool)
        for peak in candidates:
            value = integrated[peak]
            if value > threshold():
                if accepted and peak - accepted[-1] < refractory:
                    continue
                if accepted:
                    rr_history.append(peak - accepted[-1])
                    if len(rr_history) > 8:
                        rr_history.pop(0)
                accepted.append(int(peak))
                spki = 0.125 * value + 0.875 * spki
                pending.clear()
            else:
                npki = 0.125 * value + 0.875 * npki
                pending.append(int(peak))
                # Search-back: if a long gap built up, re-examine rejected
                # candidates with half the threshold.
                if accepted and rr_history:
                    mean_rr = float(np.mean(rr_history))
                    gap = peak - accepted[-1]
                    if gap > self.config.searchback_factor * mean_rr:
                        viable = [
                            p for p in pending
                            if integrated[p] > 0.5 * threshold()
                            and p - accepted[-1] >= refractory
                        ]
                        if viable:
                            best = max(viable, key=lambda p: integrated[p])
                            rr_history.append(best - accepted[-1])
                            accepted.append(best)
                            accepted.sort()
                            spki = 0.25 * integrated[best] + 0.75 * spki
                            pending.clear()
        refined = self._refine(x, bandpassed,
                               np.array(sorted(set(accepted)), dtype=int))
        return refined

    def _refine(self, x: np.ndarray, bandpassed: np.ndarray,
                peaks: np.ndarray) -> np.ndarray:
        """Align each mark with the R-wave extremum.

        The moving-window integrator is trailing, so its peaks lag the QRS
        by roughly half the integration window; stage one therefore looks
        *backwards* over that lag in the band-passed signal, and stage two
        snaps to the raw-signal extremum.
        """
        if peaks.shape[0] == 0:
            return peaks
        n = x.shape[0]
        # Wide (ventricular) complexes delay the integrator peak by up to
        # the full window plus half the QRS width, so look back that far.
        lag = int(round((self.config.integration_window_s + 0.10) * self.fs))
        lead = int(round(0.05 * self.fs))
        half = int(round(self.config.refine_window_s * self.fs))
        refined = []
        base_half = int(round(0.25 * self.fs))
        for peak in peaks:
            lo = max(0, peak - lag)
            hi = min(n, peak + lead + 1)
            coarse = lo + int(np.argmax(np.abs(bandpassed[lo:hi])))
            # Baseline from a window much wider than any QRS: the median of
            # the refine window itself is biased by wide (ventricular)
            # complexes that fill it.
            base_lo = max(0, coarse - base_half)
            base_hi = min(n, coarse + base_half + 1)
            baseline = float(np.median(x[base_lo:base_hi]))
            lo = max(0, coarse - half)
            hi = min(n, coarse + half + 1)
            window = x[lo:hi]
            refined.append(lo + int(np.argmax(np.abs(window - baseline))))
        refined_arr = np.array(sorted(set(refined)), dtype=int)
        # Refinement can merge two marks onto one extremum; keep spacing.
        keep = [0]
        refractory = int(round(self.config.refractory_s * self.fs))
        for i in range(1, refined_arr.shape[0]):
            if refined_arr[i] - refined_arr[keep[-1]] >= refractory:
                keep.append(i)
        return refined_arr[keep]


def detect_r_peaks(record: EcgRecord,
                   config: RPeakConfig | None = None) -> np.ndarray:
    """Convenience wrapper: run the detector on a record's waveform."""
    detector = RPeakDetector(record.fs, config)
    return detector.detect(record.signal)
