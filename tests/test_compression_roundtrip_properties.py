"""Property-style round-trip tests for the CS chain.

Two contracts, swept over encoder geometries:

* the vectorized :class:`~repro.fleet.BatchExcerptEncoder` is
  numerically equivalent to the scalar
  :class:`~repro.compression.MultiLeadCsEncoder` for any seed / CR /
  lead count (the fleet relies on the gateway not being able to tell
  which path encoded a packet);
* encode -> joint decode on real (synthesized) ECG windows stays above
  a reconstruction-SNR floor at the operating CRs.
"""

import numpy as np
import pytest

from repro.compression import (
    JointCsDecoder,
    MultiLeadCsEncoder,
    reconstruction_snr_db,
)
from repro.fleet import BatchExcerptEncoder

WINDOW_N = 256


@pytest.mark.parametrize("seed", [3, 11, 29])
@pytest.mark.parametrize("cr_percent", [50.0, 60.0, 70.0])
@pytest.mark.parametrize("n_leads", [1, 2, 3])
class TestBatchScalarEquivalence:
    def test_batch_encoder_matches_scalar(self, seed, cr_percent,
                                          n_leads):
        rng = np.random.default_rng(1000 * seed + int(cr_percent)
                                    + n_leads)
        batch = rng.normal(scale=0.6, size=(5, n_leads, WINDOW_N))
        batched = BatchExcerptEncoder(n_leads=n_leads, n=WINDOW_N,
                                      cr_percent=cr_percent, seed=seed)
        scalar = MultiLeadCsEncoder(n_leads=n_leads, n=WINDOW_N,
                                    cr_percent=cr_percent, seed=seed)
        frames = batched.encode_batch(batch)
        for p in range(batch.shape[0]):
            reference = scalar.encode(batch[p])
            for lead in range(n_leads):
                np.testing.assert_allclose(
                    frames[p][lead].measurements,
                    reference[lead].measurements,
                    rtol=1e-10, atol=1e-12)
                assert frames[p][lead].scale == \
                    pytest.approx(reference[lead].scale, rel=1e-12)
                assert frames[p][lead].payload_bits == \
                    reference[lead].payload_bits
                assert frames[p][lead].additions == \
                    reference[lead].additions


def ecg_windows(record, n_windows=4):
    """Consecutive clean multi-lead windows skipping the onset pad."""
    out = []
    for w in range(n_windows):
        lo = 300 + w * WINDOW_N
        out.append(record.signals[:, lo:lo + WINDOW_N])
    return out


@pytest.mark.parametrize("seed", [11, 23])
@pytest.mark.parametrize("cr_percent", [50.0, 60.0])
class TestRoundTripSnrFloor:
    def test_encode_decode_snr_above_floor(self, clean_record, seed,
                                           cr_percent):
        encoder = MultiLeadCsEncoder(n_leads=3, n=WINDOW_N,
                                     cr_percent=cr_percent, seed=seed)
        decoder = JointCsDecoder(encoder.sensing_matrices, n_iter=150)
        snrs = []
        for window in ecg_windows(clean_record):
            recovery = decoder.recover(encoder.encode(window))
            snrs.extend(
                reconstruction_snr_db(window[lead],
                                      recovery.windows[lead])
                for lead in range(3))
        # Operating-point quality: every window useful, mean comfortably
        # above the triage snr_watch_db threshold (8 dB).
        assert float(np.mean(snrs)) > 10.0
        assert float(np.min(snrs)) > 4.0

    def test_round_trip_through_batch_path_identical(self, clean_record,
                                                     seed, cr_percent):
        # Gateway reconstruction cannot tell the two encode paths apart.
        window = ecg_windows(clean_record, n_windows=1)[0]
        scalar = MultiLeadCsEncoder(n_leads=3, n=WINDOW_N,
                                    cr_percent=cr_percent, seed=seed)
        batched = BatchExcerptEncoder(n_leads=3, n=WINDOW_N,
                                      cr_percent=cr_percent, seed=seed)
        decoder = JointCsDecoder(scalar.sensing_matrices, n_iter=60)
        from_scalar = decoder.recover(scalar.encode(window)).windows
        from_batch = decoder.recover(
            batched.encode_batch(window[np.newaxis])[0]).windows
        np.testing.assert_allclose(from_scalar, from_batch,
                                   rtol=1e-8, atol=1e-10)
