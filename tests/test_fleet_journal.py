"""Tests for the durable gateway journal (`repro.fleet.journal`)."""

from __future__ import annotations

import pytest

from repro.fleet import (
    Gateway,
    GatewayConfig,
    FleetScheduler,
    JournalConfig,
    JournalError,
    JournalReader,
    JournalReplayer,
    JournalWriter,
    MESSAGE_MAGIC,
    NodeProxy,
    NodeProxyConfig,
    PatientProfile,
    SchedulerConfig,
    ServeMessage,
    StreamDecoder,
    decode_message,
    encode_message,
    encode_stream_frame,
    frame_kind,
    journal_meta,
    make_cohort,
)
from repro.fleet.cohort import CohortConfig
from repro.fleet.journal import _BODY_HEAD, _REC_HEAD
from repro.fleet.serve import FleetGatewayServer
from repro.obs import ANOMALY_JOURNAL_TRUNCATED, Observability, ObsConfig


def _telemetry_frames(n: int, patient_id: str = "jt0") -> list[bytes]:
    """Cheap, valid wire packet frames (no synthesis, no CS encoding)."""
    proxy = NodeProxy(PatientProfile(patient_id=patient_id, seed=1),
                      NodeProxyConfig(stream_telemetry=False))
    return [proxy.telemetry_packet(float(i), mean_hr_bpm=60.0 + i,
                                   soc=0.5).to_bytes()
            for i in range(n)]


def _write_sample(config: JournalConfig, n_packets: int = 4,
                  **writer_kw) -> JournalWriter:
    """A small journal: packets interleaved with control messages."""
    writer = JournalWriter(config, meta=journal_meta(60.0, 250.0),
                           **writer_kw)
    frames = _telemetry_frames(n_packets)
    for i, frame in enumerate(frames):
        writer.append_message(ServeMessage("expire", "", t_s=float(i)))
        writer.append_packet(frame, "jt0")
        writer.append_message(ServeMessage("drain", "", t_s=float(i),
                                           fields={"budget": -1.0}))
    writer.append_message(ServeMessage("sweep", "", t_s=float(n_packets)))
    writer.close()
    return writer


class TestJournalConfig:
    @pytest.mark.parametrize("kwargs,match", [
        (dict(dir=""), "dir"),
        (dict(dir="d", name=""), "name"),
        (dict(dir="d", name="x" * 81), "name"),
        (dict(dir="d", name="a/b"), "separators"),
        (dict(dir="d", segment_bytes=100), "segment_bytes"),
    ])
    def test_invalid_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            JournalConfig(**kwargs)

    def test_for_shard_derives_name(self):
        config = JournalConfig(dir="d", name="run")
        assert config.for_shard(3).name == "run-s03"
        assert config.for_shard(3).dir == "d"

    def test_segment_paths_ignore_other_journals(self, tmp_path):
        """A journal named ``j`` must not pick up ``j-s00``'s segments."""
        base = JournalConfig(dir=str(tmp_path), name="j")
        shard = base.for_shard(0)
        _write_sample(base, n_packets=1)
        _write_sample(shard, n_packets=1)
        assert [p.name for p in base.segment_paths()] == ["j-000000.rpj"]
        assert [p.name for p in shard.segment_paths()] \
            == ["j-s00-000000.rpj"]


class TestWriterReader:
    def test_gather_write_bytes_identical_to_reference(self, tmp_path):
        # The scatter/gather append (incremental CRC + two writes) must
        # put the exact same bytes on disk as the historical
        # single-concatenation build.
        import zlib

        config = JournalConfig(dir=str(tmp_path), name="gather")
        writer = _write_sample(config, n_packets=3)
        data = config.segment_paths()[0].read_bytes()
        # Re-derive every record and check CRC/length against a
        # from-scratch single-buffer encoding of its body.
        reader = JournalReader(config)
        for record in reader.records():
            subject_raw = record.subject.encode("utf-8")
            body = (_BODY_HEAD.pack(record.t_s, record.prio,
                                    len(subject_raw))
                    + subject_raw + bytes(record.frame))
            expected = _REC_HEAD.pack(len(body), zlib.crc32(body)) + body
            assert expected in data
        assert writer.n_records == reader.n_records

    def test_append_accepts_any_buffer_without_retention(self, tmp_path):
        # bytes, bytearray and memoryview appends must journal the
        # same record — and mutating the source afterwards must not
        # reach the log (the write happens inside the call).
        frame = _telemetry_frames(1)[0]
        blobs = []
        for source in (frame, bytearray(frame), memoryview(frame)):
            config = JournalConfig(dir=str(tmp_path),
                                   name=f"buf{len(blobs)}")
            writer = JournalWriter(config,
                                   meta=journal_meta(60.0, 250.0))
            writer.append_packet(source, "jt0")
            writer.close()
            if isinstance(source, bytearray):
                source[:] = b"\xff" * len(source)
            blobs.append(config.segment_paths()[0].read_bytes())
        # Identical records behind the (identical-length) headers.
        assert len({blob[blob.index(b"RPW1"):] for blob in blobs}) == 1

    def test_round_trip(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="rt")
        writer = _write_sample(config, n_packets=4)
        assert writer.n_packets == 4
        assert writer.n_messages == 9
        reader = JournalReader(config)
        records = list(reader.records())
        assert reader.meta == journal_meta(60.0, 250.0)
        assert len(records) == writer.n_records
        assert reader.torn_tail_bytes == 0
        kinds = [frame_kind(r.frame) for r in records]
        assert kinds.count("packet") == 4
        # Writer stamps are monotone in file order.
        stamps = [(r.t_s, r.prio) for r in records]
        assert stamps == sorted(stamps)
        # Packet records carry their subject; the frames round-trip.
        packet = next(r for r in records if frame_kind(r.frame) == "packet")
        assert packet.subject == "jt0"
        assert packet.frame == _telemetry_frames(1)[0]

    def test_messages_advance_clock_packets_inherit_it(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="clk")
        with JournalWriter(config) as writer:
            writer.append_message(ServeMessage("sweep", "", t_s=10.0))
            # A message stamped earlier than the clock is clamped, never
            # allowed to run the journal backwards.
            writer.append_message(ServeMessage("expire", "", t_s=3.0))
            writer.append_packet(_telemetry_frames(1)[0], "jt0")
        records = list(JournalReader(config).records())
        stamps = [(r.t_s, r.prio) for r in records]
        assert stamps[1] == stamps[0]
        assert stamps[2] == stamps[0]

    def test_rotation_crosses_segments(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="rot",
                               segment_bytes=4096)
        writer = JournalWriter(config)
        frames = _telemetry_frames(40)
        for frame in frames:
            writer.append_packet(frame, "jt0")
        writer.close()
        assert writer.stats()["segments"] >= 2
        assert len(config.segment_paths()) == writer.stats()["segments"]
        reader = JournalReader(config)
        replayed = [r.frame for r in reader.records()]
        assert replayed == frames

    def test_resume_false_wipes_prior_segments(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="wipe")
        _write_sample(config, n_packets=3)
        with JournalWriter(config, resume=False) as writer:
            writer.append_packet(_telemetry_frames(1)[0], "jt0")
        assert JournalReader(config).n_records == 0  # set by records()
        assert len(list(JournalReader(config).records())) == 1

    def test_append_errors(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="err")
        writer = JournalWriter(config)
        with pytest.raises(JournalError, match="empty"):
            writer.append_packet(b"", "jt0")
        with pytest.raises(JournalError, match="not journalable"):
            writer.append_message(ServeMessage("hello-ack", "p"))
        with pytest.raises(JournalError, match="non-finite"):
            writer.append_message(
                ServeMessage("sweep", "p", t_s=float("nan")))
        writer.close()
        with pytest.raises(JournalError, match="closed"):
            writer.append_packet(b"x", "jt0")

    def test_stats_surface(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="st")
        writer = _write_sample(config, n_packets=2)
        stats = writer.stats()
        assert stats["name"] == "st"
        assert stats["records"] == stats["packets"] + stats["messages"]
        assert stats["bytes"] > 0
        assert stats["truncated_bytes"] == 0

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError, match="no journal"):
            JournalReader(JournalConfig(dir=str(tmp_path), name="nope"))


class TestRecovery:
    def test_torn_tail_truncated_and_appending_resumes(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="torn")
        _write_sample(config, n_packets=3)
        reference = list(JournalReader(config).records())
        path = config.segment_paths()[-1]
        # Emulate a crash mid-append: a record prefix with no body.
        with open(path, "ab") as handle:
            handle.write(_REC_HEAD.pack(500, 0) + b"\x01\x02\x03")
        writer = JournalWriter(config)
        assert writer.n_truncated_bytes == _REC_HEAD.size + 3
        writer.append_message(ServeMessage("sweep", "",
                                           t_s=reference[-1].t_s + 1.0))
        writer.close()
        recovered = list(JournalReader(config).records())
        assert recovered[:-1] == reference
        assert decode_message(recovered[-1].frame).kind == "sweep"

    def test_reader_reports_torn_tail_without_truncating(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="tt")
        _write_sample(config, n_packets=2)
        reference = list(JournalReader(config).records())
        path = config.segment_paths()[-1]
        with open(path, "ab") as handle:
            handle.write(b"\xff\xff")
        reader = JournalReader(config)
        assert list(reader.records()) == reference
        assert reader.torn_tail_bytes == 2

    def test_torn_tail_in_sealed_segment_is_corruption(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="sealed",
                               segment_bytes=4096)
        writer = JournalWriter(config)
        for frame in _telemetry_frames(40):
            writer.append_packet(frame, "jt0")
        writer.close()
        paths = config.segment_paths()
        assert len(paths) >= 2
        with open(paths[0], "ab") as handle:
            handle.write(b"\xff")
        with pytest.raises(JournalError, match="sealed"):
            list(JournalReader(config).records())

    def test_crc_mismatch_is_corruption_not_recovery(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="crc")
        _write_sample(config, n_packets=2)
        path = config.segment_paths()[0]
        data = bytearray(path.read_bytes())
        data[-10] ^= 0x40  # flip one bit inside the last record body
        path.write_bytes(bytes(data))
        with pytest.raises(JournalError, match="CRC"):
            list(JournalReader(config).records())
        with pytest.raises(JournalError, match="CRC"):
            JournalWriter(config)

    def test_recovery_adopts_header_meta(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="meta")
        _write_sample(config, n_packets=1)
        writer = JournalWriter(config)
        assert writer.meta == journal_meta(60.0, 250.0)
        writer.close()

    def test_truncation_is_metered_and_flight_recorded(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="obs")
        _write_sample(config, n_packets=1)
        with open(config.segment_paths()[-1], "ab") as handle:
            handle.write(_REC_HEAD.pack(100, 0))
        obs = Observability(ObsConfig())
        JournalWriter(config, obs=obs).close()
        anomaly = obs.flight.anomalies[-1]
        assert anomaly.kind == ANOMALY_JOURNAL_TRUNCATED
        assert anomaly.detail["torn_bytes"] == _REC_HEAD.size


class _PowerCut(BaseException):
    """Raised by the injected write fault to stop the run mid-append."""


class TestCrashInjection:
    def test_write_hook_partial_append_recovers_cleanly(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="cut")
        writer = _write_sample(config, n_packets=2)
        reference = list(JournalReader(config).records())
        writer = JournalWriter(config)
        writer.write_hook = lambda data: writer._file.write(
            data[: len(data) // 2])
        writer.append_message(ServeMessage("sweep", "", t_s=99.0))
        writer._file.close()  # the process dies; no flush, no close()
        recovered = JournalWriter(config)
        assert recovered.n_truncated_bytes > 0
        recovered.close()
        assert list(JournalReader(config).records()) == reference

    def test_fleet_run_killed_mid_append_replays_surviving_prefix(
            self, tmp_path):
        """The ISSUE's crash-recovery bar: kill the writer mid-append,
        reopen, replay — the recovered summary equals the reference
        over the surviving prefix (here: everything but the final
        ``stats`` record, which carries no summary state)."""
        cohort = make_cohort(CohortConfig(n_patients=2, seed=11))
        run_kw = dict(
            config=SchedulerConfig(duration_s=60.0, fs=250.0),
            node_config=NodeProxyConfig(stream_telemetry=False))
        gateway_config = GatewayConfig(n_iter=30)
        reference = FleetScheduler(
            cohort, run_kw["config"],
            node_config=run_kw["node_config"],
            gateway=Gateway(gateway_config)).run()

        config = JournalConfig(dir=str(tmp_path), name="killed")
        writer = JournalWriter(
            config, meta=journal_meta(60.0, 250.0, gateway_config),
            resume=False)

        def cut_power_at_stats(data: bytes):
            body = data[_REC_HEAD.size:]
            _, _, subject_len = _BODY_HEAD.unpack_from(body, 0)
            frame = body[_BODY_HEAD.size + subject_len:]
            if (frame[:4] == MESSAGE_MAGIC
                    and decode_message(frame).kind == "stats"):
                writer._file.write(data[: len(data) // 2])
                raise _PowerCut()
            writer._file.write(data)

        writer.write_hook = cut_power_at_stats
        scheduler = FleetScheduler(
            cohort, run_kw["config"],
            node_config=run_kw["node_config"],
            gateway=Gateway(gateway_config), journal=writer)
        with pytest.raises(_PowerCut):
            scheduler.run()
        writer._file.close()  # simulate sudden process death

        recovered = JournalWriter(config)
        assert recovered.n_truncated_bytes > 0
        recovered.close()
        replay = JournalReplayer(config).run()
        assert replay.summary.to_json() == reference.summary.to_json()


class TestDecoderAccounting:
    """Satellite: partial-frame byte accounting shared by journal writer
    and serve lane (`StreamDecoder.pending_bytes`)."""

    def test_pending_bytes_across_chunked_feeds(self):
        body = encode_message(ServeMessage("sweep", "p", t_s=1.0))
        stream = encode_stream_frame(body) * 2
        decoder = StreamDecoder()
        assert decoder.pending_bytes == 0
        frame_len = len(encode_stream_frame(body))
        got = []
        for i, chunk_end in enumerate(range(1, len(stream) + 1)):
            got.extend(decoder.feed(stream[chunk_end - 1:chunk_end]))
            # The buffered count is exactly the bytes fed since the
            # last completed frame — pinned byte-for-byte.
            assert decoder.pending_bytes == chunk_end % frame_len
        assert got == [body, body]
        assert decoder.pending_bytes == 0

    def test_server_tracks_partial_frame_high_water(self):
        server = FleetGatewayServer.__new__(FleetGatewayServer)
        server.max_partial_bytes = 0
        decoder = StreamDecoder()
        body = encode_message(ServeMessage("hello", "p"))
        decoder.feed(encode_stream_frame(body)[:5])
        server._note_partial(decoder)
        assert server.max_partial_bytes == 5
        decoder.feed(encode_stream_frame(body)[5:])
        server._note_partial(decoder)
        assert server.max_partial_bytes == 5  # high-water, not last
