"""The full SmartCardia-style node application (paper §V).

Wires every stage of Fig. 1 into one processing chain, as the commercial
node runs it: morphological conditioning, RMS lead combination, R-peak
detection, wavelet delineation, AF analysis — and the transmission policy
of §V: "Compressed Sensing is employed to efficiently transmit excerpts of
the acquired signals, periodically or when an abnormality is detected."

The node report accounts bandwidth and energy with the models of
:mod:`repro.power`, so the examples can print end-to-end numbers (events,
bytes, battery life) for a given recording.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..classification.afib import AfDetector, AF_LABEL
from ..compression.encoder import MultiLeadCsEncoder
from ..delineation.rpeak import RPeakDetector
from ..delineation.wavelet_delineator import WaveletDelineator
from ..filtering.combination import combine_leads
from ..filtering.morphological import MorphologicalFilter
from ..power.battery import Battery
from ..power.mcu import McuModel
from ..power.node import NodeEnergyModel
from ..signals.types import BeatAnnotation, MultiLeadEcg


@dataclass(frozen=True)
class AlarmEvent:
    """One abnormality notification with its transmitted excerpt.

    Attributes:
        start: First sample of the flagged span.
        stop: Last sample of the flagged span.
        kind: Event kind (currently ``"AF"``).
        excerpt_bits: CS-compressed excerpt payload shipped with the alarm.
    """

    start: int
    stop: int
    kind: str
    excerpt_bits: int


@dataclass
class NodeReport:
    """End-to-end outcome of processing one recording on the node.

    Attributes:
        duration_s: Recording duration.
        beats: Delineated beats.
        alarms: Abnormality events raised.
        periodic_excerpts: Periodic CS excerpts transmitted.
        transmitted_bits: Total application payload handed to the radio.
        processing_cycles: Total MCU cycles spent on DSP.
        average_power_w: Node average power (radio + MCU + front-end).
        battery_days: Estimated time between charges.
    """

    duration_s: float
    beats: list[BeatAnnotation]
    alarms: list[AlarmEvent]
    periodic_excerpts: int
    transmitted_bits: int
    processing_cycles: float
    average_power_w: float
    battery_days: float
    fs: float = 250.0

    @property
    def mean_heart_rate_bpm(self) -> float:
        """Mean heart rate over the recording (nan with < 2 beats)."""
        if len(self.beats) < 2:
            return float("nan")
        peaks = np.array([b.r_peak for b in self.beats], dtype=float)
        rr_mean_samples = float(np.mean(np.diff(peaks)))
        if rr_mean_samples <= 0:
            return float("nan")
        return 60.0 * self.fs / rr_mean_samples


@dataclass
class CardiacMonitorNode:
    """The embedded cardiac monitor application.

    Args:
        af_detector: Trained AF detector (see
            :class:`repro.classification.afib.AfDetector`); ``None``
            disables AF analysis (no alarms are raised).
        excerpt_period_s: Period of routine CS excerpt transmissions.
        excerpt_window_s: Length of each transmitted excerpt.
        cs_cr_percent: Compression ratio of the excerpt encoder.
        dsp_cycles_per_sample: MCU cost of the always-on DSP chain
            (conditioning + delineation; matches
            ``repro.delineation.resources``).
    """

    af_detector: AfDetector | None = None
    excerpt_period_s: float = 60.0
    excerpt_window_s: float = 2.0
    cs_cr_percent: float = 60.0
    dsp_cycles_per_sample: float = 260.0
    energy_model: NodeEnergyModel = field(default_factory=NodeEnergyModel)
    battery: Battery = field(default_factory=Battery)

    def process(self, record: MultiLeadEcg) -> NodeReport:
        """Run the full on-node chain over one recording."""
        fs = record.fs
        conditioner = MorphologicalFilter(fs)
        conditioned = conditioner.condition_multilead(record)
        combined = combine_leads(conditioned, method="rms")
        r_peaks = RPeakDetector(fs).detect(combined.signal)
        # Delineate on a conditioned single lead (lead II morphology).
        lead_signal = conditioned.signals[min(1, record.n_leads - 1)]
        beats = WaveletDelineator(fs).delineate(lead_signal, r_peaks)

        alarms = self._af_alarms(record, fs)
        n_samples = record.n_samples
        duration = record.duration_s

        encoder = MultiLeadCsEncoder(
            n_leads=record.n_leads,
            n=int(self.excerpt_window_s * fs),
            cr_percent=self.cs_cr_percent,
            quant_bits=self.energy_model.sample_bits)
        excerpt_bits = encoder.payload_bits_per_window()
        periodic = int(duration // self.excerpt_period_s)

        beat_bits = len(beats) * (9 * 16 + 8)
        alarm_bits = sum(a.excerpt_bits + 64 for a in alarms)
        total_bits = periodic * excerpt_bits + beat_bits + alarm_bits

        dsp_cycles = self.dsp_cycles_per_sample * n_samples * record.n_leads
        cs_cycles = (periodic + len(alarms)) \
            * encoder.additions_per_window() \
            * self.energy_model.cycles_per_addition
        cycles = dsp_cycles + cs_cycles

        power = self._average_power(total_bits, cycles, duration, record)
        return NodeReport(
            duration_s=duration,
            beats=beats,
            alarms=alarms,
            periodic_excerpts=periodic,
            transmitted_bits=int(total_bits),
            processing_cycles=cycles,
            average_power_w=power,
            battery_days=self.battery.lifetime_days(power),
            fs=fs,
        )

    def _af_alarms(self, record: MultiLeadEcg, fs: float) -> list[AlarmEvent]:
        """AF window decisions merged into alarm events."""
        if self.af_detector is None:
            return []
        windows, labels = self.af_detector.predict_record(record)
        excerpt_bits = MultiLeadCsEncoder(
            n_leads=record.n_leads, n=int(self.excerpt_window_s * fs),
            cr_percent=self.cs_cr_percent).payload_bits_per_window()
        alarms: list[AlarmEvent] = []
        current: list[int] = []
        for window, label in zip(windows, labels):
            if label == AF_LABEL:
                current.append(window.start)
                current.append(window.stop)
            elif current:
                alarms.append(AlarmEvent(start=min(current),
                                         stop=max(current), kind="AF",
                                         excerpt_bits=excerpt_bits))
                current = []
        if current:
            alarms.append(AlarmEvent(start=min(current), stop=max(current),
                                     kind="AF", excerpt_bits=excerpt_bits))
        return alarms

    def _average_power(self, total_bits: float, cycles: float,
                       duration: float, record: MultiLeadEcg) -> float:
        """Node average power from payload, cycles and standing costs."""
        model = self.energy_model
        radio = model.link.transmit(int(total_bits)).energy_j
        mcu: McuModel = model.mcu
        compute = mcu.compute_energy(cycles)
        rtos = mcu.rtos_energy(duration)
        active_fraction = min(1.0, cycles / (mcu.clock_hz * duration))
        sleep = mcu.idle_energy(duration, active_fraction)
        sampling = model.frontend.sampling_energy(
            record.n_samples, record.n_leads, duration)
        return (radio + compute + rtos + sleep + sampling) / duration
