"""Tests for the deterministic metrics layer (`repro.obs.metrics`)."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsError,
    MetricsRegistry,
    SCOPE_FLEET,
    SCOPE_SHARD,
    canonical_metrics_json,
    merge_metric_snapshots,
)


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("packets_total")
        c.inc(patient="p0")
        c.inc(3, patient="p0")
        c.inc(patient="p1")
        assert c.value(patient="p0") == 4
        assert c.value(patient="p1") == 1
        assert c.value(patient="p9") == 0

    def test_label_order_is_irrelevant(self):
        c = MetricsRegistry().counter("x")
        c.inc(a="1", b="2")
        c.inc(b="2", a="1")
        assert c.value(b="2", a="1") == 2

    @pytest.mark.parametrize("bad", [-1, 1.5, True, "2"])
    def test_non_integer_or_negative_increments_rejected(self, bad):
        c = MetricsRegistry().counter("x")
        with pytest.raises(MetricsError, match="non-negative"):
            c.inc(bad)


class TestGauge:
    def test_last_write_wins(self):
        g = MetricsRegistry().gauge("soc")
        g.set(0.9, patient="p0")
        g.set(0.4, patient="p0")
        assert g.value(patient="p0") == 0.4

    def test_unset_series_is_nan(self):
        g = MetricsRegistry().gauge("soc")
        assert g.value(patient="p0") != g.value(patient="p0")  # nan

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_rejected(self, bad):
        g = MetricsRegistry().gauge("soc")
        with pytest.raises(MetricsError, match="finite"):
            g.set(bad)


class TestHistogram:
    def test_each_observation_lands_in_one_bucket(self):
        h = MetricsRegistry().histogram("snr", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(1.0)   # boundary: value <= bound -> first bucket
        h.observe(5.0)
        h.observe(99.0)  # +Inf catch-all
        key = ()
        assert h.series[key] == [2, 1, 1]
        assert h.count() == 4

    def test_default_buckets(self):
        h = MetricsRegistry().histogram("x")
        assert h.buckets == DEFAULT_BUCKETS

    def test_boundary_values_are_le_inclusive(self):
        # Prometheus `le` semantics: an observation exactly on a bucket
        # bound belongs to that bucket, for every bound — not just the
        # first.  Pinned so a refactor of the bucket search can't
        # silently shift boundary observations into the next bucket.
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 5.0, 10.0))
        for bound in (1.0, 5.0, 10.0):
            h.observe(bound)
        assert h.series[()] == [1, 1, 1, 0]

    def test_observation_just_above_bound_goes_to_next_bucket(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 5.0))
        h.observe(1.0000001)
        h.observe(5.0000001)
        assert h.series[()] == [0, 1, 1]

    def test_nan_observation_rejected(self):
        # NaN compares false with every bound, so it would silently
        # land in the +Inf catch-all and skew count() and percentiles.
        h = MetricsRegistry().histogram("lat")
        with pytest.raises(MetricsError, match="NaN"):
            h.observe(float("nan"))
        assert h.count() == 0  # the bad observation left no trace

    def test_infinity_lands_in_catch_all(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0,))
        h.observe(float("inf"))
        assert h.series[()] == [0, 1]


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(MetricsError, match="re-declared"):
            reg.gauge("a")

    def test_scope_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a", scope=SCOPE_FLEET)
        with pytest.raises(MetricsError, match="re-declared"):
            reg.counter("a", scope=SCOPE_SHARD)

    def test_bucket_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(MetricsError, match="buckets"):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_unknown_scope_rejected(self):
        with pytest.raises(MetricsError, match="scope"):
            MetricsRegistry().counter("a", scope="galaxy")

    def test_snapshot_sorted_and_scope_filtered(self):
        reg = MetricsRegistry()
        reg.counter("b_total", scope=SCOPE_SHARD).inc()
        reg.counter("a_total").inc(patient="p1")
        reg.counter("a_total").inc(patient="p0")
        snap = reg.snapshot()
        keys = [(s["name"], tuple(sorted(s["labels"].items())))
                for s in snap["series"]]
        assert keys == sorted(keys)
        fleet_only = reg.snapshot(scope=SCOPE_FLEET)
        assert {s["name"] for s in fleet_only["series"]} == {"a_total"}

    def test_canonical_json_is_byte_stable(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("a", help="h").inc(2, patient="p0")
            reg.gauge("g").set(1.25, mode="lead1")
            reg.histogram("h", buckets=(1.0,)).observe(0.5)
            return canonical_metrics_json(reg.snapshot())

        assert build() == build()


class TestPrometheus:
    def test_exposition_shape(self):
        reg = MetricsRegistry()
        reg.counter("packets_total", help="Packets seen").inc(
            2, patient="p0")
        reg.histogram("snr_db", buckets=(10.0, 20.0)).observe(15.0)
        text = reg.to_prometheus()
        assert "# HELP packets_total Packets seen" in text
        assert "# TYPE packets_total counter" in text
        assert 'packets_total{patient="p0"} 2' in text
        # Histogram buckets render cumulatively with a +Inf catch-all.
        assert 'snr_db_bucket{le="10"} 0' in text
        assert 'snr_db_bucket{le="20"} 1' in text
        assert 'snr_db_bucket{le="+Inf"} 1' in text
        assert "snr_db_count 1" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x").inc(reason='say "hi"\n')
        assert r'reason="say \"hi\"\n"' in reg.to_prometheus()


class TestMerge:
    def _snap(self, *incs):
        reg = MetricsRegistry()
        for amount, labels in incs:
            reg.counter("n_total").inc(amount, **labels)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        return reg.snapshot()

    def test_counters_and_histograms_add(self):
        a = self._snap((2, {"patient": "p0"}))
        b = self._snap((3, {"patient": "p0"}), (1, {"patient": "p1"}))
        merged = merge_metric_snapshots([a, b])
        by_key = {(s["name"], tuple(sorted(s["labels"].items()))): s
                  for s in merged["series"]}
        assert by_key[("n_total", (("patient", "p0"),))]["value"] == 5
        assert by_key[("n_total", (("patient", "p1"),))]["value"] == 1
        assert by_key[("h", ())]["value"] == [2, 0]

    def test_merge_is_order_independent_for_fleet_series(self):
        a = self._snap((2, {"patient": "p0"}))
        b = self._snap((3, {"patient": "p1"}))
        ab = canonical_metrics_json(merge_metric_snapshots([a, b]))
        ba = canonical_metrics_json(merge_metric_snapshots([b, a]))
        assert ab == ba

    def test_merge_is_associative(self):
        a = self._snap((1, {"p": "0"}))
        b = self._snap((2, {"p": "1"}))
        c = self._snap((4, {"p": "0"}))
        left = merge_metric_snapshots(
            [merge_metric_snapshots([a, b]), c])
        right = merge_metric_snapshots(
            [a, merge_metric_snapshots([b, c])])
        assert canonical_metrics_json(left) \
            == canonical_metrics_json(right)

    def test_gauge_last_write_wins_in_input_order(self):
        def gauge_snap(value):
            reg = MetricsRegistry()
            reg.gauge("soc").set(value, patient="p0")
            return reg.snapshot()

        merged = merge_metric_snapshots(
            [gauge_snap(0.9), gauge_snap(0.4)])
        assert merged["series"][0]["value"] == 0.4

    def test_type_conflict_raises(self):
        reg_a = MetricsRegistry()
        reg_a.counter("x").inc()
        reg_b = MetricsRegistry()
        reg_b.gauge("x").set(1.0)
        with pytest.raises(MetricsError, match="conflict"):
            merge_metric_snapshots([reg_a.snapshot(), reg_b.snapshot()])

    def test_merged_snapshot_roundtrips_through_json(self):
        # The shard blob carries snapshots as JSON; merging the decoded
        # form must equal merging the in-memory form byte-for-byte.
        a = self._snap((2, {"patient": "p0"}))
        b = self._snap((1, {"patient": "p1"}))
        via_json = [json.loads(json.dumps(s)) for s in (a, b)]
        assert canonical_metrics_json(merge_metric_snapshots(via_json)) \
            == canonical_metrics_json(merge_metric_snapshots([a, b]))
