"""Heart-rate-variability analysis (paper §I-II).

Sleep monitoring "involves the analysis of heart rate variability over a
time window of the acquired bio-signal" (§I), and behavioural applications
"typically only require processing of beat-to-beat intervals" (§II) — the
second rung of the Fig. 1 ladder.  This module provides the standard
time-domain metrics plus the LF/HF frequency-domain balance computed on
the evenly-resampled RR tachogram, which is what separates sympathetic
from vagal (respiratory) modulation in the sleep/stress applications.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

#: Standard short-term HRV bands (Task Force 1996), Hz.
LF_BAND = (0.04, 0.15)
HF_BAND = (0.15, 0.40)


@dataclass(frozen=True)
class TimeDomainHrv:
    """Time-domain HRV metrics of one analysis window.

    Attributes:
        mean_rr_s: Mean RR interval.
        sdnn_ms: Standard deviation of RR intervals.
        rmssd_ms: RMS of successive differences (vagal marker).
        pnn50: Fraction of successive differences above 50 ms.
    """

    mean_rr_s: float
    sdnn_ms: float
    rmssd_ms: float
    pnn50: float

    @property
    def mean_hr_bpm(self) -> float:
        """Mean heart rate."""
        return 60.0 / self.mean_rr_s if self.mean_rr_s > 0 else float("nan")


@dataclass(frozen=True)
class FrequencyDomainHrv:
    """Frequency-domain HRV metrics.

    Attributes:
        lf_power: Power in the 0.04-0.15 Hz band (ms^2).
        hf_power: Power in the 0.15-0.40 Hz band (ms^2).
    """

    lf_power: float
    hf_power: float

    @property
    def lf_hf_ratio(self) -> float:
        """Sympatho-vagal balance indicator."""
        return self.lf_power / self.hf_power if self.hf_power > 0 \
            else float("inf")


def time_domain_hrv(rr_s: np.ndarray) -> TimeDomainHrv:
    """Time-domain metrics of an RR series.

    Raises:
        ValueError: With fewer than two intervals.
    """
    rr_s = np.asarray(rr_s, dtype=float)
    if rr_s.shape[0] < 2:
        raise ValueError("need at least two RR intervals")
    diffs = np.diff(rr_s)
    return TimeDomainHrv(
        mean_rr_s=float(np.mean(rr_s)),
        sdnn_ms=1e3 * float(np.std(rr_s)),
        rmssd_ms=1e3 * float(np.sqrt(np.mean(diffs ** 2))),
        pnn50=float(np.mean(np.abs(diffs) > 0.050)),
    )


def resample_tachogram(r_peak_times_s: np.ndarray,
                       resample_hz: float = 4.0,
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Evenly resample the RR tachogram for spectral analysis.

    The RR series is an unevenly sampled process (one value per beat);
    spectral metrics need even sampling, so the tachogram is linearly
    interpolated at ``resample_hz`` — the standard pre-processing step.

    Returns:
        ``(t, rr_ms)`` evenly sampled time axis and RR values.
    """
    times = np.asarray(r_peak_times_s, dtype=float)
    if times.shape[0] < 3:
        raise ValueError("need at least three beats")
    rr = np.diff(times)
    beat_times = times[1:]
    t = np.arange(beat_times[0], beat_times[-1], 1.0 / resample_hz)
    rr_interp = np.interp(t, beat_times, rr)
    return t, 1e3 * rr_interp


def frequency_domain_hrv(r_peak_times_s: np.ndarray,
                         resample_hz: float = 4.0) -> FrequencyDomainHrv:
    """LF/HF band powers of the RR tachogram (Welch periodogram).

    Raises:
        ValueError: If the window is too short for the LF band
            (< ~60 s of data).
    """
    t, rr_ms = resample_tachogram(r_peak_times_s, resample_hz)
    if t.shape[0] < int(40 * resample_hz):
        raise ValueError("window too short for LF/HF analysis (need ~60 s)")
    rr_ms = rr_ms - np.mean(rr_ms)
    nperseg = min(t.shape[0], int(120 * resample_hz))
    freqs, psd = sp_signal.welch(rr_ms, fs=resample_hz, nperseg=nperseg)

    def band_power(lo: float, hi: float) -> float:
        mask = (freqs >= lo) & (freqs < hi)
        if not mask.any():
            return 0.0
        return float(np.trapezoid(psd[mask], freqs[mask]))

    return FrequencyDomainHrv(lf_power=band_power(*LF_BAND),
                              hf_power=band_power(*HF_BAND))


@dataclass(frozen=True)
class HrvReport:
    """Combined HRV analysis of one window."""

    time: TimeDomainHrv
    frequency: FrequencyDomainHrv | None


def analyze_hrv(r_peaks: np.ndarray, fs: float,
                spectral: bool = True) -> HrvReport:
    """Full HRV analysis from detected R peaks.

    Args:
        r_peaks: R-peak sample indices.
        fs: Sampling frequency.
        spectral: Compute LF/HF (requires >= ~60 s of beats); on failure
            the frequency part is ``None``.
    """
    times = np.asarray(r_peaks, dtype=float) / fs
    time_metrics = time_domain_hrv(np.diff(times))
    frequency_metrics = None
    if spectral:
        try:
            frequency_metrics = frequency_domain_hrv(times)
        except ValueError:
            frequency_metrics = None
    return HrvReport(time=time_metrics, frequency=frequency_metrics)
