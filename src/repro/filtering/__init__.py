"""Noise filtering and source combination (paper §III-B, §IV-C)."""

from .aicf import (
    AicfResult,
    aicf_convergence_curve,
    aicf_filter,
    tracking_gain_vs_ea,
)
from .baseline import (
    KNOT_WINDOW_S,
    PQ_OFFSET_S,
    estimate_baseline,
    knot_positions,
    knot_values,
    remove_baseline_spline,
)
from .combination import combine_leads, mean_combine, rms_combine
from .ensemble import beat_matrix, ensemble_average, ensemble_noise_reduction_db
from .morphological import MorphologicalFilter, MorphologicalFilterConfig

__all__ = [
    "AicfResult",
    "KNOT_WINDOW_S",
    "MorphologicalFilter",
    "MorphologicalFilterConfig",
    "PQ_OFFSET_S",
    "aicf_convergence_curve",
    "aicf_filter",
    "beat_matrix",
    "combine_leads",
    "ensemble_average",
    "ensemble_noise_reduction_db",
    "estimate_baseline",
    "knot_positions",
    "knot_values",
    "mean_combine",
    "remove_baseline_spline",
    "rms_combine",
    "tracking_gain_vs_ea",
]
