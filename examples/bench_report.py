"""Performance report card: run the unified bench grid from python.

Drives :mod:`repro.bench` programmatically — the same registry and
runner the CI gate uses (``python -m repro.bench --quick``) — and
prints the per-case table plus the regression verdict against the
committed baselines.  Use this to answer "did my change slow the
pipeline down?" before pushing.

Run:  python examples/bench_report.py [--cases fleet-throughput]
      (defaults to the quick grid; add --full for benchmark-grade runs)
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.bench import BenchRunner, all_cases, get_case, load_baselines

REPO_ROOT = Path(__file__).resolve().parent.parent


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cases", default=None,
                        help="comma-separated case names (default: all; "
                             f"known: {', '.join(sorted(all_cases()))})")
    parser.add_argument("--full", action="store_true",
                        help="full workloads instead of the quick grid")
    parser.add_argument("--repeats", type=int, default=1,
                        help="scored runs per case (default 1 here; the "
                             "CI gate uses 3)")
    args = parser.parse_args()

    cases = None
    if args.cases:
        cases = [get_case(name.strip())
                 for name in args.cases.split(",") if name.strip()]
    baselines = load_baselines(REPO_ROOT / "benchmarks" / "baselines.json")
    runner = BenchRunner(cases=cases, quick=not args.full, warmup=0,
                         repeats=args.repeats, baselines=baselines)
    print(f"running {len(runner.cases)} bench case(s), "
          f"{'full' if args.full else 'quick'} grid ...")
    report = runner.run()
    print(report.describe())
    if report.regressions:
        print(f"verdict: REGRESSED ({', '.join(report.regressions)})")
    else:
        print("verdict: no regressions vs committed baselines")


if __name__ == "__main__":
    main()
