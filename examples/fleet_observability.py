"""Fleet observability demo: metrics, traces and the flight recorder.

Runs the fleet twice with one `Observability` handle threaded through
the stack — once in-process and once sharded across worker processes —
and shows that the canonical fleet-scope snapshot is byte-identical in
both layouts (the same determinism contract `FleetSummary` obeys).
Then trips the gateway flight recorder on a corrupt wire frame and
replays the dumped packets into a fresh gateway offline.

Run:  python examples/fleet_observability.py [--patients 8] [--shards 2]
"""

from __future__ import annotations

import argparse
import tempfile

from repro.fleet import (
    CohortConfig,
    FleetScheduler,
    Gateway,
    GatewayConfig,
    NodeProxyConfig,
    SchedulerConfig,
    ShardedFleetRunner,
    WireFormatError,
    make_cohort,
)
from repro.obs import Observability, ObsConfig, load_flight_dump


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patients", type=int, default=8,
                        help="cohort size")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="simulated seconds per patient")
    parser.add_argument("--shards", type=int, default=2,
                        help="worker processes for the sharded rerun")
    args = parser.parse_args()

    cohort = make_cohort(CohortConfig(n_patients=args.patients, seed=7))
    config = SchedulerConfig(duration_s=args.duration, fs=250.0)
    node = NodeProxyConfig(stream_telemetry=False)
    gateway_cfg = GatewayConfig(n_iter=50)

    # --- 1. Observed in-process run -------------------------------
    obs = Observability()
    print(f"observing a fleet of {args.patients} patients for "
          f"{args.duration:.0f} s ...")
    FleetScheduler(cohort, config, node_config=node,
                   gateway=Gateway(gateway_cfg, obs=obs),
                   obs=obs).run()

    snap = obs.metrics.snapshot()
    families = {s["name"] for s in snap["series"]}
    events = obs.trace.snapshot()["events"]
    print(f"metrics: {len(snap['series'])} series across "
          f"{len(families)} families")
    print(f"trace: {len(events)} virtual-time events "
          f"(first at t={events[0]['t_s']:.1f} s, "
          f"last at t={events[-1]['t_s']:.1f} s)")

    print("\nprometheus exposition (excerpt):")
    lines = obs.metrics.to_prometheus().splitlines()
    for line in (l for l in lines if "packets_ingested" in l):
        print(f"  {line}")

    # --- 2. Sharded rerun: same canonical snapshot ----------------
    print(f"\nre-running sharded across {args.shards} worker "
          "processes ...")
    sharded = ShardedFleetRunner(
        cohort, n_shards=args.shards, config=config, node_config=node,
        gateway_config=gateway_cfg, obs_config=ObsConfig()).run()
    if sharded.canonical_obs_json() == obs.canonical_json():
        print(f"{args.shards}-shard canonical snapshot matches the "
              "in-process run byte for byte")
    else:
        raise SystemExit("canonical snapshots diverged!")

    # --- 3. Flight recorder: anomaly dump + offline replay --------
    with tempfile.TemporaryDirectory() as dump_dir:
        flight_obs = Observability(ObsConfig(flight_dump_dir=dump_dir))
        recorder_gw = Gateway(gateway_cfg, obs=flight_obs)
        # A few good frames populate the per-channel ring ...
        wire = Gateway(gateway_cfg)
        scheduler = FleetScheduler(
            cohort[:2],
            SchedulerConfig(duration_s=args.duration, fs=250.0,
                            wire_loopback=True),
            node_config=node, gateway=wire, obs=None)
        scheduler.run()
        # ... then a corrupt one trips the anomaly dump.
        flight_obs.set_virtual_time(args.duration)
        try:
            recorder_gw.ingest(b"\xde\xad\xbe\xef")
        except WireFormatError as err:
            print(f"\nflight recorder tripped on wire error: {err}")
        record = flight_obs.flight.anomalies[0]
        dump = load_flight_dump(record.path)
        print(f"flight dump written: kind={dump.kind} "
              f"subject={dump.subject} t={dump.t_s:.1f} s "
              f"({len(dump.packets())} frames captured)")

    print("\nreproduce this exact snapshot: same cohort seed -> "
          "byte-identical canonical metrics and traces")


if __name__ == "__main__":
    main()
