"""Tests for virtual-patient cohort generation."""

import numpy as np
import pytest

from repro.fleet import CohortConfig, PatientProfile, make_cohort, synthesize_patient


class TestMakeCohort:
    def test_deterministic_per_seed(self):
        a = make_cohort(CohortConfig(n_patients=20, seed=9))
        b = make_cohort(CohortConfig(n_patients=20, seed=9))
        assert a == b

    def test_different_seeds_differ(self):
        a = make_cohort(CohortConfig(n_patients=20, seed=9))
        b = make_cohort(CohortConfig(n_patients=20, seed=10))
        assert a != b

    def test_patient_seeds_unique(self):
        cohort = make_cohort(CohortConfig(n_patients=40, seed=1))
        seeds = [p.seed for p in cohort]
        assert len(set(seeds)) == len(seeds)

    def test_heterogeneous_population(self):
        cohort = make_cohort(CohortConfig(n_patients=60, seed=3))
        rhythms = {p.rhythm for p in cohort}
        assert {"nsr", "af"} <= rhythms
        assert {p.n_leads for p in cohort} == {1, 3}
        assert any(p.snr_db is None for p in cohort)       # clean nodes
        assert any(p.ambulatory for p in cohort)

    def test_shorthand_overrides(self):
        cohort = make_cohort(n_patients=5, seed=77)
        assert len(cohort) == 5
        assert cohort == make_cohort(CohortConfig(n_patients=5, seed=77))

    def test_rejects_bad_mix(self):
        with pytest.raises(ValueError, match="at most 1"):
            CohortConfig(af_fraction=0.5, paroxysmal_fraction=0.4,
                         ectopy_fraction=0.3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            CohortConfig(n_patients=0)


class TestPatientProfile:
    def test_rejects_unknown_rhythm(self):
        with pytest.raises(ValueError, match="rhythm"):
            PatientProfile(patient_id="x", rhythm="flutter")

    def test_rejects_bad_lead_count(self):
        with pytest.raises(ValueError, match="n_leads"):
            PatientProfile(patient_id="x", n_leads=5)

    def test_record_spec_maps_ectopy_to_nsr(self):
        profile = PatientProfile(patient_id="x", rhythm="ectopy",
                                 pvc_fraction=0.1, apc_fraction=0.05)
        spec = profile.record_spec(30.0)
        assert spec.rhythm == "nsr"
        assert spec.pvc_fraction == 0.1

    def test_record_spec_suppresses_ectopy_for_sinus(self):
        profile = PatientProfile(patient_id="x", rhythm="nsr",
                                 pvc_fraction=0.1)
        assert profile.record_spec(30.0).pvc_fraction == 0.0


class TestSynthesizePatient:
    def test_lead_counts(self):
        for n_leads in (1, 2, 3):
            profile = PatientProfile(patient_id="x", n_leads=n_leads, seed=5)
            record = synthesize_patient(profile, duration_s=10.0)
            assert record.n_leads == n_leads

    def test_lead_two_convention(self):
        # Lead index min(1, n_leads - 1) must be lead II for any count.
        for n_leads in (1, 2, 3):
            profile = PatientProfile(patient_id="x", n_leads=n_leads, seed=5)
            record = synthesize_patient(profile, duration_s=10.0)
            assert record.lead_names[min(1, n_leads - 1)] == "II"

    def test_subset_matches_full_record(self):
        profile3 = PatientProfile(patient_id="x", n_leads=3, seed=5)
        profile1 = PatientProfile(patient_id="x", n_leads=1, seed=5)
        full = synthesize_patient(profile3, duration_s=10.0)
        single = synthesize_patient(profile1, duration_s=10.0)
        np.testing.assert_array_equal(single.signals[0], full.signals[1])
        assert len(single.beats) == len(full.beats)

    def test_deterministic(self):
        profile = PatientProfile(patient_id="x", seed=8)
        a = synthesize_patient(profile, duration_s=10.0)
        b = synthesize_patient(profile, duration_s=10.0)
        np.testing.assert_array_equal(a.signals, b.signals)
