"""Unit tests for repro.delineation.rpeak (Pan-Tompkins detector)."""

import numpy as np
import pytest

from repro.delineation import RPeakConfig, RPeakDetector, detect_r_peaks


def _match_stats(detected, truth, fs, tol_s=0.05):
    tol = int(tol_s * fs)
    tp = sum(1 for t in truth if np.any(np.abs(detected - t) <= tol))
    se = tp / len(truth) if len(truth) else 1.0
    ppv = tp / len(detected) if len(detected) else 1.0
    return se, ppv


class TestDetection:
    def test_clean_record(self, nsr_record):
        ecg = nsr_record.lead(1)
        detected = RPeakDetector(ecg.fs).detect(ecg.signal)
        se, ppv = _match_stats(detected, ecg.r_peaks, ecg.fs)
        assert se >= 0.99 and ppv >= 0.99

    def test_noisy_record(self, noisy_record):
        ecg = noisy_record.lead(1)
        detected = RPeakDetector(ecg.fs).detect(ecg.signal)
        se, ppv = _match_stats(detected, ecg.r_peaks, ecg.fs)
        assert se >= 0.95 and ppv >= 0.95

    def test_af_record(self, af_record):
        ecg = af_record.lead(1)
        detected = RPeakDetector(ecg.fs).detect(ecg.signal)
        se, ppv = _match_stats(detected, ecg.r_peaks, ecg.fs)
        assert se >= 0.95 and ppv >= 0.95

    def test_ectopy_record(self, ectopy_record):
        ecg = ectopy_record.lead(1)
        detected = RPeakDetector(ecg.fs).detect(ecg.signal)
        se, ppv = _match_stats(detected, ecg.r_peaks, ecg.fs)
        assert se >= 0.95 and ppv >= 0.95

    def test_timing_accuracy_on_clean_data(self, nsr_record):
        ecg = nsr_record.lead(1)
        detected = RPeakDetector(ecg.fs).detect(ecg.signal)
        errors = [np.min(np.abs(detected - t)) for t in ecg.r_peaks]
        assert np.mean(errors) / ecg.fs < 0.008  # < 8 ms mean error

    def test_respects_refractory_period(self, noisy_record):
        ecg = noisy_record.lead(1)
        detector = RPeakDetector(ecg.fs)
        detected = detector.detect(ecg.signal)
        spacing = np.diff(detected)
        assert np.all(spacing >= int(0.2 * ecg.fs))


class TestEdgeCases:
    def test_short_signal_returns_empty(self):
        detector = RPeakDetector(250.0)
        assert detector.detect(np.zeros(50)).size == 0

    def test_flat_signal(self):
        detector = RPeakDetector(250.0)
        detected = detector.detect(np.zeros(5000))
        assert detected.size <= 2  # numeric noise may fake <= O(1) peaks

    def test_invalid_fs(self):
        with pytest.raises(ValueError, match="positive"):
            RPeakDetector(-1.0)

    def test_wrapper_matches_detector(self, nsr_record):
        ecg = nsr_record.lead(1)
        a = detect_r_peaks(ecg)
        b = RPeakDetector(ecg.fs).detect(ecg.signal)
        assert np.array_equal(a, b)

    def test_custom_config(self, nsr_record):
        ecg = nsr_record.lead(1)
        config = RPeakConfig(refractory_s=0.3)
        detected = RPeakDetector(ecg.fs, config).detect(ecg.signal)
        assert np.all(np.diff(detected) >= int(0.3 * ecg.fs))

    def test_feature_signal_shapes(self, nsr_record):
        ecg = nsr_record.lead(1)
        bandpassed, integrated = RPeakDetector(ecg.fs).feature_signal(
            ecg.signal)
        assert bandpassed.shape == ecg.signal.shape
        assert integrated.shape == ecg.signal.shape
        assert np.all(integrated >= 0)
