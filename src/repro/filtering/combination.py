"""Multi-lead source combination (ref [11]).

Braojos et al. (BIBE 2012) show that combining several ECG leads before
delineation reduces the effect of noise, and that a simple root-mean-square
(RMS) aggregation is a light-weight yet effective strategy on the node.
The RMS signal is non-negative with strongly emphasized QRS complexes,
which also benefits the R-peak detector.
"""

from __future__ import annotations

import numpy as np

from ..signals.types import EcgRecord, MultiLeadEcg


def rms_combine(signals: np.ndarray) -> np.ndarray:
    """Sample-wise RMS across leads.

    Args:
        signals: Array of shape ``(n_leads, n_samples)``.

    Returns:
        1-D array of length ``n_samples``.
    """
    signals = np.atleast_2d(np.asarray(signals, dtype=float))
    return np.sqrt(np.mean(signals ** 2, axis=0))


def mean_combine(signals: np.ndarray) -> np.ndarray:
    """Sample-wise arithmetic mean across leads (baseline alternative).

    Unlike RMS, averaging preserves polarity but can cancel waves whose
    projections have opposite signs on different leads; the comparison is
    exercised in the tests.
    """
    signals = np.atleast_2d(np.asarray(signals, dtype=float))
    return np.mean(signals, axis=0)


def combine_leads(record: MultiLeadEcg, method: str = "rms",
                  center: bool = True) -> EcgRecord:
    """Combine a multi-lead record into a single-lead record.

    Args:
        record: Input multi-lead record.
        method: ``"rms"`` (the paper's choice) or ``"mean"``.
        center: Remove each lead's median before combining.  RMS of
            signals with a DC offset inflates the floor, so centring is
            the sensible default on conditioned signals.

    Returns:
        A single-lead :class:`~repro.signals.types.EcgRecord` carrying the
        same beat annotations (wave timing is lead-independent).

    Raises:
        ValueError: For an unknown ``method``.
    """
    signals = record.signals
    if center:
        signals = signals - np.median(signals, axis=1, keepdims=True)
    if method == "rms":
        combined = rms_combine(signals)
    elif method == "mean":
        combined = mean_combine(signals)
    else:
        raise ValueError(f"unknown combination method {method!r}")
    return EcgRecord(record.fs, combined, list(record.beats),
                     name=f"{record.name}/{method}")
