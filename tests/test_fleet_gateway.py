"""Tests for gateway ingest, reconstruction and alarm confirmation."""

import numpy as np
import pytest

from repro.fleet import (
    Gateway,
    GatewayConfig,
    NodeProxy,
    NodeProxyConfig,
    PatientProfile,
    synthesize_patient,
)

PROXY_CONFIG = NodeProxyConfig(stream_telemetry=False)


@pytest.fixture(scope="module")
def clean_af_uplink(trained_af_detector):
    """(report, packets) of a clean persistent-AF patient."""
    profile = PatientProfile(patient_id="afc", rhythm="af", snr_db=None,
                             seed=42)
    record = synthesize_patient(profile, duration_s=120.0)
    proxy = NodeProxy(profile, PROXY_CONFIG,
                      af_detector=trained_af_detector)
    return proxy.run(record)


class TestQueue:
    def test_bounded_queue_drops_and_counts(self, clean_af_uplink):
        _, packets = clean_af_uplink
        gateway = Gateway(GatewayConfig(queue_capacity=1))
        assert gateway.ingest(packets[0]) is True
        assert gateway.ingest(packets[1]) is False
        assert gateway.dropped == 1
        assert gateway.pending == 1

    def test_drain_budget(self, clean_af_uplink):
        _, packets = clean_af_uplink
        gateway = Gateway()
        for packet in packets:
            gateway.ingest(packet)
        first = gateway.drain(max_packets=1)
        assert len(first) == 1
        assert gateway.pending == len(packets) - 1
        rest = gateway.drain()
        assert len(rest) == len(packets) - 1
        assert gateway.pending == 0


class TestReconstruction:
    def test_clean_excerpts_reconstruct_well(self, clean_af_uplink):
        _, packets = clean_af_uplink
        gateway = Gateway()
        for packet in packets:
            gateway.ingest(packet)
        excerpts = gateway.drain()
        snrs = [e.snr_db for e in excerpts if np.isfinite(e.snr_db)]
        assert snrs
        # CR 60 % on clean signals: comfortably useful reconstructions.
        assert np.mean(snrs) > 12.0

    def test_signal_shape(self, clean_af_uplink):
        _, packets = clean_af_uplink
        gateway = Gateway()
        gateway.ingest(packets[0])
        excerpt = gateway.drain()[0]
        assert excerpt.signal.shape == (packets[0].n_leads,
                                        packets[0].span_samples)

    def test_demux_into_channels(self, clean_af_uplink):
        report, packets = clean_af_uplink
        gateway = Gateway()
        for packet in packets:
            gateway.ingest(packet)
        gateway.drain()
        channel = gateway.channels["afc"]
        n_alarm = sum(1 for p in packets if p.kind == "alarm")
        assert channel.n_alarms == n_alarm == len(report.alarms)
        assert channel.n_excerpts == len(packets) - n_alarm
        assert channel.payload_bits == sum(p.payload_bits for p in packets)
        assert np.isfinite(channel.mean_snr_db)

    def test_decoder_cache_reused(self, clean_af_uplink):
        _, packets = clean_af_uplink
        gateway = Gateway()
        for packet in packets:
            gateway.ingest(packet)
        gateway.drain()
        assert len(gateway._decoders) == 1  # one geometry in this uplink


class TestAlarmConfirmation:
    def test_no_false_drops_on_clean_af(self, clean_af_uplink):
        # Acceptance criterion: gateway-confirmed alarms match node-raised
        # AF alarms on clean signals.
        report, packets = clean_af_uplink
        gateway = Gateway()
        for packet in packets:
            gateway.ingest(packet)
        excerpts = gateway.drain()
        alarms = [e for e in excerpts if e.kind == "alarm"]
        assert len(alarms) == len(report.alarms) >= 1
        assert all(e.confirmed for e in alarms)
        assert gateway.channels["afc"].n_confirmed == len(report.alarms)

    def test_regular_rhythm_alarm_refuted(self):
        # A fabricated alarm on clean sinus rhythm must be downgraded.
        profile = PatientProfile(patient_id="nsrf", rhythm="nsr",
                                 snr_db=None, seed=43)
        record = synthesize_patient(profile, duration_s=60.0)
        proxy = NodeProxy(profile, PROXY_CONFIG)
        proxy._fs = record.fs
        packet = proxy.alarm_packet(record, alarm_start=1000)
        gateway = Gateway()
        gateway.ingest(packet)
        excerpt = gateway.drain()[0]
        assert excerpt.confirmed is False

    def test_confirmation_can_be_disabled(self, clean_af_uplink):
        _, packets = clean_af_uplink
        gateway = Gateway(GatewayConfig(confirm_alarms=False))
        for packet in packets:
            gateway.ingest(packet)
        alarms = [e for e in gateway.drain() if e.kind == "alarm"]
        assert all(e.confirmed for e in alarms)

    def test_insufficient_beats_keeps_alarm(self):
        # Too little reconstructed evidence: never overrule the node.
        gateway = Gateway()
        flat = np.zeros((3, 512))
        assert gateway._confirm(flat, fs=250.0) is True


class TestBatchedDrain:
    """drain() batches FISTA by geometry; outputs must match the
    one-packet-at-a-time path."""

    def test_full_drain_equals_budgeted_drain(self, clean_af_uplink):
        _, packets = clean_af_uplink
        batched = Gateway(GatewayConfig(n_iter=60))
        stepwise = Gateway(GatewayConfig(n_iter=60))
        for gateway in (batched, stepwise):
            for packet in packets:
                gateway.ingest(packet)
        all_at_once = batched.drain()
        one_by_one = []
        while stepwise.pending:
            one_by_one.extend(stepwise.drain(1))
        assert len(all_at_once) == len(one_by_one) == len(packets)
        for a, b in zip(all_at_once, one_by_one):
            assert a.patient_id == b.patient_id
            assert a.kind == b.kind
            assert a.confirmed == b.confirmed
            assert np.allclose(a.signal, b.signal, rtol=1e-9, atol=1e-12)
