"""Replay-equivalence harness: journals must reproduce live runs.

The repo-wide oracle this PR adds: a `JournalReplayer` run over the
journal of a live fleet run produces a `FleetSummary.to_json()` that is
byte-identical to the live run's — for the plain in-process engine, a
governed + impaired scenario run, a real-socket served run, and an
N-shard run whose per-shard journals are merged back into the kernel's
total event order.
"""

from __future__ import annotations

import functools

import pytest

from repro.fleet import (
    CohortConfig,
    FleetGatewayServer,
    FleetScheduler,
    Gateway,
    GatewayConfig,
    JournalConfig,
    JournalError,
    JournalReader,
    JournalReplayer,
    JournalWriter,
    NodeProxy,
    NodeProxyConfig,
    PatientProfile,
    PerPatientLink,
    SchedulerConfig,
    ServeConfig,
    ServeMessage,
    ShardHooks,
    ShardedFleetRunner,
    frame_kind,
    journal_meta,
    make_cohort,
    run_served_fleet,
)
from repro.fleet.client import _Transport
from repro.power import Battery, BatteryModel
from repro.power.governor import (
    EnergyGovernor,
    GovernorConfig,
    ModePowerTable,
)
from repro.scenarios import LinkSpec, derive_seed
from repro.scenarios.channel import ImpairedLink

COHORT = make_cohort(CohortConfig(n_patients=4, seed=7))
RUN_KW = dict(
    config=SchedulerConfig(duration_s=60.0, fs=250.0),
    node_config=NodeProxyConfig(stream_telemetry=False),
    gateway_config=GatewayConfig(n_iter=40),
)


def _impaired_governed_hooks(spec: LinkSpec, profiles,
                             master_seed: int) -> ShardHooks:
    """Scenario wiring mirroring `tests/test_fleet_serve.py`."""

    def link_for(patient_id: str):
        return ImpairedLink(spec, seed=derive_seed(master_seed, "link",
                                                   patient_id))

    def factory(profile):
        frac = derive_seed(master_seed, "soc",
                           profile.patient_id) % 1000 / 1000.0
        return EnergyGovernor(
            config=GovernorConfig(min_dwell_s=0.0),
            table=ModePowerTable(),
            battery=BatteryModel(cell=Battery(capacity_mah=0.05),
                                 soc=max(0.05, 0.9 - 0.5 * frac)))

    return ShardHooks(link=PerPatientLink(link_for),
                      governor_factory=factory)


class TestInProcessReplay:
    def test_plain_run_replays_byte_identical(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="plain")
        journal = JournalWriter(
            config,
            meta=journal_meta(RUN_KW["config"].duration_s,
                              RUN_KW["config"].fs,
                              RUN_KW["gateway_config"]),
            resume=False)
        try:
            live = FleetScheduler(
                COHORT, RUN_KW["config"],
                node_config=RUN_KW["node_config"],
                gateway=Gateway(RUN_KW["gateway_config"]),
                journal=journal).run()
        finally:
            journal.close()
        replay = JournalReplayer(config).run()
        assert replay.summary.to_json() == live.summary.to_json()
        assert replay.packets_sent == live.packets_sent
        assert replay.n_packets > 0
        assert replay.n_journals == 1
        assert replay.torn_tail_bytes == 0
        assert list(replay.rows) == [p.patient_id for p in COHORT]
        assert set(replay.timings_s) == {"replay", "merge", "total"}

    def test_journaled_run_summary_unchanged_by_journaling(self,
                                                           tmp_path):
        """Attaching a journal must not perturb the run itself."""
        reference = FleetScheduler(
            COHORT, RUN_KW["config"],
            node_config=RUN_KW["node_config"],
            gateway=Gateway(RUN_KW["gateway_config"])).run()
        config = JournalConfig(dir=str(tmp_path), name="tax")
        with JournalWriter(config, resume=False) as journal:
            journaled = FleetScheduler(
                COHORT, RUN_KW["config"],
                node_config=RUN_KW["node_config"],
                gateway=Gateway(RUN_KW["gateway_config"]),
                journal=journal).run()
        assert journaled.summary.to_json() == reference.summary.to_json()

    def test_governed_impaired_replays_byte_identical(self, tmp_path):
        spec = LinkSpec(loss_rate=0.15, duplicate_rate=0.1,
                        reorder_rate=0.2, jitter_s=2.0,
                        reorder_delay_s=65.0)
        config = JournalConfig(dir=str(tmp_path), name="governed")
        live = ShardedFleetRunner(
            COHORT, n_shards=1, master_seed=99,
            hook_factory=functools.partial(_impaired_governed_hooks,
                                           spec),
            journal=config, **RUN_KW).run()
        replay = JournalReplayer(config.for_shard(0)).run()
        assert replay.summary.to_json() == live.summary.to_json()
        assert replay.summary.governed
        assert any(row.link_stats for row in replay.rows.values())
        assert replay.link_stats  # folded from the shard stats record


class TestShardedReplay:
    def test_four_shard_journals_merge_byte_identical(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="shards")
        live = ShardedFleetRunner(COHORT, n_shards=4, journal=config,
                                  **RUN_KW).run()
        sources = [config.for_shard(i) for i in range(4)]
        replay = JournalReplayer(sources).run()
        assert replay.summary.to_json() == live.summary.to_json()
        assert replay.n_journals == 4
        # Hello records restore the cohort order across shard stripes.
        assert list(replay.rows) == [p.patient_id for p in COHORT]

    def test_shard_subset_is_an_incomplete_cohort(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="subset")
        ShardedFleetRunner(COHORT, n_shards=2, journal=config,
                           **RUN_KW).run()
        replay = JournalReplayer(config.for_shard(0)).run()
        # Half the cohort replays fine — as its own, smaller fleet.
        assert replay.summary.n_patients == 2


class TestServedReplay:
    def test_served_journal_replays_byte_identical(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="served")
        served = run_served_fleet(
            COHORT, serve_config=ServeConfig(journal=config), **RUN_KW)
        replay = JournalReplayer(
            config, cohort=COHORT,
            gateway_config=RUN_KW["gateway_config"],
            duration_s=RUN_KW["config"].duration_s,
            fs=RUN_KW["config"].fs).run()
        assert replay.summary.to_json() == served.summary.to_json()
        # Every uplinked packet frame was journaled exactly once.
        assert replay.n_packets == served.packets_sent
        assert served.server_stats["journal"]["packets"] \
            == served.packets_sent

    def test_served_journal_requires_explicit_cohort(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="nocohort")
        run_served_fleet(COHORT[:2],
                         serve_config=ServeConfig(journal=config),
                         **RUN_KW)
        with pytest.raises(JournalError, match="hello"):
            JournalReplayer(
                config, gateway_config=RUN_KW["gateway_config"],
                duration_s=60.0, fs=250.0).run()


class TestServedSoak:
    """Satellite: session resumes never double-log a frame."""

    N_RECONNECTS = 1000

    def test_thousand_reconnects_log_each_frame_once(self, tmp_path):
        config = JournalConfig(dir=str(tmp_path), name="soak")
        proxy = NodeProxy(PatientProfile(patient_id="soak0", seed=5),
                          NodeProxyConfig(stream_telemetry=False))
        frames = [proxy.telemetry_packet(float(i), mean_hr_bpm=65.0,
                                         soc=0.5).to_bytes()
                  for i in range(self.N_RECONNECTS)]
        with FleetGatewayServer(
                ServeConfig(journal=config)) as server:
            for i, frame in enumerate(frames):
                transport = self._hello(server, "soak0")
                transport.send_frame(frame)
                # A sweep reply proves the packet frame was consumed
                # before we disconnect (frames are in-order per lane).
                transport.send_message(ServeMessage(
                    "sweep", "soak0", t_s=float(i + 1)))
                assert transport.recv_message().kind == "feedback"
                transport.send_message(ServeMessage("bye", "soak0"))
                transport.close()
            stats = server.stats()
        assert stats["connections"]["resumed"] == self.N_RECONNECTS - 1
        assert stats["journal"]["packets"] == self.N_RECONNECTS
        assert stats["max_partial_bytes"] >= 0
        reader = JournalReader(config)
        packet_frames = [r.frame for r in reader.records()
                         if frame_kind(r.frame) == "packet"]
        # No frame double-logged across the session resumes — the
        # journal holds each uplinked packet exactly once, in order.
        assert packet_frames == frames
        assert reader.torn_tail_bytes == 0

    @staticmethod
    def _hello(server: FleetGatewayServer, pid: str) -> _Transport:
        """Handshake with retry: the previous connection of ``pid`` may
        still be deregistering when we reconnect."""
        last: Exception | None = None
        for _ in range(200):
            transport = _Transport("127.0.0.1", server.port)
            transport.send_message(ServeMessage("hello", pid))
            try:
                ack = transport.recv_message()
            except Exception as exc:  # rejected duplicate: retry
                last = exc
                transport.close()
                continue
            if ack.kind == "hello-ack":
                return transport
            transport.close()
        raise AssertionError(f"handshake never succeeded: {last}")
