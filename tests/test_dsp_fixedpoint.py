"""Unit + property tests for repro.dsp.fixedpoint."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp import Q15, QFormat, SAMPLE_Q, fixed_point_fir, quantization_snr_db


class TestQFormat:
    def test_basic_properties(self):
        fmt = QFormat(16, 8)
        assert fmt.scale == 256
        assert fmt.max_raw == 32767
        assert fmt.min_raw == -32768
        assert fmt.resolution == pytest.approx(1.0 / 256)

    def test_invalid_formats(self):
        with pytest.raises(ValueError):
            QFormat(1, 0)
        with pytest.raises(ValueError):
            QFormat(16, 16)

    @settings(max_examples=60, deadline=None)
    @given(x=st.floats(min_value=-100.0, max_value=100.0,
                       allow_nan=False))
    def test_roundtrip_error_bounded(self, x):
        fmt = QFormat(16, 8)
        clipped = np.clip(x, fmt.min_value, fmt.max_value)
        back = fmt.roundtrip(x)
        assert abs(back - clipped) <= fmt.resolution / 2 + 1e-12

    def test_saturation_on_overflow(self):
        fmt = QFormat(16, 8)
        assert fmt.quantize(1e6) == fmt.max_raw
        assert fmt.quantize(-1e6) == fmt.min_raw

    def test_saturating_add(self):
        fmt = QFormat(8, 0)
        assert fmt.saturating_add(100, 100) == 127
        assert fmt.saturating_add(-100, -100) == -128
        assert fmt.saturating_add(10, 20) == 30

    def test_multiply_matches_float(self):
        fmt = QFormat(16, 10)
        a, b = 1.5, -2.25
        raw = fmt.multiply(fmt.quantize(a), fmt.quantize(b))
        assert fmt.to_real(raw) == pytest.approx(a * b, abs=2 * fmt.resolution)

    def test_multiply_saturates(self):
        fmt = QFormat(16, 10)
        big = fmt.quantize(fmt.max_value)
        assert fmt.multiply(big, big) == fmt.max_raw


class TestQuantizationSnr:
    def test_snr_improves_with_more_bits(self, rng):
        x = rng.uniform(-1, 1, 4000)
        low = quantization_snr_db(x, QFormat(16, 6))
        high = quantization_snr_db(x, QFormat(16, 12))
        assert high > low + 30  # ~6 dB per bit

    def test_exact_representation_is_infinite(self):
        fmt = QFormat(16, 8)
        x = np.array([1.0, 0.5, -0.25])
        assert quantization_snr_db(x, fmt) == np.inf


class TestFixedPointFir:
    def test_matches_float_reference(self, rng):
        x = 0.5 * np.sin(np.linspace(0, 12 * np.pi, 400))
        taps = np.array([0.125, 0.375, 0.375, 0.125])
        fixed = fixed_point_fir(x, taps)
        reference = np.convolve(x, taps)[:x.shape[0]]
        error = np.max(np.abs(fixed - reference))
        assert error < 4 * SAMPLE_Q.resolution

    def test_spline_taps_representable_in_q15(self):
        taps = np.array([0.125, 0.375, 0.375, 0.125])
        assert np.allclose(Q15.roundtrip(taps), taps)

    def test_impulse_response(self):
        x = np.zeros(16)
        x[0] = 1.0
        taps = np.array([0.25, 0.5, 0.25])
        out = fixed_point_fir(x, taps)
        assert np.allclose(out[:3], taps, atol=2 * SAMPLE_Q.resolution)
