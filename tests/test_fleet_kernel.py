"""Tests for the event-heap simulation kernel (`repro.fleet.kernel`).

Three layers:

* kernel unit tests — the ``(t_s, priority, subject, seq)`` total
  order, scheduling validation, bounded runs;
* a fuzzed total-order property over real governed + impaired fleet
  runs (no two events may ever share an ordering key);
* the façade equivalence contract — the kernel engines must reproduce
  the legacy tick loop byte for byte: plain, governed + impaired +
  wire-loopback, sharded, campaign-level, and with uniform per-node
  period overrides.
"""

from __future__ import annotations

import functools
import json

import numpy as np
import pytest

from repro.fleet import (
    CohortConfig,
    EventKernel,
    FleetScheduler,
    Gateway,
    GatewayConfig,
    KernelError,
    NodeProxyConfig,
    PRIORITIES,
    PatientProfile,
    PerPatientLink,
    SchedulerConfig,
    ShardHooks,
    ShardedFleetRunner,
    make_cohort,
)
from repro.fleet.kernel import (
    PRIO_DELIVERY,
    PRIO_GOVERNOR,
    PRIO_TRIAGE,
    PRIO_UPLINK,
)
from repro.obs import Observability, ObsConfig
from repro.power import (
    Battery,
    BatteryModel,
    EnergyGovernor,
    GovernorConfig,
    ModePowerTable,
)
from repro.scenarios import LinkSpec, derive_seed
from repro.scenarios.channel import ImpairedLink

FAST_NODE = NodeProxyConfig(stream_telemetry=False)


class TestEventKernelUnit:
    def test_fires_in_total_key_order(self):
        kernel = EventKernel(record_keys=True)
        fired: list[str] = []
        # Scheduled deliberately out of order on every key component.
        kernel.schedule(20.0, PRIO_UPLINK, "b-up",
                        lambda: fired.append("b-up"), subject="b")
        kernel.schedule(10.0, PRIO_TRIAGE, "sweep",
                        lambda: fired.append("sweep"))
        kernel.schedule(10.0, PRIO_GOVERNOR, "b-gov",
                        lambda: fired.append("b-gov"), subject="b")
        kernel.schedule(10.0, PRIO_GOVERNOR, "a-gov",
                        lambda: fired.append("a-gov"), subject="a")
        kernel.schedule(10.0, PRIO_GOVERNOR, "a-gov2",
                        lambda: fired.append("a-gov2"), subject="a")
        assert kernel.run() == 5
        assert fired == ["a-gov", "a-gov2", "b-gov", "sweep", "b-up"]
        assert kernel.processed_keys == sorted(kernel.processed_keys)
        assert kernel.now_s == 20.0

    def test_actions_may_schedule_followups(self):
        kernel = EventKernel()
        fired: list[str] = []

        def first():
            fired.append("first")
            # Same-instant follow-up at a later priority still fires
            # this run, in its proper slot.
            kernel.schedule(kernel.now_s, PRIO_DELIVERY, "mid",
                            lambda: fired.append("mid"), subject="p")
            kernel.schedule(kernel.now_s + 5.0, PRIO_UPLINK, "next",
                            lambda: fired.append("next"), subject="p")

        kernel.schedule(1.0, PRIO_UPLINK, "first", first, subject="p")
        kernel.schedule(1.0, PRIO_TRIAGE, "sweep",
                        lambda: fired.append("sweep"))
        kernel.run()
        assert fired == ["first", "mid", "sweep", "next"]

    def test_run_until_leaves_later_events_pending(self):
        kernel = EventKernel()
        fired: list[float] = []
        for t in (1.0, 2.0, 3.0):
            kernel.schedule(t, PRIO_TRIAGE, "e",
                            lambda t=t: fired.append(t))
        assert kernel.run(until_s=2.0) == 2
        assert fired == [1.0, 2.0]
        assert len(kernel) == 1
        assert kernel.peek_s() == 3.0
        assert kernel.run() == 1
        assert kernel.peek_s() is None

    def test_time_travel_rejected(self):
        kernel = EventKernel()
        kernel.schedule(10.0, PRIO_TRIAGE, "later", lambda: None)
        kernel.run()
        with pytest.raises(KernelError, match="time travel"):
            kernel.schedule(5.0, PRIO_TRIAGE, "past", lambda: None)

    @pytest.mark.parametrize("bad_t", [float("nan"), float("inf")])
    def test_non_finite_time_rejected(self, bad_t):
        with pytest.raises(KernelError, match="finite"):
            EventKernel().schedule(bad_t, PRIO_TRIAGE, "e", lambda: None)

    def test_unknown_priority_rejected(self):
        with pytest.raises(KernelError, match="priority"):
            EventKernel().schedule(0.0, 99, "e", lambda: None)

    def test_stats_counts_by_name(self):
        kernel = EventKernel()
        for i in range(3):
            kernel.schedule(float(i), PRIO_TRIAGE, "sweep", lambda: None)
        kernel.schedule(0.5, PRIO_UPLINK, "up", lambda: None, subject="p")
        kernel.run()
        stats = kernel.stats()
        assert stats["n_scheduled"] == stats["n_processed"] == 4
        assert stats["pending"] == 0
        assert stats["by_name"] == {"sweep": 3, "up": 1}

    def test_priorities_cover_the_phase_ladder(self):
        assert list(PRIORITIES) == sorted(PRIORITIES)
        assert len(set(PRIORITIES)) == len(PRIORITIES) == 8


def _impaired_link_for(spec: LinkSpec, master_seed: int):
    """Per-patient impaired-link router seeded like the shard path."""
    return PerPatientLink(lambda pid: ImpairedLink(
        spec, seed=derive_seed(master_seed, "link", pid)))


def _governor_factory(master_seed: int):
    def factory(profile: PatientProfile) -> EnergyGovernor:
        frac = derive_seed(master_seed, "soc",
                           profile.patient_id) % 1000 / 1000.0
        return EnergyGovernor(
            config=GovernorConfig(min_dwell_s=0.0),
            table=ModePowerTable(),
            battery=BatteryModel(cell=Battery(capacity_mah=0.05),
                                 soc=max(0.05, 0.9 - 0.5 * frac)))

    return factory


def _excerpt_rows(report) -> list[tuple]:
    """Exact (not approximate) per-excerpt content rows."""
    return [
        (e.patient_id, e.kind, e.confirmed,
         e.signal.tobytes() if getattr(e, "signal", None) is not None
         else b"")
        for e in report.excerpts]


def _report_fingerprint(report) -> tuple:
    """The full deterministic surface of one fleet run.

    Summary JSON is the headline contract; the excerpt stream and
    per-patient packet counts catch order/content drift the aggregates
    could mask.  Signals are compared exactly (byte-identical claim,
    not approximate).
    """
    return (report.summary.to_json(), report.packets_sent,
            len(report.excerpts), tuple(_excerpt_rows(report)))


def _run(engine: str, cohort, duration_s=120.0, obs=None, **kwargs):
    scheduler = FleetScheduler(
        cohort,
        SchedulerConfig(duration_s=duration_s, engine=engine,
                        **kwargs.pop("config_kw", {})),
        node_config=kwargs.pop("node_config", FAST_NODE),
        obs=obs,
        **kwargs)
    return scheduler.run()


class TestLockstepFacadeEquivalence:
    """engine="kernel" must replay engine="ticks" byte for byte."""

    def test_plain_run_byte_identical(self):
        cohort = make_cohort(CohortConfig(n_patients=4, seed=5))
        ticks = _run("ticks", cohort)
        kernel = _run("kernel", cohort)
        assert _report_fingerprint(kernel) == _report_fingerprint(ticks)
        assert kernel.kernel_stats["engine"] == "kernel-lockstep"
        assert kernel.kernel_stats["n_events"] > 0
        assert ticks.kernel_stats == {
            "engine": "ticks", "n_events": 0,
            "tick_loop_iterations":
                kernel.kernel_stats["tick_loop_iterations"]}

    def test_governed_impaired_wire_loopback_byte_identical(self):
        # The hardest lockstep case: governor feedback, lossy jittered
        # per-patient links, wire codec round trip and a finite drain
        # budget all at once.
        cohort = make_cohort(CohortConfig(n_patients=4, seed=9))
        spec = LinkSpec(loss_rate=0.15, duplicate_rate=0.1,
                        reorder_rate=0.2, jitter_s=2.0,
                        reorder_delay_s=65.0)
        reports = [
            _run(engine, cohort,
                 config_kw=dict(wire_loopback=True, drain_per_tick=3),
                 link=_impaired_link_for(spec, 99),
                 governor_factory=_governor_factory(99),
                 gateway=Gateway(GatewayConfig(n_iter=50)))
            for engine in ("ticks", "kernel")]
        assert _report_fingerprint(reports[0]) \
            == _report_fingerprint(reports[1])
        assert reports[0].summary.governed
        assert reports[0].link_stats  # impairments actually happened

    def test_canonical_obs_trace_byte_identical(self):
        # The kernel stamps obs virtual time per event; the canonical
        # (fleet-scope) stream re-sorted by (t_s, subject, seq) must be
        # byte-equal to the tick loop's.
        cohort = make_cohort(CohortConfig(n_patients=3, seed=7))
        streams = []
        for engine in ("ticks", "kernel"):
            obs = Observability(ObsConfig())
            _run(engine, cohort, obs=obs,
                 gateway=Gateway(GatewayConfig(n_iter=50), obs=obs))
            streams.append(obs.canonical_json())
        assert streams[0] == streams[1]

    def test_four_shard_kernel_byte_identical_to_inline_ticks(self):
        # Acceptance: plain tick loop == kernel façade == 4-shard run.
        cohort = make_cohort(CohortConfig(n_patients=5, seed=7))
        ticks = _run("ticks", cohort, duration_s=60.0,
                     gateway=Gateway(GatewayConfig(n_iter=50)))
        sharded = ShardedFleetRunner(
            cohort, n_shards=4,
            config=SchedulerConfig(duration_s=60.0, engine="kernel"),
            node_config=FAST_NODE,
            gateway_config=GatewayConfig(n_iter=50)).run()
        assert sharded.summary.to_json() == ticks.summary.to_json()
        assert sharded.packets_sent == ticks.packets_sent

    def test_uniform_overrides_byte_identical_to_ticks(self):
        # Every node overridden to the base period: the per-node event
        # engine must still match the tick loop exactly (same uplink
        # instants, batch-of-1 encoding vs fleet-batched encoding).
        from dataclasses import replace

        base = make_cohort(CohortConfig(n_patients=4, seed=5))
        period = FAST_NODE.excerpt_period_s
        overridden = [replace(p, uplink_period_s=period) for p in base]
        spec = LinkSpec(loss_rate=0.1, duplicate_rate=0.05,
                        reorder_rate=0.1, jitter_s=5.0)
        ticks = _run("ticks", base, duration_s=120.0,
                     link=_impaired_link_for(spec, 42),
                     gateway=Gateway(GatewayConfig(n_iter=50)))
        events = _run("kernel", overridden, duration_s=120.0,
                      link=_impaired_link_for(spec, 42),
                      gateway=Gateway(GatewayConfig(n_iter=50)))
        # Summary bytes and excerpt *content* must match exactly.  The
        # excerpt processing order legitimately differs: the event
        # engine ingests jittered copies at their exact delivery
        # instants, the tick loop only at the next tick boundary — same
        # packets, same reconstructions, different drain interleaving.
        assert events.summary.to_json() == ticks.summary.to_json()
        assert events.packets_sent == ticks.packets_sent
        assert sorted(_excerpt_rows(events)) == sorted(_excerpt_rows(ticks))
        assert events.kernel_stats["engine"] == "kernel-events"
        assert events.kernel_stats["by_name"].get("link.delivery", 0) > 0


class TestSparseCohortEvents:
    def test_event_count_beats_tick_iterations(self):
        # 90 % delineation-only nodes uplinking at 10x the base period:
        # the kernel must visit them only when they uplink, making the
        # event count a small fraction of cohort x ticks.
        from dataclasses import replace

        base = make_cohort(CohortConfig(n_patients=10, seed=3))
        period = FAST_NODE.excerpt_period_s  # 60 s
        cohort = [p if i == 0
                  else replace(p, uplink_period_s=period * 10)
                  for i, p in enumerate(base)]
        report = _run("kernel", cohort, duration_s=period * 10)
        stats = report.kernel_stats
        assert stats["engine"] == "kernel-events"
        assert stats["tick_loop_iterations"] == 10 * 10
        assert stats["n_events"] * 2 < stats["tick_loop_iterations"]
        # Sparse nodes still uplinked (once) and were not flagged stale:
        # staleness scales with the node's own expected period.
        assert report.summary.stale_patients == 0
        assert report.packets_sent >= len(cohort)

    def test_overrides_on_ticks_engine_rejected(self):
        from dataclasses import replace

        cohort = [replace(p, uplink_period_s=600.0)
                  for p in make_cohort(CohortConfig(n_patients=2,
                                                    seed=3))]
        with pytest.raises(ValueError, match="event kernel"):
            FleetScheduler(cohort,
                           SchedulerConfig(engine="ticks"),
                           node_config=FAST_NODE)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            FleetScheduler(make_cohort(CohortConfig(n_patients=1)),
                           SchedulerConfig(engine="warp"))


class _RecordingKernel(EventKernel):
    """EventKernel that always records its processed keys."""

    instances: list["_RecordingKernel"] = []

    def __init__(self, record_keys: bool = False) -> None:
        super().__init__(record_keys=True)
        _RecordingKernel.instances.append(self)


class TestTotalOrderProperty:
    def test_fuzzed_fleet_runs_never_collide_keys(self, monkeypatch):
        # Property: across fuzzed governed + impaired fleet runs, the
        # kernel processes a strictly increasing sequence of ordering
        # keys — no duplicates (a duplicate key would leave the firing
        # order to heap internals) and no order violations.
        import repro.fleet.scheduler as sched_mod

        monkeypatch.setattr(sched_mod, "EventKernel", _RecordingKernel)
        rng = np.random.default_rng(17)
        for trial in range(4):
            _RecordingKernel.instances.clear()
            n = int(rng.integers(2, 5))
            cohort = make_cohort(CohortConfig(
                n_patients=n, seed=int(rng.integers(1, 1000))))
            if trial % 2:  # alternate: sparse per-node overrides
                from dataclasses import replace

                cohort = [p if i == 0 else replace(
                    p, uplink_period_s=60.0 * float(rng.integers(2, 6)))
                    for i, p in enumerate(cohort)]
            spec = LinkSpec(loss_rate=float(rng.uniform(0, 0.3)),
                            duplicate_rate=float(rng.uniform(0, 0.2)),
                            reorder_rate=float(rng.uniform(0, 0.3)),
                            jitter_s=float(rng.uniform(0, 10.0)))
            seed = int(rng.integers(1, 10_000))
            _run("kernel", cohort, duration_s=180.0,
                 node_config=FAST_NODE,
                 link=_impaired_link_for(spec, seed),
                 governor_factory=_governor_factory(seed),
                 gateway=Gateway(GatewayConfig(n_iter=40)))
            (kernel,) = _RecordingKernel.instances
            keys = kernel.processed_keys
            assert keys, "run scheduled no events"
            assert len(set(keys)) == len(keys), "duplicate ordering key"
            assert keys == sorted(keys), "events fired out of key order"


class TestCampaignGolden:
    def test_campaign_reproduces_tick_loop_goldens(self,
                                                   trained_af_detector):
        # The PR-2 campaign acceptance pinned byte-identical reports
        # from one master seed.  The kernel façade (today's default
        # engine) must reproduce those goldens exactly: a campaign run
        # under engine="kernel" == the same campaign under the legacy
        # tick loop, byte for byte, including under link impairments.
        from repro.scenarios import (CampaignConfig, CampaignRunner,
                                     clean_scenario,
                                     packet_loss_scenario)

        grid = (clean_scenario(), packet_loss_scenario(0.15))
        reports = []
        for engine in ("ticks", "kernel"):
            config = CampaignConfig(n_patients=3, n_sentinels=1,
                                    duration_s=60.0, master_seed=11,
                                    gateway_n_iter=40,
                                    scheduler_engine=engine)
            reports.append(CampaignRunner(
                grid, config, af_detector=trained_af_detector).run())
        assert reports[0].to_json() == reports[1].to_json()
        payload = json.loads(reports[1].to_json())
        assert sorted(r["scenario"] for r in payload["scenarios"]) \
            == sorted(s.name for s in grid)
        assert all(r["packets_sent"] > 0 for r in payload["scenarios"])
