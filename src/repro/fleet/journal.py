"""Durable gateway packet journal with crash-safe, byte-identical replay.

The journal is an append-only, segment-rotated on-disk log of the exact
wire frames a :class:`~repro.fleet.gateway.Gateway` ingests, interleaved
with the control messages (`expire` / `drain` / `sweep` / `flush` /
`period` / `report`) that the scheduler or a served session applied to
it.  Because the serve protocol already *is* a total description of a
fleet run — PR 8 proved `run_served_fleet` byte-identical to the
in-process engine — a journal that records stream frames in their
arrival order is a complete, replayable transcript of the run.

Layout (all integers little-endian):

* segment file ``{name}-{index:06d}.rpj``:
  ``b"RPJ1" | u8 version | u8 flags | u32 segment_index | f64 base_t_s
  | u8 base_prio | u8-len name | u32 meta_len | meta JSON`` followed by
  records.
* record: ``u32 length | u32 CRC32(body) | body`` where the body is
  ``f64 t_s | u8 prio | u16 subject_len | subject utf-8 | frame``.

``(t_s, prio)`` is the writer's monotone virtual-time stamp: control
records advance a global clock clamped to never run backwards, packet
records inherit the current clock.  Stamps are non-decreasing in file
order, so merging N shard journals by ``(t_s, prio, journal, ordinal)``
re-sorts the cohort into the kernel's total event order while keeping
each journal's own record order intact.

Recovery: opening a writer over an existing journal scans the last
segment, truncates a torn tail record (a crash loses at most one
partial record), and resumes appending.  Any *corrupt* record — CRC
mismatch, impossible length, undecodable body — raises
:class:`JournalError`; the journal never yields a wrong packet.

:class:`JournalReplayer` streams one or more journals back through
fresh per-patient :class:`GatewaySession` cores (the same construction
the serve layer uses) and folds the resulting rows with
``merge_patient_rows``, producing a ``FleetSummary`` whose ``to_json``
is byte-identical to the original live run.
"""

from __future__ import annotations

import heapq
import json
import os
import re
import threading
import zlib
from dataclasses import dataclass, field, replace
from math import isfinite
from pathlib import Path
from struct import Struct
from time import perf_counter
from typing import Callable, Iterable, Iterator

from .gateway import Gateway, GatewayConfig
from .kernel import (
    PRIO_DRAIN,
    PRIO_REASSEMBLY,
    PRIO_TRIAGE,
    EventKernel,
    KernelError,
)
from .sharding import ShardPatientRow, merge_patient_rows
from .triage import TriageBoard
from .wire import (
    MAX_FRAME_BYTES,
    ServeMessage,
    WireFormatError,
    decode_message,
    encode_message,
    frame_kind,
)

__all__ = [
    "GatewaySession",
    "JournalConfig",
    "JournalError",
    "JournalReader",
    "JournalRecord",
    "JournalReplayer",
    "JournalWriter",
    "ReplayReport",
    "journal_meta",
]

#: Magic prefix of every journal segment file.
JOURNAL_MAGIC = b"RPJ1"
#: Version byte stamped into (and required of) every segment header.
JOURNAL_VERSION = 1
#: Hard ceiling on a single record: the wire frame limit plus headroom
#: for the record body prefix.  Anything larger is corruption.
MAX_RECORD_BYTES = MAX_FRAME_BYTES + 1024

_SEG_HEAD = Struct("<4sBBIdB")  # magic, version, flags, index, base_t_s, base_prio
_REC_HEAD = Struct("<II")  # length, crc32
_BODY_HEAD = Struct("<dBH")  # t_s, prio, subject_len
_U32 = Struct("<I")

#: Virtual-time priority a journaled control message advances the
#: writer clock to.  Mirrors the kernel phase priorities so merged
#: journals re-sort into the kernel's total event order.
_KIND_PRIO = {
    "hello": 0,
    "period": 0,
    "expire": PRIO_REASSEMBLY,
    "flush": PRIO_REASSEMBLY,
    "drain": PRIO_DRAIN,
    "sweep": PRIO_TRIAGE,
    "report": PRIO_TRIAGE,
    "stats": PRIO_TRIAGE,
}

#: Message kinds a served session journals (client-driven protocol
#: traffic that mutates gateway/board state).  ``hello``/``bye`` are
#: connection plumbing consumed by the server and never reach a
#: session; replies are derived state.
SESSION_JOURNALED_KINDS = frozenset(
    {"expire", "drain", "sweep", "flush", "period", "report"}
)


class JournalError(RuntimeError):
    """A journal is corrupt, incomplete, or used inconsistently."""


def journal_meta(
    duration_s: float | None = None,
    fs: float | None = None,
    gateway: GatewayConfig | None = None,
) -> dict:
    """Build the segment-header metadata dict for a journal writer.

    Only the keys the caller actually knows are included; a replayer
    falls back to explicit arguments for anything missing (a served
    journal, for instance, cannot know the client-side schedule).
    """
    meta: dict = {}
    if duration_s is not None:
        meta["duration_s"] = float(duration_s)
    if fs is not None:
        meta["fs"] = float(fs)
    if gateway is not None:
        from dataclasses import asdict

        meta["gateway"] = asdict(gateway)
    return meta


@dataclass(frozen=True)
class JournalConfig:
    """Where and how a journal is written.

    Frozen and picklable so it can ride through ``ServeConfig``, the
    shard worker pool, and ``CampaignConfig`` untouched.
    """

    #: Directory holding the segment files (created on demand).
    dir: str
    #: Logical journal name; segment files are ``{name}-{i:06d}.rpj``.
    name: str = "journal"
    #: Rotate to a new segment once the current one reaches this size.
    segment_bytes: int = 64 * 1024 * 1024
    #: fsync after every appended record (durable but slow).
    fsync: bool = False

    def __post_init__(self):
        if not self.dir:
            raise ValueError("journal dir must be a non-empty path")
        if not self.name or len(self.name) > 80:
            raise ValueError("journal name must be 1..80 characters")
        if os.sep in self.name or "/" in self.name:
            raise ValueError("journal name must not contain path separators")
        if self.segment_bytes < 4096:
            raise ValueError("segment_bytes must be at least 4096")

    def for_shard(self, shard_index: int) -> "JournalConfig":
        """Derive the per-shard journal config used by the shard pool."""
        return replace(self, name=f"{self.name}-s{shard_index:02d}")

    def segment_path(self, index: int) -> Path:
        """Path of segment ``index`` under this config."""
        return Path(self.dir) / f"{self.name}-{index:06d}.rpj"

    def segment_paths(self) -> list[Path]:
        """Existing segment files for this journal, in index order."""
        pattern = re.compile(rf"^{re.escape(self.name)}-(\d{{6}})\.rpj$")
        root = Path(self.dir)
        if not root.is_dir():
            return []
        found = [p for p in root.iterdir() if pattern.match(p.name)]
        return sorted(found, key=lambda p: p.name)


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal record: a stamped wire frame."""

    #: Virtual-time stamp the writer assigned (monotone in file order).
    t_s: float
    #: Kernel phase priority component of the stamp.
    prio: int
    #: Patient id the frame belongs to ("" = cohort-wide control).
    subject: str
    #: The wire frame (packet frame or encoded ServeMessage).  Scans
    #: yield read-only memoryview slices over the loaded segment bytes
    #: — zero-copy, and the view keeps the segment buffer alive, so a
    #: retained record stays valid.  Because the backing storage is
    #: immutable ``bytes``, ``decode_packet`` aliases it directly on
    #: replay.
    frame: bytes | memoryview


@dataclass(frozen=True)
class _SegmentHeader:
    """Decoded segment header fields."""

    version: int
    flags: int
    index: int
    base_t_s: float
    base_prio: int
    name: str
    meta: dict


def _encode_header(
    index: int, base: tuple[float, int], name: str, meta: dict
) -> bytes:
    """Serialize a segment header."""
    raw_name = name.encode("utf-8")
    if len(raw_name) > 255:
        raise JournalError("journal name too long for header")
    meta_raw = json.dumps(meta, sort_keys=True).encode("utf-8")
    head = _SEG_HEAD.pack(
        JOURNAL_MAGIC, JOURNAL_VERSION, 0, index, base[0], base[1]
    )
    return (
        head
        + bytes([len(raw_name)])
        + raw_name
        + _U32.pack(len(meta_raw))
        + meta_raw
    )


def _decode_header(buf: bytes, path: Path) -> tuple[_SegmentHeader, int]:
    """Parse a segment header; raise :class:`JournalError` on any defect."""
    try:
        magic, version, flags, index, base_t, base_prio = _SEG_HEAD.unpack_from(
            buf, 0
        )
        offset = _SEG_HEAD.size
        name_len = buf[offset]
        offset += 1
        raw_name = bytes(buf[offset : offset + name_len])
        if len(raw_name) != name_len:
            raise JournalError(f"{path}: truncated segment header")
        offset += name_len
        (meta_len,) = _U32.unpack_from(buf, offset)
        offset += _U32.size
        meta_raw = bytes(buf[offset : offset + meta_len])
        if len(meta_raw) != meta_len:
            raise JournalError(f"{path}: truncated segment header metadata")
        offset += meta_len
        if magic != JOURNAL_MAGIC:
            raise JournalError(f"{path}: bad journal magic {magic!r}")
        if version != JOURNAL_VERSION:
            raise JournalError(f"{path}: unsupported journal version {version}")
        name = raw_name.decode("utf-8")
        meta = json.loads(meta_raw.decode("utf-8")) if meta_raw else {}
        if not isinstance(meta, dict):
            raise JournalError(f"{path}: segment metadata is not an object")
    except JournalError:
        raise
    except (IndexError, ValueError, UnicodeDecodeError, Exception) as exc:
        raise JournalError(f"{path}: corrupt segment header: {exc}") from exc
    header = _SegmentHeader(version, flags, index, base_t, base_prio, name, meta)
    return header, offset


def _decode_body(
    body: bytes | memoryview, path: Path, offset: int
) -> JournalRecord:
    """Parse a record body; raise :class:`JournalError` on any defect.

    When ``body`` is a memoryview the record's frame is a zero-copy
    slice of it (see :class:`JournalRecord`).
    """
    if len(body) < _BODY_HEAD.size:
        raise JournalError(
            f"{path}: record body at byte {offset} too short ({len(body)} B)"
        )
    t_s, prio, subject_len = _BODY_HEAD.unpack_from(body, 0)
    start = _BODY_HEAD.size
    subject_raw = bytes(body[start : start + subject_len])
    if len(subject_raw) != subject_len:
        raise JournalError(
            f"{path}: record subject at byte {offset} overruns the body"
        )
    frame = body[start + subject_len :]
    if not len(frame):
        raise JournalError(f"{path}: record at byte {offset} has an empty frame")
    try:
        subject = subject_raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise JournalError(
            f"{path}: record subject at byte {offset} is not utf-8"
        ) from exc
    return JournalRecord(t_s, prio, subject, frame)


class _SegmentScan:
    """Strict sequential scan of one segment file.

    Distinguishes a *torn tail* (a record prefix at end-of-file — the
    footprint of a crashed append, recoverable by truncation) from
    *corruption* (CRC mismatch, impossible length, bad body — never
    recoverable, always :class:`JournalError`).  ``tolerate_torn`` is
    only true for the final segment: earlier segments were sealed by a
    rotation and a short tail there is corruption, not a crash.
    """

    def __init__(self, path: Path, tolerate_torn: bool):
        self.path = path
        self.tolerate_torn = tolerate_torn
        try:
            self.data = path.read_bytes()
        except OSError as exc:
            raise JournalError(f"{path}: unreadable segment: {exc}") from exc
        self.header, self._start = _decode_header(self.data, path)
        self.valid_end = self._start
        self.torn_bytes = 0
        self.last_stamp = (self.header.base_t_s, self.header.base_prio)
        self.n_records = 0

    def _torn(self, offset: int) -> None:
        remainder = len(self.data) - offset
        if not self.tolerate_torn:
            raise JournalError(
                f"{self.path}: torn record ({remainder} B) inside a sealed "
                "segment"
            )
        self.valid_end = offset
        self.torn_bytes = remainder

    def records(self) -> Iterator[JournalRecord]:
        """Yield whole records; classify any tail per the class docs."""
        buf = memoryview(self.data)
        offset = self._start
        size = len(buf)
        while True:
            remainder = size - offset
            if remainder == 0:
                self.valid_end = offset
                return
            if remainder < _REC_HEAD.size:
                self._torn(offset)
                return
            length, crc = _REC_HEAD.unpack_from(buf, offset)
            if length == 0:
                raise JournalError(
                    f"{self.path}: zero-length record at byte {offset}"
                )
            if length > MAX_RECORD_BYTES:
                if _REC_HEAD.size + length <= remainder:
                    raise JournalError(
                        f"{self.path}: oversized record ({length} B) at "
                        f"byte {offset}"
                    )
                self._torn(offset)
                return
            if _REC_HEAD.size + length > remainder:
                self._torn(offset)
                return
            body = buf[offset + _REC_HEAD.size : offset + _REC_HEAD.size + length]
            if zlib.crc32(body) != crc:
                raise JournalError(
                    f"{self.path}: CRC mismatch at byte {offset}"
                )
            record = _decode_body(body, self.path, offset)
            offset += _REC_HEAD.size + length
            self.valid_end = offset
            self.n_records += 1
            self.last_stamp = (record.t_s, record.prio)
            yield record


class JournalWriter:
    """Append-only, segment-rotated journal writer.

    Thread-safe (served session lanes share one writer).  ``resume``
    (the default) recovers an existing journal — truncating a torn
    tail record and continuing where the crashed writer stopped;
    ``resume=False`` deletes any prior segments and starts fresh.

    The ``write_hook`` attribute is a crash-injection seam: when set,
    record bytes are passed through it instead of ``file.write``, so a
    test can emulate a power cut mid-append.
    """

    def __init__(
        self,
        config: JournalConfig,
        meta: dict | None = None,
        obs=None,
        resume: bool = True,
    ):
        self.config = config
        self.meta = dict(meta or {})
        self.obs = obs
        #: Optional replacement for ``file.write`` on record appends.
        self.write_hook: Callable[[bytes], object] | None = None
        self._lock = threading.Lock()
        self._file = None
        self._segment_index = 0
        self._segment_bytes = 0
        self._clock: tuple[float, int] = (0.0, 0)
        self.n_records = 0
        self.n_packets = 0
        self.n_messages = 0
        self.n_bytes = 0
        self.n_fsyncs = 0
        self.n_truncated_bytes = 0
        self._m = _JournalMetrics(obs) if obs is not None else None
        os.makedirs(config.dir, exist_ok=True)
        existing = config.segment_paths()
        if not resume:
            for path in existing:
                path.unlink()
            existing = []
        if existing:
            self._recover(existing)
        else:
            self._open_segment(0)

    # -- lifecycle ----------------------------------------------------

    def _recover(self, existing: list[Path]) -> None:
        indexes = [int(p.name[-10:-4]) for p in existing]
        if indexes != list(range(len(existing))):
            raise JournalError(
                f"journal {self.config.name!r} has non-contiguous segments "
                f"{indexes}"
            )
        last = existing[-1]
        scan = _SegmentScan(last, tolerate_torn=True)
        for _ in scan.records():
            pass
        if scan.header.index != indexes[-1]:
            raise JournalError(
                f"{last}: header index {scan.header.index} does not match "
                f"file name"
            )
        if scan.torn_bytes:
            with open(last, "r+b") as handle:
                handle.truncate(scan.valid_end)
            self.n_truncated_bytes += scan.torn_bytes
            if self._m is not None:
                self._m.truncated.inc(
                    scan.torn_bytes, journal=self.config.name
                )
            if self.obs is not None:
                from repro.obs import ANOMALY_JOURNAL_TRUNCATED

                self.obs.flight.anomaly(
                    ANOMALY_JOURNAL_TRUNCATED,
                    subject=self.config.name,
                    t_s=scan.last_stamp[0],
                    segment=scan.header.index,
                    torn_bytes=scan.torn_bytes,
                )
        if not self.meta:
            self.meta = dict(scan.header.meta)
        self._segment_index = scan.header.index
        self._clock = scan.last_stamp
        self._file = open(last, "ab")
        self._segment_bytes = scan.valid_end

    def _open_segment(self, index: int) -> None:
        header = _encode_header(index, self._clock, self.config.name, self.meta)
        self._segment_index = index
        self._file = open(self.config.segment_path(index), "wb")
        self._file.write(header)
        self._segment_bytes = len(header)

    def _rotate_locked(self) -> None:
        self._file.flush()
        self._file.close()
        self._open_segment(self._segment_index + 1)

    def close(self) -> None:
        """Flush (and fsync, if configured) and close the writer."""
        with self._lock:
            if self._file is None:
                return
            self._file.flush()
            if self.config.fsync:
                os.fsync(self._file.fileno())
                self.n_fsyncs += 1
                if self._m is not None:
                    self._m.fsyncs.inc(1, journal=self.config.name)
            self._file.close()
            self._file = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- appends ------------------------------------------------------

    def append_packet(
        self, frame: bytes | bytearray | memoryview, subject: str
    ) -> None:
        """Journal a wire-encoded packet frame at the current clock.

        ``frame`` may be any bytes-like buffer; it is CRC'd and written
        under the lock without an intermediate copy and never retained
        past the call.
        """
        with self._lock:
            self._append_locked(self._clock, subject, frame, "packet")

    def append_message(self, msg: ServeMessage) -> None:
        """Journal a control message, advancing the virtual clock."""
        prio = _KIND_PRIO.get(msg.kind)
        if prio is None:
            raise JournalError(f"message kind {msg.kind!r} is not journalable")
        t_s = float(msg.t_s)
        if not isfinite(t_s):
            raise JournalError(f"{msg.kind!r} message has non-finite t_s")
        frame = encode_message(msg)
        with self._lock:
            stamp = (t_s, prio)
            if stamp < self._clock:
                stamp = self._clock
            self._clock = stamp
            self._append_locked(stamp, msg.patient_id, frame, "message")

    def _append_locked(
        self,
        stamp: tuple[float, int],
        subject: str,
        frame: bytes | bytearray | memoryview,
        kind: str,
    ) -> None:
        if self._file is None:
            raise JournalError("journal writer is closed")
        view = memoryview(frame)
        if not len(view):
            raise JournalError("cannot journal an empty frame")
        if len(view) > MAX_FRAME_BYTES:
            raise JournalError(
                f"frame of {len(view)} B exceeds MAX_FRAME_BYTES"
            )
        subject_raw = subject.encode("utf-8")
        if len(subject_raw) > 0xFFFF:
            raise JournalError("record subject too long")
        # Incremental CRC over the body pieces plus a gather write
        # (prefix, then the frame buffer itself) spare the full-body
        # concatenation the old single-``bytes`` record build paid.
        # The on-disk bytes are identical either way.
        length = _BODY_HEAD.size + len(subject_raw) + len(view)
        body_head = (
            _BODY_HEAD.pack(stamp[0], stamp[1], len(subject_raw))
            + subject_raw
        )
        crc = zlib.crc32(view, zlib.crc32(body_head))
        prefix = _REC_HEAD.pack(length, crc) + body_head
        if self.write_hook is not None:
            # Crash-injection seam: the hook contract is "one call per
            # record, whole record bytes", so the copy is reassembled.
            self.write_hook(prefix + bytes(view))
        else:
            self._file.write(prefix)
            self._file.write(view)
        record_bytes = _REC_HEAD.size + length
        self._segment_bytes += record_bytes
        self.n_bytes += record_bytes
        self.n_records += 1
        if kind == "packet":
            self.n_packets += 1
        else:
            self.n_messages += 1
        if self.config.fsync:
            self._file.flush()
            os.fsync(self._file.fileno())
            self.n_fsyncs += 1
        if self._m is not None:
            self._m.bytes.inc(record_bytes, journal=self.config.name)
            self._m.records.inc(1, journal=self.config.name, kind=kind)
            if self.config.fsync:
                self._m.fsyncs.inc(1, journal=self.config.name)
        if self._segment_bytes >= self.config.segment_bytes:
            self._rotate_locked()

    # -- introspection ------------------------------------------------

    def stats(self) -> dict:
        """Writer counters (records, bytes, segments, fsyncs, clock)."""
        with self._lock:
            return {
                "name": self.config.name,
                "segments": self._segment_index + 1,
                "records": self.n_records,
                "packets": self.n_packets,
                "messages": self.n_messages,
                "bytes": self.n_bytes,
                "fsyncs": self.n_fsyncs,
                "truncated_bytes": self.n_truncated_bytes,
                "clock_t_s": self._clock[0],
            }


class _JournalMetrics:
    """Journal counters registered on an Observability registry."""

    def __init__(self, obs):
        from repro.obs import SCOPE_SHARD

        metrics = obs.metrics
        self.bytes = metrics.counter(
            "journal_bytes_written_total",
            "Bytes appended to gateway journals (headers excluded).",
            scope=SCOPE_SHARD,
        )
        self.records = metrics.counter(
            "journal_records_total",
            "Records appended to gateway journals by kind.",
            scope=SCOPE_SHARD,
        )
        self.fsyncs = metrics.counter(
            "journal_fsync_total",
            "fsync calls issued by gateway journal writers.",
            scope=SCOPE_SHARD,
        )
        self.truncated = metrics.counter(
            "journal_truncated_bytes_total",
            "Torn-tail bytes truncated during journal recovery.",
            scope=SCOPE_SHARD,
        )


class JournalReader:
    """Strict sequential reader over a journal's segment files.

    A torn tail is tolerated only on the final segment (reported via
    ``torn_tail_bytes``); everything else raises :class:`JournalError`.
    """

    def __init__(self, config: JournalConfig):
        self.config = config
        self.paths = config.segment_paths()
        if not self.paths:
            raise JournalError(
                f"no journal named {config.name!r} under {config.dir}"
            )
        indexes = [int(p.name[-10:-4]) for p in self.paths]
        if indexes != list(range(len(self.paths))):
            raise JournalError(
                f"journal {config.name!r} has non-contiguous segments "
                f"{indexes}"
            )
        first, _ = _decode_header(self.paths[0].read_bytes(), self.paths[0])
        if first.name != config.name:
            raise JournalError(
                f"{self.paths[0]}: header names journal {first.name!r}"
            )
        #: Metadata dict from the first segment header.
        self.meta = dict(first.meta)
        #: Bytes of torn tail discarded from the final segment.
        self.torn_tail_bytes = 0
        #: Records yielded by the last full :meth:`records` pass.
        self.n_records = 0

    def records(self) -> Iterator[JournalRecord]:
        """Yield every whole record across all segments, in log order."""
        self.torn_tail_bytes = 0
        self.n_records = 0
        for i, path in enumerate(self.paths):
            scan = _SegmentScan(path, tolerate_torn=(i == len(self.paths) - 1))
            if scan.header.index != i:
                raise JournalError(
                    f"{path}: header index {scan.header.index} does not "
                    "match file name"
                )
            if scan.header.name != self.config.name:
                raise JournalError(
                    f"{path}: header names journal {scan.header.name!r}"
                )
            for record in scan.records():
                self.n_records += 1
                yield record
            self.torn_tail_bytes += scan.torn_bytes


class GatewaySession:
    """Per-patient gateway + triage core with a virtual-time kernel.

    This is the session state machine the serve layer runs behind each
    TCP connection, factored out so :class:`JournalReplayer` can drive
    the identical construction from a journal.  ``handle_frame``
    dispatches one stream frame (packet or control message) and returns
    ``(replies, close)``; protocol violations come back as an ``error``
    reply, exactly as over the wire.

    When ``journal`` is given, ingested packet frames are journaled by
    the attached gateway and state-bearing control messages
    (:data:`SESSION_JOURNALED_KINDS`) are journaled after a successful
    dispatch — a frame that faults is never logged, so a journal holds
    only frames that actually mutated the session.
    """

    def __init__(
        self,
        patient_id: str,
        config: GatewayConfig | None = None,
        journal: JournalWriter | None = None,
    ):
        self.patient_id = patient_id
        self.gateway = Gateway(config or GatewayConfig())
        self.board = TriageBoard()
        self.board.register([patient_id])
        self.kernel = EventKernel()
        self.n_reconstructed = 0
        self.n_frames = 0
        self.row: ShardPatientRow | None = None
        self._journal = journal
        if journal is not None:
            self.gateway.attach_journal(journal)

    # -- frame dispatch ----------------------------------------------

    def handle_frame(self, body: bytes) -> tuple[list[bytes], bool]:
        """Apply one stream frame; return ``(replies, close)``."""
        try:
            if frame_kind(body) == "packet":
                self.gateway.ingest(body)
                self.n_frames += 1
                return [], False
            msg = decode_message(body)
            replies, close = self.handle_message(msg)
            if (
                self._journal is not None
                and msg.kind in SESSION_JOURNALED_KINDS
            ):
                self._journal.append_message(msg)
            return replies, close
        except (WireFormatError, KernelError) as exc:
            reply = ServeMessage(
                "error", self.patient_id, info={"error": str(exc)}
            )
            return [encode_message(reply)], True

    def handle_message(self, msg: ServeMessage) -> tuple[list[bytes], bool]:
        """Dispatch a decoded control message (raises on violations)."""
        if msg.kind == "expire":
            self._run_at(
                msg.t_s,
                PRIO_REASSEMBLY,
                "serve.expire",
                lambda: self.gateway.expire_reassembly(msg.t_s),
            )
            return [], False
        if msg.kind == "drain":
            self._on_drain(msg)
            return [], False
        if msg.kind == "sweep":
            return [encode_message(self._on_sweep(msg))], False
        if msg.kind == "flush":
            self.gateway.flush_reassembly()
            return [], False
        if msg.kind == "period":
            self.board.set_expected_period(
                self.patient_id, msg.fields.get("period_s", float("nan"))
            )
            return [], False
        if msg.kind == "report":
            return [encode_message(self._on_report(msg))], False
        if msg.kind == "bye":
            return [], True
        raise WireFormatError(f"unknown serve command {msg.kind!r}")

    # -- phase actions ------------------------------------------------

    def _run_at(
        self, t_s: float, priority: int, name: str, action
    ) -> None:
        self.kernel.schedule(
            t_s, priority, name, action, subject=self.patient_id
        )
        self.kernel.run()

    def _on_drain(self, msg: ServeMessage) -> None:
        t_s = self.kernel.advance_to(msg.t_s)
        budget = int(msg.fields.get("budget", -1.0))
        max_packets = None if budget < 0 else budget

        def act() -> None:
            for excerpt in self.gateway.drain(max_packets):
                self.board.observe(excerpt)
                self.n_reconstructed += 1

        self._run_at(t_s, PRIO_DRAIN, "serve.drain", act)

    def _on_sweep(self, msg: ServeMessage) -> ServeMessage:
        self._run_at(
            msg.t_s,
            PRIO_TRIAGE,
            "serve.sweep",
            lambda: self.board.tick(msg.t_s),
        )
        patient = self.board.patient(self.patient_id)
        return ServeMessage(
            "feedback",
            self.patient_id,
            t_s=msg.t_s,
            fields={"n_alerts": float(patient.n_alerts), "soc": patient.soc},
            info={"state": patient.state, "mode": patient.mode},
        )

    def _on_report(self, msg: ServeMessage) -> ServeMessage:
        fields = msg.fields
        mode_seconds = {
            key[5:]: value
            for key, value in fields.items()
            if key.startswith("mode:")
        }
        link_stats = {
            key[5:]: int(value)
            for key, value in fields.items()
            if key.startswith("link:")
        }
        self.row = ShardPatientRow(
            patient_id=self.patient_id,
            n_sent=int(fields.get("n_sent", 0)),
            n_reconstructed=self.n_reconstructed,
            n_node_alarms=int(fields.get("n_node_alarms", 0)),
            average_power_w=fields.get("average_power_w", float("nan")),
            battery_days=fields.get("battery_days", float("nan")),
            channel=self.gateway.channels.get(self.patient_id),
            triage=self.board.patients[self.patient_id],
            governed=msg.info.get("governed") == "1",
            mode_seconds=mode_seconds,
            governor_switches=int(fields.get("governor_switches", 0)),
            final_soc=fields.get("final_soc", float("nan")),
            projected_hours=fields.get("projected_hours", float("nan")),
            link_stats=link_stats,
        )
        return ServeMessage("report-ack", self.patient_id, t_s=msg.t_s)


@dataclass
class ReplayReport:
    """What a :class:`JournalReplayer` run produced."""

    #: Merged fleet summary (``to_json`` is the byte-identity oracle).
    summary: object
    #: Per-patient rows in cohort order.
    rows: dict[str, ShardPatientRow]
    #: Total packets the original schedulers sent (from reports).
    packets_sent: int
    #: Packets dropped at session gateway queues during replay.
    dropped_packets: int
    #: Fleet-level link counters folded from ``stats`` records.
    link_stats: dict[str, int]
    #: Records / packet frames / control frames consumed.
    n_records: int = 0
    n_packets: int = 0
    n_messages: int = 0
    #: Journals merged into this replay.
    n_journals: int = 0
    #: Torn-tail bytes skipped across all source journals.
    torn_tail_bytes: int = 0
    #: Wall-clock accounting of the replay.
    timings_s: dict = field(default_factory=dict)


class _ReplayPatient:
    """Minimal cohort stand-in when replaying without profiles."""

    def __init__(self, patient_id: str):
        self.patient_id = patient_id


class JournalReplayer:
    """Stream journals back through fresh per-patient gateway cores.

    ``sources`` is one :class:`JournalConfig` or a sequence of them
    (e.g. the N per-shard journals of a sharded run); multiple sources
    are merged by the writer stamps ``(t_s, prio, journal, ordinal)``
    — the kernel's total event order.  ``cohort`` may be omitted for
    journals that carry ``hello`` records (in-process and sharded
    runs); served journals never log hellos, so their cohort order —
    which the float-summing merge depends on — must be passed
    explicitly.
    """

    def __init__(
        self,
        sources: JournalConfig | Iterable[JournalConfig],
        cohort=None,
        gateway_config: GatewayConfig | None = None,
        duration_s: float | None = None,
        fs: float | None = None,
    ):
        if isinstance(sources, JournalConfig):
            sources = [sources]
        self.sources = list(sources)
        if not self.sources:
            raise JournalError("replayer needs at least one journal source")
        self.cohort = list(cohort) if cohort is not None else None
        self.gateway_config = gateway_config
        self.duration_s = duration_s
        self.fs = fs

    def run(self) -> ReplayReport:
        """Replay the journals and fold a merged ``FleetSummary``."""
        t_start = perf_counter()
        readers = [JournalReader(config) for config in self.sources]
        meta = readers[0].meta
        duration_s = self.duration_s
        if duration_s is None:
            duration_s = meta.get("duration_s")
        if duration_s is None:
            raise JournalError(
                "duration_s is neither in the journal metadata nor given"
            )
        fs = self.fs if self.fs is not None else meta.get("fs")
        if fs is None:
            raise JournalError("fs is neither in the journal metadata nor given")
        gateway_config = self.gateway_config
        if gateway_config is None:
            raw = meta.get("gateway")
            gateway_config = (
                GatewayConfig(**raw) if raw is not None else GatewayConfig()
            )

        sessions: dict[str, GatewaySession] = {}
        per_source: list[dict[str, GatewaySession]] = [{} for _ in readers]
        hello_order: dict[str, int] = {}
        link_stats: dict[str, int] = {}
        n_packets = 0
        n_messages = 0

        def session_for(pid: str, source: int) -> GatewaySession:
            session = sessions.get(pid)
            if session is None:
                session = GatewaySession(pid, gateway_config)
                sessions[pid] = session
            per_source[source].setdefault(pid, session)
            return session

        def stream(source: int, reader: JournalReader):
            for ordinal, record in enumerate(reader.records()):
                yield (record.t_s, record.prio, source, ordinal, record)

        streams = [stream(i, reader) for i, reader in enumerate(readers)]
        for t_s, prio, source, ordinal, record in heapq.merge(*streams):
            try:
                if frame_kind(record.frame) == "packet":
                    session = session_for(record.subject, source)
                    session.gateway.ingest(record.frame)
                    session.n_frames += 1
                    n_packets += 1
                    continue
                msg = decode_message(record.frame)
                n_messages += 1
                if msg.kind == "hello":
                    index = int(msg.fields.get("index", len(hello_order)))
                    hello_order.setdefault(msg.patient_id, index)
                    session_for(msg.patient_id, source)
                elif msg.kind == "stats":
                    for key, value in msg.fields.items():
                        if key.startswith("link:"):
                            name = key[5:]
                            link_stats[name] = link_stats.get(name, 0) + int(
                                value
                            )
                elif msg.patient_id == "":
                    for session in per_source[source].values():
                        session.handle_message(msg)
                else:
                    session_for(msg.patient_id, source).handle_message(msg)
            except (WireFormatError, KernelError) as exc:
                raise JournalError(
                    f"replay failed at record {ordinal} of journal "
                    f"{self.sources[source].name!r}: {exc}"
                ) from exc
        t_replayed = perf_counter()

        cohort = self.cohort
        if cohort is None:
            if hello_order:
                ordered = sorted(
                    hello_order.items(), key=lambda item: (item[1], item[0])
                )
                cohort = [_ReplayPatient(pid) for pid, _ in ordered]
            else:
                raise JournalError(
                    "journal carries no hello records; pass the cohort "
                    "explicitly (served journals require it)"
                )
        rows = {
            pid: session.row
            for pid, session in sessions.items()
            if session.row is not None
        }
        dropped = sum(s.gateway.dropped for s in sessions.values())
        try:
            summary = merge_patient_rows(
                cohort, rows, gateway_config, duration_s, fs, dropped=dropped
            )
        except (KeyError, WireFormatError) as exc:
            raise JournalError(f"journal replay fold failed: {exc}") from exc
        t_done = perf_counter()
        ordered_rows = {
            profile.patient_id: rows[profile.patient_id]
            for profile in cohort
            if profile.patient_id in rows
        }
        return ReplayReport(
            summary=summary,
            rows=ordered_rows,
            packets_sent=sum(row.n_sent for row in rows.values()),
            dropped_packets=dropped,
            link_stats=link_stats,
            n_records=sum(reader.n_records for reader in readers),
            n_packets=n_packets,
            n_messages=n_messages,
            n_journals=len(readers),
            torn_tail_bytes=sum(r.torn_tail_bytes for r in readers),
            timings_s={
                "replay": t_replayed - t_start,
                "merge": t_done - t_replayed,
                "total": t_done - t_start,
            },
        )
