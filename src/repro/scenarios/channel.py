"""Deterministic lossy uplink: the radio between node and gateway.

Implements the :class:`~repro.fleet.UplinkChannel` protocol with the
impairments of a :class:`~repro.scenarios.LinkSpec`: uniform packet
loss, duplication, reordering and bounded delay/jitter.  All decisions
come from one seeded generator drawn in send order, so the same packet
sequence over the same spec replays identically.

Alarm packets are never lost for good: the link models acknowledged
delivery (retransmit-until-acked), so a loss draw converts into bounded
extra delay instead — the uplink-side half of the fleet's no-false-drop
guarantee.  Routine excerpts are best-effort and simply disappear.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..fleet.node_proxy import PACKET_ALARM, UplinkPacket
from .spec import LinkSpec


class ImpairedLink:
    """Lossy, delaying, duplicating channel model.

    Args:
        spec: The impairment parameters.
        seed: Stream seed (derive from the campaign master seed with
            :func:`~repro.scenarios.derive_seed`).

    Attributes:
        stats: Counters — ``offered``, ``delivered`` (copies handed to
            the gateway, duplicates included), ``lost`` (excerpts gone
            for good), ``duplicated``, ``reordered``, ``retransmissions``
            (alarm ARQ rounds).
    """

    def __init__(self, spec: LinkSpec | None = None,
                 seed: int = 0) -> None:
        self.spec = spec or LinkSpec()
        self._rng = np.random.default_rng(seed)
        #: Delivery heap keyed ``(t_s, patient_id, seq, order)`` — two
        #: packets colliding on the same virtual delivery time pop in
        #: deterministic ``(patient, seq)`` order regardless of how
        #: they were interleaved at send time, so jittered links stay
        #: byte-reproducible under any send schedule (the kernel's
        #: per-node event order differs from the tick loop's batch
        #: order).  ``order`` (insertion counter) breaks the final tie
        #: between duplicate copies of one packet.
        self._pending: list[
            tuple[float, str, int, int, UplinkPacket]] = []
        self._order = 0
        self.stats: dict[str, int] = {
            "offered": 0,
            "delivered": 0,
            "lost": 0,
            "duplicated": 0,
            "reordered": 0,
            "retransmissions": 0,
        }

    @property
    def in_flight(self) -> int:
        """Packets delayed and not yet delivered."""
        return len(self._pending)

    def send(self, packet: UplinkPacket,
             now_s: float) -> list[UplinkPacket]:
        """Offer one packet; return the copies delivered immediately."""
        spec = self.spec
        self.stats["offered"] += 1
        immediate: list[UplinkPacket] = []

        delay = self._delivery_delay(packet)
        if delay is not None:
            self._deliver(packet, now_s, delay, immediate)
            if spec.duplicate_rate > 0 \
                    and self._rng.random() < spec.duplicate_rate:
                self.stats["duplicated"] += 1
                dup_delay = delay + (self._rng.uniform(0, spec.jitter_s)
                                     if spec.jitter_s > 0 else 0.0)
                self._deliver(packet, now_s, dup_delay, immediate)
        return immediate

    def due(self, now_s: float) -> list[UplinkPacket]:
        """Pop the delayed packets whose delivery time has arrived."""
        out: list[UplinkPacket] = []
        while self._pending and self._pending[0][0] <= now_s:
            out.append(heapq.heappop(self._pending)[-1])
        return out

    def drain(self) -> list[UplinkPacket]:
        """Everything still in flight, in delivery order (end of run)."""
        out = [heapq.heappop(self._pending)[-1] for _ in
               range(len(self._pending))]
        return out

    def next_due_s(self) -> float | None:
        """Delivery time of the earliest in-flight packet.

        The event kernel uses this to schedule an exact-time delivery
        event for jittered copies instead of polling every sweep;
        ``None`` means nothing is in flight.
        """
        return self._pending[0][0] if self._pending else None

    def _delivery_delay(self, packet: UplinkPacket) -> float | None:
        """Delay of this packet's first copy; ``None`` when lost."""
        spec = self.spec
        delay = (self._rng.uniform(0, spec.jitter_s)
                 if spec.jitter_s > 0 else 0.0)
        if spec.loss_rate > 0 and self._rng.random() < spec.loss_rate:
            if packet.kind != PACKET_ALARM:
                self.stats["lost"] += 1
                return None
            # Acknowledged delivery: each failed round adds one
            # retransmission delay; the link never gives an alarm up.
            retx = 1
            while retx < spec.max_alarm_retx \
                    and self._rng.random() < spec.loss_rate:
                retx += 1
            self.stats["retransmissions"] += retx
            delay += retx * spec.alarm_retx_delay_s
        if spec.reorder_rate > 0 \
                and self._rng.random() < spec.reorder_rate:
            self.stats["reordered"] += 1
            delay += spec.reorder_delay_s
        return delay

    def _deliver(self, packet: UplinkPacket, now_s: float, delay: float,
                 immediate: list[UplinkPacket]) -> None:
        self.stats["delivered"] += 1
        if delay <= 0.0:
            immediate.append(packet)
            return
        heapq.heappush(self._pending,
                       (now_s + delay, packet.patient_id, packet.seq,
                        self._order, packet))
        self._order += 1
