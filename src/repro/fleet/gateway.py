"""Gateway: bounded-queue ingest, demux, CS reconstruction, confirmation.

The receiving half the paper leaves off-node (ref [5]): packets from many
nodes land in a bounded ingest queue; the gateway demultiplexes them into
per-patient channels, rebuilds the per-lead sensing matrices from the
packet's encoder geometry, reconstructs every excerpt with the joint
group-sparse decoder of :mod:`repro.compression.multilead`, and — for
alarm packets — re-runs delineation and RR-irregularity analysis on the
*reconstructed* signal to confirm the node's decision before it reaches
triage.

Confirmation is deliberately conservative: a node alarm is only refuted
when the reconstruction shows enough beats AND their RR series is
regular.  Too few beats (short excerpt, poor reconstruction) keeps the
alarm — the gateway must never silently drop a real AF event.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..compression.encoder import MultiLeadCsEncoder
from ..compression.metrics import reconstruction_snr_db
from ..compression.multilead import JointCsDecoder
from ..delineation.rpeak import RPeakDetector
from .node_proxy import PACKET_ALARM, UplinkPacket


@dataclass(frozen=True)
class GatewayConfig:
    """Server-side parameters.

    Attributes:
        queue_capacity: Bounded ingest queue length; packets arriving
            while it is full are dropped (and counted).
        wavelet: Sparsity basis of the joint decoder.
        n_iter: FISTA iteration budget per window.
        confirm_alarms: Re-check node alarms on the reconstruction.
        rr_cv_confirm: RR coefficient of variation at or above which an
            alarm excerpt counts as irregular (AF-like).  Sinus HRV sits
            near 0.05; AF near 0.15-0.25.
        min_confirm_beats: Minimum reconstructed beats needed before the
            gateway is allowed to overrule a node alarm.
    """

    queue_capacity: int = 4096
    wavelet: str = "db4"
    n_iter: int = 150
    confirm_alarms: bool = True
    rr_cv_confirm: float = 0.09
    min_confirm_beats: int = 5


@dataclass(frozen=True)
class ReconstructedExcerpt:
    """One processed packet, after server-side reconstruction.

    Attributes:
        patient_id: Originating node.
        timestamp_s: Packet emission time.
        kind: Packet kind (excerpt / alarm).
        signal: Reconstructed samples, shape ``(n_leads, span)``.
        snr_db: Reconstruction SNR against the packet's evaluation
            reference (nan when no reference was attached).
        confirmed: Alarm packets only — ``True`` when the gateway
            upholds the node alarm; ``None`` for routine excerpts.
        mean_hr_bpm: Node-streamed telemetry passed through.
    """

    patient_id: str
    timestamp_s: float
    kind: str
    signal: np.ndarray
    snr_db: float
    confirmed: bool | None
    mean_hr_bpm: float = float("nan")


@dataclass
class PatientChannel:
    """Per-patient ingest statistics and state."""

    patient_id: str
    n_excerpts: int = 0
    n_alarms: int = 0
    n_confirmed: int = 0
    payload_bits: int = 0
    last_timestamp_s: float = 0.0
    snrs: list[float] = field(default_factory=list)

    @property
    def mean_snr_db(self) -> float:
        """Mean reconstruction SNR of this channel (nan when unscored)."""
        return float(np.mean(self.snrs)) if self.snrs else float("nan")


class Gateway:
    """Multi-patient ingest and server-side reconstruction.

    Decoders are cached per encoder geometry ``(n_leads, window_n, m,
    seed)`` — the fleet shares one matrix family per lead count, so in
    practice a handful of decoders serve any cohort size.
    """

    def __init__(self, config: GatewayConfig | None = None) -> None:
        self.config = config or GatewayConfig()
        self.channels: dict[str, PatientChannel] = {}
        self.dropped = 0
        self._queue: deque[UplinkPacket] = deque()
        self._decoders: dict[tuple, JointCsDecoder] = {}

    @property
    def pending(self) -> int:
        """Packets waiting in the ingest queue."""
        return len(self._queue)

    def ingest(self, packet: UplinkPacket) -> bool:
        """Enqueue one packet; ``False`` when the bounded queue is full."""
        if len(self._queue) >= self.config.queue_capacity:
            self.dropped += 1
            return False
        self._queue.append(packet)
        return True

    def drain(self, max_packets: int | None = None,
              ) -> list[ReconstructedExcerpt]:
        """Process up to ``max_packets`` queued packets (all by default)."""
        budget = len(self._queue) if max_packets is None \
            else min(max_packets, len(self._queue))
        out: list[ReconstructedExcerpt] = []
        for _ in range(budget):
            out.append(self._process(self._queue.popleft()))
        return out

    def channel(self, patient_id: str) -> PatientChannel:
        """The (created-on-demand) channel of one patient."""
        if patient_id not in self.channels:
            self.channels[patient_id] = PatientChannel(patient_id)
        return self.channels[patient_id]

    def _process(self, packet: UplinkPacket) -> ReconstructedExcerpt:
        """Demux, reconstruct and (for alarms) confirm one packet."""
        channel = self.channel(packet.patient_id)
        channel.payload_bits += packet.payload_bits
        channel.last_timestamp_s = max(channel.last_timestamp_s,
                                       packet.timestamp_s)
        decoder = self._decoder_for(packet)
        pieces = []
        snrs = []
        for f, frame in enumerate(packet.frames):
            recovery = decoder.recover(frame)
            pieces.append(recovery.windows)
            if packet.reference is not None:
                snrs.extend(
                    reconstruction_snr_db(packet.reference[f, lead],
                                          recovery.windows[lead])
                    for lead in range(packet.n_leads))
        signal = np.concatenate(pieces, axis=1) if pieces \
            else np.zeros((packet.n_leads, 0))
        snr = float(np.mean(snrs)) if snrs else float("nan")

        confirmed: bool | None = None
        if packet.kind == PACKET_ALARM:
            channel.n_alarms += 1
            confirmed = (self._confirm(signal, packet.fs)
                         if self.config.confirm_alarms else True)
            if confirmed:
                channel.n_confirmed += 1
        else:
            channel.n_excerpts += 1
        if np.isfinite(snr):
            channel.snrs.append(snr)
        return ReconstructedExcerpt(
            patient_id=packet.patient_id,
            timestamp_s=packet.timestamp_s,
            kind=packet.kind,
            signal=signal,
            snr_db=snr,
            confirmed=confirmed,
            mean_hr_bpm=packet.mean_hr_bpm,
        )

    def _decoder_for(self, packet: UplinkPacket) -> JointCsDecoder:
        """Cached joint decoder matching the packet's encoder geometry."""
        key = (packet.n_leads, packet.window_n, packet.cr_percent,
               packet.quant_bits, packet.cs_seed)
        if key not in self._decoders:
            encoder = MultiLeadCsEncoder(
                n_leads=packet.n_leads, n=packet.window_n,
                cr_percent=packet.cr_percent,
                quant_bits=packet.quant_bits, seed=packet.cs_seed)
            self._decoders[key] = JointCsDecoder(
                encoder.sensing_matrices, wavelet=self.config.wavelet,
                n_iter=self.config.n_iter)
        return self._decoders[key]

    def _confirm(self, signal: np.ndarray, fs: float) -> bool:
        """Re-check an alarm on the reconstructed signal.

        Delineates the best available lead and measures RR irregularity;
        refutes the alarm only on clear evidence of a regular rhythm.
        """
        if signal.size == 0:
            return True
        lead = signal[min(1, signal.shape[0] - 1)]  # lead II morphology
        peaks = RPeakDetector(fs).detect(lead)
        if peaks.shape[0] < self.config.min_confirm_beats:
            return True  # not enough evidence to overrule the node
        rr = np.diff(np.asarray(peaks, dtype=float)) / fs
        mean = float(np.mean(rr))
        if mean <= 0:
            return True
        cv = float(np.std(rr)) / mean
        return cv >= self.config.rr_cv_confirm
