"""Setup script (legacy path: the offline environment lacks `wheel`)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Ultra-Low Power Design of Wearable Cardiac "
        "Monitoring Systems' (DAC 2014)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    # pytest-benchmark: the tier-1 command also collects benchmarks/.
    # pytest-cov: CI enforces the coverage floor (see ci.yml); the
    # plain tier-1 command runs without it.
    extras_require={"test": ["pytest", "pytest-benchmark", "pytest-cov"]},
)
