"""Event-kernel demo: the fleet's virtual-time clock, two ways.

Part 1 runs one cohort under both simulation engines —
``engine="ticks"`` (the legacy per-tick loop) and ``engine="kernel"``
(the event-heap lockstep façade of ``repro.fleet.kernel``) — and
proves the two ``FleetSummary`` JSON payloads are byte-identical.

Part 2 marks most of the cohort delineation-only with a per-node
``uplink_period_s`` at 10x the base excerpt period.  That switches the
scheduler to true per-node events: each node uplinks at its own
period, and the run's cost is proportional to *events*, not
ticks x cohort.  The printed ratio is the kernel's win over the
per-patient visits the tick loop would have spent.

Run:  python examples/fleet_event_kernel.py [--patients 12] \
          [--sparse-every 4]
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro.fleet import (
    CohortConfig,
    FleetScheduler,
    NodeProxyConfig,
    SchedulerConfig,
    make_cohort,
)


def main() -> None:
    """Run the equivalence check, then the sparse-cohort event run."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patients", type=int, default=12,
                        help="cohort size for both parts")
    parser.add_argument("--duration", type=float, default=120.0,
                        help="simulated seconds per patient")
    parser.add_argument("--sparse-every", type=int, default=4,
                        help="keep every Nth node dense; the rest "
                             "uplink at 10x the base period")
    args = parser.parse_args()

    node_config = NodeProxyConfig(stream_telemetry=False)
    period = node_config.excerpt_period_s

    print(f"part 1: {args.patients} patients x {args.duration:.0f} s "
          "under both engines ...")
    cohort = make_cohort(CohortConfig(n_patients=args.patients, seed=7))
    reports = {
        engine: FleetScheduler(
            cohort,
            SchedulerConfig(duration_s=args.duration, engine=engine),
            node_config=node_config).run()
        for engine in ("ticks", "kernel")
    }
    identical = (reports["kernel"].summary.to_json()
                 == reports["ticks"].summary.to_json())
    print(f"  tick loop : {reports['ticks'].kernel_stats['engine']}, "
          f"{reports['ticks'].packets_sent} packets")
    print(f"  kernel    : {reports['kernel'].kernel_stats['engine']}, "
          f"{reports['kernel'].packets_sent} packets, "
          f"{reports['kernel'].kernel_stats['n_events']} events")
    print("  summaries byte-identical:", identical)
    if not identical:
        raise SystemExit("engine equivalence contract broken")

    sparse_duration = period * 10.0
    sparse_cohort = [
        p if i % args.sparse_every == 0
        else replace(p, uplink_period_s=sparse_duration)
        for i, p in enumerate(cohort)
    ]
    n_sparse = sum(1 for p in sparse_cohort
                   if p.uplink_period_s is not None)
    print(f"\npart 2: {n_sparse}/{len(sparse_cohort)} nodes "
          f"delineation-only at 10x period ({sparse_duration:.0f} s) "
          "...")
    sparse = FleetScheduler(
        sparse_cohort,
        SchedulerConfig(duration_s=sparse_duration),
        node_config=node_config).run()
    stats = sparse.kernel_stats
    ratio = stats["tick_loop_iterations"] / stats["n_events"]
    print(f"  engine               : {stats['engine']}")
    print(f"  kernel events        : {stats['n_events']}")
    print(f"  tick-loop iterations : {stats['tick_loop_iterations']}")
    print(f"  event ratio          : {ratio:.2f}x fewer events")
    print(f"  packets sent         : {sparse.packets_sent}, "
          f"stale patients: {sparse.summary.stale_patients}")


if __name__ == "__main__":
    main()
