"""Unit + property tests for repro.compression.matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    dense_sign_matrix,
    gaussian_matrix,
    pack_ternary,
    sparse_binary_matrix,
    ternary_matrix,
    unpack_ternary,
)


class TestSparseBinary:
    @settings(max_examples=25, deadline=None)
    @given(m=st.integers(8, 64), extra=st.integers(0, 64),
           d=st.integers(1, 8))
    def test_exactly_d_ones_per_column(self, m, extra, d):
        n = m + extra
        d = min(d, m)
        matrix = sparse_binary_matrix(m, n, d,
                                      np.random.default_rng(0))
        column_sums = matrix.matrix.sum(axis=0)
        assert np.all(column_sums == d)
        assert set(np.unique(matrix.matrix)) <= {0.0, 1.0}

    def test_nnz_and_additions(self):
        matrix = sparse_binary_matrix(32, 128, 8, np.random.default_rng(1))
        assert matrix.nnz == 128 * 8
        assert matrix.additions_per_window() == matrix.nnz

    def test_storage_bits_compact_form(self):
        matrix = sparse_binary_matrix(64, 256, 12, np.random.default_rng(1))
        assert matrix.storage_bits() == 256 * 12 * 6  # log2(64) = 6

    def test_invalid_shapes(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sparse_binary_matrix(0, 10, 1, rng)
        with pytest.raises(ValueError):
            sparse_binary_matrix(20, 10, 1, rng)
        with pytest.raises(ValueError):
            sparse_binary_matrix(10, 20, 11, rng)


class TestTernary:
    def test_alphabet(self):
        matrix = ternary_matrix(40, 200, np.random.default_rng(2))
        values = np.unique(matrix.matrix)
        expected = {-np.sqrt(3.0), 0.0, np.sqrt(3.0)}
        assert all(any(np.isclose(v, e) for e in expected) for v in values)

    def test_sparsity_close_to_two_thirds(self):
        matrix = ternary_matrix(100, 300, np.random.default_rng(3))
        zero_fraction = np.mean(matrix.matrix == 0.0)
        assert zero_fraction == pytest.approx(2 / 3, abs=0.03)

    def test_distance_preservation(self, rng):
        # Johnson-Lindenstrauss sanity: projected distances concentrate.
        matrix = ternary_matrix(64, 512, rng).matrix / np.sqrt(64)
        x = rng.standard_normal(512)
        y = rng.standard_normal(512)
        original = np.linalg.norm(x - y)
        projected = np.linalg.norm(matrix @ (x - y))
        assert projected == pytest.approx(original, rel=0.35)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            ternary_matrix(0, 5)


class TestDenseConstructions:
    def test_sign_matrix_alphabet(self):
        matrix = dense_sign_matrix(10, 20, np.random.default_rng(4))
        assert set(np.unique(matrix.matrix)) == {-1.0, 1.0}

    def test_gaussian_column_norms(self):
        matrix = gaussian_matrix(200, 50, np.random.default_rng(5))
        norms = np.linalg.norm(matrix.matrix, axis=0)
        assert np.mean(norms) == pytest.approx(1.0, abs=0.1)


class TestPacking:
    @settings(max_examples=20, deadline=None)
    @given(m=st.integers(1, 40), n=st.integers(1, 40),
           seed=st.integers(0, 100))
    def test_pack_unpack_roundtrip(self, m, n, seed):
        matrix = ternary_matrix(m, n, np.random.default_rng(seed))
        packed = pack_ternary(matrix)
        assert np.array_equal(unpack_ternary(packed), matrix.matrix)

    def test_two_bits_per_entry(self):
        matrix = ternary_matrix(32, 256, np.random.default_rng(6))
        packed = pack_ternary(matrix)
        assert packed.storage_bytes == int(np.ceil(32 * 256 / 4))

    def test_pack_rejects_non_ternary(self):
        matrix = gaussian_matrix(8, 8, np.random.default_rng(7))
        with pytest.raises(ValueError, match="ternary"):
            pack_ternary(matrix)

    def test_pack_sign_matrix(self):
        matrix = dense_sign_matrix(8, 9, np.random.default_rng(8))
        packed = pack_ternary(matrix)
        assert np.array_equal(unpack_ternary(packed), matrix.matrix)
