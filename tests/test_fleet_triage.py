"""Tests for triage state machines and fleet aggregates."""

import numpy as np
import pytest

from repro.fleet import (
    Gateway,
    ReconstructedExcerpt,
    STATE_ALERT,
    STATE_OK,
    STATE_WATCH,
    TriageBoard,
    TriageConfig,
    fleet_summary,
)
from repro.fleet.gateway import PatientChannel
from repro.pipeline import NodeReport


def _excerpt(pid="p0", t=0.0, kind="excerpt", snr=25.0, confirmed=None):
    return ReconstructedExcerpt(
        patient_id=pid, timestamp_s=t, kind=kind,
        signal=np.zeros((3, 256)), snr_db=snr, confirmed=confirmed)


def _report(n_alarms=0, duration_s=120.0):
    from repro.pipeline.node_app import AlarmEvent

    alarms = [AlarmEvent(start=0, stop=100, kind="AF", excerpt_bits=1000)
              for _ in range(n_alarms)]
    return NodeReport(duration_s=duration_s, beats=[], alarms=alarms,
                      periodic_excerpts=2, transmitted_bits=10000,
                      processing_cycles=1e6, average_power_w=4e-4,
                      battery_days=20.0)


class TestStateMachine:
    def test_confirmed_alarm_raises_alert(self):
        board = TriageBoard()
        state = board.observe(_excerpt(kind="alarm", t=10.0, confirmed=True))
        assert state == STATE_ALERT
        assert board.patient("p0").n_alerts == 1

    def test_unconfirmed_alarm_raises_watch(self):
        board = TriageBoard()
        state = board.observe(_excerpt(kind="alarm", t=10.0,
                                       confirmed=False))
        assert state == STATE_WATCH

    def test_low_snr_excerpt_raises_watch(self):
        board = TriageBoard(TriageConfig(snr_watch_db=8.0))
        assert board.observe(_excerpt(snr=25.0)) == STATE_OK
        assert board.observe(_excerpt(snr=5.0, t=60.0)) == STATE_WATCH

    def test_watch_never_lowers_alert(self):
        board = TriageBoard()
        board.observe(_excerpt(kind="alarm", t=10.0, confirmed=True))
        state = board.observe(_excerpt(kind="alarm", t=20.0,
                                       confirmed=False))
        assert state == STATE_ALERT

    def test_decay_one_step_at_a_time(self):
        # stale_after_s pushed out of frame: silence long enough to
        # decay would otherwise flag the link stale (pinning watch),
        # which TestStaleLink covers separately.
        config = TriageConfig(alert_hold_s=100.0, watch_hold_s=50.0,
                              stale_after_s=1e9)
        board = TriageBoard(config)
        board.observe(_excerpt(kind="alarm", t=0.0, confirmed=True))
        board.tick(50.0)
        assert board.patient("p0").state == STATE_ALERT  # still holding
        board.tick(120.0)
        assert board.patient("p0").state == STATE_WATCH
        board.tick(150.0)
        assert board.patient("p0").state == STATE_WATCH  # watch hold
        board.tick(200.0)
        assert board.patient("p0").state == STATE_OK

    def test_quiet_clean_patient_stays_ok(self):
        board = TriageBoard()
        for t in (60.0, 120.0, 180.0):
            board.observe(_excerpt(t=t, snr=22.0))
            board.tick(t)
        assert board.counts() == {STATE_OK: 1, STATE_WATCH: 0,
                                  STATE_ALERT: 0}

    def test_counts_cover_all_states(self):
        board = TriageBoard()
        board.observe(_excerpt(pid="a", kind="alarm", confirmed=True))
        board.observe(_excerpt(pid="b", kind="alarm", confirmed=False))
        board.observe(_excerpt(pid="c", snr=30.0))
        assert board.counts() == {STATE_OK: 1, STATE_WATCH: 1,
                                  STATE_ALERT: 1}


class TestFleetSummary:
    def _gateway_with(self, channels):
        gateway = Gateway()
        gateway.channels = channels
        return gateway

    def test_aggregates(self):
        channels = {
            "a": PatientChannel("a", n_excerpts=2, n_alarms=1,
                                n_confirmed=1, payload_bits=80000,
                                snrs=[20.0, 22.0]),
            "b": PatientChannel("b", n_excerpts=2, n_alarms=0,
                                n_confirmed=0, payload_bits=40000,
                                snrs=[15.0]),
        }
        board = TriageBoard()
        board.observe(_excerpt(pid="a", kind="alarm", confirmed=True))
        board.observe(_excerpt(pid="b", snr=15.0))
        reports = {"a": _report(n_alarms=1), "b": _report()}
        summary = fleet_summary(reports, self._gateway_with(channels),
                                board, duration_s=120.0)
        assert summary.n_patients == 2
        assert summary.node_alarms == 1
        assert summary.confirmed_alarms == 1
        # 1 alarm / 2 patients over 120 s -> 360 per patient-day.
        assert summary.alarm_rate_per_patient_day == pytest.approx(360.0)
        bytes_per_day = (120000 / 8.0 / 2) * (86400.0 / 120.0)
        assert summary.uplink_bytes_per_patient_day == \
            pytest.approx(bytes_per_day)
        assert summary.mean_battery_days == pytest.approx(20.0)
        assert summary.snr_p50_db == pytest.approx(20.0)
        assert summary.state_counts[STATE_ALERT] == 1

    def test_describe_mentions_key_figures(self):
        channels = {"a": PatientChannel("a", snrs=[20.0])}
        summary = fleet_summary({"a": _report()},
                                self._gateway_with(channels),
                                TriageBoard(), duration_s=120.0)
        text = summary.describe()
        assert "triage" in text
        assert "kB/patient/day" in text
        assert "battery" in text

    def test_empty_reports_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            fleet_summary({}, Gateway(), TriageBoard(), 60.0)
