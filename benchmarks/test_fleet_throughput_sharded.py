"""Sharded fleet throughput — N worker processes vs one, byte-checked.

Not a paper figure: this benchmarks the `repro.fleet.sharding` layer
that lifts the fleet runtime past one core.  The same cohort runs as a
single stripe and as 4 process shards; the merged `FleetSummary` must
be **byte-identical** between the two layouts (the sharding determinism
contract), and on a machine with >= 4 cores the sharded run must clear
a 2x speedup over the single-process one.  On smaller runners the
speedup assertion is skipped — the byte-equivalence check always runs.
"""

from __future__ import annotations

import os

import pytest
from conftest import print_table

from repro.fleet import (
    CohortConfig,
    GatewayConfig,
    NodeProxyConfig,
    SchedulerConfig,
    ShardedFleetRunner,
    make_cohort,
)

N_PATIENTS = 12
DURATION_S = 120.0
FS = 250.0
N_SHARDS = 4
#: Required sharded-over-single speedup on a >= 4-core machine.
MIN_SPEEDUP = 2.0


def run_both():
    """Run the cohort in 1-shard and 4-shard layouts."""
    cohort = make_cohort(CohortConfig(n_patients=N_PATIENTS, seed=7))
    kwargs = dict(
        config=SchedulerConfig(duration_s=DURATION_S, fs=FS),
        node_config=NodeProxyConfig(stream_telemetry=False),
        gateway_config=GatewayConfig(n_iter=80),
    )
    single = ShardedFleetRunner(cohort, n_shards=1, **kwargs).run()
    sharded = ShardedFleetRunner(cohort, n_shards=N_SHARDS,
                                 **kwargs).run()
    return single, sharded


def test_fleet_throughput_sharded(benchmark):
    single, sharded = benchmark.pedantic(run_both, rounds=1,
                                         iterations=1)
    speedup = single.timings_s["total"] / sharded.timings_s["total"]

    print_table(
        f"Sharded fleet ({N_PATIENTS} patients x {DURATION_S:.0f} s, "
        f"{N_SHARDS} shards)",
        ["metric", "value"],
        [
            ("single-process wall [s]", single.timings_s["total"]),
            (f"{N_SHARDS}-shard wall [s]", sharded.timings_s["total"]),
            ("speedup [x]", speedup),
            ("patients/sec (sharded)", sharded.patients_per_second),
            ("packets sent", sharded.packets_sent),
            ("SNR p50 [dB]", sharded.summary.snr_p50_db),
            ("cores available", os.cpu_count() or 1),
        ],
    )

    # The determinism contract gates unconditionally.
    assert sharded.summary.to_json() == single.summary.to_json(), \
        "4-shard FleetSummary diverged from the 1-shard run"
    assert sharded.packets_sent == single.packets_sent
    assert sharded.summary.n_patients == N_PATIENTS
    assert sharded.summary.dropped_packets == 0

    if (os.cpu_count() or 1) < N_SHARDS:
        pytest.skip(f"speedup assertion needs >= {N_SHARDS} cores "
                    f"(have {os.cpu_count() or 1}); byte-equivalence "
                    "already checked")
    assert speedup >= MIN_SPEEDUP, (
        f"{N_SHARDS}-shard run only {speedup:.2f}x faster than "
        f"single-process (need >= {MIN_SPEEDUP}x)")
