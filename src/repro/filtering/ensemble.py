"""Ensemble averaging (EA) of beat-aligned signal windows.

Section IV-C: most cardiac bio-signals are time-locked to the bioelectric
stimulus visible in the ECG, so averaging windows aligned to the R peaks
cancels uncorrelated noise.  The paper also notes EA's disadvantage — the
beat-to-beat variation of the signal is lost — which the AICF in
:mod:`repro.filtering.aicf` addresses and which our multimodal benchmark
(T5) quantifies.
"""

from __future__ import annotations

import numpy as np


def beat_matrix(signal: np.ndarray, impulses: np.ndarray, before: int,
                after: int) -> np.ndarray:
    """Stack windows of ``signal`` aligned on each impulse (R peak).

    Windows that would cross the record edges are dropped, so all rows are
    complete.

    Args:
        signal: Source waveform.
        impulses: Alignment sample indices.
        before: Samples taken before each impulse.
        after: Samples taken after each impulse.

    Returns:
        Array of shape ``(n_kept, before + after)``.
    """
    signal = np.asarray(signal, dtype=float)
    n = signal.shape[0]
    rows = [
        signal[i - before:i + after]
        for i in np.asarray(impulses, dtype=int)
        if i - before >= 0 and i + after <= n
    ]
    if not rows:
        return np.empty((0, before + after))
    return np.vstack(rows)


def ensemble_average(signal: np.ndarray, impulses: np.ndarray, before: int,
                     after: int) -> np.ndarray:
    """The EA template: mean over all complete beat-aligned windows.

    Raises:
        ValueError: If no impulse admits a complete window.
    """
    matrix = beat_matrix(signal, impulses, before, after)
    if matrix.shape[0] == 0:
        raise ValueError("no complete windows available for averaging")
    return matrix.mean(axis=0)


def ensemble_noise_reduction_db(signal: np.ndarray, clean: np.ndarray,
                                impulses: np.ndarray, before: int,
                                after: int) -> float:
    """Noise-power reduction achieved by EA, in dB.

    Compares the mean squared error of raw windows against the ensemble
    template, both measured versus the clean reference.  For white noise
    and K beats the theoretical gain is ``10 log10(K)``.
    """
    noisy = beat_matrix(signal, impulses, before, after)
    reference = beat_matrix(clean, impulses, before, after)
    if noisy.shape[0] == 0:
        raise ValueError("no complete windows available")
    template = noisy.mean(axis=0)
    mse_raw = float(np.mean((noisy - reference) ** 2))
    mse_ea = float(np.mean((template - reference.mean(axis=0)) ** 2))
    if mse_ea == 0:
        return np.inf
    return 10.0 * np.log10(mse_raw / mse_ea)
