"""End-to-end node application pipeline (paper §V)."""

from .node_app import AlarmEvent, CardiacMonitorNode, NodeReport
from .streaming import StreamingConfig, StreamingMonitor, stream_record

__all__ = [
    "AlarmEvent",
    "CardiacMonitorNode",
    "NodeReport",
    "StreamingConfig",
    "StreamingMonitor",
    "stream_record",
]
