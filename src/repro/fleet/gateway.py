"""Gateway: bounded-queue ingest, demux, CS reconstruction, confirmation.

The receiving half the paper leaves off-node (ref [5]): packets from many
nodes land in a bounded ingest queue; the gateway demultiplexes them into
per-patient channels, rebuilds the per-lead sensing matrices from the
packet's encoder geometry, reconstructs every excerpt with the joint
group-sparse decoder of :mod:`repro.compression.multilead`, and — for
alarm packets — re-runs delineation and RR-irregularity analysis on the
*reconstructed* signal to confirm the node's decision before it reaches
triage.

Confirmation is deliberately conservative: a node alarm is only refuted
when the reconstruction shows enough beats AND their RR series is
regular.  Too few beats (short excerpt, poor reconstruction) keeps the
alarm — the gateway must never silently drop a real AF event.

The uplink is a lossy low-power radio, so ingest tolerates a misbehaving
link: every packet passes through a per-patient **reassembly window**
keyed on the node's sequence numbers.  Duplicates (same ``seq`` seen
again, e.g. a retransmission racing its original) are counted and
dropped before they can reach triage; out-of-order arrivals are held
back until the gap fills or the window overflows, at which point the
buffered packets are released in sequence order and the missing numbers
are recorded as gaps.  :meth:`Gateway.flush_reassembly` force-releases
whatever is still buffered at end of run.
"""

from __future__ import annotations

import math
import warnings
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..compression.encoder import MultiLeadCsEncoder
from ..compression.metrics import reconstruction_snr_db
from ..compression.multilead import JointCsDecoder, MultiLeadRecovery
from ..delineation.rpeak import RPeakDetector
from ..obs import (ANOMALY_ALARM_BURST, ANOMALY_NAN_GUARD,
                   ANOMALY_REASSEMBLY_STALL, ANOMALY_WIRE_ERROR,
                   Observability, SCOPE_SHARD)
from ..power.governor import MODE_MULTI_LEAD_CS, MODE_RAW
from .node_proxy import PACKET_ALARM, PACKET_TELEMETRY, UplinkPacket

#: Most written-off sequence numbers one reassembly hole may keep
#: recoverable (late-recovery bookkeeping).  Bounds the memory a
#: corrupt or hostile sequence jump can pin on a network-facing
#: gateway; stragglers from further back classify as duplicates.
MAX_TRACKED_GAP = 4096


@dataclass(frozen=True)
class GatewayConfig:
    """Server-side parameters.

    Attributes:
        queue_capacity: Bounded ingest queue length; packets arriving
            while it is full are dropped (and counted).
        wavelet: Sparsity basis of the joint decoder.
        n_iter: FISTA iteration budget per window.
        confirm_alarms: Re-check node alarms on the reconstruction.
        rr_cv_confirm: RR coefficient of variation at or above which an
            alarm excerpt counts as irregular (AF-like).  Sinus HRV sits
            near 0.05; AF near 0.15-0.25.
        min_confirm_beats: Minimum reconstructed beats needed before the
            gateway is allowed to overrule a node alarm.
        reassembly_window: Maximum out-of-order packets buffered per
            patient before the window force-releases in sequence order
            (skipping the missing numbers as gaps).
        reassembly_gap_ticks: :meth:`Gateway.expire_reassembly` calls
            (scheduler ticks) a gap may stall a patient's buffer before
            it is force-released — bounds head-of-line blocking behind a
            permanently lost packet to a few excerpt periods.  The
            stall clock is anchored to the buffer's *head of line*
            (oldest buffered seq): it counts only while that same
            packet stays stalled.
        reassembly_grace_s: Optional virtual-time grace.  When set and
            the expiry sweep passes its time, a head-of-line stall is
            force-released once it has been *observed* stalled for this
            many virtual seconds, instead of counting sweeps — the
            natural unit under the event kernel, where sweep cadence
            need not be uniform.  On a uniform sweep grid of period
            ``P``, a grace of ``(reassembly_gap_ticks - 1) * P``
            expires at exactly the same sweep as the counter would.
    """

    queue_capacity: int = 4096
    wavelet: str = "db4"
    n_iter: int = 150
    confirm_alarms: bool = True
    rr_cv_confirm: float = 0.09
    min_confirm_beats: int = 5
    reassembly_window: int = 32
    reassembly_gap_ticks: int = 3
    reassembly_grace_s: float | None = None


@dataclass(frozen=True)
class ReconstructedExcerpt:
    """One processed packet, after server-side reconstruction.

    Attributes:
        patient_id: Originating node.
        timestamp_s: Packet emission time.
        kind: Packet kind (excerpt / alarm).
        signal: Reconstructed samples, shape ``(n_leads, span)``.
        snr_db: Reconstruction SNR against the packet's evaluation
            reference (nan when no reference was attached).
        confirmed: Alarm packets only — ``True`` when the gateway
            upholds the node alarm; ``None`` for routine excerpts.
        mean_hr_bpm: Node-streamed telemetry passed through.
        mode: Node operating mode stamped on the packet (governed
            fleets; ungoverned nodes always report multi-lead CS).
        soc: Battery state-of-charge telemetry (nan when ungoverned).
    """

    patient_id: str
    timestamp_s: float
    kind: str
    signal: np.ndarray
    snr_db: float
    confirmed: bool | None
    mean_hr_bpm: float = float("nan")
    mode: str = MODE_MULTI_LEAD_CS
    soc: float = float("nan")


@dataclass
class PatientChannel:
    """Per-patient ingest statistics and state.

    Attributes (beyond the processing counters):
        n_duplicates: Packets dropped because their sequence number was
            already delivered, buffered, or recovered late (duplicated
            uplink).
        n_out_of_order: Packets that arrived ahead of a gap and had to
            wait in the reassembly window, plus stragglers delivered
            after their number was written off.
        n_gaps: Sequence numbers currently written off as lost (skipped
            at a force-release and not recovered since); decremented
            when a straggler recovers its number.
        n_late_recovered: Stragglers delivered after their sequence
            number had been written off as a gap (first copy only;
            further copies count as duplicates).
        n_telemetry: Events-only telemetry packets received (governed
            nodes coasting in ``delineation_only`` mode).
        last_mode: Most recent operating-mode telemetry.
        last_soc: Most recent battery state-of-charge telemetry (nan
            until a governed packet arrives).
    """

    patient_id: str
    n_excerpts: int = 0
    n_alarms: int = 0
    n_confirmed: int = 0
    payload_bits: int = 0
    last_timestamp_s: float = 0.0
    n_duplicates: int = 0
    n_out_of_order: int = 0
    n_gaps: int = 0
    n_late_recovered: int = 0
    snrs: list[float] = field(default_factory=list)
    n_telemetry: int = 0
    last_mode: str = MODE_MULTI_LEAD_CS
    last_soc: float = float("nan")

    @property
    def mean_snr_db(self) -> float:
        """Mean reconstruction SNR of this channel (nan when unscored).

        ``snrs`` may be a list (live gateway) or a read-only float64
        array (zero-copy shard decode), so emptiness is tested by
        length, never truthiness.
        """
        return (float(np.mean(self.snrs)) if len(self.snrs)
                else float("nan"))


class _ReassemblyBuffer:
    """Seq-ordered release with duplicate drop and a bounded window.

    Nodes number every uplink session from 0, so the expected sequence
    starts at 0 — release order per patient restores timestamp order
    for every packet that arrives within the window/timeout tolerance.
    A packet whose number was already delivered or is already waiting
    counts as a duplicate and is dropped; a straggler whose number was
    *written off as a gap* (force-release) is delivered immediately —
    late and out of order, but never dropped: it could be an
    ARQ-retransmitted alarm.

    Accounting invariants (fuzz-tested against a brute-force oracle in
    ``tests/test_fleet_gateway.py``):

    * every distinct sequence number that arrives is delivered exactly
      once, regardless of reordering, duplication or loss;
    * ``n_duplicates`` equals arrivals minus distinct arrivals — the
      first copy of a written-off number is a late recovery, every
      further copy a duplicate;
    * after a final flush, ``n_gaps`` equals the numbers below
      ``next_seq`` that never arrived, and ``missing`` holds exactly
      those numbers (always ``< next_seq``) — up to
      :data:`MAX_TRACKED_GAP` per written-off hole: a pathological
      sequence jump (corrupt or hostile seq on a network-facing
      gateway) is counted in full on ``n_gaps`` but only its most
      recent :data:`MAX_TRACKED_GAP` numbers stay recoverable, so a
      single crafted packet can never balloon ``missing``.
    """

    def __init__(self, window: int) -> None:
        self.window = max(1, window)
        self.next_seq = 0
        self.buffer: dict[int, UplinkPacket] = {}
        self.missing: set[int] = set()
        #: Consecutive :meth:`Gateway.expire_reassembly` sweeps the
        #: current head-of-line packet has been observed stalled
        #: (head-anchored: reset only when the oldest buffered seq is
        #: released, never by a partial release behind it).
        self.gap_ticks = 0
        #: Oldest buffered seq the stall clock is anchored to
        #: (``None`` = no stall observed yet).
        self.stall_head: int | None = None
        #: Virtual time of the sweep that first observed
        #: ``stall_head`` waiting (nan until then) — the anchor the
        #: time-based ``reassembly_grace_s`` expiry measures from.
        self.stall_since_s = float("nan")

    def offer(self, packet: UplinkPacket,
              channel: PatientChannel) -> list[UplinkPacket]:
        """Accept one arrival; return the packets now releasable."""
        if packet.seq in self.missing:  # late recovery of a written-off
            # Deliberately no stall-clock interaction: a straggler
            # below ``next_seq`` is no progress for packets stalled
            # behind the *current* gap, and crediting it would let a
            # link replaying old stragglers extend head-of-line
            # blocking past the configured grace indefinitely.
            self.missing.discard(packet.seq)
            channel.n_gaps -= 1
            channel.n_out_of_order += 1
            channel.n_late_recovered += 1
            return [packet]
        if packet.seq < self.next_seq or packet.seq in self.buffer:
            channel.n_duplicates += 1
            return []
        if packet.seq > self.next_seq:
            channel.n_out_of_order += 1
        self.buffer[packet.seq] = packet
        released = self._release_contiguous()
        if len(self.buffer) > self.window:
            released.extend(self.flush(channel))
        # The stall clock is anchored to the head of line: it resets
        # only when the *oldest pending* packet made it out (a partial
        # release behind a still-missing head is no progress for the
        # packets stalled on it — the head-of-line bound must keep
        # counting or a trickle of later packets could extend the
        # stall forever).
        if self.stall_head is not None \
                and self.stall_head not in self.buffer:
            self._clear_stall()
        return released

    def flush(self, channel: PatientChannel) -> list[UplinkPacket]:
        """Release everything buffered in seq order, recording gaps.

        A single pass over the sorted sequence numbers: each hole in
        front of a buffered packet is written off exactly once (added
        to ``missing`` and counted on the channel), then the packet is
        released.  The earlier implementation interleaved
        ``_release_contiguous`` with mutation of the iteration state,
        which made double-counting a code-review question every time it
        changed; this form cannot count a gap twice by construction.
        The buffer is empty afterwards.
        """
        released: list[UplinkPacket] = []
        for seq in sorted(self.buffer):
            if seq > self.next_seq:  # hole in front of this packet
                # Track at most MAX_TRACKED_GAP numbers per hole: the
                # full range of an absurd jump (hostile seq over the
                # network) would materialize billions of set entries.
                self.missing.update(
                    range(max(self.next_seq, seq - MAX_TRACKED_GAP),
                          seq))
                channel.n_gaps += seq - self.next_seq
                self.next_seq = seq
            released.append(self.buffer.pop(seq))
            self.next_seq += 1
        self._clear_stall()
        return released

    def _release_contiguous(self) -> list[UplinkPacket]:
        released: list[UplinkPacket] = []
        while self.next_seq in self.buffer:
            released.append(self.buffer.pop(self.next_seq))
            self.next_seq += 1
        return released

    def _clear_stall(self) -> None:
        """Forget the stall anchor (head released or buffer flushed)."""
        self.gap_ticks = 0
        self.stall_head = None
        self.stall_since_s = float("nan")

    def note_sweep(self, now_s: float | None) -> None:
        """Account one expiry sweep against the current head of line.

        Re-anchors the stall clock whenever the oldest buffered seq
        changed since the last sweep (that packet made it out, or a
        new older straggler arrived and is now the blocking head);
        otherwise counts one more sweep against the same stalled
        packet.  ``now_s`` (the sweep's virtual time) anchors
        :attr:`stall_since_s` so the time-based grace measures real
        stalled virtual seconds rather than loop iterations.
        """
        head = min(self.buffer)
        if head != self.stall_head:
            self.stall_head = head
            self.stall_since_s = (float(now_s) if now_s is not None
                                  else float("nan"))
            self.gap_ticks = 1
        else:
            self.gap_ticks += 1

    def stalled_for_s(self, now_s: float) -> float:
        """Virtual seconds the current head has been observed stalled."""
        if self.stall_head is None \
                or not math.isfinite(self.stall_since_s):
            return 0.0
        return float(now_s) - self.stall_since_s


class _GatewayMetrics:
    """Pre-resolved metric families for the gateway's hot paths.

    Family lookup (name -> object) happens once here instead of per
    packet, keeping the instrumented ingest/drain paths to label-key
    construction plus a dict update — part of the <5% overhead budget.
    """

    def __init__(self, obs: Observability) -> None:
        metrics = obs.metrics
        self.ingested = metrics.counter(
            "gateway_packets_ingested_total",
            "Packets accepted into a reassembly window, by kind.")
        self.processed = metrics.counter(
            "gateway_packets_processed_total",
            "Packets drained and reconstructed, by kind.")
        self.reassembly = metrics.counter(
            "gateway_reassembly_events_total",
            "Reassembly outcomes: duplicate / out_of_order / gap / "
            "late_recovered.")
        self.alarms = metrics.counter(
            "gateway_alarms_total",
            "Alarm packets by gateway confirmation verdict.")
        self.stalls = metrics.counter(
            "gateway_reassembly_stalls_total",
            "Force-released reassembly buffers (head-of-line timeouts).")
        self.nan_guard = metrics.counter(
            "gateway_nan_guard_total",
            "Reconstructed excerpts rejected by the non-finite guard.")
        self.snr = metrics.histogram(
            "gateway_snr_db",
            "Reconstruction SNR of scored excerpts (dB).",
            buckets=(0.0, 5.0, 10.0, 15.0, 20.0, 30.0, 50.0))
        self.queue_dropped = metrics.counter(
            "gateway_queue_dropped_total",
            "Arrivals rejected by the bounded ingest queue "
            "(process-local back-pressure).", scope=SCOPE_SHARD)
        self.batch_windows = metrics.histogram(
            "gateway_drain_batch_windows",
            "CS windows recovered per batched FISTA call "
            "(process-local batch shape).", scope=SCOPE_SHARD,
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0))


class Gateway:
    """Multi-patient ingest and server-side reconstruction.

    Decoders are cached per encoder geometry ``(n_leads, window_n, m,
    seed)`` — the fleet shares one matrix family per lead count, so in
    practice a handful of decoders serve any cohort size.

    When built with an :class:`~repro.obs.Observability` handle the
    gateway also keeps out-of-band accounting: fleet-scope counters for
    ingest/reassembly/alarm outcomes, trace instants stamped with
    **packet virtual time**, a per-channel flight-recorder ring of wire
    frames, and anomaly dumps on reassembly stalls, non-finite
    reconstructions, alarm bursts and undecodable frames.  All of it is
    skipped entirely when ``obs`` is ``None``, and none of it feeds
    back into processing decisions.
    """

    def __init__(self, config: GatewayConfig | None = None,
                 obs: Observability | None = None) -> None:
        self.config = config or GatewayConfig()
        self.channels: dict[str, PatientChannel] = {}
        self.dropped = 0
        self._queue: deque[UplinkPacket] = deque()
        self._decoders: dict[tuple, JointCsDecoder] = {}
        self._reassembly: dict[str, _ReassemblyBuffer] = {}
        self.obs = obs
        self._m = _GatewayMetrics(obs) if obs is not None else None
        self._journal = None

    def attach_obs(self, obs: Observability | None) -> None:
        """Enable (or disable) observability on a built gateway.

        Lets the scheduler share one bundle with a gateway it did not
        construct.  Passing ``None`` detaches instrumentation.
        """
        self.obs = obs
        self._m = _GatewayMetrics(obs) if obs is not None else None

    def attach_journal(self, journal) -> None:
        """Attach a :class:`~repro.fleet.journal.JournalWriter`.

        Every packet that enters :meth:`ingest` from now on is appended
        to the journal as its wire frame, before reassembly or the
        bounded queue gets a say — the journal records *arrivals*, so a
        replay reproduces back-pressure decisions instead of inheriting
        them.  Passing ``None`` detaches.  Duck-typed (anything with
        ``append_packet(frame, subject)``) so this module needs no
        journal import.
        """
        self._journal = journal

    @property
    def pending(self) -> int:
        """Packets waiting in the ingest queue."""
        return len(self._queue)

    def ingest(self, payload: "UplinkPacket | bytes | bytearray | "
               "memoryview") -> bool:
        """Accept one arrival; ``False`` when the bounded queue is full.

        **The one ingest surface.**  Dispatches on payload type: a
        bytes-like payload is a binary wire frame
        (:func:`~repro.fleet.wire.encode_packet`) and is decoded —
        and flight-recorded when observability is attached — before
        entering the pipeline; an :class:`UplinkPacket` enters it
        directly.  Both forms then pass through the patient's
        reassembly window: duplicates are dropped (and counted on the
        channel), out-of-order packets wait for their gap, and only
        releasable packets enter the processing queue.  An arrival
        rejected here for back-pressure never reaches the reassembly
        buffer, so its sequence number will later be written off as a
        gap like any other loss.

        The legacy split entry points (``ingest_bytes`` for frames,
        ``ingest`` for objects only) survive as deprecation shims.

        Raises:
            ~repro.fleet.wire.WireFormatError: A bytes-like payload
                does not parse as a valid packet frame.
        """
        if isinstance(payload, (bytes, bytearray, memoryview)):
            return self._ingest_frame(payload)
        if self._journal is not None:
            self._journal.append_packet(payload.to_bytes(),
                                        payload.patient_id)
        return self._ingest_packet(payload)

    def _ingest_packet(self, packet: UplinkPacket) -> bool:
        """Object-path ingest: reassembly window, then the queue."""
        if len(self._queue) >= self.config.queue_capacity:
            self.dropped += 1
            if self._m is not None:
                self.queue_dropped_inc(packet.patient_id)
            return False
        channel = self.channel(packet.patient_id)
        if self._m is None:
            self._enqueue(self._reassembly_for(packet.patient_id).offer(
                packet, channel))
            return True
        before = self._reassembly_counters(channel)
        self._enqueue(self._reassembly_for(packet.patient_id).offer(
            packet, channel))
        self._note_reassembly(channel, before)
        self._m.ingested.inc(patient=packet.patient_id, kind=packet.kind)
        if self.obs.trace is not None:
            self.obs.trace.instant(
                packet.timestamp_s, "gateway.ingest",
                subject=packet.patient_id, kind=packet.kind,
                seq=packet.seq)
        return True

    def queue_dropped_inc(self, patient_id: str) -> None:
        """Account one back-pressure drop (shard-scope: local queue)."""
        self._m.queue_dropped.inc(patient=patient_id)

    @staticmethod
    def _reassembly_counters(channel: PatientChannel,
                             ) -> tuple[int, int, int, int]:
        """Snapshot the four reassembly counters of one channel."""
        return (channel.n_duplicates, channel.n_out_of_order,
                channel.n_gaps, channel.n_late_recovered)

    def _note_reassembly(self, channel: PatientChannel,
                         before: tuple[int, int, int, int]) -> None:
        """Convert channel-counter deltas into monotonic metric events.

        ``n_gaps`` alone is not monotonic (a late recovery decrements
        it), so the gap *write-off* count is reconstructed as
        ``Δn_gaps + Δn_late_recovered`` — a late recovery moves one
        unit from gaps to late_recovered and adds no new write-off.
        """
        dup, ooo, gaps, late = self._reassembly_counters(channel)
        events = (("duplicate", dup - before[0]),
                  ("out_of_order", ooo - before[1]),
                  ("gap", (gaps - before[2]) + (late - before[3])),
                  ("late_recovered", late - before[3]))
        for event, delta in events:
            if delta > 0:
                self._m.reassembly.inc(delta,
                                       patient=channel.patient_id,
                                       event=event)

    def _ingest_frame(self, data: bytes | bytearray | memoryview) -> bool:
        """Frame-path ingest: decode, flight-record, then object path.

        Raises:
            ~repro.fleet.wire.WireFormatError: The buffer does not
                parse as a valid packet frame (recorded as a wire-error
                anomaly when observability is attached, then re-raised).
        """
        from .wire import decode_packet, WireFormatError

        # Zero-copy discipline: decode_packet aliases immutable bytes
        # sources (read-only measurement views feed the drain batches
        # directly), and the journal CRCs/writes the frame buffer
        # without an owned copy.  Only the flight recorder — which
        # *retains* frames in its ring — takes ``bytes(data)``.
        if self._m is None:
            packet = decode_packet(data)
            if self._journal is not None:
                self._journal.append_packet(data, packet.patient_id)
            return self._ingest_packet(packet)
        try:
            packet = decode_packet(data)
        except WireFormatError as exc:
            import base64

            self.obs.flight.anomaly(
                ANOMALY_WIRE_ERROR, "unknown", self.obs.virtual_time_s,
                error=str(exc),
                frame_b64=base64.b64encode(bytes(data)).decode("ascii"))
            raise
        self.obs.flight.record_frame(packet.patient_id, bytes(data))
        if self._journal is not None:
            self._journal.append_packet(data, packet.patient_id)
        return self._ingest_packet(packet)

    def ingest_bytes(self, data: bytes | bytearray | memoryview) -> bool:
        """Deprecated: use :meth:`ingest`, which accepts wire frames.

        Thin shim kept for one release so external callers migrate
        smoothly; emits :class:`DeprecationWarning` and forwards to the
        unified entry point.
        """
        warnings.warn(
            "Gateway.ingest_bytes() is deprecated; Gateway.ingest() "
            "now dispatches on payload type and accepts wire frames "
            "directly", DeprecationWarning, stacklevel=2)
        return self.ingest(data)

    def flush_reassembly(self) -> int:
        """Force-release every reassembly buffer (end of run / timeout).

        Returns:
            Packets moved into the processing queue.
        """
        released = 0
        for patient_id, buffer in self._reassembly.items():
            channel = self.channel(patient_id)
            before = (self._reassembly_counters(channel)
                      if self._m is not None else None)
            released += self._enqueue(buffer.flush(channel))
            if before is not None:
                self._note_reassembly(channel, before)
        return released

    def expire_reassembly(self, now_s: float | None = None) -> int:
        """Write off gaps that stalled longer than the configured grace.

        Call once per scheduler sweep.  Each buffer's stall clock is
        anchored to its *head of line* (oldest buffered seq): the
        clock advances only while that same packet stays stalled and
        re-anchors when the head changes, so a partial release that
        does not free the head no longer resets it — head-of-line
        blocking stays bounded even behind multiple gaps.  With
        ``now_s`` given and ``reassembly_grace_s`` configured, expiry
        triggers once the head has been observed stalled for that many
        virtual seconds; otherwise after ``reassembly_gap_ticks``
        consecutive sweeps.  Stragglers arriving after their number
        was written off are still delivered (late) by the buffer.

        Args:
            now_s: Virtual time of this sweep (the scheduler passes
                its tick/event time); ``None`` falls back to pure
                sweep counting.

        Returns:
            Packets moved into the processing queue.
        """
        grace = self.config.reassembly_grace_s
        released = 0
        for patient_id, buffer in self._reassembly.items():
            if not buffer.buffer:
                buffer._clear_stall()
                continue
            buffer.note_sweep(now_s)
            if grace is not None and now_s is not None \
                    and math.isfinite(buffer.stall_since_s):
                expired = buffer.stalled_for_s(now_s) >= grace
            else:
                expired = (buffer.gap_ticks
                           >= self.config.reassembly_gap_ticks)
            if expired:
                channel = self.channel(patient_id)
                n_stalled = len(buffer.buffer)
                before = (self._reassembly_counters(channel)
                          if self._m is not None else None)
                released += self._enqueue(buffer.flush(channel))
                if before is not None:
                    self._note_reassembly(channel, before)
                    self._m.stalls.inc(patient=patient_id)
                    now = (self.obs.virtual_time_s if now_s is None
                           else now_s)
                    if self.obs.trace is not None:
                        self.obs.trace.instant(
                            now, "gateway.reassembly_stall",
                            subject=patient_id, n_released=n_stalled)
                    self.obs.flight.anomaly(
                        ANOMALY_REASSEMBLY_STALL, patient_id, now,
                        n_released=n_stalled,
                        gap_ticks=self.config.reassembly_gap_ticks)
        return released

    def _enqueue(self, packets: list[UplinkPacket]) -> int:
        """Append released packets, enforcing the queue bound strictly."""
        accepted = 0
        for packet in packets:
            if len(self._queue) >= self.config.queue_capacity:
                self.dropped += 1
                continue
            self._queue.append(packet)
            accepted += 1
        return accepted

    def _reassembly_for(self, patient_id: str) -> _ReassemblyBuffer:
        if patient_id not in self._reassembly:
            self._reassembly[patient_id] = _ReassemblyBuffer(
                self.config.reassembly_window)
        return self._reassembly[patient_id]

    def drain(self, max_packets: int | None = None,
              ) -> list[ReconstructedExcerpt]:
        """Process up to ``max_packets`` queued packets (all by default).

        Reconstruction is batched: every CS window drained this call is
        grouped by encoder geometry and each group is recovered in one
        vectorized :meth:`JointCsDecoder.recover_batch` pass (stacked
        matrix products across windows), instead of running FISTA one
        window at a time.  Outputs keep arrival order.
        """
        budget = len(self._queue) if max_packets is None \
            else min(max_packets, len(self._queue))
        packets = [self._queue.popleft() for _ in range(budget)]
        recoveries = self._recover_all(packets)
        return [self._process(packet, recovery)
                for packet, recovery in zip(packets, recoveries)]

    def _recover_all(self, packets: list[UplinkPacket],
                     ) -> list[list[MultiLeadRecovery]]:
        """Batch-reconstruct every frame of ``packets`` by geometry.

        Returns:
            Per-packet lists of per-frame recoveries, aligned with the
            input order.
        """
        groups: dict[tuple, list[tuple[int, int]]] = {}
        for i, packet in enumerate(packets):
            key = self._decoder_key(packet)
            for f in range(packet.n_frames):
                groups.setdefault(key, []).append((i, f))
        out: list[list[MultiLeadRecovery | None]] = [
            [None] * packet.n_frames for packet in packets]
        for key, refs in groups.items():
            decoder = self._decoder_for(packets[refs[0][0]])
            frames = [packets[i].frames[f] for i, f in refs]
            if self._m is not None:
                self._m.batch_windows.observe(
                    len(frames),
                    n_leads=str(key[0]), window_n=str(key[1]),
                    cr_percent=str(key[2]))
            for (i, f), recovery in zip(refs,
                                        decoder.recover_batch(frames)):
                out[i][f] = recovery
        return out

    def channel(self, patient_id: str) -> PatientChannel:
        """The (created-on-demand) channel of one patient."""
        if patient_id not in self.channels:
            self.channels[patient_id] = PatientChannel(patient_id)
        return self.channels[patient_id]

    def _process(self, packet: UplinkPacket,
                 recoveries: list[MultiLeadRecovery] | None = None,
                 ) -> ReconstructedExcerpt:
        """Demux, reconstruct and (for alarms) confirm one packet.

        Args:
            packet: The packet to process.
            recoveries: Pre-computed per-frame reconstructions from the
                batched drain path; recovered frame by frame here when
                omitted.
        """
        channel = self.channel(packet.patient_id)
        channel.payload_bits += packet.payload_bits
        channel.last_timestamp_s = max(channel.last_timestamp_s,
                                       packet.timestamp_s)
        channel.last_mode = packet.mode
        if np.isfinite(packet.soc):
            channel.last_soc = packet.soc
        pieces = []
        snrs = []
        if packet.frames:
            decoder = self._decoder_for(packet)
            for f, frame in enumerate(packet.frames):
                recovery = (recoveries[f] if recoveries is not None
                            else decoder.recover(frame))
                pieces.append(recovery.windows)
                if packet.reference is not None:
                    snrs.extend(
                        reconstruction_snr_db(packet.reference[f, lead],
                                              recovery.windows[lead])
                        for lead in range(packet.n_leads))
        elif packet.mode == MODE_RAW and packet.reference is not None:
            # Raw-mode excerpts ship verbatim samples: nothing to
            # reconstruct, nothing to score (the copy is exact).
            pieces = [packet.reference[f]
                      for f in range(packet.reference.shape[0])]
        signal = np.concatenate(pieces, axis=1) if pieces \
            else np.zeros((packet.n_leads, 0))
        snr = float(np.mean(snrs)) if snrs else float("nan")

        confirmed: bool | None = None
        if packet.kind == PACKET_ALARM:
            channel.n_alarms += 1
            confirmed = (self._confirm(signal, packet.fs)
                         if self.config.confirm_alarms else True)
            if confirmed:
                channel.n_confirmed += 1
        elif packet.kind == PACKET_TELEMETRY:
            channel.n_telemetry += 1
        else:
            channel.n_excerpts += 1
        if np.isfinite(snr):
            channel.snrs.append(snr)
        if self._m is not None:
            self._note_processed(packet, signal, snr, confirmed)
        return ReconstructedExcerpt(
            patient_id=packet.patient_id,
            timestamp_s=packet.timestamp_s,
            kind=packet.kind,
            signal=signal,
            snr_db=snr,
            confirmed=confirmed,
            mean_hr_bpm=packet.mean_hr_bpm,
            mode=packet.mode,
            soc=packet.soc,
        )

    def _note_processed(self, packet: UplinkPacket, signal: np.ndarray,
                        snr: float, confirmed: bool | None) -> None:
        """Out-of-band accounting for one drained packet.

        Counters, the SNR histogram, trace instants at the packet's
        virtual timestamp, and the three anomaly detectors (non-finite
        reconstruction, alarm burst) — called only when observability
        is enabled, after processing is complete, so it cannot alter
        any processing outcome.
        """
        pid = packet.patient_id
        t_s = packet.timestamp_s
        self._m.processed.inc(patient=pid, kind=packet.kind)
        if np.isfinite(snr):
            self._m.snr.observe(snr, patient=pid)
        if signal.size and not np.all(np.isfinite(signal)):
            self._m.nan_guard.inc(patient=pid)
            if self.obs.trace is not None:
                self.obs.trace.instant(t_s, "gateway.nan_guard",
                                       subject=pid, kind=packet.kind)
            self.obs.flight.anomaly(ANOMALY_NAN_GUARD, pid, t_s,
                                    kind=packet.kind, seq=packet.seq)
        if confirmed is not None:
            verdict = "confirmed" if confirmed else "refuted"
            self._m.alarms.inc(patient=pid, verdict=verdict)
            if self.obs.trace is not None:
                self.obs.trace.instant(t_s, "gateway.alarm", subject=pid,
                                       verdict=verdict)
            if self.obs.flight.note_alarm(pid, t_s):
                self.obs.flight.anomaly(
                    ANOMALY_ALARM_BURST, pid, t_s,
                    threshold=self.obs.flight.alarm_burst_threshold,
                    window_s=self.obs.flight.alarm_burst_window_s)

    def diagnostics(self) -> dict:
        """Structured snapshot of every channel's link-health counters.

        The supported way to read reassembly and confirmation state —
        triage and operators should use this instead of spelunking
        :class:`PatientChannel` attributes.

        Returns:
            ``{"channels": {pid: {...}}, "totals": {...}, "queue":
            {...}}`` with patients sorted by id.  Channel entries carry
            the ingest counters (``n_excerpts``/``n_alarms``/
            ``n_confirmed``/``n_telemetry``/``payload_bits``), the
            reassembly counters (``n_duplicates``/``n_out_of_order``/
            ``n_gaps``/``n_late_recovered``), live reassembly state
            (``pending_reassembly``/``stalled_ticks``) and telemetry
            (``last_timestamp_s``/``mean_snr_db``/``last_mode``/
            ``last_soc``).  ``totals`` sums the integer counters across
            channels.
        """
        counter_keys = ("n_excerpts", "n_alarms", "n_confirmed",
                        "n_telemetry", "payload_bits", "n_duplicates",
                        "n_out_of_order", "n_gaps", "n_late_recovered")
        channels: dict[str, dict] = {}
        totals = dict.fromkeys(counter_keys, 0)
        for pid in sorted(self.channels):
            ch = self.channels[pid]
            buf = self._reassembly.get(pid)
            entry = {key: getattr(ch, key) for key in counter_keys}
            entry.update(
                pending_reassembly=len(buf.buffer) if buf else 0,
                stalled_ticks=buf.gap_ticks if buf else 0,
                last_timestamp_s=ch.last_timestamp_s,
                mean_snr_db=ch.mean_snr_db,
                last_mode=ch.last_mode,
                last_soc=ch.last_soc,
            )
            channels[pid] = entry
            for key in counter_keys:
                totals[key] += entry[key]
        return {
            "channels": channels,
            "totals": totals,
            "queue": {"pending": len(self._queue),
                      "capacity": self.config.queue_capacity,
                      "dropped": self.dropped},
        }

    @staticmethod
    def _decoder_key(packet: UplinkPacket) -> tuple:
        """Encoder-geometry key identifying one decoder/matrix family."""
        return (packet.n_leads, packet.window_n, packet.cr_percent,
                packet.quant_bits, packet.cs_seed)

    def _decoder_for(self, packet: UplinkPacket) -> JointCsDecoder:
        """Cached joint decoder matching the packet's encoder geometry."""
        key = self._decoder_key(packet)
        if key not in self._decoders:
            encoder = MultiLeadCsEncoder(
                n_leads=packet.n_leads, n=packet.window_n,
                cr_percent=packet.cr_percent,
                quant_bits=packet.quant_bits, seed=packet.cs_seed)
            self._decoders[key] = JointCsDecoder(
                encoder.sensing_matrices, wavelet=self.config.wavelet,
                n_iter=self.config.n_iter)
        return self._decoders[key]

    def _confirm(self, signal: np.ndarray, fs: float) -> bool:
        """Re-check an alarm on the reconstructed signal.

        Delineates the best available lead and measures RR irregularity;
        refutes the alarm only on clear evidence of a regular rhythm.
        """
        if signal.size == 0:
            return True
        lead = signal[min(1, signal.shape[0] - 1)]  # lead II morphology
        peaks = RPeakDetector(fs).detect(lead)
        if peaks.shape[0] < self.config.min_confirm_beats:
            return True  # not enough evidence to overrule the node
        rr = np.diff(np.asarray(peaks, dtype=float)) / fs
        mean = float(np.mean(rr))
        if mean <= 0:
            return True
        cv = float(np.std(rr)) / mean
        return cv >= self.config.rr_cv_confirm
