"""Declarative scenario DSL: timed fault events + link impairments.

A :class:`ScenarioSpec` describes everything messy about one simulated
deployment — motion-noise bursts and baseline-wander episodes on the
electrodes, lead-off/reattach and sensor saturation at the front end,
and the lossy low-power radio between node and gateway (packet loss,
duplication, reordering, bounded delay/jitter; cf. the chestbelt system
of Ai et al. 2020 and the remote-monitoring link budget of Hadizadeh et
al. 2019 in PAPERS.md).

The spec itself contains **no randomness**: every stochastic decision
(noise waveforms, per-packet loss draws) is made later from a seed
derived with :func:`derive_seed` from one campaign master seed plus the
scenario and patient names, so an entire campaign replays bit-identically
from a single integer.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

#: Signal-domain fault kinds an event may carry.
FAULT_MOTION = "motion_burst"
FAULT_WANDER = "baseline_wander"
FAULT_LEAD_OFF = "lead_off"
FAULT_SATURATION = "saturation"

#: Node-state fault kinds: they do not corrupt the waveform — they act
#: on the node's EnergyGovernor loop (battery drain, forced acuity).
FAULT_BATTERY_DRAIN = "battery_drain"
FAULT_GOVERNOR_STRESS = "governor_stress"

#: Faults applied to the synthesized waveform by
#: :func:`repro.scenarios.apply_faults`.
SIGNAL_FAULT_KINDS = (FAULT_MOTION, FAULT_WANDER, FAULT_LEAD_OFF,
                      FAULT_SATURATION)

#: Faults routed to the governed scheduler's battery/acuity hooks.
NODE_FAULT_KINDS = (FAULT_BATTERY_DRAIN, FAULT_GOVERNOR_STRESS)

FAULT_KINDS = SIGNAL_FAULT_KINDS + NODE_FAULT_KINDS


def derive_seed(master_seed: int, *names: object) -> int:
    """Derive a stream seed from the master seed and a name path.

    Stable across processes and Python versions (unlike ``hash``):
    the master seed and each name are folded through BLAKE2s.

    Args:
        master_seed: The campaign master seed.
        *names: Any reprable path components (scenario name, patient
            id, stream label ...).
    """
    digest = hashlib.blake2s(digest_size=8)
    digest.update(str(int(master_seed)).encode())
    for name in names:
        digest.update(b"/")
        digest.update(repr(name).encode())
    return int.from_bytes(digest.digest(), "big") % (2 ** 31)


@dataclass(frozen=True)
class FaultEvent:
    """One timed signal-domain fault episode.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        start_s: Episode start within the recording.
        duration_s: Episode length.
        severity: Fault magnitude.  For the signal faults it is an
            amplitude in mV — the added-artifact amplitude for
            ``motion_burst``/``baseline_wander``, the rail level for
            ``saturation`` (samples clip to ±severity); ignored for
            ``lead_off`` (the lead reads ~0 while detached).  For
            ``battery_drain`` it is the parasitic load in **watts**
            drawn on top of the node's mode power while the episode
            lasts; ignored for ``governor_stress`` (the episode forces
            the patient's acuity to ``alert``).
        lead: Affected lead index, or ``None`` for every lead (a 1-lead
            node simply clamps to its available leads); meaningless for
            the node-state faults.
    """

    kind: str
    start_s: float
    duration_s: float
    severity: float = 1.0
    lead: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {FAULT_KINDS}")
        if self.start_s < 0:
            raise ValueError("fault start_s must be >= 0")
        if self.duration_s <= 0:
            raise ValueError("fault duration_s must be positive")
        if not math.isfinite(self.severity) or self.severity < 0:
            # A NaN severity would sail through ``< 0`` and (for
            # ``battery_drain``) silently corrupt SoC and
            # hours-to-empty downstream — reject it at the spec.
            raise ValueError("fault severity must be finite and >= 0, "
                             f"got {self.severity}")

    @property
    def stop_s(self) -> float:
        """Episode end time."""
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class LinkSpec:
    """Uplink channel impairments between node and gateway.

    Routine excerpts are best-effort: a lost excerpt is gone.  Alarm
    packets use acknowledged delivery (the §V radio retransmits until
    the gateway acks), so loss can only *delay* an alarm — the modelled
    cost of the no-false-drop guarantee.

    Attributes:
        loss_rate: Per-packet uniform loss probability.
        duplicate_rate: Probability a delivered packet arrives twice.
        reorder_rate: Probability a delivered packet is held back by
            ``reorder_delay_s`` (overtaken by later traffic).
        reorder_delay_s: Extra delay of a reordered packet.
        jitter_s: Uniform random delivery delay in ``[0, jitter_s)``.
        alarm_retx_delay_s: Delay added per alarm retransmission.
        max_alarm_retx: Safety cap on alarm retransmissions.
    """

    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_delay_s: float = 45.0
    jitter_s: float = 0.0
    alarm_retx_delay_s: float = 5.0
    max_alarm_retx: int = 8

    def __post_init__(self) -> None:
        for name in ("loss_rate", "duplicate_rate", "reorder_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1)")
        if self.jitter_s < 0 or self.reorder_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.max_alarm_retx < 1:
            raise ValueError("max_alarm_retx must be >= 1")

    @property
    def impaired(self) -> bool:
        """Whether this link differs from a perfect channel."""
        return (self.loss_rate > 0 or self.duplicate_rate > 0
                or self.reorder_rate > 0 or self.jitter_s > 0)


@dataclass(frozen=True)
class ScenarioSpec:
    """One named deployment scenario: signal faults + link impairments.

    Attributes:
        name: Unique scenario identifier (keys seed derivation — two
            scenarios with the same name replay identically).
        description: Human-readable one-liner for reports.
        faults: Timed signal-domain fault episodes, applied to every
            patient's recording.
        link: Uplink channel impairments.
    """

    name: str
    description: str = ""
    faults: tuple[FaultEvent, ...] = ()
    link: LinkSpec = field(default_factory=LinkSpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must not be empty")
        object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def signal_faults(self) -> tuple[FaultEvent, ...]:
        """Waveform-corrupting episodes (fed to ``apply_faults``)."""
        return tuple(f for f in self.faults
                     if f.kind in SIGNAL_FAULT_KINDS)

    @property
    def node_faults(self) -> tuple[FaultEvent, ...]:
        """Node-state episodes (fed to the governed scheduler hooks)."""
        return tuple(f for f in self.faults if f.kind in NODE_FAULT_KINDS)


def clean_scenario() -> ScenarioSpec:
    """The control: clean electrodes, perfect link."""
    return ScenarioSpec(name="clean",
                        description="no faults, perfect uplink")


def motion_burst_scenario(duration_s: float, n_bursts: int = 3,
                          severity_mv: float = 1.2) -> ScenarioSpec:
    """Ambulatory motion: periodic artifact bursts plus wander.

    Bursts are spread evenly over the recording (deterministic — the
    *waveforms* inside each burst are seeded per patient).
    """
    if n_bursts < 1:
        raise ValueError("need at least one burst")
    burst_len = max(2.0, 0.08 * duration_s)
    step = duration_s / (n_bursts + 1)
    faults = [FaultEvent(FAULT_MOTION, start_s=(i + 1) * step,
                         duration_s=burst_len, severity=severity_mv)
              for i in range(n_bursts)]
    faults.append(FaultEvent(FAULT_WANDER, start_s=0.0,
                             duration_s=duration_s, severity=0.4))
    return ScenarioSpec(
        name="motion-burst",
        description=f"{n_bursts} motion bursts of {burst_len:.0f} s "
                    f"at {severity_mv} mV + continuous baseline wander",
        faults=tuple(faults),
    )


def packet_loss_scenario(loss_rate: float = 0.10) -> ScenarioSpec:
    """A lossy radio: uniform loss with mild duplication and jitter."""
    return ScenarioSpec(
        name=f"loss-{int(round(100 * loss_rate))}pct",
        description=f"{100 * loss_rate:.0f} % uniform packet loss, "
                    "2 % duplication, 5 s jitter",
        link=LinkSpec(loss_rate=loss_rate, duplicate_rate=0.02,
                      jitter_s=5.0),
    )


def lead_off_scenario(duration_s: float,
                      detach_fraction: float = 0.3) -> ScenarioSpec:
    """Mid-recording lead-off/reattach plus front-end saturation.

    The primary (delineation) lead detaches for ``detach_fraction`` of
    the recording and reattaches; a short saturation episode follows the
    reattachment (electrode recharging against the rail).
    """
    if not 0.0 < detach_fraction < 1.0:
        raise ValueError("detach_fraction must be in (0, 1)")
    off_start = 0.3 * duration_s
    off_len = detach_fraction * duration_s
    sat_start = min(off_start + off_len, 0.95 * duration_s)
    return ScenarioSpec(
        name="lead-off",
        description=f"lead II off for {off_len:.0f} s then saturated "
                    "reattach",
        faults=(
            FaultEvent(FAULT_LEAD_OFF, start_s=off_start,
                       duration_s=off_len, lead=1),
            FaultEvent(FAULT_SATURATION, start_s=sat_start,
                       duration_s=max(1.0, 0.05 * duration_s),
                       severity=1.5, lead=1),
        ),
    )


def stress_scenario(duration_s: float) -> ScenarioSpec:
    """Everything at once: motion + wander + a degraded radio."""
    motion = motion_burst_scenario(duration_s, n_bursts=4,
                                   severity_mv=1.5)
    return ScenarioSpec(
        name="stress",
        description="motion bursts + wander + 20 % loss, duplication, "
                    "reordering and jitter",
        faults=motion.faults,
        link=LinkSpec(loss_rate=0.20, duplicate_rate=0.05,
                      reorder_rate=0.10, reorder_delay_s=30.0,
                      jitter_s=10.0),
    )


def battery_drain_scenario(duration_s: float,
                           drain_w: float = 0.02,
                           onset_fraction: float = 0.2) -> ScenarioSpec:
    """A parasitic battery drain forcing the governor down-mode.

    From ``onset_fraction`` of the recording onward the node's battery
    drains at ``drain_w`` on top of the operating-mode power (cold
    weather, a stuck peripheral, radio interference retries).  A
    governed node must walk down the mode ladder as the state of charge
    collapses; an ungoverned node just runs flat.  The waveform is left
    untouched — any detection change under this scenario is a bug.
    """
    if drain_w < 0:
        raise ValueError("drain_w must be non-negative")
    onset = onset_fraction * duration_s
    return ScenarioSpec(
        name="battery-drain",
        description=f"{1e3 * drain_w:.0f} mW parasitic battery drain "
                    f"from {onset:.0f} s onward",
        faults=(
            FaultEvent(FAULT_BATTERY_DRAIN, start_s=onset,
                       duration_s=duration_s - onset, severity=drain_w),
        ),
    )


def governor_stress_scenario(duration_s: float,
                             drain_w: float = 0.02) -> ScenarioSpec:
    """Acuity and budget pulling the governor in opposite directions.

    A forced-``alert`` episode mid-recording (a deteriorating patient)
    demands high-fidelity streaming exactly while a parasitic drain is
    collapsing the battery — the governor must upshift for the alert
    regardless of budget, then fall back down the ladder once the
    episode clears.  Exercises every transition edge deterministically.
    """
    third = duration_s / 3.0
    return ScenarioSpec(
        name="governor-stress",
        description="forced-alert episode during a "
                    f"{1e3 * drain_w:.0f} mW battery drain",
        faults=(
            FaultEvent(FAULT_BATTERY_DRAIN, start_s=0.0,
                       duration_s=duration_s, severity=drain_w),
            FaultEvent(FAULT_GOVERNOR_STRESS, start_s=third,
                       duration_s=third),
        ),
    )


def governed_grid(duration_s: float) -> tuple[ScenarioSpec, ...]:
    """The governed-campaign grid: clean control plus the two
    governor-exercising scenarios (battery drain, governor stress)."""
    return (
        clean_scenario(),
        battery_drain_scenario(duration_s),
        governor_stress_scenario(duration_s),
    )


def default_grid(duration_s: float) -> tuple[ScenarioSpec, ...]:
    """The standard 4-scenario campaign grid of the benchmark/example:
    clean control, motion bursts, 10 % packet loss, lead-off."""
    return (
        clean_scenario(),
        motion_burst_scenario(duration_s),
        packet_loss_scenario(0.10),
        lead_off_scenario(duration_s),
    )
