"""Shared helpers for the WBSN kernels (layout, quantization, references).

Kernel programs are *identical* on every core of the MC platform: each
core's private bank holds its own slice of the data (its ECG lead, its
block of projection rows) at the same addresses, so the instruction
streams stay aligned and the broadcast interconnect merges the fetches.
The single-core (SC) variant runs the same inner code inside an outer
lead/block loop.

Signals are quantized to integer millivolt-thousandths, matching the
integer-only arithmetic of the platform (§IV-A).
"""

from __future__ import annotations

import numpy as np

#: Fixed-point scale for converting mV waveforms to integers.
SIGNAL_SCALE = 1000.0


def quantize_signal(x: np.ndarray, scale: float = SIGNAL_SCALE) -> np.ndarray:
    """Quantize a waveform to int64 (the platform's word type)."""
    return np.rint(np.asarray(x, dtype=float) * scale).astype(np.int64)


def trailing_extremum(x: np.ndarray, width: int, mode: str) -> np.ndarray:
    """NumPy reference for the kernels' trailing sliding min/max.

    The kernels compute ``out[i] = extremum(x[i - width + 1 .. i])`` for
    ``i >= width - 1`` and copy the input for the warm-up prefix.
    """
    x = np.asarray(x, dtype=np.int64)
    out = x.copy()
    fn = np.min if mode == "min" else np.max
    for i in range(width - 1, x.shape[0]):
        out[i] = fn(x[i - width + 1:i + 1])
    return out


def opening_reference(x: np.ndarray, width: int) -> np.ndarray:
    """Reference for the 3L-MF kernel: erosion then dilation."""
    return trailing_extremum(trailing_extremum(x, width, "min"), width, "max")


def mmd_reference(x: np.ndarray, width: int) -> np.ndarray:
    """Reference for the 3L-MMD transform: dil + ero - 2x (unnormalized)."""
    x = np.asarray(x, dtype=np.int64)
    dil = trailing_extremum(x, width, "max")
    ero = trailing_extremum(x, width, "min")
    return dil + ero - 2 * x


def argmin_reference(values: np.ndarray, start: int) -> tuple[int, int]:
    """Reference for the kernels' argmin scan over ``values[start:]``."""
    values = np.asarray(values, dtype=np.int64)
    idx = start + int(np.argmin(values[start:]))
    return idx, int(values[idx])


def rp_scores_reference(window: np.ndarray, rows: np.ndarray,
                        centers: np.ndarray) -> np.ndarray:
    """Reference for RP-CLASS: per-class L1 scores over projected features.

    Args:
        window: Integer beat window, shape ``(n,)``.
        rows: Integer projection rows, shape ``(k, n)``.
        centers: Integer class centers, shape ``(n_classes, k)``.

    Returns:
        Per-class scores (lower = better match).
    """
    features = rows.astype(np.int64) @ window.astype(np.int64)
    return np.abs(features[None, :] - centers.astype(np.int64)).sum(axis=1)
