"""Joint multi-lead CS recovery with group sparsity (ref [6], §III-A).

Multi-lead ECGs share wavelet support: the same beat produces coefficients
at the same locations on every lead, scaled by the lead projection ("a
strong correlation between the sparsity structure among the leads, each
lead therefore conveying useful information about other leads").  The
joint decoder exploits this with an l2,1 mixed norm over coefficient rows:

    min_A  0.5 * sum_l ||y_l - Phi_l W^T a_l||^2 + lam * sum_i ||A[i, :]||_2

solved by block FISTA (row-wise group soft thresholding) over *per-lead*
sensing matrices, followed by a per-lead least-squares debias on the union
row support.

Why per-lead matrices matter: with a single shared matrix and strongly
correlated leads, the measurement blocks are nearly proportional and carry
no extra information about the common support.  Giving each lead its own
sparse-binary matrix (same node-side cost) turns the stack into ``L * m``
complementary looks at the shared support — that is what buys the extra
compression Fig. 5 shows for multi-lead CS (20 dB at CR 72.7 % vs 65.9 %
single-lead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..dsp.wavelets import orthogonal_dwt_matrix
from .encoder import EncodedWindow
from .matrices import SensingMatrix


def group_soft_threshold(rows: np.ndarray, threshold: float) -> np.ndarray:
    """Row-wise group shrinkage (the l2,1 proximal operator).

    Args:
        rows: Coefficient matrix of shape ``(n, L)``.
        threshold: Shrinkage amount applied to each row's l2 norm.
    """
    norms = np.linalg.norm(rows, axis=1, keepdims=True)
    scale = np.maximum(0.0, 1.0 - threshold / np.maximum(norms, 1e-12))
    return rows * scale


def group_fista(operators: Sequence[np.ndarray], ys: Sequence[np.ndarray],
                lam: float, n_iter: int = 400,
                tol: float = 1e-7) -> np.ndarray:
    """Block FISTA for the l2,1-regularized multi-lead problem.

    Args:
        operators: Per-lead measurement operators, each ``(m, n)``.
        ys: Per-lead measurement vectors.
        lam: Group-l1 weight (absolute).
        n_iter: Maximum iterations.
        tol: Relative-motion stopping criterion.

    Returns:
        Coefficient matrix of shape ``(n, L)``.
    """
    n_leads = len(operators)
    if n_leads == 0 or n_leads != len(ys):
        raise ValueError("need one measurement vector per operator")
    n = operators[0].shape[1]
    lipschitz = max(float(np.linalg.norm(A, 2)) ** 2 for A in operators)
    if lipschitz == 0.0:
        return np.zeros((n, n_leads))
    step = 1.0 / lipschitz
    alpha = np.zeros((n, n_leads))
    momentum = alpha.copy()
    t = 1.0
    for _ in range(n_iter):
        grad = np.stack(
            [operators[l].T @ (operators[l] @ momentum[:, l] - ys[l])
             for l in range(n_leads)], axis=1)
        new_alpha = group_soft_threshold(momentum - step * grad, lam * step)
        t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t * t))
        momentum = new_alpha + ((t - 1.0) / t_next) * (new_alpha - alpha)
        moved = np.linalg.norm(new_alpha - alpha)
        scale = max(1e-12, np.linalg.norm(alpha))
        alpha = new_alpha
        t = t_next
        if moved / scale < tol:
            break
    return alpha


@dataclass
class MultiLeadRecovery:
    """Joint reconstruction output.

    Attributes:
        windows: Reconstructed windows, shape ``(L, n)``.
        coefficients: Recovered coefficients, shape ``(n, L)``.
        support_size: Rows kept by the group threshold.
    """

    windows: np.ndarray
    coefficients: np.ndarray
    support_size: int


class JointCsDecoder:
    """Group-sparse joint decoder for multi-lead windows.

    Args:
        sensing: Per-lead sensing matrices (a single matrix is accepted
            and replicated, but per-lead matrices are what produce the
            multi-lead gain — see the module docstring).
        wavelet: Sparsity basis name.
        lam_rel: Group-l1 weight relative to the largest row norm of the
            stacked correlations.
        n_iter: FISTA iteration budget.
        n_leads: Number of leads when a single matrix is replicated.
    """

    def __init__(self, sensing: SensingMatrix | Sequence[SensingMatrix],
                 wavelet: str = "db4", lam_rel: float = 0.002,
                 n_iter: int = 400, n_leads: int = 3) -> None:
        if isinstance(sensing, SensingMatrix):
            matrices = [sensing] * n_leads
        else:
            matrices = list(sensing)
        if not matrices:
            raise ValueError("need at least one sensing matrix")
        self.sensing = matrices
        n = matrices[0].n
        if any(mt.n != n for mt in matrices):
            raise ValueError("all leads must share the window length")
        self.basis = orthogonal_dwt_matrix(n, wavelet)
        self.operators = [mt.matrix @ self.basis.T for mt in matrices]
        self.lam_rel = lam_rel
        self.n_iter = n_iter

    @property
    def n_leads(self) -> int:
        """Number of leads."""
        return len(self.operators)

    def recover(self,
                measurements: np.ndarray | Sequence[np.ndarray]
                | Sequence[EncodedWindow]) -> MultiLeadRecovery:
        """Jointly reconstruct all leads of one window.

        Args:
            measurements: One measurement vector per lead: an ``(L, m)``
                array, a sequence of vectors, or the encoder's
                :class:`EncodedWindow` list.
        """
        ys = []
        for item in measurements:
            if isinstance(item, EncodedWindow):
                ys.append(np.asarray(item.measurements, dtype=float))
            else:
                ys.append(np.asarray(item, dtype=float))
        if len(ys) != self.n_leads:
            raise ValueError(f"expected {self.n_leads} measurement vectors, "
                             f"got {len(ys)}")
        correlations = np.stack(
            [self.operators[l].T @ ys[l] for l in range(self.n_leads)],
            axis=1)
        lam = self.lam_rel * float(
            np.max(np.linalg.norm(correlations, axis=1)))
        alpha = group_fista(self.operators, ys, lam, n_iter=self.n_iter)
        alpha = self._debias(ys, alpha)
        windows = (self.basis.T @ alpha).T
        support = int(np.count_nonzero(np.linalg.norm(alpha, axis=1)))
        return MultiLeadRecovery(windows=windows, coefficients=alpha,
                                 support_size=support)

    def _debias(self, ys: Sequence[np.ndarray], alpha: np.ndarray,
                rel_support: float = 0.005) -> np.ndarray:
        """Per-lead least squares on the union (row) support."""
        row_norms = np.linalg.norm(alpha, axis=1)
        peak = row_norms.max() if row_norms.size else 0.0
        if peak == 0.0:
            return alpha
        support = np.flatnonzero(row_norms > rel_support * peak)
        m_min = min(A.shape[0] for A in self.operators)
        if support.shape[0] == 0 or support.shape[0] > m_min:
            return alpha
        refined = np.zeros_like(alpha)
        for l in range(self.n_leads):
            sub = self.operators[l][:, support]
            coef, *_ = np.linalg.lstsq(sub, ys[l], rcond=None)
            refined[support, l] = coef
        return refined
