"""Wavelet machinery: the à-trous quadratic-spline bank and orthogonal DWTs.

Two distinct wavelet tools appear in the paper:

* The **delineator** of [12] uses the undecimated (à trous) dyadic wavelet
  transform with the quadratic-spline wavelet of Mallat, whose filter bank
  has the integer-friendly coefficients ``h = [1, 3, 3, 1] / 8`` and
  ``g = [2, -2]`` — a "proper choice of the filter bank coefficients"
  (§IV-A) that needs only shifts and adds on the node.

* The **compressed-sensing** recovery (refs [4][6][16]) expresses ECG
  windows in an orthogonal Daubechies basis, in which they are sparse.

Both are implemented here from scratch (no pywt available/needed).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

#: Quadratic-spline smoothing filter (Mallat / Martinez et al.), sums to 1.
SPLINE_LOWPASS = np.array([1.0, 3.0, 3.0, 1.0]) / 8.0
#: Quadratic-spline wavelet (derivative) filter.
SPLINE_HIGHPASS = np.array([2.0, -2.0])

# Orthogonal Daubechies scaling filters (standard published values,
# normalized so that sum(h**2) == 1 and sum(h) == sqrt(2)).
_DAUBECHIES = {
    "haar": np.array([1.0, 1.0]) / np.sqrt(2.0),
    "db2": np.array([
        0.48296291314469025, 0.836516303737469,
        0.22414386804185735, -0.12940952255092145,
    ]),
    "db4": np.array([
        0.23037781330885523, 0.7148465705525415,
        0.6308807679295904, -0.02798376941698385,
        -0.18703481171888114, 0.030841381835986965,
        0.032883011666982945, -0.010597401784997278,
    ]),
}


def daubechies_filters(name: str) -> tuple[np.ndarray, np.ndarray]:
    """Return the (lowpass, highpass) analysis pair of a Daubechies wavelet.

    The highpass is the quadrature mirror ``g[k] = (-1)^k h[L-1-k]``.

    Raises:
        KeyError: For unknown wavelet names.
    """
    try:
        h = _DAUBECHIES[name]
    except KeyError:
        raise KeyError(f"unknown wavelet {name!r}; "
                       f"available: {sorted(_DAUBECHIES)}") from None
    length = h.shape[0]
    g = np.array([(-1) ** k * h[length - 1 - k] for k in range(length)])
    return h, g


def _periodic_analysis_step(x: np.ndarray, h: np.ndarray,
                            g: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """One level of the periodic orthogonal DWT: x -> (approx, detail).

    Operates along axis 0, so a 2-D input transforms each column
    independently (used to build the basis matrix in one shot).
    """
    n = x.shape[0]
    half = n // 2
    length = h.shape[0]
    tail_shape = (half,) + x.shape[1:]
    approx = np.zeros(tail_shape)
    detail = np.zeros(tail_shape)
    base = 2 * np.arange(half)
    for m in range(length):
        samples = x[(base + m) % n]
        approx += h[m] * samples
        detail += g[m] * samples
    return approx, detail


def max_dwt_levels(n: int, wavelet: str = "db4") -> int:
    """Largest level count so every stage has at least ``len(h)`` samples."""
    h, _ = daubechies_filters(wavelet)
    levels = 0
    while n >= 2 * h.shape[0] and n % 2 == 0:
        n //= 2
        levels += 1
    return levels


def orthogonal_dwt_matrix(n: int, wavelet: str = "db4",
                          levels: int | None = None) -> np.ndarray:
    """Build the ``n x n`` orthonormal analysis matrix ``W`` (alpha = W x).

    Results are cached per ``(n, wavelet, levels)`` since the CS benchmarks
    request the same basis for thousands of windows.

    The synthesis operator is ``W.T`` (the matrix is orthonormal, which the
    tests verify).  Building the explicit matrix keeps the FISTA/OMP
    recovery code simple and is cheap for the window sizes the paper uses
    (n = 256 ... 1024).

    Args:
        n: Window length; must be divisible by ``2**levels``.
        wavelet: One of ``haar``, ``db2``, ``db4``.
        levels: Decomposition depth (defaults to the maximum possible).
    """
    if levels is None:
        levels = max_dwt_levels(n, wavelet)
    if levels < 1:
        raise ValueError(f"window of {n} samples is too short for {wavelet}")
    if n % (2 ** levels) != 0:
        raise ValueError(f"n={n} not divisible by 2**levels={2 ** levels}")
    return _dwt_matrix_cached(n, wavelet, levels).copy()


@lru_cache(maxsize=16)
def _dwt_matrix_cached(n: int, wavelet: str, levels: int) -> np.ndarray:
    """Uncached body of :func:`orthogonal_dwt_matrix`."""
    h, g = daubechies_filters(wavelet)
    return _full_analysis(np.eye(n), h, g, levels)


def _full_analysis(x: np.ndarray, h: np.ndarray, g: np.ndarray,
                   levels: int) -> np.ndarray:
    """Multi-level periodic DWT, coefficients packed [a_L, d_L, ..., d_1]."""
    details: list[np.ndarray] = []
    approx = x
    for _ in range(levels):
        approx, detail = _periodic_analysis_step(approx, h, g)
        details.append(detail)
    pieces = [approx] + list(reversed(details))
    return np.concatenate(pieces)


def atrous_swt(x: np.ndarray, levels: int = 5,
               lowpass: np.ndarray = SPLINE_LOWPASS,
               highpass: np.ndarray = SPLINE_HIGHPASS) -> np.ndarray:
    """Undecimated dyadic wavelet transform (algorithme à trous).

    At each scale the filters are upsampled by inserting ``2**(k-1) - 1``
    zeros between taps ("holes").  Convolutions use edge-replicated padding
    and the outputs are delay-compensated so that a wavelet maximum at
    scale ``2^k`` is aligned with the generating slope in ``x`` — the
    alignment on which the delineator's zero-crossing rules rely.

    Args:
        x: Input signal.
        levels: Number of dyadic scales (the delineator uses up to 5).

    Returns:
        Array of shape ``(levels, len(x))`` with ``w[k - 1]`` the detail
        signal at scale ``2^k``.
    """
    x = np.asarray(x, dtype=float)
    n = x.shape[0]
    out = np.zeros((levels, n))
    smooth = x
    for level in range(levels):
        stride = 2 ** level
        h_up = _upsample(lowpass, stride)
        g_up = _upsample(highpass, stride)
        out[level] = _aligned_convolve(smooth, g_up)
        smooth = _aligned_convolve(smooth, h_up)
    return out


def atrous_swt_integer(x: np.ndarray, levels: int = 5,
                       scale_bits: int = 8) -> np.ndarray:
    """Integer-only à-trous transform, as the node's MCU computes it.

    The quadratic-spline pair is exactly representable in integers:
    ``h = [1, 3, 3, 1] / 8`` becomes multiply-by-small-constant plus a
    3-bit rounding shift, and ``g = [2, -2]`` a shift-and-subtract —
    the "proper choice of the filter bank coefficients" §IV-A credits for
    the efficient embedded implementation.  Apart from the per-level
    rounding shift (and the input quantization), the output matches
    :func:`atrous_swt` exactly.

    Args:
        x: Input waveform (float; quantized internally).
        levels: Number of dyadic scales.
        scale_bits: Input quantization: samples become integers of
            ``round(x * 2**scale_bits)``.

    Returns:
        Float array of shape ``(levels, len(x))`` re-scaled to the input
        units (so it is drop-in comparable with :func:`atrous_swt`).
    """
    x = np.asarray(x, dtype=float)
    scale = float(1 << scale_bits)
    smooth = np.rint(x * scale).astype(np.int64)
    n = smooth.shape[0]
    out = np.zeros((levels, n))
    h_int = np.array([1, 3, 3, 1], dtype=np.int64)
    g_int = np.array([2, -2], dtype=np.int64)
    for level in range(levels):
        stride = 2 ** level
        h_up = _upsample_int(h_int, stride)
        g_up = _upsample_int(g_int, stride)
        detail = _aligned_convolve_int(smooth, g_up)
        out[level] = detail.astype(float) / scale
        acc = _aligned_convolve_int(smooth, h_up)
        # Divide by 8 with round-half-up: the MCU's (acc + 4) >> 3.
        smooth = (acc + 4) >> 3
    return out


def _upsample_int(taps: np.ndarray, stride: int) -> np.ndarray:
    """Integer-tap variant of :func:`_upsample`."""
    if stride == 1:
        return taps
    up = np.zeros((taps.shape[0] - 1) * stride + 1, dtype=np.int64)
    up[::stride] = taps
    return up


def _aligned_convolve_int(x: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Integer-domain :func:`_aligned_convolve` (same alignment rules)."""
    half = (taps.shape[0] - 1) // 2
    pad_left = taps.shape[0] - 1 - half
    pad_right = half
    padded = np.concatenate([
        np.full(pad_left, x[0], dtype=np.int64), x,
        np.full(pad_right, x[-1], dtype=np.int64),
    ])
    return np.convolve(padded, taps, mode="valid")


def _upsample(taps: np.ndarray, stride: int) -> np.ndarray:
    """Insert ``stride - 1`` zeros between filter taps."""
    if stride == 1:
        return taps
    up = np.zeros((taps.shape[0] - 1) * stride + 1)
    up[::stride] = taps
    return up


def _aligned_convolve(x: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Convolve with edge-replication padding, output aligned to input.

    The result is shifted by the filter's half-length so that symmetric
    (or anti-symmetric) filters introduce no net delay.
    """
    half = (taps.shape[0] - 1) // 2
    pad_left = taps.shape[0] - 1 - half
    pad_right = half
    padded = np.concatenate([
        np.full(pad_left, x[0]), x, np.full(pad_right, x[-1]),
    ])
    return np.convolve(padded, taps, mode="valid")
