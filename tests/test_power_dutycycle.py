"""Tests for the radio duty-cycling policies."""

import pytest

from repro.power import DutyCycledRadio, DutyCyclePolicy


class TestMaintenance:
    def test_beacon_power_scales_with_interval(self):
        frequent = DutyCycledRadio(
            policy=DutyCyclePolicy(beacon_interval_s=1.0))
        sparse = DutyCycledRadio(
            policy=DutyCyclePolicy(beacon_interval_s=10.0))
        assert frequent.maintenance_power_w() == pytest.approx(
            10 * sparse.maintenance_power_w())

    def test_maintenance_is_microwatt_scale(self):
        radio = DutyCycledRadio()
        assert 1e-7 < radio.maintenance_power_w() < 1e-4

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DutyCyclePolicy(beacon_interval_s=0.0)
        with pytest.raises(ValueError):
            DutyCyclePolicy(beacon_listen_s=-1.0)


class TestPayload:
    def test_zero_payload_costs_nothing_extra(self):
        radio = DutyCycledRadio()
        assert radio.payload_power_w(0.0) == 0.0
        assert radio.average_power_w(0.0) == radio.maintenance_power_w()

    def test_power_monotone_in_rate(self):
        radio = DutyCycledRadio()
        powers = [radio.payload_power_w(rate)
                  for rate in (100.0, 1000.0, 9000.0)]
        assert powers[0] < powers[1] < powers[2]

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            DutyCycledRadio().payload_power_w(-1.0)

    def test_batching_amortizes_overhead(self):
        radio = DutyCycledRadio(
            policy=DutyCyclePolicy(batch_interval_s=4.0))
        gain = radio.batching_gain(200.0, small_interval_s=0.25)
        # Small payloads pay the wake-up cost per burst: batching wins
        # clearly.
        assert gain > 1.5

    def test_batching_gain_shrinks_for_heavy_streams(self):
        radio = DutyCycledRadio(
            policy=DutyCyclePolicy(batch_interval_s=4.0))
        light = radio.batching_gain(100.0)
        heavy = radio.batching_gain(50_000.0)
        assert heavy < light


class TestEdgeCases:
    def test_zero_payload_batch_has_zero_gain(self):
        # An idle node never wakes the radio for payload: the batching
        # comparison degenerates to exactly 1 (no divide-by-zero).
        radio = DutyCycledRadio()
        assert radio.payload_power_w(0.0) == 0.0
        assert radio.batching_gain(0.0) == 1.0

    def test_tiny_rate_rounds_to_at_least_a_frame(self):
        # Sub-bit batches still round to one transmitted frame's cost
        # once they round to >= 1 bit; below that they cost nothing.
        radio = DutyCycledRadio(
            policy=DutyCyclePolicy(batch_interval_s=2.0))
        assert radio.payload_power_w(0.1) == 0.0  # rounds to 0 bits
        assert radio.payload_power_w(1.0) > 0.0

    def test_beacon_interval_much_longer_than_batch_interval(self):
        # Beacons every 10 min with 1 s batches: maintenance amortizes
        # to almost nothing and total power is payload-dominated.
        policy = DutyCyclePolicy(beacon_interval_s=600.0,
                                 beacon_listen_s=0.004,
                                 batch_interval_s=1.0)
        radio = DutyCycledRadio(policy=policy)
        maintenance = radio.maintenance_power_w()
        payload = radio.payload_power_w(9000.0)
        assert maintenance < 1e-6
        assert payload > 100 * maintenance
        assert radio.average_power_w(9000.0) == pytest.approx(
            payload + maintenance)

    def test_zero_listen_window_costs_only_startup(self):
        # listen window = 0: each beacon still pays the wake-up energy.
        policy = DutyCyclePolicy(beacon_interval_s=5.0,
                                 beacon_listen_s=0.0)
        radio = DutyCycledRadio(policy=policy)
        expected = radio.link.radio.startup_energy_j / 5.0
        assert radio.maintenance_power_w() == pytest.approx(expected)

    def test_zero_listen_zero_payload_is_pure_wakeup_budget(self):
        policy = DutyCyclePolicy(beacon_interval_s=5.0,
                                 beacon_listen_s=0.0)
        radio = DutyCycledRadio(policy=policy)
        assert radio.average_power_w(0.0) == pytest.approx(
            radio.link.radio.startup_energy_j / 5.0)
