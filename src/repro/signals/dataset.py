"""Synthetic record corpora ("MIT-BIH-like" datasets).

The paper's evaluations average over "all records" of their ECG corpus
(Fig. 5) and report per-application accuracy figures (§V).  This module
builds reproducible suites of annotated synthetic records with varied heart
rates, rhythms, beat mixes and noise levels, so that every benchmark in
``benchmarks/`` averages over a population instead of a single trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .noise import AMBULATORY_MIX, NoiseSpec, RESTING_MIX
from .rhythms import (
    RhythmSequence,
    af_rhythm,
    paroxysmal_af,
    sinus_rhythm,
    with_ectopy,
)
from .synthesis import SynthesisConfig, synthesize
from .types import MultiLeadEcg


@dataclass(frozen=True)
class RecordSpec:
    """Specification of one synthetic record.

    Attributes:
        name: Record identifier (unique within a corpus).
        duration_s: Record duration in seconds.
        rhythm: One of ``"nsr"``, ``"af"``, ``"paroxysmal_af"``.
        mean_hr_bpm: Baseline heart rate.
        pvc_fraction: Fraction of beats converted to PVCs (sinus only).
        apc_fraction: Fraction of beats converted to APCs (sinus only).
        af_burden: Fraction of time in AF (``paroxysmal_af`` only).
        snr_db: Noise level (``None`` = clean).
        ambulatory: Use the ambulatory (motion-heavy) noise mix.
        seed: Per-record random seed.
    """

    name: str
    duration_s: float = 60.0
    rhythm: str = "nsr"
    mean_hr_bpm: float = 70.0
    pvc_fraction: float = 0.0
    apc_fraction: float = 0.0
    af_burden: float = 0.4
    snr_db: float | None = 20.0
    ambulatory: bool = False
    seed: int = 0


def make_record(spec: RecordSpec, fs: float = 250.0) -> MultiLeadEcg:
    """Synthesize the record described by ``spec``.

    Raises:
        ValueError: If ``spec.rhythm`` is not a known rhythm kind.
    """
    rng = np.random.default_rng(spec.seed)
    if spec.rhythm == "nsr":
        segment = sinus_rhythm(spec.duration_s, spec.mean_hr_bpm, rng=rng)
        if spec.pvc_fraction or spec.apc_fraction:
            segment = with_ectopy(segment, spec.pvc_fraction,
                                  spec.apc_fraction, rng=rng)
        rhythm: RhythmSequence = RhythmSequence([segment])
    elif spec.rhythm == "af":
        rhythm = RhythmSequence([af_rhythm(spec.duration_s,
                                           spec.mean_hr_bpm + 25, rng=rng)])
    elif spec.rhythm == "paroxysmal_af":
        rhythm = paroxysmal_af(spec.duration_s, spec.af_burden,
                               mean_hr_bpm=spec.mean_hr_bpm, rng=rng)
    else:
        raise ValueError(f"unknown rhythm kind {spec.rhythm!r}")

    noise: tuple[NoiseSpec, ...] = (AMBULATORY_MIX if spec.ambulatory
                                    else RESTING_MIX)
    config = SynthesisConfig(fs=fs, snr_db=spec.snr_db, noise_specs=noise)
    return synthesize(rhythm, config, rng=rng, name=spec.name)


@dataclass
class Corpus:
    """A named collection of annotated records."""

    name: str
    records: list[MultiLeadEcg] = field(default_factory=list)

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def total_beats(self) -> int:
        """Total number of annotated beats across all records."""
        return sum(len(r.beats) for r in self.records)


def _specs_for_preset(preset: str, n_records: int, duration_s: float,
                      seed: int) -> list[RecordSpec]:
    """Build the record specifications of one corpus preset."""
    rng = np.random.default_rng(seed)
    specs: list[RecordSpec] = []
    for i in range(n_records):
        hr = float(rng.uniform(55.0, 95.0))
        record_seed = int(rng.integers(0, 2 ** 31))
        base = dict(duration_s=duration_s, mean_hr_bpm=hr, seed=record_seed)
        if preset == "nsr":
            specs.append(RecordSpec(name=f"nsr{i:02d}", snr_db=20.0, **base))
        elif preset == "clean":
            specs.append(RecordSpec(name=f"cln{i:02d}", snr_db=None, **base))
        elif preset == "cs_eval":
            # CS evaluation: modest, mostly stationary noise, like the
            # PhysioNet records used in [6]/[16].
            specs.append(RecordSpec(name=f"cse{i:02d}", snr_db=28.0, **base))
        elif preset == "ectopy":
            specs.append(RecordSpec(name=f"ect{i:02d}", snr_db=20.0,
                                    pvc_fraction=0.10, apc_fraction=0.08,
                                    **base))
        elif preset == "af_mix":
            burden = float(rng.uniform(0.25, 0.75))
            specs.append(RecordSpec(name=f"afm{i:02d}", rhythm="paroxysmal_af",
                                    af_burden=burden, snr_db=18.0, **base))
        elif preset == "ambulatory":
            specs.append(RecordSpec(name=f"amb{i:02d}", snr_db=12.0,
                                    ambulatory=True, pvc_fraction=0.05,
                                    **base))
        else:
            raise ValueError(f"unknown corpus preset {preset!r}")
    return specs


def make_corpus(preset: str = "nsr", n_records: int = 8,
                duration_s: float = 60.0, fs: float = 250.0,
                seed: int = 2014) -> Corpus:
    """Build a reproducible corpus of synthetic records.

    Args:
        preset: One of ``nsr``, ``clean``, ``cs_eval``, ``ectopy``,
            ``af_mix``, ``ambulatory``.
        n_records: Number of records.
        duration_s: Duration of each record.
        fs: Sampling frequency.
        seed: Master seed; record seeds derive from it, so the same
            arguments always yield the same corpus.

    Returns:
        A :class:`Corpus` of annotated multi-lead records.
    """
    specs = _specs_for_preset(preset, n_records, duration_s, seed)
    records = [make_record(spec, fs=fs) for spec in specs]
    return Corpus(name=preset, records=records)


def beat_windows(records: list[MultiLeadEcg] | Corpus, lead: int = 1,
                 before_s: float = 0.25, after_s: float = 0.45,
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Extract fixed-length beat windows and labels from a corpus.

    Used by the classification experiments: each annotated beat becomes one
    row of ``X`` (samples around the R peak on one lead) with its class
    label in ``y``.

    Returns:
        ``(X, y)`` where ``X`` has shape ``(n_beats, window)`` and ``y`` is
        an array of class-label strings.
    """
    windows: list[np.ndarray] = []
    labels: list[str] = []
    for record in records:
        ecg = record.lead(lead)
        for beat in ecg.beats:
            windows.append(ecg.beat_window(beat, before_s, after_s))
            labels.append(beat.label)
    if not windows:
        return np.empty((0, 0)), np.empty(0, dtype="<U1")
    return np.vstack(windows), np.array(labels)
