"""The Fig. 1 abstraction ladder: bandwidth and energy vs. on-node smarts.

Figure 1 of the paper is the thesis in one picture: as on-node processing
raises the abstraction level of the transmitted data — raw waveform ->
compressed waveform -> delineated features -> beat classes -> alarms —
the radio bandwidth collapses and with it the node energy.  This module
quantifies each rung with the same models used elsewhere, so the Fig. 1
bench prints an actual bandwidth/energy table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .mcu import McuModel
from .node import NodeEnergyModel

#: Ordered abstraction levels (bottom to top of Fig. 1).
LADDER_LEVELS = (
    "raw_streaming",
    "compressed_sensing",
    "delineated_features",
    "beat_classes",
    "alarms",
)


@dataclass(frozen=True)
class LadderRung:
    """One abstraction level of Fig. 1.

    Attributes:
        level: Level name (one of :data:`LADDER_LEVELS`).
        bandwidth_bps: Application payload rate handed to the radio.
        processing_cycles_per_s: On-node DSP effort at this level.
        radio_energy_w: Average radio power.
        processing_energy_w: Average MCU power for the DSP.
        total_power_w: Radio + DSP + standing costs.
    """

    level: str
    bandwidth_bps: float
    processing_cycles_per_s: float
    radio_energy_w: float
    processing_energy_w: float
    total_power_w: float


@dataclass
class AbstractionLadder:
    """Computes the Fig. 1 ladder for a given node configuration.

    Args:
        node: Node energy model (radio/MCU/front-end constants).
        heart_rate_bpm: Assumed average heart rate (feature levels emit
            per-beat payloads).
        cs_cr_percent: CR used at the compressed-sensing rung.
        alarm_rate_per_hour: Expected abnormal-episode rate at the top
            rung (each alarm ships a compressed excerpt, as the
            SmartCardia application does in §V).
    """

    node: NodeEnergyModel = field(default_factory=NodeEnergyModel)
    heart_rate_bpm: float = 72.0
    cs_cr_percent: float = 60.0
    alarm_rate_per_hour: float = 4.0

    # Per-beat payloads: 9 fiducial marks x 16-bit offsets + class byte.
    FEATURE_BITS_PER_BEAT = 9 * 16 + 8
    CLASS_BITS_PER_BEAT = 8
    # An alarm ships a 4-second compressed excerpt + header.
    ALARM_EXCERPT_S = 4.0

    # DSP effort per sample at each level (cycles; delineation estimate
    # matches repro.delineation.resources).
    CS_CYCLES_PER_SAMPLE = 24.0
    DELINEATION_CYCLES_PER_SAMPLE = 240.0
    CLASSIFICATION_CYCLES_PER_BEAT = 1200.0

    def bandwidth_bps_for(self, level: str) -> float:
        """Application payload rate at one level."""
        fs = self.node.fs
        leads = self.node.n_leads
        bits = self.node.sample_bits
        beats_per_s = self.heart_rate_bpm / 60.0
        if level == "raw_streaming":
            return fs * bits * leads
        if level == "compressed_sensing":
            return fs * bits * leads * (1.0 - self.cs_cr_percent / 100.0)
        if level == "delineated_features":
            return beats_per_s * self.FEATURE_BITS_PER_BEAT
        if level == "beat_classes":
            return beats_per_s * self.CLASS_BITS_PER_BEAT
        if level == "alarms":
            excerpt_bits = (self.ALARM_EXCERPT_S * fs * bits * leads
                            * (1.0 - self.cs_cr_percent / 100.0))
            return self.alarm_rate_per_hour * (excerpt_bits + 64) / 3600.0
        raise ValueError(f"unknown ladder level {level!r}")

    def processing_cycles_per_s(self, level: str) -> float:
        """On-node DSP cycles per second at one level."""
        fs = self.node.fs
        leads = self.node.n_leads
        beats_per_s = self.heart_rate_bpm / 60.0
        if level == "raw_streaming":
            return 0.0
        if level == "compressed_sensing":
            return self.CS_CYCLES_PER_SAMPLE * fs * leads
        cycles = self.DELINEATION_CYCLES_PER_SAMPLE * fs
        if level == "delineated_features":
            return cycles
        if level in ("beat_classes", "alarms"):
            return cycles + self.CLASSIFICATION_CYCLES_PER_BEAT * beats_per_s
        raise ValueError(f"unknown ladder level {level!r}")

    def rung(self, level: str) -> LadderRung:
        """Full energy picture of one abstraction level (per second)."""
        bandwidth = self.bandwidth_bps_for(level)
        cycles = self.processing_cycles_per_s(level)
        radio = self.node.link.transmit(int(np.ceil(bandwidth))).energy_j
        mcu: McuModel = self.node.mcu
        processing = mcu.compute_energy(cycles)
        sampling = self.node.frontend.sampling_energy(
            int(self.node.fs), self.node.n_leads, 1.0)
        os_energy = mcu.rtos_energy(1.0)
        total = radio + processing + sampling + os_energy
        return LadderRung(level=level, bandwidth_bps=bandwidth,
                          processing_cycles_per_s=cycles,
                          radio_energy_w=radio,
                          processing_energy_w=processing,
                          total_power_w=total)

    def table(self) -> list[LadderRung]:
        """All rungs, bottom (raw) to top (alarms)."""
        return [self.rung(level) for level in LADDER_LEVELS]
