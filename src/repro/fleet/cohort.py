"""Heterogeneous virtual-patient cohorts.

A fleet simulation needs a population, not a record: patients differ in
rhythm (sinus, ectopy, persistent or paroxysmal AF), heart rate, noise
environment (resting vs. ambulatory) and hardware (1- or 3-lead nodes).
:func:`make_cohort` draws such a population reproducibly — every patient
gets a deterministic seed derived from the cohort master seed, so the
same configuration always yields the same fleet, record for record.

Synthesis reuses :mod:`repro.signals` unchanged: a profile maps to a
:class:`~repro.signals.RecordSpec` and single-/dual-lead patients keep a
lead subset of the standard 3-lead projection (lead II first, the
morphology every downstream consumer prefers).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..signals.dataset import RecordSpec, make_record
from ..signals.types import MultiLeadEcg

#: Rhythm kinds a profile may carry (``ectopy`` is sinus + PVC/APC).
RHYTHM_KINDS = ("nsr", "ectopy", "af", "paroxysmal_af")

#: Lead rows kept per node lead count (indices into the standard 3-lead
#: set).  Orderings preserve the repo-wide convention that lead index
#: ``min(1, n_leads - 1)`` is lead II, the delineation morphology.
_LEAD_SUBSETS = {1: (1,), 2: (0, 1), 3: (0, 1, 2)}


@dataclass(frozen=True)
class PatientProfile:
    """One virtual patient and the node strapped to them.

    Attributes:
        patient_id: Unique identifier within the cohort.
        rhythm: One of :data:`RHYTHM_KINDS`.
        mean_hr_bpm: Baseline heart rate.
        snr_db: Acquisition noise level (``None`` = clean).
        ambulatory: Use the motion-heavy noise mix.
        n_leads: Leads acquired by this patient's node (1-3).
        af_burden: Fraction of time in AF (``paroxysmal_af`` only).
        pvc_fraction: PVC fraction (``ectopy`` only).
        apc_fraction: APC fraction (``ectopy`` only).
        seed: Deterministic per-patient seed.
        uplink_period_s: Optional per-node uplink period override in
            seconds (``None`` = the fleet-wide
            :attr:`~repro.fleet.NodeProxyConfig.excerpt_period_s`).
            Sparse delineation-only nodes set this much higher than
            the base period; the scheduler's event kernel then visits
            them only when they actually uplink, instead of every
            tick.
    """

    patient_id: str
    rhythm: str = "nsr"
    mean_hr_bpm: float = 70.0
    snr_db: float | None = 20.0
    ambulatory: bool = False
    n_leads: int = 3
    af_burden: float = 0.4
    pvc_fraction: float = 0.0
    apc_fraction: float = 0.0
    seed: int = 0
    uplink_period_s: float | None = None

    def __post_init__(self) -> None:
        if self.rhythm not in RHYTHM_KINDS:
            raise ValueError(f"unknown rhythm kind {self.rhythm!r}")
        if self.n_leads not in _LEAD_SUBSETS:
            raise ValueError("n_leads must be 1, 2 or 3")
        if self.uplink_period_s is not None \
                and not self.uplink_period_s > 0:
            raise ValueError("uplink_period_s must be positive")

    def record_spec(self, duration_s: float) -> RecordSpec:
        """The :class:`RecordSpec` synthesizing this patient's ECG."""
        rhythm = "nsr" if self.rhythm == "ectopy" else self.rhythm
        return RecordSpec(
            name=self.patient_id,
            duration_s=duration_s,
            rhythm=rhythm,
            mean_hr_bpm=self.mean_hr_bpm,
            pvc_fraction=self.pvc_fraction if self.rhythm == "ectopy" else 0.0,
            apc_fraction=self.apc_fraction if self.rhythm == "ectopy" else 0.0,
            af_burden=self.af_burden,
            snr_db=self.snr_db,
            ambulatory=self.ambulatory,
            seed=self.seed,
        )


def synthesize_patient(profile: PatientProfile, duration_s: float = 60.0,
                       fs: float = 250.0) -> MultiLeadEcg:
    """Synthesize one patient's annotated recording.

    The full 3-lead record is rendered, then the profile's lead subset is
    kept — wave timing is identical across leads by construction, so the
    shared annotations stay valid.  Single-lead nodes keep lead II, and
    every subset preserves the convention that lead index
    ``min(1, n_leads - 1)`` carries the lead II morphology.
    """
    record = make_record(profile.record_spec(duration_s), fs=fs)
    subset = _LEAD_SUBSETS[profile.n_leads]
    return MultiLeadEcg(
        fs=record.fs,
        signals=record.signals[list(subset)].copy(),
        beats=record.beats,
        lead_names=tuple(record.lead_names[i] for i in subset),
        name=record.name,
    )


@dataclass(frozen=True)
class CohortConfig:
    """Population mix of a cohort.

    Fractions are expected proportions of each archetype; the remainder
    after AF / paroxysmal AF / ectopy is plain sinus rhythm.

    Attributes:
        n_patients: Cohort size.
        seed: Master seed; per-patient seeds derive from it.
        af_fraction: Persistent-AF patients.
        paroxysmal_fraction: Paroxysmal-AF patients.
        ectopy_fraction: Sinus patients with PVC/APC ectopy.
        single_lead_fraction: Patients wearing a 1-lead node.
        ambulatory_fraction: Patients in the ambulatory noise mix.
        clean_fraction: Patients with noise-free acquisition (bench
            nodes; their alarms must survive the gateway unchanged).
    """

    n_patients: int = 50
    seed: int = 2014
    af_fraction: float = 0.15
    paroxysmal_fraction: float = 0.20
    ectopy_fraction: float = 0.20
    single_lead_fraction: float = 0.25
    ambulatory_fraction: float = 0.30
    clean_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.n_patients < 1:
            raise ValueError("need at least one patient")
        mix = self.af_fraction + self.paroxysmal_fraction + self.ectopy_fraction
        if mix > 1.0:
            raise ValueError("rhythm fractions must sum to at most 1")


def make_cohort(config: CohortConfig | None = None,
                n_patients: int | None = None,
                seed: int | None = None) -> list[PatientProfile]:
    """Draw a reproducible heterogeneous cohort.

    Args:
        config: Full population mix (defaults used if omitted).
        n_patients: Shorthand override of ``config.n_patients``.
        seed: Shorthand override of ``config.seed``.

    Returns:
        ``config.n_patients`` profiles with deterministic per-patient
        seeds: the same arguments always produce the same cohort.
    """
    config = config or CohortConfig()
    overrides = {}
    if n_patients is not None:
        overrides["n_patients"] = n_patients
    if seed is not None:
        overrides["seed"] = seed
    if overrides:
        config = replace(config, **overrides)
    rng = np.random.default_rng(config.seed)
    profiles: list[PatientProfile] = []
    for i in range(config.n_patients):
        draw = rng.random()
        if draw < config.af_fraction:
            rhythm = "af"
        elif draw < config.af_fraction + config.paroxysmal_fraction:
            rhythm = "paroxysmal_af"
        elif draw < (config.af_fraction + config.paroxysmal_fraction
                     + config.ectopy_fraction):
            rhythm = "ectopy"
        else:
            rhythm = "nsr"
        clean = rng.random() < config.clean_fraction
        ambulatory = (not clean) and rng.random() < config.ambulatory_fraction
        if clean:
            snr: float | None = None
        else:
            snr = float(rng.uniform(12.0, 18.0) if ambulatory
                        else rng.uniform(18.0, 28.0))
        profiles.append(PatientProfile(
            patient_id=f"p{i:04d}",
            rhythm=rhythm,
            mean_hr_bpm=float(rng.uniform(55.0, 95.0)),
            snr_db=snr,
            ambulatory=ambulatory,
            n_leads=1 if rng.random() < config.single_lead_fraction else 3,
            af_burden=float(rng.uniform(0.25, 0.6)),
            pvc_fraction=0.10,
            apc_fraction=0.06,
            seed=int(rng.integers(0, 2 ** 31)),
        ))
    return profiles
