"""Documentation gates: docstring coverage and docs-tree link integrity.

Two locally-enforced mirrors of the CI lint job:

* a docstring-coverage floor over ``src/repro`` (the CI job runs the
  real ``interrogate`` with the config in ``pyproject.toml``; this AST
  walk applies the same counting rules so the gate cannot pass locally
  and fail in CI);
* every relative markdown link in the documentation tree must resolve
  to an existing file.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

#: Must match ``[tool.interrogate] fail-under`` in pyproject.toml.
COVERAGE_FLOOR = 80.0

#: Documentation surfaces whose relative links are checked.
DOC_FILES = sorted([REPO_ROOT / "README.md", REPO_ROOT / "DESIGN.md",
                    REPO_ROOT / "ROADMAP.md",
                    *(REPO_ROOT / "docs").glob("*.md")])

MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _is_magic(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _countable_nodes(tree: ast.Module):
    """Yield the definitions interrogate would count under our config:
    module + public classes/functions/methods; skipping private names,
    ``__init__`` and other magic methods, and nested functions."""
    yield tree
    stack = [tree]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if not child.name.startswith("_"):
                    yield child
                    stack.append(child)
            elif isinstance(child, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                if child.name.startswith("_") or _is_magic(child.name):
                    continue
                yield child
                # nested functions are deliberately not walked


def docstring_coverage() -> tuple[float, list[str]]:
    """(coverage percent, missing-definition labels) over src/repro."""
    total = have = 0
    missing: list[str] = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text())
        for node in _countable_nodes(tree):
            total += 1
            if ast.get_docstring(node):
                have += 1
            else:
                name = getattr(node, "name", "<module>")
                lineno = getattr(node, "lineno", 1)
                missing.append(f"{path.relative_to(REPO_ROOT)}:"
                               f"{lineno} {name}")
    return 100.0 * have / total, missing


class TestDocstringCoverage:
    def test_coverage_meets_the_interrogate_floor(self):
        coverage, missing = docstring_coverage()
        assert coverage >= COVERAGE_FLOOR, (
            f"docstring coverage {coverage:.1f}% fell below the "
            f"{COVERAGE_FLOOR:.0f}% floor; undocumented:\n  "
            + "\n  ".join(missing))

    def test_public_fleet_scenarios_bench_apis_are_documented(self):
        # The PR-4 docstring pass: these packages are held to 100 %.
        for package in ("fleet", "scenarios", "bench"):
            for path in sorted((SRC_ROOT / package).rglob("*.py")):
                tree = ast.parse(path.read_text())
                undocumented = [
                    f"{path.name}:{node.lineno} "
                    f"{getattr(node, 'name', '<module>')}"
                    for node in _countable_nodes(tree)
                    if not ast.get_docstring(node)]
                assert not undocumented, (
                    f"public API without docstring in repro.{package}: "
                    f"{undocumented}")


class TestDocsLinks:
    def test_doc_pages_exist(self):
        names = {path.name for path in DOC_FILES}
        assert {"architecture.md", "energy-model.md", "fleet.md",
                "benchmarks.md", "governor.md"} <= names

    @pytest.mark.parametrize(
        "doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
    def test_relative_links_resolve(self, doc: Path):
        broken = []
        for target in MARKDOWN_LINK.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"{doc.name}: broken relative links {broken}"

    def test_readme_links_into_the_docs_tree(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for page in ("docs/architecture.md", "docs/energy-model.md",
                     "docs/governor.md", "docs/fleet.md",
                     "docs/benchmarks.md"):
            assert page in readme, f"README lost its link to {page}"
