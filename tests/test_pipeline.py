"""End-to-end node-application tests (paper §V scenario)."""

import numpy as np
import pytest

from repro.classification import AfDetector
from repro.pipeline import CardiacMonitorNode
from repro.power import NodeEnergyModel
from repro.signals import RecordSpec, make_record


@pytest.fixture(scope="module")
def trained_detector(af_train_corpus):
    return AfDetector().fit(list(af_train_corpus))


@pytest.fixture(scope="module")
def af_episode_record():
    return make_record(RecordSpec(name="episode", duration_s=180.0,
                                  rhythm="paroxysmal_af", af_burden=0.35,
                                  snr_db=18.0, seed=77))


class TestNsrProcessing:
    def test_beats_and_heart_rate(self, nsr_record):
        node = CardiacMonitorNode()
        report = node.process(nsr_record)
        assert len(report.beats) == pytest.approx(len(nsr_record.beats),
                                                  abs=2)
        truth_hr = 60.0 / np.mean(np.diff(nsr_record.r_peaks)) \
            * nsr_record.fs
        assert report.mean_heart_rate_bpm == pytest.approx(truth_hr,
                                                           rel=0.05)

    def test_no_alarms_without_detector(self, nsr_record):
        report = CardiacMonitorNode().process(nsr_record)
        assert report.alarms == []

    def test_periodic_excerpts_scheduled(self, nsr_record):
        node = CardiacMonitorNode(excerpt_period_s=10.0)
        report = node.process(nsr_record)
        assert report.periodic_excerpts == int(nsr_record.duration_s // 10)


class TestAfScenario:
    def test_af_raises_alarm(self, trained_detector, af_episode_record):
        node = CardiacMonitorNode(af_detector=trained_detector)
        report = node.process(af_episode_record)
        assert len(report.alarms) >= 1
        assert all(alarm.kind == "AF" for alarm in report.alarms)

    def test_nsr_mostly_quiet(self, trained_detector, nsr_record):
        node = CardiacMonitorNode(af_detector=trained_detector)
        report = node.process(nsr_record)
        assert len(report.alarms) <= 1  # allow a rare false window

    def test_alarm_spans_inside_record(self, trained_detector,
                                       af_episode_record):
        node = CardiacMonitorNode(af_detector=trained_detector)
        report = node.process(af_episode_record)
        for alarm in report.alarms:
            assert 0 <= alarm.start < alarm.stop
            assert alarm.stop < af_episode_record.n_samples
            assert alarm.excerpt_bits > 0


class TestEnergyAccounting:
    def test_smart_node_undercuts_raw_streaming(self, nsr_record):
        report = CardiacMonitorNode().process(nsr_record)
        model = NodeEnergyModel()
        raw = model.raw_streaming(window_s=nsr_record.duration_s)
        assert report.transmitted_bits < 0.2 * (
            3 * nsr_record.n_samples * 12)
        assert report.average_power_w < raw.average_power_w

    def test_battery_days_plausible(self, nsr_record):
        report = CardiacMonitorNode().process(nsr_record)
        # The paper's node recharges "typically" weekly; our model should
        # land between days and a few months depending on alarm traffic.
        assert 2.0 < report.battery_days < 200.0

    def test_processing_cycles_positive(self, nsr_record):
        report = CardiacMonitorNode().process(nsr_record)
        assert report.processing_cycles > 0
