"""CLI: ``python -m repro.bench`` — run the grid, emit BENCH_<rev>.json.

Exit status is 1 when any case regresses past tolerance against the
baselines file (CI uses exactly this), 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..obs import Observability, ObsConfig
from .registry import all_cases, get_case
from .runner import DEFAULT_TOLERANCE, BenchRunner, load_baselines, write_baselines

DEFAULT_BASELINES = Path("benchmarks") / "baselines.json"


def main(argv: list[str] | None = None) -> int:
    """Parse the CLI, run the grid, emit the artifact; 1 on regression."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Unified performance harness (see README §Benchmarks)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workloads (seconds, not minutes)")
    parser.add_argument("--cases", default=None,
                        help="comma-separated case names (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list registered cases and exit")
    parser.add_argument("--repeats", type=int, default=3,
                        help="scored runs per case (default 3)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="discarded runs per case (default 1)")
    parser.add_argument("--seed", type=int, default=2014,
                        help="base workload seed (default 2014)")
    parser.add_argument("--baselines", type=Path, default=DEFAULT_BASELINES,
                        help=f"baselines file (default {DEFAULT_BASELINES})")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed slowdown vs baseline (default 0.25)")
    parser.add_argument("--out", type=Path, default=Path("."),
                        help="directory for BENCH_<rev>.json (default .)")
    parser.add_argument("--update-baselines", action="store_true",
                        help="write measured wall times back as the new "
                             "baselines (re-baseline after a reviewed "
                             "perf change)")
    parser.add_argument("--no-fail", action="store_true",
                        help="exit 0 even on regressions (reporting only)")
    parser.add_argument("--obs", action="store_true",
                        help="thread an Observability bundle through the "
                             "workloads; attach its snapshot to the BENCH "
                             "artifact and emit OBS_<rev>.json (flight "
                             "dumps land in <out>/flight/)")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile one extra untimed run per case and "
                             "write the top-25 cumulative table to "
                             "PROFILE_<rev>.txt next to the BENCH artifact")
    args = parser.parse_args(argv)

    if args.list:
        for name, case in sorted(all_cases().items()):
            print(f"{name:<26} [{case.legacy}] {case.summary}")
        return 0

    cases = None
    if args.cases:
        cases = [get_case(name.strip())
                 for name in args.cases.split(",") if name.strip()]

    obs = None
    if args.obs:
        obs = Observability(ObsConfig(
            flight_dump_dir=str(args.out / "flight")))
    runner = BenchRunner(
        cases=cases, quick=args.quick, warmup=args.warmup,
        repeats=args.repeats, baselines=load_baselines(args.baselines),
        tolerance=args.tolerance, seed=args.seed, obs=obs,
        profile=args.profile)
    report = runner.run(
        progress=lambda case: print(
            f"  {case['name']}: {case['wall_s']:.3f} s [{case['status']}]",
            file=sys.stderr))
    print(report.describe())
    path = report.write(args.out)
    print(f"\nwrote {path}")
    if obs is not None:
        obs_path = args.out / f"OBS_{report.revision}.json"
        obs_path.write_text(json.dumps(obs.snapshot_bundle(), indent=2,
                                       sort_keys=True) + "\n")
        print(f"wrote {obs_path}")
    if args.profile:
        profile_path = args.out / f"PROFILE_{report.revision}.txt"
        profile_path.write_text(runner.profile_text())
        print(f"wrote {profile_path}")

    if args.update_baselines:
        write_baselines(args.baselines, report)
        print(f"re-baselined {args.baselines}")

    if report.regressions and not args.no_fail:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
