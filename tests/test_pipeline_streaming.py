"""Tests for the sample-at-a-time streaming monitor."""

import numpy as np
import pytest

from repro.delineation import RPeakDetector, WaveletDelineator
from repro.pipeline import StreamingConfig, StreamingMonitor, stream_record


class TestStreamingEquivalence:
    def test_matches_batch_beats(self, nsr_record):
        ecg = nsr_record.lead(1)
        config = StreamingConfig(fs=ecg.fs, buffer_s=8.0, hop_s=2.0)
        streamed = stream_record(ecg.signal, config)
        peaks = RPeakDetector(ecg.fs).detect(ecg.signal)
        batch = WaveletDelineator(ecg.fs).delineate(ecg.signal, peaks)
        streamed_peaks = np.array([b.r_peak for b in streamed])
        matched = 0
        for beat in batch:
            if np.any(np.abs(streamed_peaks - beat.r_peak)
                      <= int(0.05 * ecg.fs)):
                matched += 1
        assert matched / len(batch) >= 0.95

    def test_beats_emitted_in_order_without_duplicates(self, nsr_record):
        ecg = nsr_record.lead(1)
        streamed = stream_record(ecg.signal,
                                 StreamingConfig(fs=ecg.fs))
        peaks = [b.r_peak for b in streamed]
        assert peaks == sorted(peaks)
        assert len(peaks) == len(set(peaks))

    def test_absolute_indices(self, nsr_record):
        ecg = nsr_record.lead(1)
        streamed = stream_record(ecg.signal, StreamingConfig(fs=ecg.fs))
        truth = ecg.r_peaks
        for beat in streamed[2:-2]:
            assert np.min(np.abs(truth - beat.r_peak)) <= int(0.05 * ecg.fs)

    def test_fiducials_attached(self, nsr_record):
        ecg = nsr_record.lead(1)
        streamed = stream_record(ecg.signal, StreamingConfig(fs=ecg.fs))
        with_p = sum(1 for b in streamed if b.p_wave.present)
        assert with_p / len(streamed) > 0.9


class TestMechanics:
    def test_no_emission_before_first_hop(self, nsr_record):
        ecg = nsr_record.lead(1)
        monitor = StreamingMonitor(StreamingConfig(fs=ecg.fs, hop_s=2.0))
        emitted = []
        for sample in ecg.signal[:int(1.5 * ecg.fs)]:
            emitted.extend(monitor.push(sample))
        assert emitted == []

    def test_flush_releases_tail_beats(self, nsr_record):
        ecg = nsr_record.lead(1)
        config = StreamingConfig(fs=ecg.fs, hop_s=2.0,
                                 confirm_margin_s=0.8)
        monitor = StreamingMonitor(config)
        emitted = []
        for sample in ecg.signal:
            emitted.extend(monitor.push(sample))
        before_flush = len(emitted)
        emitted.extend(monitor.flush())
        assert len(emitted) >= before_flush  # tail beats confirmed

    def test_sample_counter(self, nsr_record):
        ecg = nsr_record.lead(1)
        monitor = StreamingMonitor(StreamingConfig(fs=ecg.fs))
        for sample in ecg.signal[:1000]:
            monitor.push(sample)
        assert monitor.samples_consumed == 1000

    def test_buffer_must_exceed_hop(self):
        with pytest.raises(ValueError, match="longer than the hop"):
            StreamingMonitor(StreamingConfig(buffer_s=1.0, hop_s=2.0))


class TestEdgeCases:
    def test_flush_with_no_prior_samples(self):
        monitor = StreamingMonitor(StreamingConfig())
        assert monitor.flush() == []

    def test_flush_with_no_prior_burst(self, nsr_record):
        # Fewer samples than one hop: flush is the first burst to run.
        ecg = nsr_record.lead(1)
        config = StreamingConfig(fs=ecg.fs, hop_s=4.0)
        monitor = StreamingMonitor(config)
        emitted = []
        for sample in ecg.signal[:int(3.0 * ecg.fs)]:
            emitted.extend(monitor.push(sample))
        assert emitted == []
        flushed = monitor.flush()
        assert len(flushed) >= 2  # ~3 beats at 70 bpm in 3 s

    def test_record_shorter_than_warmup(self, nsr_record):
        # Below the 1.5 s burst minimum nothing is ever emitted, even at
        # flush time.
        ecg = nsr_record.lead(1)
        short = ecg.signal[:int(1.2 * ecg.fs)]
        beats = stream_record(short, StreamingConfig(fs=ecg.fs))
        assert beats == []

    def test_batch_equivalence_at_non_default_hop(self, nsr_record):
        ecg = nsr_record.lead(1)
        config = StreamingConfig(fs=ecg.fs, buffer_s=9.0, hop_s=3.0)
        streamed = stream_record(ecg.signal, config)
        peaks = RPeakDetector(ecg.fs).detect(ecg.signal)
        batch = WaveletDelineator(ecg.fs).delineate(ecg.signal, peaks)
        streamed_peaks = np.array([b.r_peak for b in streamed])
        matched = sum(
            1 for beat in batch
            if np.any(np.abs(streamed_peaks - beat.r_peak)
                      <= int(0.05 * ecg.fs)))
        assert matched / len(batch) >= 0.95


class TestPushBlock:
    """Vectorized block ingest must mirror the per-sample path."""

    def test_block_equals_per_sample(self, nsr_record):
        signal = nsr_record.lead(1).signal
        config = StreamingConfig(fs=nsr_record.fs)
        scalar = StreamingMonitor(config)
        block = StreamingMonitor(config)
        expected = []
        for sample in signal:
            expected.extend(scalar.push(sample))
        expected.extend(scalar.flush())
        got = block.push_block(signal)
        got.extend(block.flush())
        assert got == expected
        assert block.samples_consumed == scalar.samples_consumed

    def test_split_blocks_equal_one_block(self, nsr_record):
        signal = nsr_record.lead(1).signal
        config = StreamingConfig(fs=nsr_record.fs)
        one = StreamingMonitor(config)
        beats_one = one.push_block(signal)
        beats_one.extend(one.flush())
        many = StreamingMonitor(config)
        beats_many = []
        # Awkward chunk sizes stress the ring wrap-around writes.
        for lo in range(0, signal.shape[0], 333):
            beats_many.extend(many.push_block(signal[lo:lo + 333]))
        beats_many.extend(many.flush())
        assert beats_many == beats_one

    def test_rejects_multilead_block(self, nsr_record):
        monitor = StreamingMonitor(StreamingConfig(fs=nsr_record.fs))
        with pytest.raises(ValueError, match="1-D"):
            monitor.push_block(nsr_record.signals)
