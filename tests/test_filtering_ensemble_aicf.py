"""Unit tests for ensemble averaging and AICF (paper §IV-C, exp T5)."""

import numpy as np
import pytest

from repro.filtering import (
    aicf_convergence_curve,
    aicf_filter,
    beat_matrix,
    ensemble_average,
    ensemble_noise_reduction_db,
    tracking_gain_vs_ea,
)


def _pulse_train(n_beats=40, period=100, width=8, amplitude=1.0):
    """Deterministic beat-locked test signal."""
    n = (n_beats + 1) * period
    clean = np.zeros(n)
    impulses = np.arange(1, n_beats + 1) * period
    t = np.arange(-30, 30)
    pulse = amplitude * np.exp(-0.5 * (t / width) ** 2)
    for center in impulses:
        clean[center - 30:center + 30] += pulse
    return clean, impulses


class TestBeatMatrix:
    def test_stacks_complete_windows(self):
        clean, impulses = _pulse_train()
        rows = beat_matrix(clean, impulses, 30, 30)
        assert rows.shape == (impulses.shape[0], 60)

    def test_drops_incomplete_windows(self):
        clean, impulses = _pulse_train()
        rows = beat_matrix(clean, np.concatenate([[5], impulses]), 30, 30)
        assert rows.shape[0] == impulses.shape[0]

    def test_empty_when_nothing_fits(self):
        rows = beat_matrix(np.zeros(10), np.array([5]), 30, 30)
        assert rows.shape == (0, 60)


class TestEnsembleAverage:
    def test_recovers_template_from_noise(self, rng):
        clean, impulses = _pulse_train(n_beats=60)
        noisy = clean + rng.normal(0, 0.3, clean.shape)
        template = ensemble_average(noisy, impulses, 30, 30)
        truth = beat_matrix(clean, impulses, 30, 30)[0]
        assert np.max(np.abs(template - truth)) < 0.2

    def test_raises_without_windows(self):
        with pytest.raises(ValueError, match="no complete windows"):
            ensemble_average(np.zeros(10), np.array([5]), 30, 30)

    def test_noise_reduction_close_to_theory(self, rng):
        clean, impulses = _pulse_train(n_beats=64)
        noisy = clean + rng.normal(0, 0.3, clean.shape)
        gain = ensemble_noise_reduction_db(noisy, clean, impulses, 30, 30)
        # Theory: 10*log10(K) = 18 dB for K = 64.
        assert gain == pytest.approx(18.0, abs=3.5)


class TestAicf:
    def test_converges_to_template(self, rng):
        clean, impulses = _pulse_train(n_beats=80)
        noisy = clean + rng.normal(0, 0.2, clean.shape)
        result = aicf_filter(noisy, impulses, 30, 30, mu=0.15)
        truth = beat_matrix(clean, impulses, 30, 30)[0]
        final_error = np.sqrt(np.mean((result.estimates[-1] - truth) ** 2))
        assert final_error < 0.1

    def test_convergence_curve_decreases(self, rng):
        clean, impulses = _pulse_train(n_beats=80)
        noisy = clean + rng.normal(0, 0.2, clean.shape)
        errors = aicf_convergence_curve(noisy, clean, impulses, 30, 30,
                                        mu=0.15)
        assert np.mean(errors[-10:]) < 0.5 * errors[0]

    def test_invalid_mu(self):
        clean, impulses = _pulse_train()
        with pytest.raises(ValueError, match="2\\*mu"):
            aicf_filter(clean, impulses, 30, 30, mu=0.8)

    def test_no_complete_windows(self):
        with pytest.raises(ValueError, match="complete window"):
            aicf_filter(np.zeros(10), np.array([5]), 30, 30)

    def test_initial_state_length_checked(self):
        clean, impulses = _pulse_train()
        with pytest.raises(ValueError, match="window length"):
            aicf_filter(clean, impulses, 30, 30, initial=np.zeros(10))

    def test_filtered_signal_replaces_windows(self, rng):
        clean, impulses = _pulse_train(n_beats=40)
        noisy = clean + rng.normal(0, 0.3, clean.shape)
        result = aicf_filter(noisy, impulses, 30, 30, mu=0.2)
        center = impulses[-1]
        assert np.allclose(result.filtered[center - 30:center + 30],
                           result.estimates[-1])

    def test_tracks_dynamics_better_than_ea(self, rng):
        # Beat amplitude drifts linearly: EA's static template is biased,
        # AICF follows — the paper's §IV-C claim.
        period, n_beats = 100, 80
        n = (n_beats + 1) * period
        clean = np.zeros(n)
        impulses = np.arange(1, n_beats + 1) * period
        t = np.arange(-30, 30)
        pulse = np.exp(-0.5 * (t / 8.0) ** 2)
        for k, center in enumerate(impulses):
            clean[center - 30:center + 30] += (1.0 + 0.01 * k) * pulse
        noisy = clean + rng.normal(0, 0.05, n)
        err_aicf, err_ea = tracking_gain_vs_ea(noisy, clean, impulses,
                                               30, 30, mu=0.2)
        assert err_aicf < err_ea
