"""Governed fleet runs: closed-loop mode adaptation through the stack.

Covers the EnergyGovernor wiring end to end: the scheduler stepping
per-patient governors from triage acuity, mode-routed tick uplink
(raw / multi- / single-lead CS / events-only telemetry), mode + SoC
telemetry flowing through gateway channels into triage, and the
governed power/battery accounting folded into the fleet summary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import (
    CohortConfig,
    FleetScheduler,
    NodeProxyConfig,
    PACKET_EXCERPT,
    PACKET_TELEMETRY,
    PatientProfile,
    SchedulerConfig,
    make_cohort,
    synthesize_patient,
)
from repro.pipeline import CardiacMonitorNode
from repro.power import (
    Battery,
    BatteryModel,
    EnergyGovernor,
    GovernorConfig,
    MODE_EVENTS_ONLY,
    MODE_MULTI_LEAD_CS,
    MODE_RAW,
    MODE_SINGLE_LEAD_CS,
    ModePowerTable,
)

TABLE = ModePowerTable()
PERIOD_S = 30.0


def governor_factory(soc: float):
    """A factory pinning every node's starting SoC (tiny cell so a
    minutes-long run actually moves the ladder)."""

    def factory(profile: PatientProfile) -> EnergyGovernor:
        return EnergyGovernor(
            config=GovernorConfig(min_dwell_s=0.0),
            table=TABLE,
            battery=BatteryModel(cell=Battery(capacity_mah=0.05),
                                 soc=soc))

    return factory


def run_fleet(soc: float = 0.9, n_patients: int = 3,
              duration_s: float = 150.0, **kwargs):
    cohort = make_cohort(CohortConfig(n_patients=n_patients, seed=11))
    scheduler = FleetScheduler(
        cohort,
        SchedulerConfig(duration_s=duration_s),
        node_config=NodeProxyConfig(excerpt_period_s=PERIOD_S,
                                    stream_telemetry=False),
        governor_factory=governor_factory(soc),
        **kwargs)
    return scheduler, scheduler.run()


class TestGovernedScheduler:
    def test_modes_descend_as_batteries_drain(self):
        _, report = run_fleet(soc=0.9)
        for governor in report.governors.values():
            modes = [d.mode for d in governor.decisions]
            # Acuity stays ok, so the walk is battery-driven and
            # monotone down the ladder.
            ladder = [MODE_RAW, MODE_MULTI_LEAD_CS,
                      MODE_SINGLE_LEAD_CS, MODE_EVENTS_ONLY]
            ranks = [ladder.index(m) for m in modes]
            assert ranks == sorted(ranks)
        assert report.summary.governed
        assert report.summary.governor_switches > 0

    def test_soc_telemetry_reaches_triage(self):
        scheduler, report = run_fleet(soc=0.8)
        for profile in report.profiles:
            triage = scheduler.board.patients[profile.patient_id]
            assert np.isfinite(triage.soc)
            assert triage.mode in (MODE_RAW, MODE_MULTI_LEAD_CS,
                                   MODE_SINGLE_LEAD_CS,
                                   MODE_EVENTS_ONLY)
            channel = scheduler.gateway.channels[profile.patient_id]
            assert np.isfinite(channel.last_soc)

    def test_events_only_sends_telemetry_packets(self):
        scheduler, report = run_fleet(soc=0.12)
        kinds = {e.kind for e in report.excerpts}
        assert PACKET_TELEMETRY in kinds
        telemetry = [e for e in report.excerpts
                     if e.kind == PACKET_TELEMETRY]
        for excerpt in telemetry:
            assert excerpt.signal.size == 0
            assert excerpt.mode == MODE_EVENTS_ONLY
        assert sum(ch.n_telemetry
                   for ch in scheduler.gateway.channels.values()
                   ) == len(telemetry)

    def test_raw_mode_passes_signal_through_verbatim(self):
        scheduler, report = run_fleet(soc=1.0, duration_s=60.0)
        raw = [e for e in report.excerpts if e.mode == MODE_RAW
               and e.kind == PACKET_EXCERPT]
        assert raw, "a full battery must stream raw"
        for excerpt in raw:
            profile = next(p for p in report.profiles
                           if p.patient_id == excerpt.patient_id)
            record = synthesize_patient(profile, 60.0, 250.0)
            window_n = scheduler.node_config.window_n
            start_options = [record.signals[:, s:s + window_n]
                             for s in range(0, record.n_samples
                                            - window_n + 1)]
            # The reconstructed signal equals some contiguous window of
            # the original record exactly (no CS round-off).
            assert any(np.array_equal(excerpt.signal, w)
                       for w in start_options)

    def test_single_lead_mode_narrows_the_uplink(self):
        scheduler, report = run_fleet(soc=0.33)
        single = [e for e in report.excerpts
                  if e.mode == MODE_SINGLE_LEAD_CS]
        assert single, "a one-third battery must ride single-lead CS"
        for excerpt in single:
            assert excerpt.signal.shape[0] == 1
            assert np.isfinite(excerpt.snr_db)

    def test_governed_power_folds_into_node_reports(self):
        _, governed = run_fleet(soc=0.12, duration_s=150.0)
        cohort = make_cohort(CohortConfig(n_patients=3, seed=11))
        static = FleetScheduler(
            cohort, SchedulerConfig(duration_s=150.0),
            node_config=NodeProxyConfig(excerpt_period_s=PERIOD_S,
                                        stream_telemetry=False)).run()
        # Nodes coasting on events-only must report far less power than
        # the static fleet's always-on CS policy accounting.
        for pid, report in governed.node_reports.items():
            events_power = TABLE.power_w(MODE_EVENTS_ONLY)
            assert report.average_power_w == pytest.approx(
                events_power, rel=0.05)
        assert (governed.summary.mean_node_power_uw
                != static.summary.mean_node_power_uw)

    def test_acuity_override_forces_upshift(self):
        def force_alert(pid: str, t0: float) -> str | None:
            return "alert" if t0 >= 60.0 else None

        scheduler, report = run_fleet(soc=0.12,
                                      acuity_override=force_alert)
        for governor in report.governors.values():
            modes = [d.mode for d in governor.decisions]
            # Coasting before the override, multi-lead CS after.
            assert modes[0] == MODE_EVENTS_ONLY
            assert MODE_MULTI_LEAD_CS in modes[2:]

    def test_extra_load_drains_faster(self):
        _, plain = run_fleet(soc=0.5)
        _, loaded = run_fleet(soc=0.5,
                              extra_load=lambda pid, t0: 0.005)
        assert (loaded.summary.mean_final_soc
                < plain.summary.mean_final_soc)

    def test_ungoverned_run_reports_no_governor_state(self):
        cohort = make_cohort(CohortConfig(n_patients=2, seed=11))
        report = FleetScheduler(
            cohort, SchedulerConfig(duration_s=60.0),
            node_config=NodeProxyConfig(stream_telemetry=False)).run()
        assert not report.summary.governed
        assert report.governors == {}
        assert np.isnan(report.summary.mean_final_soc)


class TestSingleLeadPacket:
    """`NodeProxy.single_lead_packet` must not drift from the batched
    single-lead path the governed scheduler runs."""

    def test_scalar_packet_matches_batch_encoder_output(self):
        from repro.fleet import BatchExcerptEncoder, NodeProxy

        profile = PatientProfile(patient_id="sl0", rhythm="nsr", seed=9)
        record = synthesize_patient(profile, 30.0, 250.0)
        proxy = NodeProxy(profile, NodeProxyConfig(
            excerpt_period_s=PERIOD_S, stream_telemetry=False))
        start = 500
        packet = proxy.single_lead_packet(record, start, PERIOD_S,
                                          soc=0.4)
        assert packet.n_leads == 1
        assert packet.mode == MODE_SINGLE_LEAD_CS
        assert packet.soc == 0.4
        # Same window through the scheduler's batch encoder: identical
        # geometry and measurements up to float round-off.
        cfg = proxy.config
        batch = BatchExcerptEncoder(
            n_leads=1, n=cfg.window_n, cr_percent=cfg.cr_percent,
            quant_bits=cfg.quant_bits, seed=cfg.cs_seed)
        lead = proxy.delineation_lead
        window = record.signals[lead:lead + 1,
                                start:start + cfg.window_n]
        (frame,) = batch.encode_batch(window[np.newaxis])
        (scalar_frame,) = packet.frames
        assert len(scalar_frame) == len(frame) == 1
        np.testing.assert_allclose(scalar_frame[0].measurements,
                                   frame[0].measurements, rtol=1e-12)
        assert scalar_frame[0].payload_bits == frame[0].payload_bits


class TestProcessGoverned:
    def test_mode_timeline_covers_the_recording(self):
        profile = PatientProfile(patient_id="g0", rhythm="nsr", seed=3)
        record = synthesize_patient(profile, 60.0, 250.0)
        governor = EnergyGovernor(
            config=GovernorConfig(min_dwell_s=0.0), table=TABLE,
            battery=BatteryModel(cell=Battery(capacity_mah=0.02),
                                 soc=0.9))
        report = CardiacMonitorNode().process_governed(record, governor,
                                                       interval_s=5.0)
        assert sum(report.mode_seconds.values()) == pytest.approx(
            record.duration_s)
        segments = report.segments
        assert segments[0].start_s == 0.0
        assert segments[-1].stop_s == pytest.approx(record.duration_s)
        for a, b in zip(segments, segments[1:]):
            assert a.stop_s == pytest.approx(b.start_s)
            assert a.mode != b.mode
        assert report.n_switches >= 1
        assert 0.0 <= report.final_soc < 0.9
        assert report.transmitted_bits > 0
        assert report.average_power_w > 0

    def test_battery_state_persists_across_recordings(self):
        profile = PatientProfile(patient_id="g1", rhythm="nsr", seed=4)
        record = synthesize_patient(profile, 30.0, 250.0)
        governor = EnergyGovernor(
            config=GovernorConfig(min_dwell_s=0.0), table=TABLE,
            battery=BatteryModel(cell=Battery(capacity_mah=0.02),
                                 soc=0.9))
        node = CardiacMonitorNode()
        first = node.process_governed(record, governor, interval_s=5.0)
        second = node.process_governed(record, governor, interval_s=5.0)
        assert second.final_soc < first.final_soc