"""Fleet client: a patient node driven over a real TCP connection.

The serving layer's byte-identity guarantee rests on one idea: the
client does **not** reimplement the scheduler — it *is* the scheduler.
:class:`FleetClient` runs an ordinary single-patient
:class:`~repro.fleet.FleetScheduler` whose gateway and triage board are
replaced by remote adapters:

* :class:`RemoteGateway` turns every ``ingest`` into a wire-frame
  uplink and every scheduler phase call (``expire_reassembly`` /
  ``drain`` / ``flush_reassembly``) into the matching serve command, so
  the server-side session replays the **identical call sequence** a
  local gateway would have seen, at the identical virtual times.
* :class:`RemoteBoard` turns every triage ``tick`` into a ``sweep``
  command and blocks for the ``feedback`` downlink, mirroring the
  post-sweep state into the local board — which is exactly what the
  governor reads next tick, reproducing the in-process loop's one-tick
  feedback latency over a real socket.

Node-side work (synthesis, delineation, CS encoding, channel
impairment, governor decisions) runs locally, exactly as a shard
worker's scheduler would run it; everything gateway-side happens on the
server.  The end-of-run ``report`` ships the node-side aggregates of a
:class:`~repro.fleet.sharding.ShardPatientRow`, and the server fills in
the gateway-side half.
"""

from __future__ import annotations

import socket
from collections import deque

from ..classification.afib import AfDetector
from .cohort import PatientProfile
from .gateway import Gateway, GatewayConfig
from .node_proxy import NodeProxyConfig, UplinkPacket
from .scheduler import FleetReport, FleetScheduler, SchedulerConfig
from .sharding import ShardHooks
from .triage import TriageBoard
from .wire import (
    MAX_FRAME_BYTES,
    ServeMessage,
    StreamDecoder,
    decode_message,
    encode_message,
    encode_stream_frame,
)
from .serve import RECV_CHUNK, ServeError


class _Transport:
    """Blocking socket transport speaking length-delimited frames.

    One instance per connection: owns the socket, the incremental
    :class:`~repro.fleet.wire.StreamDecoder` and an inbox of downlink
    frames that arrived ahead of the reply being waited on.
    """

    def __init__(self, host: str, port: int,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 timeout_s: float = 120.0) -> None:
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout_s)
        self._decoder = StreamDecoder(max_frame_bytes)
        self._inbox: deque[bytes] = deque()

    def send_frame(self, body: bytes) -> None:
        """Uplink one frame body (blocking; TCP backpressure applies)."""
        self._sock.sendall(encode_stream_frame(body))

    def send_message(self, msg: ServeMessage) -> None:
        """Uplink one control message."""
        self.send_frame(encode_message(msg))

    def recv_message(self) -> ServeMessage:
        """Block for the next downlink message.

        Raises:
            ServeError: The server replied ``error``, closed the
                connection, or the socket timed out.
        """
        while not self._inbox:
            try:
                chunk = self._sock.recv(RECV_CHUNK)
            except socket.timeout as exc:
                raise ServeError("timed out awaiting a reply") from exc
            if not chunk:
                raise ServeError("connection closed while awaiting "
                                 "a reply")
            # Decoder frames are views valid only until the next
            # feed(); the inbox retains them across recv calls.
            self._inbox.extend(
                bytes(frame) for frame in self._decoder.feed(chunk))
        msg = decode_message(self._inbox.popleft())
        if msg.kind == "error":
            raise ServeError(msg.info.get("error", "server error"))
        return msg

    def close(self) -> None:
        """Close the socket."""
        self._sock.close()


class RemoteGateway(Gateway):
    """Gateway stand-in that uplinks instead of processing.

    Accepts the very same scheduler calls as a local
    :class:`~repro.fleet.Gateway` and forwards each as wire traffic:
    packets become stream frames, phase calls become serve commands
    stamped with their virtual time.  Nothing is processed locally —
    ``drain`` returns nothing (the server's session drains into *its*
    triage board), so the client-side board never sees excerpts, only
    the mirrored sweep feedback.
    """

    def __init__(self, transport: _Transport, patient_id: str,
                 config: GatewayConfig | None = None) -> None:
        super().__init__(config)
        self._transport = transport
        self._patient_id = patient_id
        #: Virtual time of the last expiry sweep — the drain commands'
        #: timestamp (the scheduler drains right after expiring).
        self._now_s = 0.0

    def ingest(self, payload: "UplinkPacket | bytes | bytearray | "
               "memoryview") -> bool:
        """Uplink one packet as a wire frame (never queued locally)."""
        if isinstance(payload, UplinkPacket):
            payload = payload.to_bytes()
        self._transport.send_frame(bytes(payload))
        return True

    def expire_reassembly(self, now_s: float | None = None) -> int:
        """Relay the expiry sweep; remember its virtual time."""
        if now_s is not None:
            self._now_s = float(now_s)
        self._transport.send_message(ServeMessage(
            "expire", self._patient_id, t_s=self._now_s))
        return 0

    def drain(self, max_packets: int | None = None) -> list:
        """Relay the drain phase; outputs stay on the server."""
        budget = -1.0 if max_packets is None else float(max_packets)
        self._transport.send_message(ServeMessage(
            "drain", self._patient_id, t_s=self._now_s,
            fields={"budget": budget}))
        return []

    def flush_reassembly(self) -> int:
        """Relay the end-of-run reassembly flush."""
        self._transport.send_message(ServeMessage(
            "flush", self._patient_id, t_s=self._now_s))
        return 0


class RemoteBoard(TriageBoard):
    """Triage board stand-in that sweeps on the server.

    Every ``tick`` is a synchronous round trip: the ``sweep`` command
    goes up, the ``feedback`` downlink comes back, and the patient's
    post-sweep state / mode / alert count / SoC are mirrored into the
    local state machine — the closed-loop path the client's governor
    reads on its next decision.
    """

    def __init__(self, transport: _Transport, patient_id: str) -> None:
        super().__init__()
        self._transport = transport
        self._patient_id = patient_id

    def set_expected_period(self, patient_id: str,
                            period_s: float) -> None:
        """Declare the node's uplink period locally and on the server."""
        super().set_expected_period(patient_id, period_s)
        self._transport.send_message(ServeMessage(
            "period", self._patient_id,
            fields={"period_s": float(period_s)}))

    def tick(self, now_s: float) -> None:
        """Sweep on the server; mirror the feedback into this board.

        Raises:
            ServeError: The downlink was not a ``feedback`` message.
        """
        self._transport.send_message(ServeMessage(
            "sweep", self._patient_id, t_s=float(now_s)))
        reply = self._transport.recv_message()
        if reply.kind != "feedback":
            raise ServeError(f"expected feedback, got {reply.kind!r}")
        patient = self.patient(self._patient_id)
        patient.state = reply.info.get("state", patient.state)
        patient.mode = reply.info.get("mode", patient.mode)
        patient.n_alerts = int(reply.fields.get(
            "n_alerts", patient.n_alerts))
        patient.soc = reply.fields.get("soc", patient.soc)


class FleetClient:
    """One patient node as a TCP client of the gateway service.

    Args:
        host: Gateway service host.
        port: Gateway service port (``FleetGatewayServer.port``).
        max_frame_bytes: Stream-decoder frame ceiling for the downlink.
    """

    def __init__(self, host: str, port: int,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        #: Whether the last :meth:`run` resumed an existing session.
        self.resumed = False

    def run(self, profile: PatientProfile,
            config: SchedulerConfig | None = None,
            node_config: NodeProxyConfig | None = None,
            hooks: ShardHooks | None = None,
            af_detector: AfDetector | None = None) -> FleetReport:
        """Stream one patient's full run to the service.

        Connects, handshakes, runs a single-patient
        :class:`~repro.fleet.FleetScheduler` over the remote adapters,
        ships the end-of-run ``report`` and closes with ``bye``.

        Returns:
            The local scheduler's :class:`~repro.fleet.FleetReport`
            (node-side numbers; the fleet summary lives server-side).

        Raises:
            ServeError: Handshake rejection (e.g. a duplicate live
                connection for this patient) or a protocol violation.
        """
        hooks = hooks or ShardHooks()
        pid = profile.patient_id
        transport = _Transport(self.host, self.port,
                               self.max_frame_bytes)
        try:
            transport.send_message(ServeMessage("hello", pid))
            ack = transport.recv_message()
            if ack.kind != "hello-ack":
                raise ServeError(f"expected hello-ack, got {ack.kind!r}")
            self.resumed = ack.info.get("resumed") == "1"
            scheduler = FleetScheduler(
                [profile], config, node_config=node_config,
                gateway=RemoteGateway(transport, pid),
                board=RemoteBoard(transport, pid),
                af_detector=af_detector,
                link=hooks.link,
                record_transform=hooks.record_transform,
                governor_factory=hooks.governor_factory,
                extra_load=hooks.extra_load,
                acuity_override=hooks.acuity_override)
            fleet = scheduler.run()
            self._send_report(transport, scheduler, fleet, pid)
            transport.send_message(ServeMessage("bye", pid))
            return fleet
        finally:
            transport.close()

    @staticmethod
    def _send_report(transport: _Transport, scheduler: FleetScheduler,
                     fleet: FleetReport, pid: str) -> None:
        """Ship the node-side row aggregates; await the ack.

        The message itself comes from
        :meth:`~repro.fleet.scheduler.FleetScheduler.report_message` —
        the single construction shared with the gateway journal, so a
        served run and a journaled in-process run log byte-identical
        ``report`` rows.
        """
        transport.send_message(
            scheduler.report_message(pid, fleet.node_reports))
        ack = transport.recv_message()
        if ack.kind != "report-ack":
            raise ServeError(f"expected report-ack, got {ack.kind!r}")
