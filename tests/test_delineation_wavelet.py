"""Accuracy tests for the wavelet delineator (paper T1 claims)."""

import numpy as np
import pytest

from repro.delineation import (
    RPeakDetector,
    WaveletDelineator,
    WaveletDelineatorConfig,
    evaluate_delineation,
)
from repro.delineation.wavelet_delineator import robust_noise_level


@pytest.fixture(scope="module")
def nsr_report(nsr_record):
    ecg = nsr_record.lead(1)
    peaks = RPeakDetector(ecg.fs).detect(ecg.signal)
    detected = WaveletDelineator(ecg.fs).delineate(ecg.signal, peaks)
    return evaluate_delineation(ecg.beats, detected, ecg.fs)


class TestAccuracyNsr:
    def test_beat_level_perfect(self, nsr_report):
        assert nsr_report.beat_sensitivity >= 0.99
        assert nsr_report.beat_ppv >= 0.99

    def test_all_fiducials_above_90(self, nsr_report):
        # The paper's claim: Se and PPV above 90 % for all fiducials.
        assert nsr_report.worst_sensitivity() >= 0.90
        assert nsr_report.worst_ppv() >= 0.90

    @pytest.mark.parametrize("wave,mark", [
        ("QRS", "onset"), ("QRS", "peak"), ("QRS", "end"),
        ("P", "onset"), ("P", "peak"), ("P", "end"),
        ("T", "onset"), ("T", "peak"), ("T", "end"),
    ])
    def test_each_fiducial(self, nsr_report, wave, mark):
        score = nsr_report.fiducials[(wave, mark)]
        assert score.sensitivity >= 0.90
        assert score.ppv >= 0.90

    def test_biases_are_small(self, nsr_report):
        for (wave, mark), score in nsr_report.fiducials.items():
            assert abs(score.mean_error_s) < 0.030, (wave, mark)


class TestAfBehaviour:
    def test_p_wave_declared_absent_in_af(self, af_record):
        ecg = af_record.lead(1)
        peaks = RPeakDetector(ecg.fs).detect(ecg.signal)
        detected = WaveletDelineator(ecg.fs).delineate(ecg.signal, peaks)
        report = evaluate_delineation(ecg.beats, detected, ecg.fs)
        presence = report.presence["P"]
        # In AF all P waves are truly absent; specificity counts the
        # correctly-rejected ones.
        assert presence.specificity >= 0.90

    def test_p_wave_present_in_nsr(self, nsr_record):
        ecg = nsr_record.lead(1)
        peaks = RPeakDetector(ecg.fs).detect(ecg.signal)
        detected = WaveletDelineator(ecg.fs).delineate(ecg.signal, peaks)
        report = evaluate_delineation(ecg.beats, detected, ecg.fs)
        assert report.presence["P"].sensitivity >= 0.95


class TestInterfaces:
    def test_internal_peak_detection(self, nsr_record):
        ecg = nsr_record.lead(1)
        detected = WaveletDelineator(ecg.fs).delineate(ecg.signal)
        assert len(detected) == pytest.approx(len(ecg.beats), abs=2)

    def test_delineate_record_with_truth_seeds(self, nsr_record):
        ecg = nsr_record.lead(1)
        delineator = WaveletDelineator(ecg.fs)
        detected = delineator.delineate_record(ecg,
                                               use_annotated_r_peaks=True)
        assert len(detected) == len(ecg.beats)

    def test_empty_signal(self):
        assert WaveletDelineator(250.0).delineate(np.zeros(100)) == []

    def test_transform_shape(self, nsr_record):
        ecg = nsr_record.lead(1)
        w = WaveletDelineator(ecg.fs).transform(ecg.signal[:1000])
        assert w.shape == (5, 1000)

    def test_invalid_fs(self):
        with pytest.raises(ValueError, match="positive"):
            WaveletDelineator(0.0)

    def test_custom_config_scales(self, nsr_record):
        ecg = nsr_record.lead(1)
        config = WaveletDelineatorConfig(levels=4, t_scale=2)
        detected = WaveletDelineator(ecg.fs, config).delineate(
            ecg.signal, ecg.r_peaks)
        assert len(detected) == len(ecg.beats)

    def test_robust_noise_level_tracks_sigma(self, rng):
        x = rng.normal(0.0, 0.5, 100_000)
        assert robust_noise_level(x) == pytest.approx(0.5, rel=0.05)
