"""Versioned binary wire codec for uplink packets.

Until now an :class:`~repro.fleet.UplinkPacket` was a Python dataclass
holding numpy arrays — it could travel between objects in one process
but never across a socket, a radio frame, or a process boundary.  This
module gives every packet kind (multi-/single-lead CS excerpt, raw
excerpt, telemetry, alarm) an exact little-endian binary form, so the
fleet runtime can be sharded across workers (:mod:`repro.fleet.sharding`)
and, eventually, across machines.

Round trips are **exact**: measurement vectors and evaluation references
ship as raw numpy buffers (dtype token + ``tobytes()``), floats as IEEE
doubles, so ``decode_packet(encode_packet(p))`` reproduces every field
bit for bit — the gateway cannot tell a decoded packet from the
original (tested end to end via ``SchedulerConfig.wire_loopback``).

Frame layout (version 1, all integers little-endian)::

    offset  size  field
    0       4     magic  b"RPW1"
    4       1     version (0x01)
    5       1     flags   (bit 0: reference attached)
    6       var   kind        u8 length + UTF-8 bytes
    .       var   mode        u8 length + UTF-8 bytes
    .       var   patient_id  u8 length + UTF-8 bytes
    .       8     seq          u64
    .       8     timestamp_s  f64
    .       8     start        i64
    .       8     payload_bits u64
    .       2     n_leads      u16
    .       4     window_n     u32
    .       8     cr_percent   f64
    .       2     quant_bits   u16
    .       8     cs_seed      i64
    .       8     fs           f64
    .       8     mean_hr_bpm  f64
    .       8     soc          f64
    .       2     n_frames     u16
    .       var   n_frames x n_leads encoded windows:
                      u32 m, f64 scale, u32 payload_bits,
                      u32 additions, dtype token (u8 len + bytes),
                      m * itemsize raw measurement buffer
    .       var   reference (flag bit 0 only): u8 ndim, ndim x u32
                  dims, dtype token, raw buffer

Decoding is defensive: a wrong magic, unknown version, truncated
buffer or trailing garbage raises :class:`WireFormatError` instead of
yielding a corrupt packet.

**Zero-copy discipline** (see ``docs/transport.md``): decoded arrays
are always read-only, and when the source buffer is immutable
``bytes`` (or a read-only view of one —
:func:`repro.fleet.transport.is_aliasable`) they *alias* the source
instead of copying it, so a gateway drain reads measurement vectors
straight out of the frame it ingested.  Mutable sources
(``bytearray``, socket scratch) are still copied: no later mutation
can ever corrupt a held packet.  Callers owning a stable buffer (a
mapped shared-memory segment) may force views with ``copy=False``.
On the encode side, :func:`encode_packet_into` appends the frame to a
caller-provided (pooled) ``bytearray`` without materialising
intermediate ``tobytes()`` copies.

On top of the packet codec this module also defines the **stream
layer** the socket gateway service (:mod:`repro.fleet.serve`) speaks:
u32-length-delimited frames (:func:`encode_stream_frame`), an
incremental :class:`StreamDecoder` that re-frames an arbitrary byte
stream, and a compact :class:`ServeMessage` control codec
(:data:`MESSAGE_MAGIC`) carrying the uplink commands and the
governor/triage feedback downlink.  Every frame body starts with a
4-byte magic, so :func:`frame_kind` can route packets and messages off
one TCP stream.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from ..compression.encoder import EncodedWindow
from .node_proxy import UplinkPacket
from .transport import is_aliasable

#: First bytes of every version-1 packet frame.
WIRE_MAGIC = b"RPW1"

#: First bytes of every version-1 control message (serving downlink /
#: uplink commands); same length as :data:`WIRE_MAGIC` so one stream
#: frame's first four bytes always identify its codec.
MESSAGE_MAGIC = b"RPM1"

#: Current codec version (bump on any layout change).
WIRE_VERSION = 1

#: Default per-frame byte ceiling of :class:`StreamDecoder` — large
#: enough for any reference-carrying excerpt frame, small enough that a
#: corrupt length prefix cannot make a connection buffer gigabytes.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Flag bit: an evaluation ``reference`` array follows the frames.
_FLAG_REFERENCE = 0x01

_HEAD = struct.Struct("<4sBB")
_BODY = struct.Struct("<QdqQHIdHqdddH")
_WINDOW = struct.Struct("<IdII")


class WireFormatError(ValueError):
    """A buffer does not parse as a valid wire-format frame."""


def _pack_str(value: str) -> bytes:
    """Length-prefixed UTF-8 (u8 length; 255-byte ceiling)."""
    raw = value.encode("utf-8")
    if len(raw) > 255:
        raise WireFormatError(f"string field too long ({len(raw)} bytes)")
    return bytes([len(raw)]) + raw


def _unpack_str(buf: memoryview, offset: int) -> tuple[str, int]:
    """Read one length-prefixed UTF-8 string; return (value, offset)."""
    if offset + 1 > len(buf):
        raise WireFormatError("truncated frame: string length missing")
    length = buf[offset]
    offset += 1
    if offset + length > len(buf):
        raise WireFormatError("truncated frame: string body missing")
    return bytes(buf[offset:offset + length]).decode("utf-8"), \
        offset + length


def _append_array(out: bytearray, array: np.ndarray) -> None:
    """Append a dtype token + the raw buffer of a 1-D array."""
    array = np.ascontiguousarray(array)
    out += _pack_str(array.dtype.str)
    out += memoryview(array).cast("B")


def _unpack_buffer(buf: memoryview, offset: int, count: int,
                   copy: bool = True) -> tuple[np.ndarray, int]:
    """Read a dtype token plus ``count`` items of raw buffer.

    The returned array is read-only; with ``copy=False`` it aliases
    ``buf`` (which must be read-only) instead of owning its data.
    """
    dtype_str, offset = _unpack_str(buf, offset)
    try:
        dtype = np.dtype(dtype_str)
    except TypeError as exc:
        raise WireFormatError(f"bad dtype token {dtype_str!r}") from exc
    if dtype.hasobject or dtype.itemsize == 0:
        raise WireFormatError(f"non-buffer dtype token {dtype_str!r}")
    nbytes = count * dtype.itemsize
    if offset + nbytes > len(buf):
        raise WireFormatError("truncated frame: array buffer missing")
    array = np.frombuffer(buf[offset:offset + nbytes], dtype=dtype)
    if copy:
        array = array.copy()
        array.setflags(write=False)
    return array, offset + nbytes


def encode_packet(packet: UplinkPacket) -> bytes:
    """Serialize one packet to its version-1 binary frame."""
    out = bytearray()
    encode_packet_into(packet, out)
    return bytes(out)


def encode_packet_into(packet: UplinkPacket, out: bytearray) -> int:
    """Append one packet's version-1 frame to ``out``.

    The pooled-buffer encode path
    (:class:`~repro.fleet.transport.BufferPool`): measurement and
    reference buffers are appended straight from their numpy memory —
    no intermediate ``tobytes()`` copies, no allocation beyond the
    growth of ``out`` itself.  Returns the number of bytes appended.

    Raises:
        WireFormatError: A frame's window count contradicts the
            declared lead count, or a field exceeds its wire range.
    """
    start = len(out)
    out += _HEAD.pack(WIRE_MAGIC, WIRE_VERSION,
                      _FLAG_REFERENCE if packet.reference is not None
                      else 0)
    out += _pack_str(packet.kind)
    out += _pack_str(packet.mode)
    out += _pack_str(packet.patient_id)
    out += _BODY.pack(packet.seq, packet.timestamp_s, packet.start,
                      packet.payload_bits, packet.n_leads,
                      packet.window_n, packet.cr_percent,
                      packet.quant_bits, packet.cs_seed, packet.fs,
                      packet.mean_hr_bpm, packet.soc, packet.n_frames)
    for frame in packet.frames:
        if len(frame) != packet.n_leads:
            raise WireFormatError(
                f"frame holds {len(frame)} windows, packet declares "
                f"{packet.n_leads} leads")
        for window in frame:
            measurements = np.ascontiguousarray(window.measurements)
            if measurements.ndim != 1:
                raise WireFormatError("measurement vectors must be 1-D")
            out += _WINDOW.pack(measurements.shape[0], window.scale,
                                window.payload_bits, window.additions)
            _append_array(out, measurements)
    if packet.reference is not None:
        reference = np.ascontiguousarray(packet.reference)
        if reference.ndim > 255:
            raise WireFormatError("reference rank too large")
        out += bytes([reference.ndim])
        out += struct.pack(f"<{reference.ndim}I", *reference.shape)
        _append_array(out, reference.reshape(-1))
    return len(out) - start


def decode_packet(data: bytes | bytearray | memoryview, *,
                  copy: bool | None = None) -> UplinkPacket:
    """Parse one binary frame back into an :class:`UplinkPacket`.

    Decoded arrays are always read-only.  With ``copy=None`` (the
    default) they alias ``data`` when that is safe —
    :func:`~repro.fleet.transport.is_aliasable` backing, i.e. immutable
    ``bytes`` — and are copied otherwise, so mutating a ``bytearray``
    source after decode can never corrupt the packet.  ``copy=False``
    forces views for callers owning a stable buffer (e.g. a mapped
    shared-memory segment); ``copy=True`` forces owned arrays.

    Raises:
        WireFormatError: Wrong magic, unsupported version, truncation,
            or trailing bytes after the frame.
    """
    if copy is None:
        copy = not is_aliasable(data)
    buf = memoryview(data).toreadonly()
    packet, offset = _decode_at(buf, 0, copy)
    if offset != len(buf):
        raise WireFormatError(
            f"{len(buf) - offset} trailing bytes after the frame")
    return packet


def _decode_at(buf: memoryview, offset: int,
               copy: bool = True) -> tuple[UplinkPacket, int]:
    """Decode one frame starting at ``offset``; return (packet, end)."""
    if offset + _HEAD.size > len(buf):
        raise WireFormatError("truncated frame: header missing")
    magic, version, flags = _HEAD.unpack_from(buf, offset)
    if magic != WIRE_MAGIC:
        raise WireFormatError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version}")
    offset += _HEAD.size
    kind, offset = _unpack_str(buf, offset)
    mode, offset = _unpack_str(buf, offset)
    patient_id, offset = _unpack_str(buf, offset)
    if offset + _BODY.size > len(buf):
        raise WireFormatError("truncated frame: body missing")
    (seq, timestamp_s, start, payload_bits, n_leads, window_n,
     cr_percent, quant_bits, cs_seed, fs, mean_hr_bpm, soc,
     n_frames) = _BODY.unpack_from(buf, offset)
    offset += _BODY.size
    frames = []
    for _ in range(n_frames):
        frame = []
        for _ in range(n_leads):
            if offset + _WINDOW.size > len(buf):
                raise WireFormatError("truncated frame: window missing")
            m, scale, window_bits, additions = _WINDOW.unpack_from(
                buf, offset)
            offset += _WINDOW.size
            measurements, offset = _unpack_buffer(buf, offset, m, copy)
            frame.append(EncodedWindow(measurements=measurements,
                                       scale=scale,
                                       payload_bits=window_bits,
                                       additions=additions))
        frames.append(tuple(frame))
    reference = None
    if flags & _FLAG_REFERENCE:
        if offset + 1 > len(buf):
            raise WireFormatError("truncated frame: reference rank missing")
        ndim = buf[offset]
        offset += 1
        if offset + 4 * ndim > len(buf):
            raise WireFormatError("truncated frame: reference dims missing")
        shape = struct.unpack_from(f"<{ndim}I", buf, offset)
        offset += 4 * ndim
        flat, offset = _unpack_buffer(buf, offset,
                                      int(np.prod(shape, dtype=np.int64)),
                                      copy)
        reference = flat.reshape(shape)
    packet = UplinkPacket(
        patient_id=patient_id,
        seq=seq,
        timestamp_s=timestamp_s,
        kind=kind,
        start=start,
        frames=tuple(frames),
        payload_bits=payload_bits,
        n_leads=n_leads,
        window_n=window_n,
        cr_percent=cr_percent,
        quant_bits=quant_bits,
        cs_seed=cs_seed,
        fs=fs,
        mean_hr_bpm=mean_hr_bpm,
        reference=reference,
        mode=mode,
        soc=soc,
    )
    return packet, offset


def encode_packets(packets) -> bytes:
    """Serialize a packet sequence as one length-prefixed stream.

    Layout: u32 packet count, then per packet a u32 frame length
    followed by the :func:`encode_packet` frame — the shard workers'
    result transport, and the natural on-disk capture format.
    """
    packets = list(packets)
    out = bytearray(struct.pack("<I", len(packets)))
    for packet in packets:
        length_at = len(out)
        out += b"\x00\x00\x00\x00"
        length = encode_packet_into(packet, out)
        struct.pack_into("<I", out, length_at, length)
    return bytes(out)


def decode_packets(data: bytes | bytearray | memoryview, *,
                   copy: bool | None = None) -> list[UplinkPacket]:
    """Parse a :func:`encode_packets` stream back into packets.

    ``copy`` follows the :func:`decode_packet` view discipline: the
    default aliases immutable ``bytes`` sources and copies mutable
    ones.
    """
    if copy is None:
        copy = not is_aliasable(data)
    buf = memoryview(data).toreadonly()
    if len(buf) < 4:
        raise WireFormatError("truncated stream: count missing")
    (count,) = struct.unpack_from("<I", buf, 0)
    offset = 4
    packets = []
    for _ in range(count):
        if offset + 4 > len(buf):
            raise WireFormatError("truncated stream: frame length missing")
        (length,) = struct.unpack_from("<I", buf, offset)
        offset += 4
        if offset + length > len(buf):
            raise WireFormatError("truncated stream: frame body missing")
        packets.append(decode_packet(buf[offset:offset + length],
                                     copy=copy))
        offset += length
    if offset != len(buf):
        raise WireFormatError(
            f"{len(buf) - offset} trailing bytes after the stream")
    return packets


# ---------------------------------------------------------------------------
# Stream layer: length-delimited framing + serve control messages.
# ---------------------------------------------------------------------------

_FRAME_LEN = struct.Struct("<I")
_MSG_HEAD = struct.Struct("<4sB")


def encode_stream_frame(body: bytes | bytearray | memoryview) -> bytes:
    """Wrap one frame body with the u32 stream length prefix.

    The socket transport unit: ``u32 length`` + ``length`` body bytes.
    The body is a complete :func:`encode_packet` or
    :func:`encode_message` frame (never a fragment), so the receiver's
    :class:`StreamDecoder` re-frames the TCP byte soup back into exact
    codec inputs.

    Raises:
        WireFormatError: Empty body (a zero-length frame can never
            carry a magic, so it is malformed by construction).
    """
    if not body:
        raise WireFormatError("stream frames must carry a body")
    return _FRAME_LEN.pack(len(body)) + bytes(body)


def frame_kind(body: bytes | bytearray | memoryview) -> str:
    """Classify one stream-frame body by its leading magic.

    Returns:
        ``"packet"`` for :data:`WIRE_MAGIC` bodies, ``"message"`` for
        :data:`MESSAGE_MAGIC` bodies.

    Raises:
        WireFormatError: Body shorter than a magic or unknown magic.
    """
    head = bytes(body[:4])
    if head == WIRE_MAGIC:
        return "packet"
    if head == MESSAGE_MAGIC:
        return "message"
    raise WireFormatError(f"unknown frame magic {head!r}")


class StreamDecoder:
    """Incremental splitter of a length-delimited byte stream.

    Feed it whatever the socket produced — half a length prefix, three
    frames and a tail, one byte at a time — and it returns each
    complete frame body exactly once, in order.  State between calls is
    just the undecoded tail, so a connection handler owns one decoder
    for its whole lifetime.

    Every malformed input raises :class:`WireFormatError` (never a bare
    ``struct.error``/``IndexError``): a frame longer than
    ``max_frame_bytes`` is rejected *from its length prefix alone*,
    before any body bytes arrive, bounding per-connection memory.

    **Frame lifetime**: :meth:`feed` returns read-only ``memoryview``
    slices over a per-call buffer instead of copied ``bytes`` — when
    the chunk is ``bytes`` and no tail was pending, the bodies are
    zero-copy windows into the chunk itself.  The views are guaranteed
    valid only until the next :meth:`feed` (or :meth:`finish`) call:
    consume them synchronously, or take ``bytes(frame)`` before
    crossing an ``await`` / queue / retention boundary (exactly what
    :mod:`repro.fleet.serve` and the client inbox do).

    Args:
        max_frame_bytes: Upper bound on one frame body's length.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        if max_frame_bytes < 1:
            raise ValueError("max_frame_bytes must be positive")
        self.max_frame_bytes = int(max_frame_bytes)
        self._tail = bytearray()
        #: Complete frame bodies returned so far.
        self.n_frames = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._tail)

    def feed(self, data: bytes | bytearray | memoryview,
             ) -> list[memoryview]:
        """Absorb one chunk; return every frame body it completed.

        The bodies are read-only views valid until the next ``feed``
        call (see the class docstring for the lifetime rule).

        Raises:
            WireFormatError: A length prefix announces an empty frame
                or one larger than ``max_frame_bytes``.  The decoder
                is poisoned afterwards — the connection is torn down,
                never resumed.
        """
        if self._tail:
            # A tail is pending: splice it with the chunk into one
            # immutable buffer (single pass, no quadratic regrowth).
            buf = b"".join((self._tail, data))
        elif isinstance(data, bytes):
            buf = data  # zero-copy fast path
        else:
            buf = bytes(data)
        view = memoryview(buf)
        frames: list[memoryview] = []
        offset = 0
        while len(buf) - offset >= _FRAME_LEN.size:
            (length,) = _FRAME_LEN.unpack_from(buf, offset)
            if length == 0:
                raise WireFormatError("zero-length stream frame")
            if length > self.max_frame_bytes:
                raise WireFormatError(
                    f"stream frame of {length} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte bound")
            end = offset + _FRAME_LEN.size + length
            if len(buf) < end:
                break
            frames.append(view[offset + _FRAME_LEN.size:end])
            offset = end
        self._tail = bytearray(view[offset:])
        self.n_frames += len(frames)
        return frames

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary.

        Raises:
            WireFormatError: Bytes are left mid-frame — the peer closed
                the connection inside a frame.
        """
        if self._tail:
            raise WireFormatError(
                f"stream ended mid-frame with {len(self._tail)} "
                "undecoded bytes")


@dataclass(frozen=True)
class ServeMessage:
    """One control message of the serving protocol.

    The non-packet half of the stream: uplink commands (``hello`` /
    ``expire`` / ``drain`` / ``sweep`` / ``flush`` / ``period`` /
    ``report`` / ``bye``) and downlink replies (``hello-ack`` /
    ``feedback`` / ``report-ack`` / ``error``).  The schema is
    deliberately generic — a kind, the subject patient, a virtual
    timestamp, a float map and a string map — so protocol growth never
    needs a new struct layout.

    Attributes:
        kind: Message verb (see :mod:`repro.fleet.serve`).
        patient_id: Subject node of the message.
        t_s: Virtual time the message refers to (command sweeps carry
            their scheduler tick time).
        fields: Numeric payload (insertion order preserved exactly on
            the wire — aggregate folds downstream stay byte-stable).
        info: String payload (states, modes, error text).
    """

    kind: str
    patient_id: str
    t_s: float = 0.0
    fields: dict[str, float] = field(default_factory=dict)
    info: dict[str, str] = field(default_factory=dict)


def encode_message(message: ServeMessage) -> bytes:
    """Serialize one :class:`ServeMessage` to its binary frame."""
    parts = [
        _MSG_HEAD.pack(MESSAGE_MAGIC, WIRE_VERSION),
        _pack_str(message.kind),
        _pack_str(message.patient_id),
        struct.pack("<d", float(message.t_s)),
        struct.pack("<H", len(message.fields)),
    ]
    for key, value in message.fields.items():
        parts.append(_pack_str(key))
        parts.append(struct.pack("<d", float(value)))
    parts.append(struct.pack("<H", len(message.info)))
    for key, value in message.info.items():
        parts.append(_pack_str(key))
        parts.append(_pack_str(value))
    return b"".join(parts)


def decode_message(data: bytes | bytearray | memoryview) -> ServeMessage:
    """Parse one binary frame back into a :class:`ServeMessage`.

    Map insertion order survives the round trip (tested), which is what
    keeps float folds over ``fields`` byte-identical across the wire.

    Raises:
        WireFormatError: Wrong magic, unsupported version, truncation,
            or trailing bytes after the message.
    """
    buf = memoryview(data)
    if len(buf) < _MSG_HEAD.size:
        raise WireFormatError("truncated message: header missing")
    magic, version = _MSG_HEAD.unpack_from(buf, 0)
    if magic != MESSAGE_MAGIC:
        raise WireFormatError(f"bad message magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported message version {version}")
    offset = _MSG_HEAD.size
    kind, offset = _unpack_str(buf, offset)
    patient_id, offset = _unpack_str(buf, offset)
    if offset + 8 + 2 > len(buf):
        raise WireFormatError("truncated message: body missing")
    (t_s,) = struct.unpack_from("<d", buf, offset)
    offset += 8
    (n_fields,) = struct.unpack_from("<H", buf, offset)
    offset += 2
    fields: dict[str, float] = {}
    for _ in range(n_fields):
        key, offset = _unpack_str(buf, offset)
        if offset + 8 > len(buf):
            raise WireFormatError("truncated message: field value missing")
        (value,) = struct.unpack_from("<d", buf, offset)
        fields[key] = value
        offset += 8
    if offset + 2 > len(buf):
        raise WireFormatError("truncated message: info count missing")
    (n_info,) = struct.unpack_from("<H", buf, offset)
    offset += 2
    info: dict[str, str] = {}
    for _ in range(n_info):
        key, offset = _unpack_str(buf, offset)
        value, offset = _unpack_str(buf, offset)
        info[key] = value
    if offset != len(buf):
        raise WireFormatError(
            f"{len(buf) - offset} trailing bytes after the message")
    return ServeMessage(kind=kind, patient_id=patient_id, t_s=t_s,
                        fields=fields, info=info)
