"""End-to-end heartbeat classification pipeline (exp T4).

Wires the paper's §III-D chain together: beat windows around detected R
peaks -> random projection -> neuro-fuzzy classification into the beat
classes (normal / ventricular / supraventricular).  The embedded cost
model combines the projection and membership op counts so the T4 bench
can report accuracy *and* MCU cycles for each design point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..signals.dataset import Corpus, beat_windows
from .gaussian import membership_ops
from .neurofuzzy import NeuroFuzzyClassifier
from .projections import RandomProjector


@dataclass
class HeartbeatClassifier:
    """Random-projection + neuro-fuzzy heartbeat classifier.

    Args:
        window: Beat window length in samples.
        k: Number of random-projection features.
        projection_kind: ``ternary`` / ``dense_sign`` / ``gaussian``.
        membership: ``exact`` or ``pwl`` Gaussian memberships.
        seed: Projection matrix seed.
    """

    window: int = 175
    k: int = 24
    projection_kind: str = "ternary"
    membership: str = "exact"
    seed: int = 11
    extra_features: int = 0

    def __post_init__(self) -> None:
        self.projector = RandomProjector(self.window, self.k,
                                         self.projection_kind, self.seed)
        self.classifier = NeuroFuzzyClassifier(membership=self.membership)

    def _features(self, rows: np.ndarray) -> np.ndarray:
        """Project the waveform part; pass extra (RR) columns through."""
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        expected = self.window + self.extra_features
        if rows.shape[1] != expected:
            raise ValueError(f"expected rows of {expected} columns "
                             f"(window + extras), got {rows.shape[1]}")
        projected = self.projector.project(rows[:, :self.window])
        if self.extra_features:
            return np.hstack([projected, rows[:, self.window:]])
        return projected

    def fit(self, rows: np.ndarray, labels: np.ndarray,
            ) -> "HeartbeatClassifier":
        """Train on beat rows (waveform window + optional RR columns)."""
        self.classifier.fit(self._features(rows), labels)
        return self

    def predict(self, rows: np.ndarray) -> np.ndarray:
        """Predict class labels for beat rows."""
        return self.classifier.predict(self._features(rows))

    def cycles_per_beat(self, cycles_per_add: int = 1,
                        cycles_per_mul: int = 4,
                        cycles_per_cmp: int = 1) -> int:
        """MCU cycles to classify one beat (projection + memberships)."""
        proj = self.projector.cost()
        member = membership_ops(self.membership)
        n_classes = max(1, len(self.classifier.rules))
        member_total = n_classes * self.k
        cycles = (proj.additions * cycles_per_add
                  + proj.multiplications * cycles_per_mul
                  + member_total * (member["multiplications"] * cycles_per_mul
                                    + member["additions"] * cycles_per_add
                                    + member["compares"] * cycles_per_cmp))
        return int(cycles)


def corpus_beat_dataset(corpus: Corpus, lead: int = 1,
                        before_s: float = 0.25, after_s: float = 0.45,
                        rr_features: bool = False,
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Beat windows + labels from a corpus, AF beats relabelled normal.

    AF beats have normal QRS morphology (the AF decision is rhythm-level,
    handled by :mod:`repro.classification.afib`), so for morphological
    classification they count as class ``N``.

    Args:
        corpus: Source records.
        lead: Lead to extract windows from.
        before_s: Window seconds before the R peak.
        after_s: Window seconds after the R peak.
        rr_features: Append two timing columns to each window — the
            prematurity ratios ``rr_prev / rr_mean`` and
            ``rr_next / rr_prev`` (scaled to the sample amplitude range).
            Ectopic beats are premature by definition, so timing separates
            APCs (normal morphology, early) from normal beats; ref [14]
            likewise combines morphological and RR features.
    """
    windows, labels = beat_windows(corpus, lead=lead, before_s=before_s,
                                   after_s=after_s)
    labels = np.where(labels == "A", "N", labels)
    if not rr_features or windows.shape[0] == 0:
        return windows, labels
    ratios = []
    for record in corpus:
        peaks = record.r_peaks.astype(float)
        fs = record.fs
        rr = np.diff(peaks) / fs
        mean_rr = float(np.mean(rr)) if rr.size else 1.0
        for i in range(len(record.beats)):
            rr_prev = rr[i - 1] if i > 0 else mean_rr
            rr_next = rr[i] if i < rr.shape[0] else mean_rr
            ratios.append((rr_prev / mean_rr, rr_next / max(rr_prev, 1e-6)))
    ratios_arr = np.asarray(ratios)
    if ratios_arr.shape[0] != windows.shape[0]:
        raise RuntimeError("beat/RR bookkeeping mismatch")
    return np.hstack([windows, ratios_arr]), labels


def train_test_split(windows: np.ndarray, labels: np.ndarray,
                     test_fraction: float = 0.4, seed: int = 5,
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split a beat dataset.

    Returns:
        ``(train_windows, train_labels, test_windows, test_labels)``.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must lie in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(windows.shape[0])
    windows = windows[order]
    labels = labels[order]
    cut = int(round(windows.shape[0] * (1.0 - test_fraction)))
    cut = min(max(cut, 1), windows.shape[0] - 1)
    return windows[:cut], labels[:cut], windows[cut:], labels[cut:]
