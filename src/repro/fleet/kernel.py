"""Discrete-event simulation kernel: a single heap of virtual-time events.

The tick loop the fleet started with charges every patient for every
tick — cohort size × tick rate bounds everything, even when 90 % of the
nodes are delineation-only and uplink once per ten minutes.  This
module replaces the loop's *clock* with an event heap: node uplinks,
governor decisions, link deliveries, reassembly-grace expiries and
triage sweeps are :class:`Event` records ordered by the total key
``(t_s, priority, subject, seq)``, and the kernel simply pops and runs
them.  Virtual time is whatever the head of the heap says; wall time
never appears.

Why the key is a *total* order (no tie-breaking left to the heap):

* ``t_s`` — virtual seconds; events fire in simulated-time order.
* ``priority`` — phase rank within one timestamp (see the ``PRIO_*``
  constants): governor decisions land before the uplinks they steer,
  link deliveries before the reassembly-expiry sweep that would write
  their gap off, drains before the triage decay that reads them —
  exactly the phase order of the legacy tick loop, so a kernel run
  over a lockstep schedule replays the loop byte for byte.
* ``subject`` — the entity (patient id, or ``""`` for fleet-wide
  sweeps); same-priority events at one instant fire in subject order,
  which is shard-layout independent.
* ``seq`` — per-subject emission counter (mirroring the trace
  recorder's), so two events on one subject can never collide.

Because every component of the key is assigned deterministically at
:meth:`EventKernel.schedule` time, the processing order is a pure
function of the schedule — fuzzed in ``tests/test_fleet_kernel.py`` to
contain no duplicate keys across governed + impaired cohorts.

:class:`~repro.fleet.FleetScheduler` is the only in-repo client today:
its ``engine="kernel"`` mode schedules the legacy loop as per-tick
sweep events (the *lockstep façade*, byte-identical by construction)
and switches to per-node uplink events when any profile carries an
``uplink_period_s`` override — cost proportional to events, not ticks.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable

#: Phase ranks within one virtual timestamp, mirroring the legacy tick
#: loop's statement order.  Governor decisions steer the uplinks that
#: follow them; deliveries land before the expiry sweep that would
#: write them off; drains feed the triage decay that closes the tick.
PRIO_GOVERNOR = 0
PRIO_ALARM_EARLY = 1
PRIO_UPLINK = 2
PRIO_ALARM_LATE = 3
PRIO_DELIVERY = 4
PRIO_REASSEMBLY = 5
PRIO_DRAIN = 6
PRIO_TRIAGE = 7

#: Every rank the kernel accepts, in firing order.
PRIORITIES = (PRIO_GOVERNOR, PRIO_ALARM_EARLY, PRIO_UPLINK,
              PRIO_ALARM_LATE, PRIO_DELIVERY, PRIO_REASSEMBLY,
              PRIO_DRAIN, PRIO_TRIAGE)


class KernelError(ValueError):
    """Event contract violation: bad time, unknown priority, time travel."""


@dataclass(frozen=True)
class Event:
    """One scheduled action stamped with its full ordering key.

    Attributes:
        t_s: Virtual firing time in seconds.
        priority: Phase rank (one of :data:`PRIORITIES`).
        subject: Entity the event belongs to (patient id, or ``""``
            for fleet-wide sweeps).
        seq: Per-subject emission sequence number — the component that
            makes the key a total order.
        name: Dotted event name for stats and traces
            (e.g. ``"node.uplink"``).
        action: Zero-argument callable run when the event fires; it may
            schedule further events at or after its own ``t_s``.
    """

    t_s: float
    priority: int
    subject: str
    seq: int
    name: str
    action: Callable[[], None] = field(repr=False)

    @property
    def key(self) -> tuple[float, int, str, int]:
        """The ``(t_s, priority, subject, seq)`` total-order key."""
        return (self.t_s, self.priority, self.subject, self.seq)


class EventKernel:
    """A heap of :class:`Event` records processed in total-key order.

    Args:
        record_keys: Keep every processed event's ordering key in
            :attr:`processed_keys` (the total-order property test's
            input); off by default to keep long runs lean.

    Attributes:
        now_s: Virtual time of the event being (or last) processed.
        n_scheduled: Events accepted by :meth:`schedule` so far.
        n_processed: Events fired by :meth:`run` so far.
        counts_by_name: Processed-event tally per event name.
        processed_keys: Ordering keys in firing order (only populated
            with ``record_keys=True``).
    """

    def __init__(self, record_keys: bool = False) -> None:
        self.now_s = 0.0
        self.n_scheduled = 0
        self.n_processed = 0
        self.counts_by_name: dict[str, int] = {}
        self.processed_keys: list[tuple] | None = \
            [] if record_keys else None
        self._heap: list[tuple[tuple, Event]] = []
        self._seq: dict[str, int] = {}

    def __len__(self) -> int:
        """Events still pending on the heap."""
        return len(self._heap)

    def schedule(self, t_s: float, priority: int, name: str,
                 action: Callable[[], None],
                 subject: str = "") -> Event:
        """Enqueue one action at virtual time ``t_s``.

        The per-subject sequence number is assigned here, in emission
        order — two calls can never produce the same key, so the heap
        never has to break a tie non-deterministically.

        Raises:
            KernelError: Non-finite time, unknown priority, or a time
                earlier than the event currently being processed
                (events must not travel into the simulated past).
        """
        t_s = float(t_s)
        if not math.isfinite(t_s):
            raise KernelError(f"event {name!r}: time must be finite, "
                              f"got {t_s}")
        if priority not in PRIORITIES:
            raise KernelError(f"event {name!r}: unknown priority "
                              f"{priority!r}; choose from {PRIORITIES}")
        if t_s < self.now_s:
            raise KernelError(
                f"event {name!r} at t={t_s} scheduled behind virtual "
                f"time {self.now_s} (no time travel)")
        seq = self._seq.get(subject, 0)
        self._seq[subject] = seq + 1
        event = Event(t_s=t_s, priority=priority, subject=subject,
                      seq=seq, name=name, action=action)
        heapq.heappush(self._heap, (event.key, event))
        self.n_scheduled += 1
        return event

    def peek_s(self) -> float | None:
        """Firing time of the next pending event (``None`` when idle)."""
        return self._heap[0][0][0] if self._heap else None

    def advance_to(self, t_s: float) -> float:
        """Advance virtual time without firing an event; return ``now_s``.

        The serving layer's clock clamp: a gateway session pins its
        kernel to each remote command's stamped time before scheduling
        the command as an event, so the no-time-travel guard in
        :meth:`schedule` enforces monotone command order across a whole
        connection (and across reconnects, since the session kernel
        outlives the socket).  Moving backwards is a no-op — ``now_s``
        never decreases — which absorbs commands stamped slightly in
        the past (e.g. a drain reusing its tick's expiry time).

        Raises:
            KernelError: Non-finite time, or a target that would jump
                over pending events (they would then be scheduled-past
                and could never fire in order).
        """
        t_s = float(t_s)
        if not math.isfinite(t_s):
            raise KernelError(f"advance_to: time must be finite, got {t_s}")
        head = self.peek_s()
        if head is not None and t_s > head:
            raise KernelError(
                f"advance_to({t_s}) would jump over a pending event "
                f"at t={head}")
        self.now_s = max(self.now_s, t_s)
        return self.now_s

    def run(self, until_s: float | None = None) -> int:
        """Fire pending events in key order; return how many fired.

        Args:
            until_s: Stop before the first event strictly later than
                this virtual time (``None`` = drain the heap).  Events
                scheduled by running actions join the same heap and
                fire in their proper order.
        """
        fired = 0
        while self._heap:
            key, event = self._heap[0]
            if until_s is not None and key[0] > until_s:
                break
            heapq.heappop(self._heap)
            self.now_s = event.t_s
            event.action()
            self.n_processed += 1
            self.counts_by_name[event.name] = \
                self.counts_by_name.get(event.name, 0) + 1
            if self.processed_keys is not None:
                self.processed_keys.append(key)
            fired += 1
        return fired

    def stats(self) -> dict:
        """JSON-safe snapshot of the kernel's work counters."""
        return {
            "n_scheduled": self.n_scheduled,
            "n_processed": self.n_processed,
            "pending": len(self._heap),
            "now_s": self.now_s,
            "by_name": dict(sorted(self.counts_by_name.items())),
        }
