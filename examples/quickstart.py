"""Quickstart: synthesize an ECG, condition it, delineate it (Fig. 2).

Runs the basic on-node chain of the paper on a synthetic record and
prints the delineated fiducials of a few beats — the textual equivalent
of the paper's Fig. 2 ("Delineated normal sinus beat").

Run:  python examples/quickstart.py [--duration 30]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.delineation import RPeakDetector, WaveletDelineator, \
    evaluate_delineation
from repro.filtering import MorphologicalFilter
from repro.signals import RecordSpec, make_record


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=30.0,
                        help="record length in seconds")
    args = parser.parse_args()

    # 1. Synthesize a 3-lead ECG at 20 dB SNR with ground truth.
    record = make_record(RecordSpec(name="demo",
                                    duration_s=args.duration,
                                    snr_db=20.0, seed=7))
    ecg = record.lead(1)  # lead II
    print(f"record: {record.name}, {record.n_leads} leads, "
          f"{record.duration_s:.0f} s, {len(record.beats)} beats")

    # 2. Condition with the morphological filter of ref [9].
    conditioner = MorphologicalFilter(ecg.fs)
    conditioned = conditioner.condition(ecg.signal)

    # 3. Detect R peaks and delineate with the wavelet delineator [12].
    peaks = RPeakDetector(ecg.fs).detect(conditioned)
    beats = WaveletDelineator(ecg.fs).delineate(conditioned, peaks)

    # 4. Print the Fig. 2-style delineation of three beats.
    print("\ndelineated beats (sample indices):")
    print(f"{'R peak':>8} {'P on':>6} {'P pk':>6} {'P end':>6} "
          f"{'QRS on':>7} {'QRS end':>8} {'T on':>6} {'T pk':>6} "
          f"{'T end':>6}")
    for beat in beats[2:5]:
        print(f"{beat.r_peak:>8} {beat.p_wave.onset:>6} "
              f"{beat.p_wave.peak:>6} {beat.p_wave.end:>6} "
              f"{beat.qrs.onset:>7} {beat.qrs.end:>8} "
              f"{beat.t_wave.onset:>6} {beat.t_wave.peak:>6} "
              f"{beat.t_wave.end:>6}")

    # 5. Score against the synthesizer's exact ground truth.
    report = evaluate_delineation(ecg.beats, beats, ecg.fs)
    print(f"\nbeat detection: Se={report.beat_sensitivity:.3f} "
          f"PPV={report.beat_ppv:.3f}")
    print("per-fiducial accuracy (paper: >90 % everywhere):")
    for wave, mark, se, ppv, bias, sd in report.rows():
        print(f"  {wave:>3}-{mark:<6} Se={se:.3f} PPV={ppv:.3f} "
              f"bias={bias:+6.1f} ms (sd {sd:.1f})")

    rr = np.diff(peaks) / ecg.fs
    print(f"\nmean heart rate: {60.0 / rr.mean():.1f} bpm")


if __name__ == "__main__":
    main()
