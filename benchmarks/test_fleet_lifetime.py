"""Fleet lifetime — simulated hours-to-empty per transmission policy.

Not a paper figure: this benchmarks the closed-loop EnergyGovernor the
ROADMAP grows toward.  The paper's Fig. 6 picks a transmission strategy
*once*; a deployed node adapts it as the battery drains and patients
deteriorate.  Here a mixed-acuity cohort (deterministic daily alert /
watch / ok cycles) runs to end of discharge under the governor and under
every static Fig. 6 mode.  Shape criteria: the governor never streams
below the acuity floor, and its lifetime meets or beats the best
*admissible* static mode — the whole point of closing the loop: events-
only "wins" lifetime only by ignoring alert patients, and raw/multi-lead
waste the budget on patients who are fine.
"""

from __future__ import annotations

import numpy as np

from conftest import print_table
from repro.power import (
    MODES,
    ModePowerTable,
    best_admissible_static,
    best_admissible_static_cohort,
    compare_policies,
    mixed_acuity_trace,
)

N_PATIENTS = 8
STEP_S = 600.0
HORIZON_S = 40 * 86400.0


def run_cohort():
    table = ModePowerTable()
    return [compare_policies(mixed_acuity_trace(i), table=table,
                             step_s=STEP_S, horizon_s=HORIZON_S)
            for i in range(N_PATIENTS)]


def test_fleet_lifetime(benchmark):
    cohort = benchmark.pedantic(run_cohort, rounds=1, iterations=1)

    policies = ["governor", *MODES]
    mean_hours = {policy: float(np.mean([res[policy].hours
                                         for res in cohort]))
                  for policy in policies}
    violations = {policy: sum(res[policy].acuity_violation_hours
                              for res in cohort)
                  for policy in policies}
    best_static = best_admissible_static_cohort(cohort)
    mean_switches = float(np.mean([res["governor"].n_switches
                                   for res in cohort]))

    print_table(
        f"Fleet lifetime ({N_PATIENTS} mixed-acuity patients, "
        f"{HORIZON_S / 86400.0:.0f}-day horizon)",
        ["policy", "mean hours", "violation hours"],
        [(policy, mean_hours[policy], violations[policy])
         for policy in policies],
    )
    print(f"governor switches/patient: {mean_switches:.1f}; "
          f"best admissible static: {best_static}")

    # Per patient, the governor never violates the acuity floor.
    assert violations["governor"] == 0.0
    # The best admissible static policy is consistent per patient too.
    for res in cohort:
        assert best_admissible_static(res) == best_static
    # The headline claim: closing the loop meets or beats the best
    # static mode that also honors acuity — and with mixed acuity it
    # should beat it outright.
    assert mean_hours["governor"] >= mean_hours[best_static]
    assert mean_hours["governor"] > 1.05 * mean_hours[best_static]
    # The governor actually adapts (it is not just a static mode).
    assert mean_switches >= 2.0
