"""Unit tests for repro.signals.noise."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signals import (
    AMBULATORY_MIX,
    NoiseSpec,
    RESTING_MIX,
    add_noise,
    baseline_wander,
    electrode_motion,
    fibrillatory_waves,
    muscle_artifact,
    noise_mixture,
    powerline,
    snr_db,
)

FS = 250.0
N = 5000


def _band_power_fraction(x: np.ndarray, fs: float, lo: float,
                         hi: float) -> float:
    spectrum = np.abs(np.fft.rfft(x)) ** 2
    freqs = np.fft.rfftfreq(x.shape[0], 1.0 / fs)
    band = spectrum[(freqs >= lo) & (freqs <= hi)].sum()
    return float(band / spectrum.sum())


class TestGenerators:
    def test_baseline_wander_is_low_frequency(self, rng):
        x = baseline_wander(N, FS, rng)
        assert _band_power_fraction(x, FS, 0.0, 0.7) > 0.95

    def test_baseline_wander_amplitude(self, rng):
        x = baseline_wander(N, FS, rng, amplitude_mv=0.25)
        assert np.max(np.abs(x)) == pytest.approx(0.25, rel=1e-6)

    def test_powerline_is_narrowband_at_mains(self, rng):
        x = powerline(N, FS, rng, mains_hz=50.0)
        assert _band_power_fraction(x, FS, 48.0, 52.0) > 0.95

    def test_powerline_custom_mains(self, rng):
        x = powerline(N, FS, rng, mains_hz=60.0)
        assert _band_power_fraction(x, FS, 58.0, 62.0) > 0.95

    def test_muscle_artifact_band(self, rng):
        x = muscle_artifact(N, FS, rng)
        assert _band_power_fraction(x, FS, 18.0, 110.0) > 0.9

    def test_electrode_motion_is_sparse(self, rng):
        x = electrode_motion(N, FS, rng, events_per_minute=3.0)
        # Most samples are quiet; a few bumps dominate.
        quiet = np.mean(np.abs(x) < 0.05 * np.max(np.abs(x) + 1e-12))
        assert quiet > 0.5

    def test_fibrillatory_waves_band(self, rng):
        x = fibrillatory_waves(N, FS, rng)
        assert _band_power_fraction(x, FS, 3.5, 10.0) > 0.9

    def test_fibrillatory_amplitude(self, rng):
        x = fibrillatory_waves(N, FS, rng, amplitude_mv=0.1)
        assert np.max(np.abs(x)) <= 0.14  # amplitude * (1 + modulation)


class TestNoiseSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown noise kind"):
            NoiseSpec("thermal")

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            NoiseSpec("baseline", weight=0.0)

    def test_preset_mixes_are_valid(self):
        assert all(isinstance(s, NoiseSpec) for s in RESTING_MIX)
        assert all(isinstance(s, NoiseSpec) for s in AMBULATORY_MIX)


class TestMixing:
    def test_mixture_has_unit_power(self, rng):
        x = noise_mixture(N, FS, rng)
        assert np.mean(x ** 2) == pytest.approx(1.0, rel=1e-9)

    def test_snr_db_identity(self):
        clean = np.sin(np.linspace(0, 20 * np.pi, 1000))
        assert snr_db(clean, clean) == np.inf

    def test_snr_db_known_value(self, rng):
        clean = np.sin(np.linspace(0, 20 * np.pi, 10_000))
        noise = rng.standard_normal(10_000)
        noise *= np.sqrt(np.mean(clean ** 2) / np.mean(noise ** 2)) / 10
        assert snr_db(clean, clean + noise) == pytest.approx(20.0, abs=0.2)

    @settings(max_examples=20, deadline=None)
    @given(target=st.floats(min_value=0.0, max_value=40.0))
    def test_add_noise_hits_target_snr(self, target):
        rng = np.random.default_rng(99)
        clean = np.sin(np.linspace(0, 40 * np.pi, 8000))
        noisy = add_noise(clean, FS, target, rng)
        assert snr_db(clean, noisy) == pytest.approx(target, abs=0.01)
