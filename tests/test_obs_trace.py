"""Tests for virtual-time tracing and the end-to-end determinism
contract: N-shard == 1-shard == plain-run canonical obs snapshots."""

from __future__ import annotations

import functools

import pytest

from repro.fleet import (
    CohortConfig,
    FleetScheduler,
    Gateway,
    GatewayConfig,
    NodeProxyConfig,
    PerPatientLink,
    SchedulerConfig,
    ShardHooks,
    ShardedFleetRunner,
    make_cohort,
)
from repro.obs import (
    KIND_INSTANT,
    KIND_SPAN,
    Observability,
    ObsConfig,
    SCOPE_SHARD,
    TraceError,
    TraceRecorder,
    canonical_bundle_json,
    canonical_trace_json,
    canonical_view,
    merge_trace_snapshots,
)
from repro.power import Battery, BatteryModel
from repro.power.governor import (
    EnergyGovernor,
    GovernorConfig,
    ModePowerTable,
)
from repro.scenarios import LinkSpec, derive_seed
from repro.scenarios.channel import ImpairedLink

COHORT = make_cohort(CohortConfig(n_patients=4, seed=7))
RUN_KW = dict(
    config=SchedulerConfig(duration_s=60.0, fs=250.0),
    node_config=NodeProxyConfig(stream_telemetry=False),
    gateway_config=GatewayConfig(n_iter=50),
)
OBS_KW = dict(RUN_KW, obs_config=ObsConfig())


class TestTraceRecorder:
    def test_instant_and_span_shapes(self):
        rec = TraceRecorder()
        rec.instant(1.0, "gateway.ingest", subject="p0", kind_attr="x")
        rec.span(2.0, "scheduler.tick", 0.5, subject="p0")
        events = rec.snapshot()["events"]
        assert events[0]["kind"] == KIND_INSTANT
        assert "dur_s" not in events[0]
        assert events[0]["attrs"] == {"kind_attr": "x"}
        assert events[1]["kind"] == KIND_SPAN
        assert events[1]["dur_s"] == 0.5

    def test_fleet_scope_requires_subject(self):
        rec = TraceRecorder()
        with pytest.raises(TraceError, match="subject"):
            rec.instant(1.0, "gateway.ingest")
        rec.instant(1.0, "shard.tick", scope=SCOPE_SHARD)  # fine

    def test_unknown_scope_rejected(self):
        with pytest.raises(TraceError, match="scope"):
            TraceRecorder().instant(0.0, "x", subject="p0",
                                    scope="galaxy")

    def test_snapshot_orders_by_time_subject_seq(self):
        rec = TraceRecorder()
        rec.instant(2.0, "b", subject="p1")
        rec.instant(1.0, "a", subject="p1")
        rec.instant(1.0, "c", subject="p0")
        names = [e["name"] for e in rec.snapshot()["events"]]
        assert names == ["c", "a", "b"]

    def test_same_timestamp_keeps_emission_order_per_subject(self):
        rec = TraceRecorder()
        rec.instant(1.0, "first", subject="p0")
        rec.instant(1.0, "second", subject="p0")
        names = [e["name"] for e in rec.snapshot()["events"]]
        assert names == ["first", "second"]

    def test_capacity_drops_oldest_and_counts(self):
        rec = TraceRecorder(capacity=2)
        for i in range(5):
            rec.instant(float(i), "e", subject="p0")
        snap = rec.snapshot()
        assert [e["t_s"] for e in snap["events"]] == [3.0, 4.0]
        assert snap["n_dropped"] == 3

    def test_merge_equals_single_recorder(self):
        # Split one emission stream by subject (as sharding does) and
        # merge — byte-identical to recording everything in one place.
        whole, part_a, part_b = (TraceRecorder() for _ in range(3))
        for t, subject in ((1.0, "p0"), (1.0, "p1"), (2.0, "p0"),
                           (2.0, "p1"), (3.0, "p1")):
            whole.instant(t, "e", subject=subject)
            part = part_a if subject == "p0" else part_b
            part.instant(t, "e", subject=subject)
        merged = merge_trace_snapshots(
            [part_b.snapshot(), part_a.snapshot()])
        assert canonical_trace_json(merged) \
            == canonical_trace_json(whole.snapshot())


def _impaired_governed_hooks(spec: LinkSpec, profiles,
                             master_seed: int) -> ShardHooks:
    """Module-level hook factory (picklable) for the equivalence test."""

    def link_for(patient_id: str):
        return ImpairedLink(spec, seed=derive_seed(master_seed, "link",
                                                   patient_id))

    def factory(profile):
        frac = derive_seed(master_seed, "soc",
                           profile.patient_id) % 1000 / 1000.0
        return EnergyGovernor(
            config=GovernorConfig(min_dwell_s=0.0),
            table=ModePowerTable(),
            battery=BatteryModel(cell=Battery(capacity_mah=0.05),
                                 soc=max(0.05, 0.9 - 0.5 * frac)))

    return ShardHooks(link=PerPatientLink(link_for),
                      governor_factory=factory)


class TestShardEquivalence:
    """Canonical obs snapshots are shard-layout independent."""

    @pytest.fixture(scope="class")
    def plain_obs(self):
        obs = Observability()
        FleetScheduler(
            COHORT, RUN_KW["config"],
            node_config=RUN_KW["node_config"],
            gateway=Gateway(RUN_KW["gateway_config"], obs=obs),
            obs=obs).run()
        return obs

    @pytest.fixture(scope="class")
    def one_shard(self):
        return ShardedFleetRunner(COHORT, n_shards=1, **OBS_KW).run()

    @pytest.fixture(scope="class")
    def three_shard(self):
        return ShardedFleetRunner(COHORT, n_shards=3, **OBS_KW).run()

    def test_one_shard_matches_plain(self, plain_obs, one_shard):
        assert one_shard.canonical_obs_json() == plain_obs.canonical_json()

    def test_three_shards_match_one(self, one_shard, three_shard):
        assert three_shard.canonical_obs_json() \
            == one_shard.canonical_obs_json()

    def test_summary_unchanged_by_observation(self, one_shard):
        unobserved = ShardedFleetRunner(COHORT, n_shards=1,
                                        **RUN_KW).run()
        assert one_shard.summary.to_json() \
            == unobserved.summary.to_json()
        assert unobserved.obs_bundle is None
        with pytest.raises(ValueError, match="obs_config"):
            unobserved.canonical_obs_json()

    def test_shard_scope_series_may_differ_but_are_excluded(
            self, one_shard, three_shard):
        # The full bundles differ (per-shard wall clocks etc.); only
        # the canonical fleet-scope view is layout-independent.
        shard_names = {
            s["name"] for s in three_shard.obs_bundle["metrics"]["series"]
            if s["scope"] == SCOPE_SHARD}
        assert "shard_wall_seconds" in shard_names
        view = canonical_view(three_shard.obs_bundle)
        assert all(s["scope"] == "fleet"
                   for s in view["metrics"]["series"])

    def test_governed_impaired_equivalence(self):
        spec = LinkSpec(loss_rate=0.15, duplicate_rate=0.1,
                        reorder_rate=0.2, jitter_s=2.0,
                        reorder_delay_s=65.0)
        kw = dict(OBS_KW, master_seed=99,
                  hook_factory=functools.partial(
                      _impaired_governed_hooks, spec))
        one = ShardedFleetRunner(COHORT, n_shards=1, **kw).run()
        three = ShardedFleetRunner(COHORT, n_shards=3, **kw).run()
        assert three.canonical_obs_json() == one.canonical_obs_json()
        assert one.summary.governed
        # Impairment must actually exercise the reassembly counters.
        names = {(s["name"], tuple(sorted(s["labels"].items())))
                 for s in one.obs_bundle["metrics"]["series"]}
        assert any(n == "gateway_reassembly_events_total"
                   for n, _ in names)
        assert any(n == "governor_transitions_total" for n, _ in names)

    def test_byte_reproducible_from_master_seed(self):
        def run():
            return ShardedFleetRunner(COHORT, n_shards=2,
                                      **OBS_KW).run()

        assert run().canonical_obs_json() == run().canonical_obs_json()

    def test_trace_events_are_virtual_time_only(self, three_shard):
        events = canonical_view(three_shard.obs_bundle)["trace"]["events"]
        assert events, "fleet run should emit fleet-scope trace events"
        duration = RUN_KW["config"].duration_s
        assert all(0.0 <= e["t_s"] <= duration + 1e-9 for e in events)
        assert all(e["subject"] for e in events)

    def test_bundle_json_roundtrip_preserves_bytes(self, three_shard):
        import json

        view = canonical_view(three_shard.obs_bundle)
        rebuilt = json.loads(json.dumps(view))
        assert canonical_bundle_json(rebuilt) \
            == canonical_bundle_json(view)
