"""Tests for the zero-copy payload transport (`repro.fleet.transport`)."""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.fleet.transport import (
    BufferPool,
    PayloadView,
    PickleTransport,
    SharedMemoryTransport,
    TransportError,
    is_aliasable,
    make_transport,
)

SHM_AVAILABLE = SharedMemoryTransport.available()
needs_shm = pytest.mark.skipif(
    not SHM_AVAILABLE, reason="multiprocessing.shared_memory unavailable")


class TestIsAliasable:
    def test_bytes_are_aliasable(self):
        assert is_aliasable(b"abc")

    def test_bytearray_is_not(self):
        assert not is_aliasable(bytearray(b"abc"))

    def test_readonly_view_over_bytes_is_aliasable(self):
        view = memoryview(b"abcdef")[2:]
        assert is_aliasable(view)

    def test_view_over_bytearray_is_not(self):
        source = bytearray(b"abc")
        assert not is_aliasable(memoryview(source))
        # Even a read-only view cannot hide that the exporter is
        # writable storage someone else can still mutate.
        assert not is_aliasable(memoryview(source).toreadonly())

    def test_other_objects_are_not(self):
        assert not is_aliasable("text")
        assert not is_aliasable(np.zeros(3))


class TestPayloadView:
    def test_view_is_readonly(self):
        view = PayloadView(bytearray(b"abcd"))
        assert view.view.readonly
        assert len(view) == 4
        assert view.tobytes() == b"abcd"

    def test_array_aliases_and_is_readonly(self):
        data = np.arange(5, dtype=np.float64).tobytes()
        view = PayloadView(data)
        arr = view.array(np.float64)
        assert arr.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert not arr.flags.writeable
        assert np.shares_memory(arr, np.frombuffer(data, dtype=np.uint8))
        with pytest.raises(ValueError):
            arr[0] = 9.0

    def test_array_offset_and_count(self):
        data = np.arange(6, dtype=np.int32).tobytes()
        view = PayloadView(data)
        assert view.array(np.int32, count=2, offset=8).tolist() == [2, 3]

    def test_array_span_overflow_raises(self):
        view = PayloadView(b"\x00" * 8)
        with pytest.raises(TransportError):
            view.array(np.float64, count=2)

    def test_array_ragged_tail_raises(self):
        view = PayloadView(b"\x00" * 7)
        with pytest.raises(TransportError):
            view.array(np.float64)


class TestBufferPool:
    def test_acquire_release_recycles(self):
        pool = BufferPool(max_buffers=1)
        buf = pool.acquire()
        buf += b"some bytes"
        pool.release(buf)
        again = pool.acquire()
        assert again is buf
        assert len(again) == 0  # cleared on release

    def test_cap_drops_extras(self):
        pool = BufferPool(max_buffers=1)
        a, b = pool.acquire(), pool.acquire()
        pool.release(a)
        pool.release(b)
        assert pool.acquire() is a
        assert pool.acquire() is not b

    def test_lease_context(self):
        pool = BufferPool()
        with pool.lease() as buf:
            buf += b"xyz"
        with pool.lease() as again:
            assert again is buf
            assert len(again) == 0

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(max_buffers=0)


class TestPickleTransport:
    def test_round_trip_is_zero_copy(self):
        transport = PickleTransport()
        handle = transport.publish(b"payload bytes", "s0")
        view = transport.open(handle)
        assert view.tobytes() == b"payload bytes"
        # The view windows the handle itself — no second copy.
        assert view.view.obj is handle
        transport.close()

    def test_bad_handle_rejected(self):
        with pytest.raises(TransportError):
            PickleTransport().open(b"XXXXgarbage")

    def test_spec_round_trips(self):
        transport = make_transport("pickle")
        assert isinstance(transport, PickleTransport)
        assert make_transport(transport.spec).kind == "pickle"


def _publish_blob(spec: str, blob: bytes, tag: str) -> bytes:
    """Worker-process helper: rebuild the fabric and publish one blob."""
    return make_transport(spec).publish(blob, tag)


def _publish_then_die(spec: str, blob: bytes, tag: str) -> None:
    """Worker that parks its blob and then crashes before returning."""
    make_transport(spec).publish(blob, tag)
    os._exit(17)


@needs_shm
class TestSharedMemoryTransport:
    def test_round_trip_same_process(self):
        transport = SharedMemoryTransport()
        payload = os.urandom(4096)
        handle = transport.publish(payload, "s0")
        assert len(handle) < 64  # only the name + size travel
        view = transport.open(handle)
        assert view.tobytes() == payload
        assert view.view.readonly
        transport.close()
        assert transport.leaked_segments() == []

    def test_round_trip_across_processes(self):
        transport = SharedMemoryTransport()
        payload = np.arange(1000, dtype=np.float64).tobytes()
        ctx = multiprocessing.get_context("spawn")
        transport.expect("s0")
        with ctx.Pool(1) as pool:
            handle = pool.apply(_publish_blob,
                                (transport.spec, payload, "s0"))
        view = transport.open(handle)
        assert view.array(np.float64).tolist() == list(range(1000))
        transport.close()
        assert transport.leaked_segments() == []

    def test_empty_blob_round_trips(self):
        transport = SharedMemoryTransport()
        view = transport.open(transport.publish(b"", "s0"))
        assert len(view) == 0
        transport.close()
        assert transport.leaked_segments() == []

    def test_worker_crash_leaves_no_segment(self):
        # The handle never comes home, but the parent pre-registered
        # the tag, so close() reaps the orphan by deterministic name.
        transport = SharedMemoryTransport()
        transport.expect("s0")
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_publish_then_die,
                           args=(transport.spec, b"doomed", "s0"))
        proc.start()
        proc.join(timeout=60)
        assert proc.exitcode == 17
        assert transport.leaked_segments() == [f"{transport.prefix}.s0"]
        transport.close()
        assert transport.leaked_segments() == []

    def test_keyboard_interrupt_leaves_no_segment(self):
        transport = SharedMemoryTransport()
        transport.expect("s0")
        transport.expect("s1")
        try:
            handle = transport.publish(b"half done", "s0")
            transport.open(handle)
            raise KeyboardInterrupt  # user hits ^C mid-merge
        except KeyboardInterrupt:
            pass
        finally:
            transport.close()
        assert transport.leaked_segments() == []

    def test_close_without_unlink_keeps_segment(self):
        transport = SharedMemoryTransport()
        handle = transport.publish(b"sticky", "s0")
        transport.open(handle)
        transport.close(unlink=False)
        assert transport.leaked_segments() == [f"{transport.prefix}.s0"]
        reopened = SharedMemoryTransport(prefix=transport.prefix)
        assert reopened.open(handle).tobytes() == b"sticky"
        reopened.close()
        assert reopened.leaked_segments() == []

    def test_open_after_unlink_raises(self):
        transport = SharedMemoryTransport()
        handle = transport.publish(b"gone", "s0")
        transport.open(handle)
        transport.close()
        with pytest.raises(TransportError):
            SharedMemoryTransport(prefix=transport.prefix).open(handle)

    def test_bad_prefix_and_tag_rejected(self):
        with pytest.raises(TransportError):
            SharedMemoryTransport(prefix="a/b")
        with pytest.raises(TransportError):
            SharedMemoryTransport().publish(b"x", "dotted.tag")

    def test_bad_handle_rejected(self):
        transport = SharedMemoryTransport()
        with pytest.raises(TransportError):
            transport.open(b"XX")
        with pytest.raises(TransportError):
            transport.open(b"RPXP" + b"\x00" * 12)


class TestMakeTransport:
    def test_auto_prefers_shared_memory(self):
        transport = make_transport("auto")
        expected = "shared_memory" if SHM_AVAILABLE else "pickle"
        assert transport.kind == expected

    @needs_shm
    def test_shm_spec_rebuilds_same_prefix(self):
        first = make_transport("shared_memory")
        second = make_transport(first.spec)
        assert second.prefix == first.prefix

    def test_unknown_spec_rejected(self):
        with pytest.raises(TransportError):
            make_transport("carrier-pigeon")
