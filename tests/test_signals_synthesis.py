"""Unit tests for repro.signals.synthesis and dataset construction."""

import numpy as np
import pytest

from repro.signals import (
    Corpus,
    RecordSpec,
    RHYTHM_AF,
    SynthesisConfig,
    beat_windows,
    make_corpus,
    make_record,
    sinus_rhythm,
    synthesize,
)
from repro.signals.rhythms import RhythmSequence


class TestSynthesize:
    def test_r_peak_annotations_are_exact(self, clean_record):
        ecg = clean_record.lead(1)
        for beat in ecg.beats[1:-1]:
            window = ecg.signal[beat.r_peak - 3:beat.r_peak + 4]
            # The discrete maximum sits within one sample of the mark
            # (the analytic peak falls between samples).
            assert abs(int(np.argmax(window)) - 3) <= 1

    def test_p_wave_absent_in_af(self, af_record):
        assert all(not b.p_wave.present for b in af_record.beats)

    def test_p_wave_present_in_nsr(self, nsr_record):
        assert all(b.p_wave.present for b in nsr_record.beats)

    def test_af_adds_fibrillatory_activity(self, rng):
        from repro.signals import af_rhythm

        config = SynthesisConfig(snr_db=None)
        af = synthesize(af_rhythm(20.0, rng=np.random.default_rng(0)),
                        config, rng=np.random.default_rng(1))
        nsr = synthesize(sinus_rhythm(20.0, rng=np.random.default_rng(0)),
                         config, rng=np.random.default_rng(1))

        def tq_power(record):
            total, count = 0.0, 0
            for beat in record.beats[1:]:
                lo = beat.r_peak - int(0.30 * record.fs)
                hi = beat.r_peak - int(0.22 * record.fs)
                if lo > 0:
                    total += float(np.mean(record.signals[1, lo:hi] ** 2))
                    count += 1
            return total / max(count, 1)

        assert tq_power(af) > 3.0 * tq_power(nsr)

    def test_leads_share_wave_timing(self, clean_record):
        # R peak position identical across leads by construction.
        for beat in clean_record.beats[2:5]:
            peaks = [int(np.argmax(
                clean_record.signals[lead,
                                     beat.r_peak - 3:beat.r_peak + 4]))
                for lead in range(3)]
            assert peaks == [3, 3, 3]

    def test_lead_ii_has_largest_r(self, clean_record):
        beat = clean_record.beats[3]
        amplitudes = clean_record.signals[:, beat.r_peak]
        assert np.argmax(amplitudes) == 1

    def test_empty_rhythm_rejected(self):
        with pytest.raises(ValueError, match="no beats"):
            synthesize(RhythmSequence(), SynthesisConfig())

    def test_duration_covers_rhythm(self, rng):
        segment = sinus_rhythm(10.0, rng=rng)
        record = synthesize(segment, SynthesisConfig(snr_db=None), rng=rng)
        assert record.duration_s >= segment.duration_s

    def test_noise_level_applied(self, rng):
        segment = sinus_rhythm(20.0, rng=np.random.default_rng(5))
        clean = synthesize(segment, SynthesisConfig(snr_db=None),
                           rng=np.random.default_rng(6))
        noisy = synthesize(segment, SynthesisConfig(snr_db=10.0),
                           rng=np.random.default_rng(6))
        residual = noisy.signals[1] - clean.signals[1]
        measured = 10 * np.log10(np.mean(clean.signals[1] ** 2)
                                 / np.mean(residual ** 2))
        assert measured == pytest.approx(10.0, abs=1.0)

    def test_lead_set_controls_lead_count(self, rng):
        from repro.signals import single_lead

        segment = sinus_rhythm(5.0, rng=rng)
        record = synthesize(segment,
                            SynthesisConfig(lead_set=single_lead(),
                                            snr_db=None), rng=rng)
        assert record.n_leads == 1


class TestDataset:
    def test_corpus_is_reproducible(self):
        a = make_corpus("nsr", n_records=2, duration_s=10.0, seed=9)
        b = make_corpus("nsr", n_records=2, duration_s=10.0, seed=9)
        assert np.array_equal(a.records[0].signals, b.records[0].signals)
        assert a.records[1].name == b.records[1].name

    def test_different_seeds_differ(self):
        a = make_corpus("nsr", n_records=1, duration_s=10.0, seed=1)
        b = make_corpus("nsr", n_records=1, duration_s=10.0, seed=2)
        assert not np.array_equal(a.records[0].signals,
                                  b.records[0].signals)

    def test_all_presets_build(self):
        for preset in ("nsr", "clean", "cs_eval", "ectopy", "af_mix",
                       "ambulatory"):
            corpus = make_corpus(preset, n_records=1, duration_s=10.0)
            assert len(corpus) == 1
            assert corpus.total_beats > 5

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown corpus preset"):
            make_corpus("bogus", n_records=1)

    def test_unknown_rhythm_rejected(self):
        with pytest.raises(ValueError, match="unknown rhythm"):
            make_record(RecordSpec(name="x", rhythm="vtach"))

    def test_ectopy_preset_contains_ectopics(self):
        corpus = make_corpus("ectopy", n_records=1, duration_s=60.0, seed=4)
        labels = set()
        for record in corpus:
            labels.update(b.label for b in record.beats)
        assert "V" in labels and "S" in labels

    def test_af_mix_contains_both_rhythms(self):
        corpus = make_corpus("af_mix", n_records=1, duration_s=120.0, seed=4)
        rhythms = {b.rhythm for b in corpus.records[0].beats}
        assert RHYTHM_AF in rhythms and len(rhythms) == 2

    def test_beat_windows_shapes(self, ectopy_corpus):
        X, y = beat_windows(ectopy_corpus)
        assert X.shape[0] == y.shape[0]
        assert X.shape[0] == ectopy_corpus.total_beats
        expected = int(round(0.25 * 250)) + int(round(0.45 * 250))
        assert X.shape[1] == expected

    def test_beat_windows_empty_corpus(self):
        X, y = beat_windows(Corpus(name="empty"))
        assert X.size == 0 and y.size == 0
