"""Synthetic photoplethysmogram (PPG) generation, time-locked to ECG.

Section IV-C of the paper estimates blood pressure from the pulse arrival
time (PAT) between the ECG R peak and the arrival of the pressure pulse at a
PPG finger probe.  This module substitutes that probe: given an annotated
ECG record it synthesizes a PPG whose pulse feet trail each R peak by a
controllable, per-beat pulse transit time (PTT) — the ground truth that the
estimators in :mod:`repro.multimodal` must recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .types import EcgRecord, MultiLeadEcg, PpgRecord


@dataclass(frozen=True)
class PpgConfig:
    """Parameters of the synthetic PPG.

    Attributes:
        base_ptt_s: Mean pulse transit time (R peak to pulse foot).
        ptt_jitter_s: Beat-to-beat random PTT variation (std, seconds).
        systolic_width_s: Width (sigma) of the systolic upstroke Gaussian.
        dicrotic_delay_s: Delay of the dicrotic (reflected) wave after the
            systolic peak.
        dicrotic_ratio: Amplitude of the dicrotic wave relative to systolic.
        noise_std: Additive white-noise standard deviation (a.u.).
    """

    base_ptt_s: float = 0.25
    ptt_jitter_s: float = 0.008
    systolic_width_s: float = 0.09
    dicrotic_delay_s: float = 0.30
    dicrotic_ratio: float = 0.35
    noise_std: float = 0.01


def synthesize_ppg(ecg: EcgRecord | MultiLeadEcg,
                   config: PpgConfig | None = None,
                   ptt_profile: Callable[[float], float] | None = None,
                   rng: np.random.Generator | None = None) -> PpgRecord:
    """Render a PPG record aligned to an annotated ECG.

    Args:
        ecg: Annotated ECG (only ``fs``, length and R peaks are used).
        config: PPG shape parameters.
        ptt_profile: Optional function mapping beat time (seconds) to the
            *mean* PTT at that time; used to emulate blood-pressure drifts
            (PTT shortens when BP rises).  Defaults to a constant
            ``config.base_ptt_s``.
        rng: Random generator.

    Returns:
        A :class:`~repro.signals.types.PpgRecord` carrying ground-truth
        pulse feet, systolic peaks and per-beat PTT.
    """
    config = config or PpgConfig()
    rng = rng or np.random.default_rng()
    fs = ecg.fs
    n = ecg.n_samples if isinstance(ecg, MultiLeadEcg) else len(ecg)
    r_peaks = ecg.r_peaks
    signal = np.zeros(n)
    feet: list[int] = []
    peaks: list[int] = []
    ptts: list[float] = []

    # Systolic peak sits ~1.8 sigma after the foot so the upstroke (foot)
    # is the steep leading edge, as in real PPG.
    peak_lag = 1.8 * config.systolic_width_s

    for r in r_peaks:
        beat_time = r / fs
        mean_ptt = (ptt_profile(beat_time) if ptt_profile is not None
                    else config.base_ptt_s)
        ptt = max(0.05, mean_ptt + rng.normal(0.0, config.ptt_jitter_s))
        foot_time = beat_time + ptt
        peak_time = foot_time + peak_lag
        dicrotic_time = peak_time + config.dicrotic_delay_s
        t = np.arange(n) / fs
        lo = int(max(0, (foot_time - 0.3) * fs))
        hi = int(min(n, (dicrotic_time + 0.5) * fs))
        if hi <= lo:
            continue
        window_t = t[lo:hi]
        pulse = np.exp(-0.5 * ((window_t - peak_time)
                               / config.systolic_width_s) ** 2)
        pulse += config.dicrotic_ratio * np.exp(
            -0.5 * ((window_t - dicrotic_time)
                    / (1.4 * config.systolic_width_s)) ** 2)
        signal[lo:hi] += pulse
        feet.append(int(round(foot_time * fs)))
        peaks.append(int(round(peak_time * fs)))
        ptts.append(ptt)

    if config.noise_std > 0:
        signal = signal + rng.normal(0.0, config.noise_std, size=n)

    return PpgRecord(
        fs=fs,
        signal=signal,
        pulse_feet=np.array(feet, dtype=int),
        pulse_peaks=np.array(peaks, dtype=int),
        true_ptt_s=np.array(ptts),
        name=f"ppg({getattr(ecg, 'name', '')})",
    )
