"""A tiny structured assembler for the WBSN ISA.

Kernels are emitted programmatically (there is no textual assembly
parser): the :class:`Assembler` collects instructions, resolves labels on
:meth:`assemble`, and offers loop helpers that keep the generated kernels
readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .isa import BRANCH_OPS, Instruction, Op


@dataclass
class _Fixup:
    """A branch whose target label is resolved at assemble time."""

    index: int
    label: str


@dataclass
class Assembler:
    """Collects instructions and resolves symbolic branch targets."""

    instructions: list[Instruction] = field(default_factory=list)
    _labels: dict[str, int] = field(default_factory=dict)
    _fixups: list[_Fixup] = field(default_factory=list)

    def label(self, name: str) -> None:
        """Define ``name`` at the current position.

        Raises:
            ValueError: If the label was already defined.
        """
        if name in self._labels:
            raise ValueError(f"label {name!r} defined twice")
        self._labels[name] = len(self.instructions)

    def emit(self, op: Op, rd: int = 0, rs1: int = 0, rs2: int = 0,
             imm: int = 0, target: str | None = None) -> None:
        """Append one instruction (branches may name a label target)."""
        if target is not None:
            if op not in BRANCH_OPS:
                raise ValueError(f"{op.name} cannot take a label target")
            self._fixups.append(_Fixup(len(self.instructions), target))
        self.instructions.append(Instruction(op, rd, rs1, rs2, imm))

    # Convenience wrappers keep kernel builders terse and typo-safe.
    def ldi(self, rd: int, imm: int) -> None:
        """rd <- imm."""
        self.emit(Op.LDI, rd=rd, imm=imm)

    def mov(self, rd: int, rs1: int) -> None:
        """rd <- rs1."""
        self.emit(Op.MOV, rd=rd, rs1=rs1)

    def add(self, rd: int, rs1: int, rs2: int) -> None:
        """rd <- rs1 + rs2."""
        self.emit(Op.ADD, rd=rd, rs1=rs1, rs2=rs2)

    def addi(self, rd: int, rs1: int, imm: int) -> None:
        """rd <- rs1 + imm."""
        self.emit(Op.ADDI, rd=rd, rs1=rs1, imm=imm)

    def sub(self, rd: int, rs1: int, rs2: int) -> None:
        """rd <- rs1 - rs2."""
        self.emit(Op.SUB, rd=rd, rs1=rs1, rs2=rs2)

    def mul(self, rd: int, rs1: int, rs2: int) -> None:
        """rd <- rs1 * rs2."""
        self.emit(Op.MUL, rd=rd, rs1=rs1, rs2=rs2)

    def minr(self, rd: int, rs1: int, rs2: int) -> None:
        """rd <- min(rs1, rs2)."""
        self.emit(Op.MIN, rd=rd, rs1=rs1, rs2=rs2)

    def maxr(self, rd: int, rs1: int, rs2: int) -> None:
        """rd <- max(rs1, rs2)."""
        self.emit(Op.MAX, rd=rd, rs1=rs1, rs2=rs2)

    def abs_(self, rd: int, rs1: int) -> None:
        """rd <- |rs1|."""
        self.emit(Op.ABS, rd=rd, rs1=rs1)

    def shr(self, rd: int, rs1: int, imm: int) -> None:
        """rd <- rs1 >> imm (arithmetic)."""
        self.emit(Op.SHR, rd=rd, rs1=rs1, imm=imm)

    def shl(self, rd: int, rs1: int, imm: int) -> None:
        """rd <- rs1 << imm."""
        self.emit(Op.SHL, rd=rd, rs1=rs1, imm=imm)

    def ld(self, rd: int, rs1: int, imm: int = 0) -> None:
        """rd <- dmem[rs1 + imm]."""
        self.emit(Op.LD, rd=rd, rs1=rs1, imm=imm)

    def st(self, rs1: int, rs2: int, imm: int = 0) -> None:
        """dmem[rs1 + imm] <- rs2."""
        self.emit(Op.ST, rs1=rs1, rs2=rs2, imm=imm)

    def beq(self, rs1: int, rs2: int, target: str) -> None:
        """Branch to label if rs1 == rs2."""
        self.emit(Op.BEQ, rs1=rs1, rs2=rs2, target=target)

    def bne(self, rs1: int, rs2: int, target: str) -> None:
        """Branch to label if rs1 != rs2."""
        self.emit(Op.BNE, rs1=rs1, rs2=rs2, target=target)

    def blt(self, rs1: int, rs2: int, target: str) -> None:
        """Branch to label if rs1 < rs2."""
        self.emit(Op.BLT, rs1=rs1, rs2=rs2, target=target)

    def bge(self, rs1: int, rs2: int, target: str) -> None:
        """Branch to label if rs1 >= rs2."""
        self.emit(Op.BGE, rs1=rs1, rs2=rs2, target=target)

    def jmp(self, target: str) -> None:
        """Unconditional jump to label."""
        self.emit(Op.JMP, target=target)

    def bar(self) -> None:
        """Hardware barrier (all cores must arrive)."""
        self.emit(Op.BAR)

    def cid(self, rd: int) -> None:
        """rd <- core id."""
        self.emit(Op.CID, rd=rd)

    def csa(self, rd: int, rs1: int) -> None:
        """rd += dmem[dmem[rs1]]; rs1 += 1 (CS-accelerator extension)."""
        self.emit(Op.CSA, rd=rd, rs1=rs1)

    def halt(self) -> None:
        """Stop the core."""
        self.emit(Op.HALT)

    def assemble(self) -> list[Instruction]:
        """Resolve labels and return the finished program.

        Raises:
            KeyError: For branches to undefined labels.
        """
        program = list(self.instructions)
        for fixup in self._fixups:
            if fixup.label not in self._labels:
                raise KeyError(f"undefined label {fixup.label!r}")
            old = program[fixup.index]
            program[fixup.index] = Instruction(
                old.op, old.rd, old.rs1, old.rs2,
                imm=self._labels[fixup.label])
        return program
