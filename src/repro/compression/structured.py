"""Tree-structured (model-based) CS recovery (paper §IV-A, ref [17]).

Section IV-A: "wavelet coefficients are naturally organized into a tree
structure, and the largest coefficients cluster along the branches of this
tree.  A CS reconstruction algorithm based on the connected tree model has
been proposed in [17]."  This module implements that idea as model-based
iterative hard thresholding (IHT): at every iteration the coefficient
estimate is projected onto the set of *rooted connected subtrees* instead
of plain k-sparse vectors, which rejects isolated recovery artifacts that
plain l1/IHT keeps.

Layout: the orthogonal DWT of :mod:`repro.dsp.wavelets` packs
coefficients as ``[a_L | d_L | d_{L-1} | ... | d_1]``.  Within the detail
pyramid, coefficient ``j`` of band ``d_k`` is the parent of coefficients
``2j`` and ``2j + 1`` of band ``d_{k-1}``; approximation coefficients form
the roots and are always kept.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsp.wavelets import orthogonal_dwt_matrix
from .encoder import EncodedWindow
from .matrices import SensingMatrix


def tree_parents(n: int, levels: int) -> np.ndarray:
    """Parent index of every coefficient in the packed DWT layout.

    Args:
        n: Window length.
        levels: DWT decomposition depth (``n`` divisible by 2**levels).

    Returns:
        Integer array ``parent`` of length ``n``; roots (the approximation
        band and the coarsest detail band) carry ``-1``.
    """
    if n % (2 ** levels) != 0:
        raise ValueError(f"n={n} not divisible by 2**levels={2 ** levels}")
    parent = np.full(n, -1, dtype=int)
    approx_len = n // 2 ** levels
    # Band k (k = levels .. 1) spans [start_k, start_k + len_k); the
    # packed order after the approximation is d_L (coarsest) .. d_1.
    starts = {}
    offset = approx_len
    for k in range(levels, 0, -1):
        length = n // 2 ** k
        starts[k] = offset
        offset += length
    for k in range(levels, 1, -1):
        coarse_start = starts[k]
        fine_start = starts[k - 1]
        length = n // 2 ** k
        for j in range(length):
            parent[fine_start + 2 * j] = coarse_start + j
            parent[fine_start + 2 * j + 1] = coarse_start + j
    # Coarsest detail band roots at the corresponding approximation
    # coefficient (same spatial position).
    for j in range(approx_len):
        parent[starts[levels] + j] = j
    return parent


def tree_support(alpha: np.ndarray, k: int,
                 parent: np.ndarray) -> np.ndarray:
    """Boolean mask of the greedy rooted-subtree support of size <= k.

    Ancestors are admitted together with each coefficient (even when
    their own value is zero), so the mask is always connected towards the
    roots.
    """
    n = alpha.shape[0]
    kept = np.zeros(n, dtype=bool)
    if k >= n:
        kept[:] = True
        return kept
    order = np.argsort(-np.abs(alpha))
    budget = k
    for idx in order:
        if budget <= 0:
            break
        if kept[idx]:
            continue
        chain = [int(idx)]
        node = int(parent[idx])
        while node >= 0 and not kept[node]:
            chain.append(node)
            node = int(parent[node])
        if len(chain) > budget:
            continue
        for node in chain:
            kept[node] = True
        budget -= len(chain)
    return kept


def tree_project(alpha: np.ndarray, k: int, parent: np.ndarray,
                 ) -> np.ndarray:
    """Greedy projection onto rooted connected subtrees of size <= k.

    Coefficients are admitted in decreasing magnitude; admitting one
    admits all its not-yet-kept ancestors (counted against the budget), so
    the kept support is always connected towards the roots — the CSSA-style
    greedy used by practical tree-based recovery.

    Args:
        alpha: Coefficient vector (packed DWT layout).
        k: Support budget.
        parent: Parent map from :func:`tree_parents`.

    Returns:
        ``alpha`` with everything outside the selected subtree zeroed.
    """
    kept = tree_support(alpha, k, parent)
    projected = np.zeros_like(alpha)
    projected[kept] = alpha[kept]
    return projected


@dataclass
class TreeRecoveryResult:
    """Output of :class:`TreeCsDecoder`.

    Attributes:
        window: Reconstructed time-domain window.
        coefficients: Tree-sparse coefficient estimate.
        support_size: Kept coefficients.
    """

    window: np.ndarray
    coefficients: np.ndarray
    support_size: int


class TreeCsDecoder:
    """Tree-model CS decoder.

    Two modes:

    * ``"fista+tree"`` (default) — solve the l1 problem first, then
      project the coefficient estimate onto the connected-tree model and
      refit on the tree support.  The tree acts exactly as §IV-A frames
      it: a structural prior that "differentiates signal information from
      recovery artifacts" (isolated l1 survivors without ancestors are
      dropped).
    * ``"iht"`` — pure model-based iterative hard thresholding with the
      tree projection as the model step (the algorithmic skeleton of
      ref [17]).

    Args:
        sensing: Sensing matrix shared with the encoder.
        wavelet: Sparsity basis name.
        levels: DWT depth (default: the basis default).
        sparsity_frac: Tree budget as a fraction of the measurement count.
        n_iter: Iteration budget.
        method: ``"fista+tree"`` or ``"iht"``.
    """

    def __init__(self, sensing: SensingMatrix, wavelet: str = "db4",
                 levels: int | None = None, sparsity_frac: float = 0.4,
                 n_iter: int = 200, method: str = "fista+tree") -> None:
        from ..dsp.wavelets import max_dwt_levels

        if method not in ("fista+tree", "iht"):
            raise ValueError("method must be 'fista+tree' or 'iht'")
        self.sensing = sensing
        self.levels = levels or max_dwt_levels(sensing.n, wavelet)
        self.basis = orthogonal_dwt_matrix(sensing.n, wavelet, self.levels)
        self.A = sensing.matrix @ self.basis.T
        self.parent = tree_parents(sensing.n, self.levels)
        self.sparsity_frac = sparsity_frac
        self.n_iter = n_iter
        self.method = method

    def recover(self, y: np.ndarray | EncodedWindow) -> TreeRecoveryResult:
        """Reconstruct one window under the connected-tree model."""
        if isinstance(y, EncodedWindow):
            y = y.measurements
        y = np.asarray(y, dtype=float)
        k = max(1, int(self.sparsity_frac * self.sensing.m))
        if self.method == "iht":
            alpha = self._iht(y, k)
        else:
            from .recovery import fista

            lam = 0.002 * float(np.max(np.abs(self.A.T @ y)))
            alpha = fista(self.A, y, lam, n_iter=self.n_iter)
        support = np.flatnonzero(tree_support(alpha, k, self.parent))
        alpha = self._refit(y, alpha, support)
        window = self.basis.T @ alpha
        return TreeRecoveryResult(window=window, coefficients=alpha,
                                  support_size=support.shape[0])

    def _iht(self, y: np.ndarray, k: int) -> np.ndarray:
        lipschitz = float(np.linalg.norm(self.A, 2)) ** 2
        step = 1.0 / max(lipschitz, 1e-12)
        alpha = np.zeros(self.A.shape[1])
        for _ in range(self.n_iter):
            gradient = self.A.T @ (y - self.A @ alpha)
            alpha = tree_project(alpha + step * gradient, k, self.parent)
        return alpha

    def _refit(self, y: np.ndarray, alpha: np.ndarray,
               support: np.ndarray) -> np.ndarray:
        """Least-squares refit on the (tree-connected) support."""
        if support.shape[0] == 0 or support.shape[0] > self.A.shape[0]:
            return tree_project(alpha, max(1, self.A.shape[0] // 2),
                                self.parent)
        refined = np.zeros_like(alpha)
        coef, *_ = np.linalg.lstsq(self.A[:, support], y, rcond=None)
        refined[support] = coef
        return refined
