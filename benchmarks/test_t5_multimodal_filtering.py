"""T5 (§IV-C) — ECG-locked filtering and multi-modal estimation.

Paper claims reproduced: (a) ensemble averaging removes noise uncorrelated
with the cardiac stimulus but "the beat-to-beat variation of the signals
is lost", while (b) AICF "is also capable of tracking dynamic changes";
(c) PAT from ECG + PPG recovers the pulse transit time that feeds the
PWV/BP surrogate chain of ref [20].
"""

from __future__ import annotations

import numpy as np

from conftest import print_table
from repro.filtering import (
    aicf_filter,
    beat_matrix,
    ensemble_noise_reduction_db,
    tracking_gain_vs_ea,
)
from repro.multimodal import BpEstimator, measure_pat
from repro.signals import RecordSpec, make_record, synthesize_ppg


def _drifting_pulses(rng, n_beats=80, period=100):
    n = (n_beats + 1) * period
    clean = np.zeros(n)
    impulses = np.arange(1, n_beats + 1) * period
    t = np.arange(-30, 30)
    pulse = np.exp(-0.5 * (t / 8.0) ** 2)
    for k, center in enumerate(impulses):
        clean[center - 30:center + 30] += (1.0 + 0.02 * k) * pulse
    noisy = clean + rng.normal(0.0, 0.15, n)
    return clean, noisy, impulses


def run_filtering():
    rng = np.random.default_rng(17)
    clean, noisy, impulses = _drifting_pulses(rng)
    ea_gain = ensemble_noise_reduction_db(noisy, clean, impulses, 30, 30)
    err_aicf, err_ea = tracking_gain_vs_ea(noisy, clean, impulses, 30, 30,
                                           mu=0.2)
    result = aicf_filter(noisy, impulses, 30, 30, mu=0.2)
    truth = beat_matrix(clean, result.impulses, 30, 30)
    final_err = float(np.sqrt(np.mean(
        (result.estimates[-1] - truth[-1]) ** 2)))
    return ea_gain, err_aicf, err_ea, final_err


def test_t5_ea_vs_aicf(benchmark):
    ea_gain, err_aicf, err_ea, final_err = benchmark.pedantic(
        run_filtering, rounds=1, iterations=1)
    rows = [
        ("EA noise reduction [dB]", ea_gain),
        ("EA tracking RMSE (drifting beats)", err_ea),
        ("AICF tracking RMSE (drifting beats)", err_aicf),
        ("AICF final-beat RMSE", final_err),
    ]
    print_table("T5: beat-locked filtering (paper §IV-C)",
                ["metric", "value"], rows)
    assert ea_gain > 12.0               # ~10 log10(K) for K = 80
    assert err_aicf < 0.5 * err_ea      # AICF tracks, EA does not


def run_pat_chain():
    record = make_record(RecordSpec(name="pat", duration_s=60.0,
                                    snr_db=25.0, seed=5))
    ppg = synthesize_ppg(record, rng=np.random.default_rng(3))
    series = measure_pat(ppg, record.lead(1).r_peaks)
    true_mean = float(np.mean(ppg.true_ptt_s))
    estimator = BpEstimator().fit(series.pat_s,
                                  25.0 / series.pat_s + 40.0)
    return series, true_mean, estimator


def test_t5_pat_bp_chain(benchmark):
    series, true_mean, estimator = benchmark.pedantic(run_pat_chain,
                                                      rounds=1,
                                                      iterations=1)
    rows = [
        ("beats matched", series.pat_s.shape[0]),
        ("mean PAT measured [ms]", 1e3 * series.mean_pat_s),
        ("mean PTT ground truth [ms]", 1e3 * true_mean),
        ("BP model a/PAT coefficient", estimator.coef_a),
    ]
    print_table("T5: PAT -> PWV -> BP chain (ref [20])",
                ["metric", "value"], rows)
    assert abs(series.mean_pat_s - true_mean) < 0.015
    assert series.pat_s.shape[0] >= 50
    assert estimator.fitted
