"""Event-heap simulation kernel — façade equivalence + event efficiency.

Not a paper figure: this benchmarks the `repro.fleet.kernel` layer that
replaces the fleet's tick loop with a discrete-event heap.  Two
contracts gate unconditionally:

* **lockstep façade** — the same cohort run under ``engine="ticks"``
  and ``engine="kernel"`` must produce byte-identical ``FleetSummary``
  JSON (the kernel replays the legacy loop's phase order exactly);
* **sparse-cohort efficiency** — with 90 % of the nodes
  delineation-only (uplinking at 10x the base period), the kernel must
  process at least ``MIN_EVENT_RATIO`` times fewer events than the
  per-patient visits the tick loop would spend on the same stretch.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import print_table

from repro.fleet import (
    CohortConfig,
    FleetScheduler,
    NodeProxyConfig,
    SchedulerConfig,
    make_cohort,
)

EQ_PATIENTS = 8
EQ_DURATION_S = 120.0
FS = 250.0
SPARSE_PATIENTS = 30
SPARSE_DENSE = 3
SPARSE_PERIOD_S = 30.0
#: Required tick-loop-iterations / kernel-events ratio on the sparse
#: cohort (mirrors ``MIN_EVENT_RATIO`` in ``repro.bench.cases``).
MIN_EVENT_RATIO = 3.0


def run_all():
    """Both engines over one cohort, then the sparse-cohort event run."""
    cohort = make_cohort(CohortConfig(n_patients=EQ_PATIENTS, seed=7))
    node_config = NodeProxyConfig(stream_telemetry=False)
    reports = {}
    for engine in ("ticks", "kernel"):
        reports[engine] = FleetScheduler(
            cohort,
            SchedulerConfig(duration_s=EQ_DURATION_S, fs=FS,
                            engine=engine),
            node_config=node_config).run()

    duration = SPARSE_PERIOD_S * 10.0
    base = make_cohort(CohortConfig(n_patients=SPARSE_PATIENTS, seed=3))
    sparse_cohort = [
        p if i < SPARSE_DENSE else replace(p, uplink_period_s=duration)
        for i, p in enumerate(base)]
    sparse = FleetScheduler(
        sparse_cohort,
        SchedulerConfig(duration_s=duration, fs=FS),
        node_config=NodeProxyConfig(excerpt_period_s=SPARSE_PERIOD_S,
                                    stream_telemetry=False)).run()
    return reports, sparse


def test_fleet_event_kernel(benchmark):
    reports, sparse = benchmark.pedantic(run_all, rounds=1, iterations=1)
    stats = sparse.kernel_stats
    ratio = stats["tick_loop_iterations"] / stats["n_events"]

    print_table(
        f"Event kernel ({EQ_PATIENTS} patients x {EQ_DURATION_S:.0f} s "
        f"both engines; sparse {SPARSE_PATIENTS} patients, "
        f"{SPARSE_PATIENTS - SPARSE_DENSE} @ 10x period)",
        ["metric", "value"],
        [
            ("ticks engine wall [s]",
             reports["ticks"].timings_s["uplink+gateway"]),
            ("kernel engine wall [s]",
             reports["kernel"].timings_s["uplink+gateway"]),
            ("sparse kernel events", stats["n_events"]),
            ("tick-loop iterations", stats["tick_loop_iterations"]),
            ("event ratio [x]", ratio),
            ("sparse packets sent", sparse.packets_sent),
            ("sparse stale patients", sparse.summary.stale_patients),
        ],
    )

    # The determinism contract gates unconditionally.
    assert reports["kernel"].summary.to_json() \
        == reports["ticks"].summary.to_json(), \
        "kernel lockstep façade diverged from the tick loop"
    assert reports["kernel"].kernel_stats["engine"] == "kernel-lockstep"
    assert reports["kernel"].packets_sent == reports["ticks"].packets_sent

    # The efficiency contract: cost proportional to events, not ticks.
    assert stats["engine"] == "kernel-events"
    assert ratio >= MIN_EVENT_RATIO, (
        f"sparse cohort processed only {ratio:.2f}x fewer kernel events "
        f"than tick-loop iterations (need >= {MIN_EVENT_RATIO}x)")
    assert sparse.summary.stale_patients == 0, \
        "sparse nodes flagged stale despite expected-period scaling"
