"""Tests for the sharded fleet runtime (`repro.fleet.sharding`)."""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.fleet import (
    CohortConfig,
    FleetScheduler,
    Gateway,
    GatewayConfig,
    NodeProxyConfig,
    PerPatientLink,
    SchedulerConfig,
    ShardHooks,
    ShardedFleetRunner,
    WireFormatError,
    make_cohort,
    partition_cohort,
)
from repro.fleet.sharding import (
    ShardPatientRow,
    ShardResult,
    decode_shard_result,
    encode_shard_result,
)
from repro.fleet.transport import SharedMemoryTransport
from repro.fleet.triage import PatientTriage
from repro.power import Battery, BatteryModel
from repro.power.governor import (
    EnergyGovernor,
    GovernorConfig,
    ModePowerTable,
)
from repro.scenarios import LinkSpec, derive_seed
from repro.scenarios.channel import ImpairedLink

COHORT = make_cohort(CohortConfig(n_patients=5, seed=7))
RUN_KW = dict(
    config=SchedulerConfig(duration_s=60.0, fs=250.0),
    node_config=NodeProxyConfig(stream_telemetry=False),
    gateway_config=GatewayConfig(n_iter=50),
)

#: Both shard-result fabrics; byte-equivalence must hold on each.
TRANSPORTS = [
    "pickle",
    pytest.param(
        "shared_memory",
        marks=pytest.mark.skipif(
            not SharedMemoryTransport.available(),
            reason="multiprocessing.shared_memory unavailable")),
]


@pytest.fixture(scope="module")
def plain_run():
    """The single-process reference run over the shared cohort."""
    return FleetScheduler(
        COHORT, RUN_KW["config"], node_config=RUN_KW["node_config"],
        gateway=Gateway(RUN_KW["gateway_config"])).run()


@pytest.fixture(scope="module")
def one_shard_run():
    """The 1-shard run (single stripe, no process pool)."""
    return ShardedFleetRunner(COHORT, n_shards=1, **RUN_KW).run()


@pytest.fixture(scope="module", params=TRANSPORTS)
def four_shard_run(request):
    """The 4-process run over the same cohort, per transport backend."""
    return ShardedFleetRunner(COHORT, n_shards=4,
                              transport=request.param, **RUN_KW).run()


class TestPartition:
    def test_round_robin_stripes(self):
        shards = partition_cohort(COHORT, 2)
        assert shards[0] == COHORT[0::2]
        assert shards[1] == COHORT[1::2]

    def test_capped_at_cohort_size(self):
        shards = partition_cohort(COHORT[:2], 8)
        assert len(shards) == 2
        assert [p for shard in shards for p in shard] \
            == sorted(COHORT[:2], key=COHORT.index)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError, match="n_shards"):
            partition_cohort(COHORT, 0)
        with pytest.raises(ValueError, match="cohort"):
            partition_cohort([], 2)


class TestByteEquivalence:
    """The sharding determinism contract, end to end."""

    def test_one_shard_matches_plain_scheduler(self, plain_run,
                                               one_shard_run):
        assert one_shard_run.summary.to_json() \
            == plain_run.summary.to_json()

    def test_four_shards_match_one_shard(self, one_shard_run,
                                         four_shard_run):
        # The acceptance bar: byte-identical merged FleetSummary from
        # the same master seed under any shard layout.
        assert four_shard_run.summary.to_json() \
            == one_shard_run.summary.to_json()

    def test_packet_counts_merge(self, plain_run, one_shard_run,
                                 four_shard_run):
        assert one_shard_run.packets_sent == plain_run.packets_sent
        assert four_shard_run.packets_sent == plain_run.packets_sent

    def test_rows_in_cohort_order(self, four_shard_run):
        assert list(four_shard_run.rows) \
            == [p.patient_id for p in COHORT]

    def test_wire_loopback_matches_object_path(self, plain_run):
        config = SchedulerConfig(duration_s=60.0, fs=250.0,
                                 wire_loopback=True)
        looped = FleetScheduler(
            COHORT, config, node_config=RUN_KW["node_config"],
            gateway=Gateway(RUN_KW["gateway_config"])).run()
        assert looped.summary.to_json() == plain_run.summary.to_json()


def _impaired_governed_hooks(spec: LinkSpec, profiles,
                             master_seed: int) -> ShardHooks:
    """Module-level hook factory (picklable) for the equivalence test."""

    def link_for(patient_id: str):
        return ImpairedLink(spec, seed=derive_seed(master_seed, "link",
                                                   patient_id))

    def factory(profile):
        frac = derive_seed(master_seed, "soc",
                           profile.patient_id) % 1000 / 1000.0
        return EnergyGovernor(
            config=GovernorConfig(min_dwell_s=0.0),
            table=ModePowerTable(),
            battery=BatteryModel(cell=Battery(capacity_mah=0.05),
                                 soc=max(0.05, 0.9 - 0.5 * frac)))

    return ShardHooks(link=PerPatientLink(link_for),
                      governor_factory=factory)


class TestHookedRuns:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_governed_impaired_shards_byte_identical(self, transport):
        spec = LinkSpec(loss_rate=0.15, duplicate_rate=0.1,
                        reorder_rate=0.2, jitter_s=2.0,
                        reorder_delay_s=65.0)
        kw = dict(RUN_KW, master_seed=99,
                  hook_factory=functools.partial(
                      _impaired_governed_hooks, spec),
                  transport=transport)
        one = ShardedFleetRunner(COHORT[:4], n_shards=1, **kw).run()
        three = ShardedFleetRunner(COHORT[:4], n_shards=3, **kw).run()
        assert three.summary.to_json() == one.summary.to_json()
        assert one.summary.governed
        assert any(row.link_stats for row in one.rows.values())


class TestPerPatientLink:
    def test_routes_by_patient_and_reports_stats(self):
        spec = LinkSpec(loss_rate=0.0, duplicate_rate=0.0,
                        reorder_rate=0.0)
        link = PerPatientLink(lambda pid: ImpairedLink(spec, seed=1))
        proxies = {}
        from repro.fleet import NodeProxy, PatientProfile, \
            synthesize_patient
        for pid in ("a", "b"):
            profile = PatientProfile(patient_id=pid, seed=3)
            record = synthesize_patient(profile, duration_s=60.0)
            proxy = NodeProxy(profile,
                              NodeProxyConfig(stream_telemetry=False))
            _, packets = proxy.run(record)
            proxies[pid] = packets
        for pid, packets in proxies.items():
            for packet in packets:
                delivered = link.send(packet, packet.timestamp_s)
                assert all(d.patient_id == pid for d in delivered)
        assert link.stats_for("a")["offered"] == len(proxies["a"])
        assert link.stats_for("missing") == {}
        assert link.stats["offered"] == sum(len(p) for p
                                            in proxies.values())
        assert link.due(1e9) == []
        assert link.drain() == []


class TestShardResultCodec:
    def _result(self) -> ShardResult:
        from repro.fleet import PatientChannel

        triage = PatientTriage(patient_id="p0", state="watch",
                               since_s=60.0, last_event_s=60.0,
                               n_watches=1, soc=0.5, mode="raw")
        channel = PatientChannel(patient_id="p0", n_excerpts=3,
                                 snrs=[18.5, 21.0, 19.25])
        row = ShardPatientRow(
            patient_id="p0", n_sent=4, n_reconstructed=3,
            n_node_alarms=2, average_power_w=1.5e-3, battery_days=12.5,
            channel=channel, triage=triage, governed=True,
            mode_seconds={"raw": 60.0, "multi_lead_cs": 120.0},
            governor_switches=3, final_soc=0.25, projected_hours=7.5,
            link_stats={"offered": 4, "lost": 1})
        return ShardResult(shard_index=2, packets_sent=4, dropped=1,
                           timings_s={"synthesis+node": 0.5,
                                      "uplink+gateway": 0.25,
                                      "total": 0.75},
                           rows=[row])

    def test_round_trip(self):
        result = self._result()
        decoded = decode_shard_result(encode_shard_result(result))
        assert decoded.shard_index == result.shard_index
        assert decoded.packets_sent == result.packets_sent
        assert decoded.dropped == result.dropped
        assert decoded.timings_s == result.timings_s
        (row,) = decoded.rows
        original = result.rows[0]
        assert row.patient_id == original.patient_id
        assert row.mode_seconds == original.mode_seconds
        assert list(row.mode_seconds) == list(original.mode_seconds)
        assert row.link_stats == original.link_stats
        assert row.triage.state == "watch"
        assert row.triage.soc == 0.5
        assert row.final_soc == 0.25
        assert row.projected_hours == 7.5
        assert row.channel is not None
        assert row.channel.snrs == original.channel.snrs

    def test_every_truncation_raises_wire_error(self):
        # Every prefix cut — including mid-SNR-buffer cuts that are not
        # a multiple of the float64 item size — must surface as a
        # WireFormatError, never a raw numpy/struct exception.
        blob = encode_shard_result(self._result())
        for cut in range(len(blob)):
            with pytest.raises(WireFormatError):
                decode_shard_result(blob[:cut])

    def test_bad_magic_raises(self):
        blob = bytearray(encode_shard_result(self._result()))
        blob[0] ^= 0xFF
        with pytest.raises(WireFormatError, match="magic"):
            decode_shard_result(bytes(blob))


class TestMergeGuards:
    def test_missing_patient_detected(self):
        runner = ShardedFleetRunner(COHORT[:2], n_shards=1, **RUN_KW)
        empty = ShardResult(shard_index=0, packets_sent=0, dropped=0,
                            timings_s={})
        with pytest.raises(WireFormatError, match="missing patients"):
            runner._merge([empty])


class TestTransportHygiene:
    def test_no_shm_segments_leak_from_runs(self, four_shard_run):
        # Every sharded run above unlinked its segments on merge; no
        # segment of this process's runs may survive in /dev/shm.
        import os
        import sys

        if not sys.platform.startswith("linux"):
            pytest.skip("/dev/shm audit is Linux-only")
        run_prefix = f"rpf{os.getpid():x}x"
        leaked = [name for name in os.listdir("/dev/shm")
                  if name.startswith(run_prefix)]
        assert leaked == []


class TestThroughputAccounting:
    def test_report_shapes(self, four_shard_run):
        report = four_shard_run
        assert report.n_shards == 4
        assert len(report.shard_timings_s) == 4
        assert report.timings_s["total"] > 0
        assert np.isfinite(report.patients_per_second)
        assert report.summary.n_patients == len(COHORT)

    def test_sent_by_patient_splits_totals(self, plain_run):
        scheduler = FleetScheduler(
            COHORT, RUN_KW["config"],
            node_config=RUN_KW["node_config"],
            gateway=Gateway(RUN_KW["gateway_config"]))
        fleet = scheduler.run()
        assert sum(scheduler.sent_by_patient.values()) \
            == fleet.packets_sent
