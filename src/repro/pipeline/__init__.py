"""End-to-end node application pipeline (paper §V)."""

from .node_app import (
    AlarmEvent,
    BEAT_EVENT_BITS,
    CardiacMonitorNode,
    GovernedNodeReport,
    ModeSegment,
    NodeReport,
)
from .streaming import StreamingConfig, StreamingMonitor, stream_record

__all__ = [
    "AlarmEvent",
    "BEAT_EVENT_BITS",
    "CardiacMonitorNode",
    "GovernedNodeReport",
    "ModeSegment",
    "NodeReport",
    "StreamingConfig",
    "StreamingMonitor",
    "stream_record",
]
