"""Choosing the CS operating point: quality vs. energy (Fig. 5 + Fig. 6).

Sweeps the compression ratio, reconstructs with both the per-lead and the
joint multi-lead decoder, and combines the quality curves with the node
energy model to find the cheapest operating point that still meets the
20 dB "good reconstruction quality" criterion.

Run:  python examples/compression_tradeoff.py [--windows 8]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.compression import (
    CsDecoder,
    CsEncoder,
    GOOD_QUALITY_SNR_DB,
    JointCsDecoder,
    MultiLeadCsEncoder,
    reconstruction_snr_db,
    snr_crossing_cr,
)
from repro.power import NodeEnergyModel
from repro.signals import RecordSpec, make_record


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--windows", type=int, default=8,
                        help="windows averaged per CR point")
    parser.add_argument("--crs", type=str,
                        default="40,50,55,60,65,70,75,80",
                        help="comma-separated CR sweep (percent)")
    args = parser.parse_args()

    record = make_record(RecordSpec(name="cs", duration_s=40.0,
                                    snr_db=28.0, seed=5))
    n = 512
    sig = record.signals
    windows = [(500 + w * n, 500 + (w + 1) * n)
               for w in range(args.windows)]
    crs = np.array(sorted(float(c) for c in args.crs.split(",")))

    model = NodeEnergyModel()
    raw_power = model.raw_streaming(2.0).average_power_w

    print(f"{'CR [%]':>7} {'SL SNR':>8} {'ML SNR':>8} "
          f"{'ML power [uW]':>14} {'vs raw':>7}")
    sl_curve, ml_curve = [], []
    for cr in crs:
        sl_enc = CsEncoder(n=n, cr_percent=cr, seed=3)
        sl_dec = CsDecoder(sl_enc.sensing)
        ml_enc = MultiLeadCsEncoder(n_leads=3, n=n, cr_percent=cr, seed=100)
        ml_dec = JointCsDecoder(ml_enc.sensing_matrices)
        sl_vals, ml_vals = [], []
        for lo, hi in windows:
            seg = sig[:, lo:hi]
            sl_vals.append(reconstruction_snr_db(
                seg[1], sl_dec.recover(sl_enc.encode(seg[1])).window))
            rec = ml_dec.recover(ml_enc.encode(seg))
            ml_vals.append(np.mean([
                reconstruction_snr_db(seg[lead], rec.windows[lead])
                for lead in range(3)]))
        sl_curve.append(float(np.mean(sl_vals)))
        ml_curve.append(float(np.mean(ml_vals)))
        power = model.multi_lead_cs(cr, 2.0).average_power_w
        print(f"{cr:>7.0f} {sl_curve[-1]:>8.1f} {ml_curve[-1]:>8.1f} "
              f"{1e6 * power:>14.0f} {100 * (1 - power / raw_power):>6.1f}%")

    sl_cross = snr_crossing_cr(crs, np.array(sl_curve))
    ml_cross = snr_crossing_cr(crs, np.array(ml_curve))
    print(f"\n20 dB operating points: single-lead CR = {sl_cross:.1f} %, "
          f"multi-lead CR = {ml_cross:.1f} %")
    print(f"(paper, on MIT-BIH: 65.9 % and 72.7 %)")

    best = model.multi_lead_cs(ml_cross, 2.0)
    raw = model.raw_streaming(2.0)
    saving = model.power_reduction_percent(best, raw)
    print(f"\nat the multi-lead operating point the node saves "
          f"{saving:.1f} % average power vs raw streaming "
          f"(paper: 56.1 %) while keeping SNR >= "
          f"{GOOD_QUALITY_SNR_DB:.0f} dB")


if __name__ == "__main__":
    main()
