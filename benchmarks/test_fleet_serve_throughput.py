"""Served fleet throughput — loopback TCP gateway vs in-process.

Not a paper figure: this benchmarks the `repro.fleet.serve` layer that
moves the gateway behind a real socket.  The same cohort runs through
the in-process scheduler and through `run_served_fleet` (one concurrent
TCP client per patient against the asyncio gateway service); the merged
`FleetSummary` must be **byte-identical** between the two paths (the
serving determinism contract), and the socket tax — served wall over
in-process wall — is the headline number.  No speedup bar: serving
adds framing, syscalls and thread hops on purpose; the bench exists to
keep that tax visible and the byte contract enforced.
"""

from __future__ import annotations

import time

from conftest import print_table

from repro.fleet import (
    CohortConfig,
    FleetScheduler,
    Gateway,
    GatewayConfig,
    NodeProxyConfig,
    SchedulerConfig,
    make_cohort,
    run_served_fleet,
)

N_PATIENTS = 8
DURATION_S = 120.0
FS = 250.0


def run_both():
    """Run the cohort in-process and through loopback sockets."""
    cohort = make_cohort(CohortConfig(n_patients=N_PATIENTS, seed=7))
    config = SchedulerConfig(duration_s=DURATION_S, fs=FS)
    node_config = NodeProxyConfig(stream_telemetry=False)
    gateway_config = GatewayConfig(n_iter=80)
    t0 = time.perf_counter()
    local = FleetScheduler(
        cohort, config, node_config=node_config,
        gateway=Gateway(gateway_config)).run()
    wall_local = time.perf_counter() - t0
    served = run_served_fleet(
        cohort, config=config, node_config=node_config,
        gateway_config=gateway_config)
    return local, wall_local, served


def test_fleet_serve_throughput(benchmark):
    local, wall_local, served = benchmark.pedantic(run_both, rounds=1,
                                                   iterations=1)
    wall_served = served.timings_s["total"]

    print_table(
        f"Served fleet ({N_PATIENTS} patients x {DURATION_S:.0f} s, "
        "loopback TCP)",
        ["metric", "value"],
        [
            ("in-process wall [s]", wall_local),
            ("served wall [s]", wall_served),
            ("socket tax [x]", wall_served / wall_local),
            ("served packets/sec", served.packets_sent / wall_served),
            ("packets sent", served.packets_sent),
            ("connections opened",
             served.server_stats["connections"]["open"]),
            ("max queue depth", served.server_stats["max_queue_depth"]),
            ("SNR p50 [dB]", served.summary.snr_p50_db),
        ],
    )

    # The determinism contract gates unconditionally.
    assert served.summary.to_json() == local.summary.to_json(), \
        "served FleetSummary diverged from the in-process run"
    assert served.packets_sent == local.packets_sent
    assert served.summary.n_patients == N_PATIENTS
    assert served.dropped_packets == 0
    assert served.server_stats["connections"]["open"] == N_PATIENTS
    assert served.server_stats["connections"].get("rejected", 0) == 0
