"""The `Observability` bundle: one handle threaded through the stack.

Instrumentation sites (gateway, scheduler, governor hooks, sharding,
campaign, bench) accept an optional :class:`Observability` and do
nothing when it is ``None`` — observability is strictly out-of-band
and opt-in, so existing `FleetSummary.to_json()` bytes and golden
records are untouched by construction.

Because shard workers run in separate processes, the bundle itself is
never pickled; instead a frozen :class:`ObsConfig` crosses the process
boundary and each worker builds its own bundle via
:meth:`Observability.from_config`.  Workers return JSON snapshot
bundles (:meth:`Observability.snapshot_bundle`) that the parent folds
with :func:`merge_bundles` — exactly, per the metrics/trace merge
contracts.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (MetricsRegistry, SCOPE_FLEET,
                               merge_metric_snapshots)
from repro.obs.trace import TraceRecorder, merge_trace_snapshots


@dataclass(frozen=True)
class ObsConfig:
    """Picklable recipe for building an :class:`Observability` bundle.

    Attributes:
        trace: Record trace events (disable to keep metrics-only
            accounting at minimum cost).
        trace_capacity: Optional event-count bound for long soaks;
            ``None`` = unbounded (required for canonical comparisons).
        flight_ring_size: Wire frames / events retained per channel.
        flight_dump_dir: Anomaly dump directory (``None`` = in-memory
            anomaly records only).
        alarm_burst_threshold: Alarms inside the window that count as
            a burst anomaly.
        alarm_burst_window_s: Virtual-time burst window width.
    """

    trace: bool = True
    trace_capacity: int | None = None
    flight_ring_size: int = 64
    flight_dump_dir: str | None = None
    alarm_burst_threshold: int = 8
    alarm_burst_window_s: float = 10.0


class Observability:
    """Metrics + trace + flight recorder behind one optional handle.

    Attributes:
        metrics: The :class:`~repro.obs.metrics.MetricsRegistry`.
        trace: The :class:`~repro.obs.trace.TraceRecorder`, or ``None``
            when tracing is disabled by config.
        flight: The :class:`~repro.obs.flight.FlightRecorder`.
        config: The :class:`ObsConfig` this bundle was built from.
        virtual_time_s: Last virtual timestamp set by the scheduler;
            instrumentation sites without their own event time (queue
            drops, wire errors) stamp with this.
    """

    def __init__(self, config: ObsConfig | None = None) -> None:
        self.config = config or ObsConfig()
        self.metrics = MetricsRegistry()
        self.trace = (TraceRecorder(capacity=self.config.trace_capacity)
                      if self.config.trace else None)
        self.flight = FlightRecorder(
            ring_size=self.config.flight_ring_size,
            dump_dir=self.config.flight_dump_dir,
            alarm_burst_threshold=self.config.alarm_burst_threshold,
            alarm_burst_window_s=self.config.alarm_burst_window_s,
        )
        self.virtual_time_s = 0.0

    @classmethod
    def from_config(cls, config: ObsConfig | None) -> "Observability | None":
        """Build a bundle from a config, mapping ``None`` to ``None``.

        The shard/campaign worker entry point: workers receive only the
        picklable config and construct their own live bundle.
        """
        return cls(config) if config is not None else None

    def set_virtual_time(self, t_s: float) -> None:
        """Advance the ambient virtual clock (tick or kernel event time).

        Both simulation clocks — the legacy tick loop and the event
        kernel of :mod:`repro.fleet.kernel` — stamp this before running
        a phase, so instrumentation sites without their own event time
        read a consistent virtual *now*.  Non-finite stamps are
        rejected: a NaN ambient clock would silently propagate into
        trace sort keys and anomaly records.
        """
        t_s = float(t_s)
        if not math.isfinite(t_s):
            raise ValueError(f"virtual time must be finite, got {t_s}")
        self.virtual_time_s = t_s

    def snapshot_bundle(self, scope: str | None = None) -> dict:
        """Dict bundle of metric + trace snapshots (one worker's view)."""
        return {
            "metrics": self.metrics.snapshot(scope=scope),
            "trace": (self.trace.snapshot(scope=scope)
                      if self.trace is not None
                      else {"events": [], "n_dropped": 0}),
            "flight": self.flight.snapshot(),
        }

    def canonical_bundle(self) -> dict:
        """Fleet-scope-only bundle: the layout-independent surface."""
        return {
            "metrics": self.metrics.snapshot(scope=SCOPE_FLEET),
            "trace": (self.trace.snapshot(scope=SCOPE_FLEET)
                      if self.trace is not None
                      else {"events": [], "n_dropped": 0}),
        }

    def canonical_json(self) -> str:
        """Byte-stable serialization of the canonical bundle."""
        return canonical_bundle_json(self.canonical_bundle())


def merge_bundles(bundles: list[dict]) -> dict:
    """Fold N snapshot bundles (e.g. one per shard) into one, exactly.

    Metrics fold via
    :func:`~repro.obs.metrics.merge_metric_snapshots`; traces via
    :func:`~repro.obs.trace.merge_trace_snapshots`; flight summaries
    sum their counts.
    """
    flight = {"ring_size": 0, "n_channels": 0, "n_anomalies": 0,
              "anomaly_kinds": []}
    kinds: set[str] = set()
    for bundle in bundles:
        summary = bundle.get("flight") or {}
        flight["ring_size"] = max(flight["ring_size"],
                                  summary.get("ring_size", 0))
        flight["n_channels"] += summary.get("n_channels", 0)
        flight["n_anomalies"] += summary.get("n_anomalies", 0)
        kinds.update(summary.get("anomaly_kinds", ()))
    flight["anomaly_kinds"] = sorted(kinds)
    return {
        "metrics": merge_metric_snapshots(
            [b.get("metrics", {}) for b in bundles]),
        "trace": merge_trace_snapshots(
            [b.get("trace", {}) for b in bundles]),
        "flight": flight,
    }


def canonical_bundle_json(bundle: dict) -> str:
    """Byte-stable serialization of a merged metric+trace bundle."""
    return json.dumps(
        {"metrics": bundle.get("metrics", {"series": []}),
         "trace": bundle.get("trace", {"events": [], "n_dropped": 0})},
        sort_keys=True, separators=(",", ":"))


def canonical_view(bundle: dict) -> dict:
    """Fleet-scope-only filter of a (merged) snapshot bundle.

    Drops every shard-scope series and event, leaving exactly the
    layout-independent surface that must be byte-identical across
    shard counts.
    """
    metrics_in = bundle.get("metrics", {})
    trace_in = bundle.get("trace", {})
    return {
        "metrics": {"series": [s for s in metrics_in.get("series", ())
                               if s.get("scope") == SCOPE_FLEET]},
        "trace": {"events": [e for e in trace_in.get("events", ())
                             if e.get("scope") == SCOPE_FLEET],
                  "n_dropped": trace_in.get("n_dropped", 0)},
    }
