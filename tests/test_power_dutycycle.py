"""Tests for the radio duty-cycling policies."""

import pytest

from repro.power import DutyCycledRadio, DutyCyclePolicy


class TestMaintenance:
    def test_beacon_power_scales_with_interval(self):
        frequent = DutyCycledRadio(
            policy=DutyCyclePolicy(beacon_interval_s=1.0))
        sparse = DutyCycledRadio(
            policy=DutyCyclePolicy(beacon_interval_s=10.0))
        assert frequent.maintenance_power_w() == pytest.approx(
            10 * sparse.maintenance_power_w())

    def test_maintenance_is_microwatt_scale(self):
        radio = DutyCycledRadio()
        assert 1e-7 < radio.maintenance_power_w() < 1e-4

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DutyCyclePolicy(beacon_interval_s=0.0)
        with pytest.raises(ValueError):
            DutyCyclePolicy(beacon_listen_s=-1.0)


class TestPayload:
    def test_zero_payload_costs_nothing_extra(self):
        radio = DutyCycledRadio()
        assert radio.payload_power_w(0.0) == 0.0
        assert radio.average_power_w(0.0) == radio.maintenance_power_w()

    def test_power_monotone_in_rate(self):
        radio = DutyCycledRadio()
        powers = [radio.payload_power_w(rate)
                  for rate in (100.0, 1000.0, 9000.0)]
        assert powers[0] < powers[1] < powers[2]

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            DutyCycledRadio().payload_power_w(-1.0)

    def test_batching_amortizes_overhead(self):
        radio = DutyCycledRadio(
            policy=DutyCyclePolicy(batch_interval_s=4.0))
        gain = radio.batching_gain(200.0, small_interval_s=0.25)
        # Small payloads pay the wake-up cost per burst: batching wins
        # clearly.
        assert gain > 1.5

    def test_batching_gain_shrinks_for_heavy_streams(self):
        radio = DutyCycledRadio(
            policy=DutyCyclePolicy(batch_interval_s=4.0))
        light = radio.batching_gain(100.0)
        heavy = radio.batching_gain(50_000.0)
        assert heavy < light
