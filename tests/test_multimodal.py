"""Unit tests for multimodal estimation (PAT/PWV/BP, SpO2)."""

import numpy as np
import pytest

from repro.multimodal import (
    BpEstimator,
    detect_pulse_feet,
    estimate_spo2,
    measure_pat,
    pulse_arrival_times,
    pwv_from_pat,
    ratio_of_ratios,
    spo2_from_ratio,
    synthesize_dual_ppg,
)
from repro.signals import synthesize_ppg


@pytest.fixture(scope="module")
def ecg_ppg(nsr_record):
    ppg = synthesize_ppg(nsr_record, rng=np.random.default_rng(3))
    return nsr_record.lead(1), ppg


class TestFootDetection:
    def test_feet_near_ground_truth(self, ecg_ppg):
        _, ppg = ecg_ppg
        feet = detect_pulse_feet(ppg.signal, ppg.fs)
        matched = 0
        for truth in ppg.pulse_feet:
            if np.any(np.abs(feet - truth) <= int(0.04 * ppg.fs)):
                matched += 1
        assert matched / ppg.pulse_feet.shape[0] > 0.9

    def test_one_foot_per_beat(self, ecg_ppg):
        _, ppg = ecg_ppg
        feet = detect_pulse_feet(ppg.signal, ppg.fs)
        assert abs(feet.shape[0] - ppg.pulse_feet.shape[0]) <= 2

    def test_short_signal(self):
        assert detect_pulse_feet(np.zeros(100), 250.0).size == 0


class TestPat:
    def test_pat_matches_true_ptt(self, ecg_ppg):
        ecg, ppg = ecg_ppg
        series = measure_pat(ppg, ecg.r_peaks)
        assert series.pat_s.shape[0] > 0.9 * len(ecg.beats)
        assert series.mean_pat_s == pytest.approx(
            float(np.mean(ppg.true_ptt_s)), abs=0.015)

    def test_pairing_window(self):
        r_peaks = np.array([1000])
        feet = np.array([1005, 1400])  # first too close, second too far?
        series = pulse_arrival_times(r_peaks, feet, fs=250.0)
        # 1005 is inside 0.08 s? 5 samples = 20 ms -> excluded;
        # 1400 is 1.6 s -> excluded.
        assert series.pat_s.size == 0

    def test_empty_series_mean_is_nan(self):
        series = pulse_arrival_times(np.array([100]), np.array([]), 250.0)
        assert np.isnan(series.mean_pat_s)


class TestPwvBp:
    def test_pwv_math(self):
        pwv = pwv_from_pat(np.array([0.25]), path_length_m=0.65)
        assert pwv[0] == pytest.approx(2.6)

    def test_pwv_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            pwv_from_pat(np.array([0.0]))

    def test_bp_calibration_roundtrip(self, rng):
        truth_a, truth_b = 28.0, 15.0
        pat = rng.uniform(0.18, 0.32, 40)
        sbp = truth_a / pat + truth_b + rng.normal(0, 0.5, 40)
        estimator = BpEstimator().fit(pat, sbp)
        assert estimator.coef_a == pytest.approx(truth_a, rel=0.1)
        predictions = estimator.predict(pat)
        assert np.max(np.abs(predictions - (truth_a / pat + truth_b))) < 3.0

    def test_bp_tracks_ptt_drift(self, nsr_record, rng):
        # Simulate a BP rise (PTT shortens) and verify the estimator
        # recovers the trend end-to-end through PPG synthesis.
        def profile(t):
            return 0.28 - 0.00035 * t  # PTT shortens over time

        ppg = synthesize_ppg(nsr_record, ptt_profile=profile,
                             rng=np.random.default_rng(8))
        ecg = nsr_record.lead(1)
        series = measure_pat(ppg, ecg.r_peaks)
        estimator = BpEstimator().fit(series.pat_s,
                                      25.0 / series.pat_s + 30.0)
        early = estimator.predict(series.pat_s[:10]).mean()
        late = estimator.predict(series.pat_s[-10:]).mean()
        assert late > early  # BP estimate rises as PTT falls

    def test_bp_requires_fit(self):
        with pytest.raises(RuntimeError, match="calibration"):
            BpEstimator().predict(np.array([0.25]))

    def test_bp_fit_needs_points(self):
        with pytest.raises(ValueError, match="calibration points"):
            BpEstimator().fit(np.array([0.25]), np.array([120.0]))


class TestSpo2:
    def test_ratio_math(self):
        red = np.array([1.0, 2.0, 1.0, 2.0])
        infrared = np.array([2.0, 4.0, 2.0, 4.0])
        # Equal AC/DC ratios -> R = 1.
        assert ratio_of_ratios(red, infrared) == pytest.approx(1.0)

    def test_calibration_curve(self):
        assert spo2_from_ratio(0.52) == pytest.approx(97.0)
        assert spo2_from_ratio(5.0) == 0.0  # clamped

    def test_clean_synthesis_encodes_spo2(self, ecg_ppg, rng):
        _, ppg = ecg_ppg
        red, infrared = synthesize_dual_ppg(ppg.signal, 95.0, rng,
                                            noise_std=0.0)
        estimate = estimate_spo2(red, infrared, ppg.pulse_peaks, ppg.fs,
                                 ensemble=False)
        assert estimate.spo2_percent == pytest.approx(95.0, abs=1.5)

    def test_ensemble_beats_raw_under_noise(self, ecg_ppg):
        ecg, ppg = ecg_ppg
        errors = {"ea": [], "raw": []}
        for seed in range(5):
            rng = np.random.default_rng(seed)
            red, infrared = synthesize_dual_ppg(ppg.signal, 96.0, rng,
                                                noise_std=0.08)
            ea = estimate_spo2(red, infrared, ecg.r_peaks, ppg.fs,
                               ensemble=True)
            raw = estimate_spo2(red, infrared, ecg.r_peaks, ppg.fs,
                                ensemble=False)
            errors["ea"].append(abs(ea.spo2_percent - 96.0))
            errors["raw"].append(abs(raw.spo2_percent - 96.0))
        assert np.mean(errors["ea"]) < np.mean(errors["raw"])

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="match"):
            ratio_of_ratios(np.ones(3), np.ones(4))
        with pytest.raises(ValueError, match="SpO2"):
            synthesize_dual_ppg(np.ones(10), 0.0, rng)
        with pytest.raises(ValueError, match="no complete beat"):
            estimate_spo2(np.ones(10), np.ones(10), np.array([5]), 250.0)
