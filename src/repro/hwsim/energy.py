"""Energy/power model of the WBSN platform with voltage-frequency scaling.

The §IV-B argument: parallelizing a real-time workload over N cores lets
each core run at ~1/N the frequency, which in the near-threshold regime
means a substantially lower supply voltage; dynamic energy scales with
V^2, so the same work costs less — and broadcast fetch merging removes
most of the (N-fold) instruction-memory traffic growth.  Fig. 7 decomposes
the resulting average power into cores, instruction memory and data
memory; this module computes those components from the simulator's event
counts.

Constants are 90 nm-class near-threshold values (documented per field);
the V/f operating points follow the characteristic steep frequency rise of
near-VT silicon.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .platform import EventCounters

#: Near-threshold V/f operating points (volts, hertz).
DEFAULT_VF_POINTS = (
    (0.25, 15e3),
    (0.30, 50e3),
    (0.35, 130e3),
    (0.40, 300e3),
    (0.45, 600e3),
    (0.50, 1.1e6),
    (0.60, 3.0e6),
    (0.70, 7.0e6),
    (0.80, 15.0e6),
)


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies (at ``v_nominal``) and scaling laws.

    Attributes:
        v_nominal: Voltage at which the per-event energies are specified.
        e_alu: Energy of a simple ALU/control instruction (pJ-class,
            90 nm near-VT core).
        e_mul: Energy of a multiply.
        e_mem_instr: Extra core energy of a load/store (AGU + bus).
        e_imem_access: Energy per instruction-memory read (one word from
            one bank, after broadcast merging).
        e_dmem_access: Energy per data-memory access.
        leak_core_w: Leakage per core at ``v_nominal``.
        leak_mem_w_per_kb: Memory leakage per kilobyte at ``v_nominal``.
        vf_points: Voltage/frequency operating points.
    """

    v_nominal: float = 0.5
    e_alu: float = 1.5e-12
    e_mul: float = 3.0e-12
    e_mem_instr: float = 0.8e-12
    e_imem_access: float = 2.5e-12
    e_dmem_access: float = 2.0e-12
    leak_core_w: float = 0.15e-6
    leak_mem_w_per_kb: float = 0.015e-6
    vf_points: tuple[tuple[float, float], ...] = DEFAULT_VF_POINTS

    def voltage_for_frequency(self, f_hz: float) -> float:
        """Minimum supply voltage sustaining ``f_hz`` (log-interpolated).

        Clamps to the lowest point below the table and raises above it —
        a workload the platform cannot reach at its top voltage is a
        mapping error the caller must see.
        """
        volts = np.array([p[0] for p in self.vf_points])
        freqs = np.array([p[1] for p in self.vf_points])
        if f_hz <= freqs[0]:
            return float(volts[0])
        if f_hz > freqs[-1]:
            raise ValueError(
                f"required frequency {f_hz:.3g} Hz exceeds the platform's "
                f"top operating point {freqs[-1]:.3g} Hz")
        return float(np.interp(np.log(f_hz), np.log(freqs), volts))

    def dynamic_scale(self, v: float) -> float:
        """Dynamic-energy scale factor (V^2 law)."""
        return (v / self.v_nominal) ** 2

    def leakage_scale(self, v: float) -> float:
        """Leakage-power scale factor (super-linear, ~V^3)."""
        return (v / self.v_nominal) ** 3


@dataclass(frozen=True)
class PowerReport:
    """Average-power decomposition of one mapped application (Fig. 7 bar).

    Attributes:
        label: Configuration name (e.g. ``"3L-MF/MC"``).
        frequency_hz: Clock required to meet the real-time deadline.
        voltage_v: Supply chosen for that clock.
        core_w: Core dynamic power (execute stage).
        imem_w: Instruction-memory dynamic power.
        dmem_w: Data-memory dynamic power.
        leakage_w: Total leakage (cores + memories).
    """

    label: str
    frequency_hz: float
    voltage_v: float
    core_w: float
    imem_w: float
    dmem_w: float
    leakage_w: float

    @property
    def total_w(self) -> float:
        """Total average power."""
        return self.core_w + self.imem_w + self.dmem_w + self.leakage_w

    def as_microwatts(self) -> dict[str, float]:
        """Component powers in microwatts (the Fig. 7 axis)."""
        return {
            "core": 1e6 * self.core_w,
            "imem": 1e6 * self.imem_w,
            "dmem": 1e6 * self.dmem_w,
            "leakage": 1e6 * self.leakage_w,
            "total": 1e6 * self.total_w,
        }


def power_report(label: str, counters: EventCounters, deadline_s: float,
                 n_cores: int, model: EnergyModel | None = None,
                 imem_kb: float = 8.0, dmem_kb: float = 16.0,
                 ) -> PowerReport:
    """Turn simulator event counts into a Fig. 7 power bar.

    Args:
        label: Configuration name for the report.
        counters: Event counts from :meth:`Platform.run`.
        deadline_s: Real-time budget for the simulated work (the window
            of samples must be processed within its own duration).
        n_cores: Cores in the platform (leakage).
        model: Energy model (defaults to the 90 nm near-VT constants).
        imem_kb: Instruction-memory size for leakage.
        dmem_kb: Total data-memory size for leakage.
    """
    model = model or EnergyModel()
    if deadline_s <= 0:
        raise ValueError("deadline must be positive")
    f_req = counters.cycles / deadline_s
    v = model.voltage_for_frequency(f_req)
    dyn = model.dynamic_scale(v)
    core_e = (counters.alu_instructions * model.e_alu
              + counters.mul_instructions * model.e_mul
              + counters.branch_instructions * model.e_alu
              + counters.memory_instructions
              * (model.e_alu + model.e_mem_instr)) * dyn
    imem_e = counters.imem_accesses * model.e_imem_access * dyn
    dmem_e = (counters.dmem_private_accesses
              + counters.dmem_shared_accesses) * model.e_dmem_access * dyn
    leak = model.leakage_scale(v) * (
        n_cores * model.leak_core_w
        + (imem_kb + dmem_kb) * model.leak_mem_w_per_kb)
    return PowerReport(
        label=label,
        frequency_hz=f_req,
        voltage_v=v,
        core_w=core_e / deadline_s,
        imem_w=imem_e / deadline_s,
        dmem_w=dmem_e / deadline_s,
        leakage_w=leak,
    )
