"""Unit tests for the embedded-resource estimators (paper T2 claims)."""

import pytest

from repro.delineation import (
    McuProfile,
    mmd_delineator_resources,
    wavelet_delineator_resources,
)


class TestWaveletResources:
    def test_duty_cycle_in_paper_band(self):
        # Paper: "7 % of the duty cycle" — accept the single-digit band.
        estimate = wavelet_delineator_resources()
        assert 0.02 <= estimate.duty_cycle <= 0.12

    def test_memory_in_paper_band(self):
        # Paper: "7.2 kB of memory".
        estimate = wavelet_delineator_resources()
        assert 5.0 <= estimate.memory_kb <= 9.5

    def test_breakdown_sums_to_total(self):
        estimate = wavelet_delineator_resources()
        assert sum(estimate.breakdown.values()) == estimate.memory_bytes

    def test_duty_scales_with_sampling_rate(self):
        low = wavelet_delineator_resources(fs=125.0)
        high = wavelet_delineator_resources(fs=500.0)
        assert high.duty_cycle > 1.8 * low.duty_cycle

    def test_duty_scales_inversely_with_clock(self):
        slow = wavelet_delineator_resources(mcu=McuProfile(clock_hz=0.5e6))
        fast = wavelet_delineator_resources(mcu=McuProfile(clock_hz=2.0e6))
        assert slow.duty_cycle == pytest.approx(4 * fast.duty_cycle, rel=0.01)

    def test_scale_buffers_dominate_memory(self):
        estimate = wavelet_delineator_resources()
        assert estimate.breakdown["scale_buffers"] == max(
            estimate.breakdown.values())


class TestMmdResources:
    def test_cheaper_compute_than_wavelet(self):
        # Flat-SE morphology needs only comparisons (the §IV-A argument),
        # so its per-sample cycle count undercuts the wavelet filter bank.
        mmd = mmd_delineator_resources()
        wavelet = wavelet_delineator_resources()
        assert mmd.cycles_per_sample < wavelet.cycles_per_sample

    def test_duty_cycle_single_digit(self):
        estimate = mmd_delineator_resources()
        assert estimate.duty_cycle <= 0.10

    def test_memory_band(self):
        estimate = mmd_delineator_resources()
        assert 4.0 <= estimate.memory_kb <= 10.0

    def test_breakdown_sums(self):
        estimate = mmd_delineator_resources()
        assert sum(estimate.breakdown.values()) == estimate.memory_bytes
