"""Gaussian membership functions and their 4-segment linearization.

Heartbeat classification "usually involves the evaluation of many gaussian
functions"; §IV-A reports that "a four-segments linearization is shown to
achieve close-to-optimal results while vastly simplifying the computational
requirements" (ref [14]).  This module provides both the exact membership

    g(u) = exp(-u^2 / 2),   u = (x - c) / sigma

and a piecewise-linear approximation with four segments on ``|u|`` (zero
beyond), whose knots were grid-searched to minimize the worst-case error:
max |error| = 2.2 % of full scale — the tests assert that bound.  The long
middle segment exploits the inflection of the Gaussian near ``u = 1``,
where the curve is almost linear.  On the node the PWL variant costs one
compare-indexed multiply-add instead of an exponential.
"""

from __future__ import annotations

import numpy as np

#: Segment boundaries of the PWL approximation on |u| (last = cutoff),
#: grid-searched to minimize the maximum absolute error (2.2 %).
PWL_KNOTS = np.array([0.0, 0.40, 1.55, 2.05, 2.85])

#: Values of exp(-u^2/2) at the knots; the final value is forced to 0 so
#: the approximation vanishes at the cutoff.
PWL_VALUES = np.array([
    1.0,
    np.exp(-0.5 * 0.40 ** 2),
    np.exp(-0.5 * 1.55 ** 2),
    np.exp(-0.5 * 2.05 ** 2),
    0.0,
])


def gaussian_membership(x: np.ndarray, center: float | np.ndarray,
                        sigma: float | np.ndarray) -> np.ndarray:
    """Exact Gaussian membership ``exp(-(x - c)^2 / (2 sigma^2))``."""
    u = (np.asarray(x, dtype=float) - center) / sigma
    return np.exp(-0.5 * u * u)


def pwl_membership(x: np.ndarray, center: float | np.ndarray,
                   sigma: float | np.ndarray) -> np.ndarray:
    """Four-segment piecewise-linear Gaussian membership.

    Linear interpolation of ``exp(-u^2/2)`` between :data:`PWL_KNOTS`,
    clamped to zero beyond the last knot.
    """
    u = np.abs((np.asarray(x, dtype=float) - center) / sigma)
    return np.interp(u, PWL_KNOTS, PWL_VALUES, right=0.0)


def pwl_max_error() -> float:
    """Maximum absolute error of the PWL approximation over u in [0, 4]."""
    u = np.linspace(0.0, 4.0, 4001)
    exact = np.exp(-0.5 * u * u)
    approx = np.interp(u, PWL_KNOTS, PWL_VALUES, right=0.0)
    return float(np.max(np.abs(exact - approx)))


def membership_ops(mode: str) -> dict[str, int]:
    """Per-evaluation operation counts for the MCU cost model.

    Args:
        mode: ``"exact"`` (software exp) or ``"pwl"``.

    Returns:
        Dict with ``multiplications``, ``additions`` and ``compares``.
    """
    if mode == "pwl":
        # |u| compute (sub, mul by 1/sigma, abs) + segment select
        # (<= 3 compares) + one mul-add for the interpolation.
        return {"multiplications": 2, "additions": 2, "compares": 3}
    if mode == "exact":
        # Software exp on an integer MCU: ~20 mul-adds (range reduction
        # plus polynomial), dominating the cost.
        return {"multiplications": 22, "additions": 22, "compares": 2}
    raise ValueError(f"unknown membership mode {mode!r}")
