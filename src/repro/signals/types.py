"""Core datatypes for cardiac signals and their annotations.

The paper's algorithms consume sampled ECG/PPG waveforms together with
per-beat annotations (beat class, rhythm, fiducial points).  These types are
deliberately simple containers built on ``numpy`` arrays so that every other
package (filtering, delineation, compression, classification, power models)
can exchange data without conversions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

import numpy as np

# Beat class symbols follow the AAMI/MIT-BIH convention used by the paper's
# classification references ([14], [25]).
BEAT_NORMAL = "N"
BEAT_PVC = "V"
BEAT_APC = "S"
BEAT_AF = "A"  # beat occurring inside an atrial-fibrillation episode

BEAT_CLASSES = (BEAT_NORMAL, BEAT_PVC, BEAT_APC, BEAT_AF)

RHYTHM_SINUS = "NSR"
RHYTHM_AF = "AF"

#: Wave names delineated by the paper's algorithms (Fig. 2).
WAVE_P = "P"
WAVE_QRS = "QRS"
WAVE_T = "T"
WAVE_NAMES = (WAVE_P, WAVE_QRS, WAVE_T)


@dataclass(frozen=True)
class WaveFiducials:
    """Onset / peak / end of one characteristic wave, in sample indices.

    A value of ``-1`` means the wave is absent for this beat (e.g. the P wave
    during atrial fibrillation, where it is replaced by fibrillatory waves).
    """

    onset: int
    peak: int
    end: int

    @property
    def present(self) -> bool:
        """Whether the wave exists for this beat."""
        return self.peak >= 0

    def duration(self) -> int:
        """Wave duration in samples (0 when absent)."""
        if not self.present:
            return 0
        return max(0, self.end - self.onset)

    def shifted(self, offset: int) -> "WaveFiducials":
        """Return a copy with all indices moved by ``offset`` samples."""
        if not self.present:
            return self
        return WaveFiducials(self.onset + offset, self.peak + offset, self.end + offset)


ABSENT_WAVE = WaveFiducials(onset=-1, peak=-1, end=-1)


@dataclass(frozen=True)
class BeatAnnotation:
    """Ground-truth (or detected) annotation of a single heartbeat."""

    r_peak: int
    label: str = BEAT_NORMAL
    rhythm: str = RHYTHM_SINUS
    p_wave: WaveFiducials = ABSENT_WAVE
    qrs: WaveFiducials = ABSENT_WAVE
    t_wave: WaveFiducials = ABSENT_WAVE

    def wave(self, name: str) -> WaveFiducials:
        """Return the fiducials of ``name`` (one of :data:`WAVE_NAMES`)."""
        if name == WAVE_P:
            return self.p_wave
        if name == WAVE_QRS:
            return self.qrs
        if name == WAVE_T:
            return self.t_wave
        raise ValueError(f"unknown wave name: {name!r}")

    def shifted(self, offset: int) -> "BeatAnnotation":
        """Return a copy with all sample indices moved by ``offset``."""
        return replace(
            self,
            r_peak=self.r_peak + offset,
            p_wave=self.p_wave.shifted(offset),
            qrs=self.qrs.shifted(offset),
            t_wave=self.t_wave.shifted(offset),
        )


@dataclass
class EcgRecord:
    """A single-lead ECG recording with optional beat annotations.

    Attributes:
        fs: Sampling frequency in Hz.
        signal: 1-D waveform in millivolts.
        beats: Per-beat annotations sorted by R-peak sample index.
        name: Free-form identifier used by datasets and reports.
    """

    fs: float
    signal: np.ndarray
    beats: list[BeatAnnotation] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        self.signal = np.asarray(self.signal, dtype=float)
        if self.signal.ndim != 1:
            raise ValueError("EcgRecord.signal must be one-dimensional")
        if self.fs <= 0:
            raise ValueError("sampling frequency must be positive")

    def __len__(self) -> int:
        return self.signal.shape[0]

    @property
    def duration_s(self) -> float:
        """Record duration in seconds."""
        return len(self) / self.fs

    @property
    def r_peaks(self) -> np.ndarray:
        """Array of annotated R-peak sample indices."""
        return np.array([b.r_peak for b in self.beats], dtype=int)

    @property
    def labels(self) -> list[str]:
        """Beat-class label of every annotated beat."""
        return [b.label for b in self.beats]

    def rr_intervals_s(self) -> np.ndarray:
        """Consecutive RR intervals in seconds (empty if < 2 beats)."""
        peaks = self.r_peaks
        if peaks.size < 2:
            return np.empty(0)
        return np.diff(peaks) / self.fs

    def slice(self, start: int, stop: int) -> "EcgRecord":
        """Extract ``signal[start:stop]`` with re-based annotations.

        Beats whose R peak falls outside the window are dropped.
        """
        start = max(0, start)
        stop = min(len(self), stop)
        beats = [
            b.shifted(-start) for b in self.beats if start <= b.r_peak < stop
        ]
        return EcgRecord(self.fs, self.signal[start:stop].copy(), beats,
                         name=f"{self.name}[{start}:{stop}]")

    def beat_window(self, beat: BeatAnnotation, before_s: float = 0.25,
                    after_s: float = 0.45) -> np.ndarray:
        """Return a window of samples around a beat's R peak.

        Windows near the record edges are zero-padded so that every window
        has the same length, which the classification feature extractors
        require.
        """
        before = int(round(before_s * self.fs))
        after = int(round(after_s * self.fs))
        window = np.zeros(before + after)
        lo = beat.r_peak - before
        hi = beat.r_peak + after
        src_lo = max(0, lo)
        src_hi = min(len(self), hi)
        window[src_lo - lo:src_hi - lo] = self.signal[src_lo:src_hi]
        return window


@dataclass
class MultiLeadEcg:
    """A multi-lead ECG recording (the paper's node acquires 3 leads).

    Attributes:
        fs: Sampling frequency in Hz.
        signals: Array of shape ``(n_leads, n_samples)`` in millivolts.
        beats: Shared beat annotations (fiducials refer to lead 0 timing;
            wave timing is identical across leads by construction).
        lead_names: Human-readable lead identifiers.
    """

    fs: float
    signals: np.ndarray
    beats: list[BeatAnnotation] = field(default_factory=list)
    lead_names: Sequence[str] = ()
    name: str = ""

    def __post_init__(self) -> None:
        self.signals = np.atleast_2d(np.asarray(self.signals, dtype=float))
        if not self.lead_names:
            self.lead_names = tuple(f"L{i + 1}" for i in range(self.n_leads))
        if len(self.lead_names) != self.n_leads:
            raise ValueError("lead_names length must match number of leads")

    @property
    def n_leads(self) -> int:
        """Number of leads."""
        return self.signals.shape[0]

    @property
    def n_samples(self) -> int:
        """Number of samples per lead."""
        return self.signals.shape[1]

    @property
    def duration_s(self) -> float:
        """Record duration in seconds."""
        return self.n_samples / self.fs

    @property
    def r_peaks(self) -> np.ndarray:
        """Array of annotated R-peak sample indices."""
        return np.array([b.r_peak for b in self.beats], dtype=int)

    def lead(self, index: int) -> EcgRecord:
        """Extract one lead as a standalone :class:`EcgRecord`."""
        return EcgRecord(self.fs, self.signals[index].copy(),
                         list(self.beats),
                         name=f"{self.name}/{self.lead_names[index]}")

    def leads(self) -> Iterator[EcgRecord]:
        """Iterate over all leads as :class:`EcgRecord` objects."""
        for i in range(self.n_leads):
            yield self.lead(i)


@dataclass
class PpgRecord:
    """A photoplethysmogram time-locked to an ECG record.

    Attributes:
        fs: Sampling frequency in Hz.
        signal: 1-D waveform (arbitrary units, positive pulses).
        pulse_feet: Sample indices of pulse onsets (the "foot" used for
            pulse-arrival-time measurements).
        pulse_peaks: Sample indices of systolic peaks.
        true_ptt_s: Ground-truth pulse transit time per beat in seconds
            (what the PAT estimator in ``repro.multimodal`` must recover).
    """

    fs: float
    signal: np.ndarray
    pulse_feet: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))
    pulse_peaks: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))
    true_ptt_s: np.ndarray = field(default_factory=lambda: np.empty(0))
    name: str = ""

    def __post_init__(self) -> None:
        self.signal = np.asarray(self.signal, dtype=float)
        self.pulse_feet = np.asarray(self.pulse_feet, dtype=int)
        self.pulse_peaks = np.asarray(self.pulse_peaks, dtype=int)
        self.true_ptt_s = np.asarray(self.true_ptt_s, dtype=float)

    def __len__(self) -> int:
        return self.signal.shape[0]
