"""Tests for signal-domain fault injection."""

import numpy as np
import pytest

from repro.fleet import PatientProfile, synthesize_patient
from repro.scenarios import (
    LEAD_OFF_RESIDUAL_MV,
    FaultEvent,
    apply_faults,
)


@pytest.fixture(scope="module")
def base_record():
    profile = PatientProfile(patient_id="inj", rhythm="nsr", snr_db=None,
                             seed=19)
    return synthesize_patient(profile, duration_s=30.0)


def span(record, fault):
    lo = int(round(fault.start_s * record.fs))
    hi = int(round(fault.stop_s * record.fs))
    return lo, hi


class TestApplyFaults:
    def test_no_faults_is_identity(self, base_record, rng):
        assert apply_faults(base_record, (), rng) is base_record

    def test_original_record_untouched(self, base_record, rng):
        before = base_record.signals.copy()
        apply_faults(base_record,
                     (FaultEvent("motion_burst", 5.0, 5.0, severity=2.0),),
                     rng)
        np.testing.assert_array_equal(base_record.signals, before)

    def test_deterministic_per_seed(self, base_record):
        fault = (FaultEvent("motion_burst", 5.0, 5.0, severity=1.0),)
        one = apply_faults(base_record, fault, np.random.default_rng(3))
        two = apply_faults(base_record, fault, np.random.default_rng(3))
        np.testing.assert_array_equal(one.signals, two.signals)
        other = apply_faults(base_record, fault, np.random.default_rng(4))
        assert not np.array_equal(one.signals, other.signals)

    def test_motion_burst_confined_to_episode(self, base_record, rng):
        fault = FaultEvent("motion_burst", 10.0, 4.0, severity=1.5)
        out = apply_faults(base_record, (fault,), rng)
        lo, hi = span(base_record, fault)
        diff = out.signals - base_record.signals
        np.testing.assert_array_equal(diff[:, :lo], 0.0)
        np.testing.assert_array_equal(diff[:, hi:], 0.0)
        assert np.max(np.abs(diff[:, lo:hi])) > 0.3

    def test_lead_off_flattens_only_that_lead(self, base_record, rng):
        fault = FaultEvent("lead_off", 8.0, 6.0, lead=1)
        out = apply_faults(base_record, (fault,), rng)
        lo, hi = span(base_record, fault)
        detached = out.signals[1, lo:hi]
        assert np.max(np.abs(detached)) < 10 * LEAD_OFF_RESIDUAL_MV
        np.testing.assert_array_equal(out.signals[0], base_record.signals[0])
        np.testing.assert_array_equal(out.signals[2], base_record.signals[2])

    def test_lead_clamped_to_available(self, rng):
        profile = PatientProfile(patient_id="one", rhythm="nsr",
                                 snr_db=None, n_leads=1, seed=4)
        record = synthesize_patient(profile, duration_s=10.0)
        fault = FaultEvent("lead_off", 2.0, 3.0, lead=2)
        out = apply_faults(record, (fault,), rng)
        lo, hi = span(record, fault)
        assert np.max(np.abs(out.signals[0, lo:hi])) < \
            10 * LEAD_OFF_RESIDUAL_MV

    def test_saturation_clips_to_rail(self, base_record, rng):
        rail = 0.2
        fault = FaultEvent("saturation", 0.0, base_record.duration_s,
                           severity=rail)
        out = apply_faults(base_record, (fault,), rng)
        assert np.max(np.abs(out.signals)) <= rail + 1e-12
        # The QRS complexes (≈1 mV) must actually have clipped.
        assert np.any(np.abs(base_record.signals) > rail)

    def test_baseline_wander_is_low_frequency(self, base_record, rng):
        fault = FaultEvent("baseline_wander", 0.0, 30.0, severity=0.5)
        out = apply_faults(base_record, (fault,), rng)
        diff = out.signals[0] - base_record.signals[0]
        power = np.abs(np.fft.rfft(diff)) ** 2
        freqs = np.fft.rfftfreq(diff.shape[0], d=1.0 / base_record.fs)
        assert power[freqs <= 1.0].sum() > 0.95 * power.sum()

    def test_annotations_preserved(self, base_record, rng):
        fault = FaultEvent("motion_burst", 5.0, 10.0, severity=2.0)
        out = apply_faults(base_record, (fault,), rng)
        assert out.beats is base_record.beats
        assert out.fs == base_record.fs

    def test_out_of_range_episode_ignored(self, base_record, rng):
        fault = FaultEvent("motion_burst", 1e4, 5.0)
        out = apply_faults(base_record, (fault,), rng)
        np.testing.assert_array_equal(out.signals, base_record.signals)
