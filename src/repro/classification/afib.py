"""Automated atrial-fibrillation detection (ref [25], exp T3).

Following Rincon et al. (EMBC 2012), the detector analyses sliding windows
of consecutive beats using the two characteristic irregularities of AF the
paper names in §V:

* **heart-beat rate regularity** — RR-interval statistics (coefficient of
  variation, normalized RMSSD and the fraction of successive differences
  above 50 ms) capture the "irregularly irregular" AF rhythm;
* **the shape of the P wave** — in AF the P wave disappears, so the
  fraction of beats whose delineation reports an absent P wave rises
  towards one.

The per-window features feed the same low-complexity fuzzy classifier used
for heartbeats (:class:`~repro.classification.neurofuzzy.NeuroFuzzyClassifier`),
trained on an annotated corpus.  The paper reports 96 % sensitivity and
93 % specificity for this approach.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..delineation.rpeak import RPeakDetector
from ..delineation.wavelet_delineator import WaveletDelineator
from ..signals.types import BeatAnnotation, MultiLeadEcg, RHYTHM_AF
from .evaluation import ClassificationReport, evaluate_classification
from .neurofuzzy import NeuroFuzzyClassifier

AF_LABEL = "AF"
NON_AF_LABEL = "N"

FEATURE_NAMES = ("rr_cv", "rr_nrmssd", "rr_pnn50", "p_absence")


def rr_irregularity_features(rr_s: np.ndarray) -> np.ndarray:
    """RR-regularity features of one window: (cv, nRMSSD, pNN50).

    Args:
        rr_s: RR intervals in seconds (length >= 2).
    """
    rr_s = np.asarray(rr_s, dtype=float)
    if rr_s.shape[0] < 2:
        raise ValueError("need at least two RR intervals")
    mean = float(np.mean(rr_s))
    cv = float(np.std(rr_s)) / mean if mean > 0 else 0.0
    diffs = np.diff(rr_s)
    nrmssd = float(np.sqrt(np.mean(diffs ** 2))) / mean if mean > 0 else 0.0
    pnn50 = float(np.mean(np.abs(diffs) > 0.050))
    return np.array([cv, nrmssd, pnn50])


@dataclass(frozen=True)
class AfWindow:
    """One analysis window of the detector.

    Attributes:
        start: First sample covered.
        stop: Last sample covered.
        features: Feature vector (:data:`FEATURE_NAMES` order).
        truth: Ground-truth label when built from annotated data.
    """

    start: int
    stop: int
    features: np.ndarray
    truth: str = ""


def window_features(beats: list[BeatAnnotation], fs: float,
                    window_beats: int = 24,
                    step_beats: int = 8) -> list[AfWindow]:
    """Slide a beat window over annotations and extract AF features.

    The ground-truth label of a window is AF when more than half of its
    beats carry the AF rhythm annotation.

    Args:
        beats: Beat annotations (detected or ground truth) ordered by
            R peak; the P-wave fields drive the p_absence feature.
        fs: Sampling frequency.
        window_beats: Beats per analysis window.
        step_beats: Beats advanced between windows.
    """
    if window_beats < 4:
        raise ValueError("window_beats must be >= 4")
    if step_beats < 1:
        raise ValueError("step_beats must be >= 1")
    windows: list[AfWindow] = []
    n = len(beats)
    for start_idx in range(0, max(0, n - window_beats + 1), step_beats):
        chunk = beats[start_idx:start_idx + window_beats]
        peaks = np.array([b.r_peak for b in chunk], dtype=float)
        rr = np.diff(peaks) / fs
        if rr.shape[0] < 2:
            continue
        rr_feats = rr_irregularity_features(rr)
        p_absence = float(np.mean([0.0 if b.p_wave.present else 1.0
                                   for b in chunk]))
        af_beats = sum(1 for b in chunk if b.rhythm == RHYTHM_AF)
        truth = AF_LABEL if af_beats > len(chunk) / 2 else NON_AF_LABEL
        windows.append(AfWindow(
            start=int(peaks[0]), stop=int(peaks[-1]),
            features=np.concatenate([rr_feats, [p_absence]]),
            truth=truth,
        ))
    return windows


@dataclass
class AfDetector:
    """Sliding-window AF detector (RR regularity + P-wave + fuzzy rules).

    Args:
        window_beats: Beats per analysis window.
        step_beats: Beats advanced between windows.
        lead: Lead used for delineation.
        membership: Fuzzy membership mode (``exact`` or ``pwl``).
    """

    window_beats: int = 24
    step_beats: int = 8
    lead: int = 1
    membership: str = "exact"
    classifier: NeuroFuzzyClassifier = field(init=False)

    def __post_init__(self) -> None:
        self.classifier = NeuroFuzzyClassifier(membership=self.membership)

    def _annotate(self, record: MultiLeadEcg) -> list[BeatAnnotation]:
        """Run the on-node chain: R-peak detection + wavelet delineation.

        The detected annotations inherit the overlapping ground-truth
        rhythm label (needed only to *score* windows, never to decide).
        """
        ecg = record.lead(self.lead)
        peaks = RPeakDetector(ecg.fs).detect(ecg.signal)
        detected = WaveletDelineator(ecg.fs).delineate(ecg.signal, peaks)
        truth_peaks = record.r_peaks
        truth_rhythms = [b.rhythm for b in record.beats]
        out: list[BeatAnnotation] = []
        for det in detected:
            if truth_peaks.size:
                nearest = int(np.argmin(np.abs(truth_peaks - det.r_peak)))
                rhythm = truth_rhythms[nearest]
            else:
                rhythm = ""
            out.append(BeatAnnotation(
                r_peak=det.r_peak, label=det.label, rhythm=rhythm,
                p_wave=det.p_wave, qrs=det.qrs, t_wave=det.t_wave))
        return out

    def windows_for_record(self, record: MultiLeadEcg) -> list[AfWindow]:
        """Detected-feature windows (with ground-truth labels) of a record."""
        annotations = self._annotate(record)
        return window_features(annotations, record.fs, self.window_beats,
                               self.step_beats)

    def fit(self, records: list[MultiLeadEcg]) -> "AfDetector":
        """Train the fuzzy classifier on annotated records."""
        features, labels = [], []
        for record in records:
            for window in self.windows_for_record(record):
                features.append(window.features)
                labels.append(window.truth)
        if len(set(labels)) < 2:
            raise ValueError(
                "training corpus must contain both AF and non-AF windows")
        self.classifier.fit(np.vstack(features), np.array(labels))
        return self

    def predict_record(self, record: MultiLeadEcg,
                       ) -> tuple[list[AfWindow], np.ndarray]:
        """Per-window AF decisions for one record.

        Returns:
            ``(windows, predicted_labels)``.
        """
        windows = self.windows_for_record(record)
        if not windows:
            return [], np.empty(0, dtype="<U2")
        features = np.vstack([w.features for w in windows])
        return windows, self.classifier.predict(features)

    def evaluate(self, records: list[MultiLeadEcg]) -> ClassificationReport:
        """Window-level Se/Sp over a corpus (the paper's T3 metric)."""
        truth, predicted = [], []
        for record in records:
            windows, labels = self.predict_record(record)
            truth.extend(w.truth for w in windows)
            predicted.extend(labels.tolist())
        return evaluate_classification(
            np.array(truth), np.array(predicted),
            classes=[AF_LABEL, NON_AF_LABEL])
