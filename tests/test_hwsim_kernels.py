"""Functional + Fig. 7 shape tests for the WBSN kernels."""

import numpy as np
import pytest

from repro.hwsim import run_mf3l, run_mmd3l, run_rpclass
from repro.hwsim.kernels import common


@pytest.fixture(scope="module")
def block(nsr_record):
    """A one-second 3-lead block (away from the start padding)."""
    return nsr_record.signals[:, 500:750]


@pytest.fixture(scope="module")
def beat(nsr_record):
    return nsr_record.lead(1).beat_window(nsr_record.beats[3])


class TestCommonReferences:
    def test_quantize_roundtrip_scale(self):
        x = np.array([0.001, -0.5, 1.2345])
        q = common.quantize_signal(x)
        assert q.tolist() == [1, -500, 1234]

    def test_trailing_extremum_prefix_copies(self, rng):
        x = rng.integers(-100, 100, 50).astype(np.int64)
        out = common.trailing_extremum(x, 7, "max")
        assert np.array_equal(out[:6], x[:6])
        assert out[20] == x[14:21].max()

    def test_mmd_reference_shape(self, rng):
        x = rng.integers(-100, 100, 64).astype(np.int64)
        assert common.mmd_reference(x, 5).shape == (64,)

    def test_argmin_reference(self):
        values = np.array([5, 3, 9, 1, 7], dtype=np.int64)
        idx, val = common.argmin_reference(values, start=1)
        assert (idx, val) == (3, 1)

    def test_rp_scores_reference(self, rng):
        window = rng.integers(-50, 50, 20).astype(np.int64)
        rows = rng.integers(-1, 2, (4, 20)).astype(np.int64)
        centers = rng.integers(-100, 100, (3, 4)).astype(np.int64)
        scores = common.rp_scores_reference(window, rows, centers)
        features = rows @ window
        assert scores[0] == np.abs(features - centers[0]).sum()


class TestFunctionalEquivalence:
    """The simulator's outputs are checked inside run_* against NumPy
    references; these tests assert the checks pass for several datasets."""

    def test_mf3l_verifies(self, block, nsr_record):
        comparison = run_mf3l(block, nsr_record.fs)
        assert comparison.name == "3L-MF"

    def test_mmd3l_verifies(self, block, nsr_record):
        comparison = run_mmd3l(block, nsr_record.fs)
        assert comparison.name == "3L-MMD"

    def test_rpclass_verifies(self, beat, nsr_record):
        comparison = run_rpclass(beat, nsr_record.fs)
        assert comparison.name == "RP-CLASS"

    def test_mf3l_on_random_data(self, rng, nsr_record):
        noise = 0.3 * rng.standard_normal((3, 200))
        run_mf3l(noise, nsr_record.fs)

    def test_rpclass_other_seed(self, beat, nsr_record):
        run_rpclass(beat, nsr_record.fs, seed=99)

    def test_lead_core_mismatch_rejected(self, block, nsr_record):
        with pytest.raises(ValueError, match="one lead per core"):
            run_mf3l(block, nsr_record.fs, n_cores=2)

    def test_rpclass_row_split_rejected(self, beat, nsr_record):
        with pytest.raises(ValueError, match="split"):
            run_rpclass(beat, nsr_record.fs, k=25, n_cores=3)


class TestFig7Shape:
    def test_mc_saves_power_on_all_apps(self, block, beat, nsr_record):
        for comparison in (run_mf3l(block, nsr_record.fs),
                           run_mmd3l(block, nsr_record.fs),
                           run_rpclass(beat, nsr_record.fs)):
            assert comparison.savings_percent > 10.0, comparison.name

    def test_filtering_reaches_forty_percent(self, block, nsr_record):
        comparison = run_mf3l(block, nsr_record.fs)
        # Paper: "reducing up to 40 % the global power consumption".
        assert comparison.savings_percent >= 33.0

    def test_imem_power_collapses_with_broadcast(self, block, nsr_record):
        comparison = run_mf3l(block, nsr_record.fs)
        assert comparison.mc.imem_w < 0.5 * comparison.sc.imem_w

    def test_mc_runs_at_lower_voltage(self, block, nsr_record):
        comparison = run_mmd3l(block, nsr_record.fs)
        assert comparison.mc.voltage_v < comparison.sc.voltage_v
        assert comparison.mc.frequency_hz < 0.5 * comparison.sc.frequency_hz

    def test_broadcast_ablation_hurts(self, block, nsr_record):
        with_bc = run_mf3l(block, nsr_record.fs, broadcast=True)
        without = run_mf3l(block, nsr_record.fs, broadcast=False)
        assert without.savings_percent < with_bc.savings_percent - 10.0
        assert without.mc_run.counters.imem_conflict_stalls > 0

    def test_mmd_divergence_and_barrier(self, block, nsr_record):
        comparison = run_mmd3l(block, nsr_record.fs)
        counters = comparison.mc_run.counters
        # Data-dependent scans diverge (some stall/merge loss), and the
        # barrier is actually exercised.
        assert counters.barrier_wait_cycles > 0
        assert counters.imem_conflict_stalls > 0

    def test_mf_is_fully_simd(self, block, nsr_record):
        counters = run_mf3l(block, nsr_record.fs).mc_run.counters
        # Identical control flow: no fetch conflicts at all.
        assert counters.imem_conflict_stalls == 0
        assert counters.imem_broadcast_merges > 0
