"""Unit tests for repro.dsp.wavelets."""

import numpy as np
import pytest

from repro.dsp import (
    SPLINE_HIGHPASS,
    SPLINE_LOWPASS,
    atrous_swt,
    daubechies_filters,
    max_dwt_levels,
    orthogonal_dwt_matrix,
)


class TestDaubechiesFilters:
    @pytest.mark.parametrize("name", ["haar", "db2", "db4"])
    def test_scaling_filter_normalization(self, name):
        h, g = daubechies_filters(name)
        assert np.sum(h) == pytest.approx(np.sqrt(2.0), abs=1e-10)
        assert np.sum(h ** 2) == pytest.approx(1.0, abs=1e-10)

    @pytest.mark.parametrize("name", ["haar", "db2", "db4"])
    def test_highpass_kills_constants(self, name):
        _, g = daubechies_filters(name)
        assert np.sum(g) == pytest.approx(0.0, abs=1e-10)

    def test_db2_kills_linears(self):
        _, g = daubechies_filters("db2")
        k = np.arange(g.shape[0])
        assert np.sum(g * k) == pytest.approx(0.0, abs=1e-9)

    def test_unknown_wavelet(self):
        with pytest.raises(KeyError, match="unknown wavelet"):
            daubechies_filters("sym5")


class TestOrthogonalDwtMatrix:
    @pytest.mark.parametrize("name,n", [("haar", 64), ("db2", 128),
                                        ("db4", 256)])
    def test_orthonormality(self, name, n):
        W = orthogonal_dwt_matrix(n, name)
        assert np.allclose(W @ W.T, np.eye(n), atol=1e-9)

    def test_constant_signal_concentrates_in_approximation(self):
        n = 64
        W = orthogonal_dwt_matrix(n, "db4", levels=3)
        coeffs = W @ np.ones(n)
        approx_len = n // 8
        detail_energy = np.sum(coeffs[approx_len:] ** 2)
        assert detail_energy < 1e-18 * np.sum(coeffs ** 2) + 1e-18

    def test_energy_preservation(self, rng):
        n = 128
        W = orthogonal_dwt_matrix(n, "db2")
        x = rng.standard_normal(n)
        assert np.sum((W @ x) ** 2) == pytest.approx(np.sum(x ** 2))

    def test_levels_validation(self):
        with pytest.raises(ValueError, match="not divisible"):
            orthogonal_dwt_matrix(96, "haar", levels=6)

    def test_too_short_window(self):
        with pytest.raises(ValueError, match="too short"):
            orthogonal_dwt_matrix(8, "db4", levels=0)

    def test_max_levels(self):
        # The coarsest stage must keep at least 2 x filter-length samples
        # *before* the final split: db4 (8 taps) on 256 samples allows 5
        # levels (the level-5 input has 16 samples), haar allows 7.
        assert max_dwt_levels(256, "db4") == 5
        assert max_dwt_levels(256, "haar") == 7

    def test_matrix_is_copied_per_call(self):
        a = orthogonal_dwt_matrix(64, "haar")
        a[0, 0] += 1.0
        b = orthogonal_dwt_matrix(64, "haar")
        assert b[0, 0] != a[0, 0]


class TestAtrousSwt:
    def test_filters_are_the_quadratic_spline_pair(self):
        assert np.allclose(SPLINE_LOWPASS, [0.125, 0.375, 0.375, 0.125])
        assert np.allclose(SPLINE_HIGHPASS, [2.0, -2.0])

    def test_output_shape(self, rng):
        x = rng.standard_normal(500)
        w = atrous_swt(x, levels=5)
        assert w.shape == (5, 500)

    def test_constant_signal_has_zero_details(self):
        w = atrous_swt(np.full(300, 7.5), levels=4)
        assert np.allclose(w, 0.0, atol=1e-9)

    def test_ramp_gives_constant_detail(self):
        w = atrous_swt(np.arange(400, dtype=float), levels=3)
        # Derivative-like transform of a ramp: constant inside the support.
        inner = w[0, 50:-50]
        assert np.allclose(inner, inner[0])

    def test_zero_crossing_at_gaussian_peak(self):
        t = np.arange(600)
        x = np.exp(-0.5 * ((t - 300) / 12.0) ** 2)
        w = atrous_swt(x, levels=5)
        for level in range(4):
            band = w[level, 280:321]
            signs = np.sign(band)
            crossings = np.flatnonzero(np.diff(signs) != 0)
            assert crossings.size >= 1
            crossing = 280 + crossings[0]
            assert abs(crossing - 300) <= 3 + level

    def test_modulus_pair_brackets_peak(self):
        t = np.arange(600)
        x = np.exp(-0.5 * ((t - 300) / 12.0) ** 2)
        w = atrous_swt(x, levels=4)[2]
        assert np.argmax(w) < 300 < np.argmin(w)
