"""WBSN application kernels written in the simulator ISA (Fig. 7 apps)."""

from . import common, mf3l, mmd3l, rpclass

__all__ = ["common", "mf3l", "mmd3l", "rpclass"]
