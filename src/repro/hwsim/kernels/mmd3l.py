"""3L-MMD: three-lead morphological-derivative delineation kernel (Fig. 7).

Per lead, at **two scales** (the QRS scale and the wider P/T scale, as the
MMD delineator of [13] uses): trailing dilation and erosion, the MMD
combination ``dil + ero - 2x``, and an argmin scan locating the transform
minimum (the wave-peak mark).  The scan's conditional best-so-far update
is *data dependent*, so in the MC mapping the cores diverge during it —
exactly the situation for which the platform provides hardware barriers:
a ``BAR`` after the per-lead work re-aligns the cores before core 0
gathers the per-lead results from shared memory.

Register use extends the 3L-MF convention; r2 holds the best index during
the scans.
"""

from __future__ import annotations

import numpy as np

from ..assembler import Assembler
from ..isa import Instruction, Op
from ..platform import SHARED_BASE
from .common import argmin_reference, mmd_reference, quantize_signal
from .mf3l import emit_extremum_pass

#: Shared-memory slot where core 0 publishes the global best (index, value).
RESULT_OFFSET = 100

#: Default structuring-element widths (seconds) for the two scales.
DEFAULT_WIDTHS_S = (0.020, 0.048)


def lead_stride(n_samples: int) -> int:
    """Words of private memory per lead (input, dil, ero, mmd1, mmd2)."""
    return 5 * n_samples


def _emit_scale(asm: Assembler, tag: str, n_samples: int, width: int,
                mmd_offset: int, slot_group: int, n_slots: int) -> None:
    """Emit one scale: dil/ero passes, combine, scan, publish.

    Expects r14 = lead base, r15 = lead index, r6 = n_samples.  The dil
    and ero scratch buffers (base+n, base+2n) are reused across scales.
    """
    asm.ldi(7, width)
    asm.mov(9, 14)
    asm.addi(11, 14, n_samples)
    emit_extremum_pass(asm, f"{tag}_dil", Op.MAX, n_samples, width)
    asm.mov(9, 14)
    asm.addi(11, 14, 2 * n_samples)
    emit_extremum_pass(asm, f"{tag}_ero", Op.MIN, n_samples, width)
    # Combine: mmd[i] = dil[i] + ero[i] - 2 x[i].
    asm.mov(9, 14)
    asm.addi(12, 14, n_samples)
    asm.addi(8, 14, 2 * n_samples)
    asm.addi(11, 14, mmd_offset)
    asm.ldi(1, 0)
    asm.label(f"{tag}_comb")
    asm.add(4, 9, 1)
    asm.ld(10, 4)
    asm.shl(10, 10, 1)
    asm.add(4, 12, 1)
    asm.ld(3, 4)
    asm.add(5, 8, 1)
    asm.ld(2, 5)
    asm.add(3, 3, 2)
    asm.sub(3, 3, 10)
    asm.add(5, 11, 1)
    asm.st(5, 3)
    asm.addi(1, 1, 1)
    asm.blt(1, 6, f"{tag}_comb")
    # Argmin scan over mmd[width:] — data-dependent control flow.
    asm.ldi(1, width)
    asm.add(4, 11, 1)
    asm.ld(3, 4)
    asm.mov(2, 1)
    asm.addi(1, 1, 1)
    asm.label(f"{tag}_scan")
    asm.add(4, 11, 1)
    asm.ld(10, 4)
    asm.bge(10, 3, f"{tag}_scan_skip")
    asm.mov(3, 10)
    asm.mov(2, 1)
    asm.label(f"{tag}_scan_skip")
    asm.addi(1, 1, 1)
    asm.blt(1, 6, f"{tag}_scan")
    # Publish (index, value) to shared slot cid + lead_index + group.
    asm.cid(10)
    asm.add(10, 10, 15)
    asm.addi(10, 10, slot_group * n_slots)
    asm.shl(10, 10, 1)
    asm.ldi(4, SHARED_BASE)
    asm.add(4, 4, 10)
    asm.st(4, 2, 0)
    asm.st(4, 3, 1)


def build_mmd_kernel(n_samples: int, widths: tuple[int, int],
                     n_leads_loop: int, n_slots: int) -> list[Instruction]:
    """Build the 3L-MMD program.

    Args:
        n_samples: Samples per lead.
        widths: Structuring-element widths (QRS scale, wave scale).
        n_leads_loop: Leads processed by this core (SC: 3, MC: 1).
        n_slots: Shared-memory result slots per scale (= total leads).
    """
    asm = Assembler()
    stride = lead_stride(n_samples)
    asm.ldi(15, 0)
    asm.label("lead")
    asm.ldi(13, stride)
    asm.mul(14, 15, 13)
    asm.ldi(6, n_samples)
    _emit_scale(asm, "s1", n_samples, widths[0], 3 * n_samples,
                slot_group=0, n_slots=n_slots)
    _emit_scale(asm, "s2", n_samples, widths[1], 4 * n_samples,
                slot_group=1, n_slots=n_slots)
    asm.addi(15, 15, 1)
    asm.ldi(13, n_leads_loop)
    asm.blt(15, 13, "lead")
    # Re-align all cores, then core 0 reduces the scale-1 (QRS) results.
    asm.bar()
    asm.cid(10)
    asm.ldi(13, 0)
    asm.bne(10, 13, "done")
    asm.ldi(1, 0)
    asm.ldi(6, n_slots)
    asm.ldi(3, 1 << 30)
    asm.ldi(2, 0)
    asm.label("reduce")
    asm.ldi(4, SHARED_BASE)
    asm.shl(5, 1, 1)
    asm.add(4, 4, 5)
    asm.ld(10, 4, 1)
    asm.bge(10, 3, "reduce_skip")
    asm.mov(3, 10)
    asm.ld(2, 4, 0)
    asm.label("reduce_skip")
    asm.addi(1, 1, 1)
    asm.blt(1, 6, "reduce")
    asm.ldi(4, SHARED_BASE)
    asm.st(4, 2, RESULT_OFFSET)
    asm.st(4, 3, RESULT_OFFSET + 1)
    asm.label("done")
    asm.halt()
    return asm.assemble()


def prepare_memories(signals: np.ndarray, single_core: bool,
                     ) -> list[np.ndarray]:
    """Private-bank initial contents for the SC or MC mapping."""
    quantized = [quantize_signal(signals[i]) for i in range(signals.shape[0])]
    n = signals.shape[1]
    if single_core:
        bank = np.zeros(lead_stride(n) * signals.shape[0], dtype=np.int64)
        for lead, data in enumerate(quantized):
            base = lead * lead_stride(n)
            bank[base:base + n] = data
        return [bank]
    return [data.copy() for data in quantized]


def reference_results(signals: np.ndarray, widths: tuple[int, int],
                      ) -> tuple[np.ndarray, np.ndarray, tuple[int, int]]:
    """Per-lead argmin references per scale plus the global scale-1 winner.

    Ties across leads resolve to the lowest slot index, matching the
    kernel's strict-less reduction order.
    """
    per_scale = []
    for width in widths:
        rows = []
        for lead in range(signals.shape[0]):
            mmd = mmd_reference(quantize_signal(signals[lead]), width)
            rows.append(argmin_reference(mmd, start=width))
        per_scale.append(np.array(rows, dtype=np.int64))
    scale1 = per_scale[0]
    best = min(scale1.tolist(), key=lambda pair: pair[1])
    return per_scale[0], per_scale[1], (int(best[0]), int(best[1]))
