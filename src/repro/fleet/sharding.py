"""Sharded fleet runtime: one cohort, N worker processes, one summary.

:class:`~repro.fleet.FleetScheduler` drives its whole cohort inside one
process, which caps fleet throughput at a single core no matter how
vectorized the tick loop gets.  This module partitions a cohort across
``n_shards`` worker processes — each running its own full
``FleetScheduler`` + ``Gateway`` + ``TriageBoard`` over its patient
stripe — and merges the per-shard results into a single
:class:`~repro.fleet.FleetSummary`.

Every value that crosses the process boundary is **wire-encoded**: a
shard worker returns one binary blob (:data:`SHARD_MAGIC` header, then
little-endian per-patient rows with raw float64 SNR buffers), built
with the same primitives as the packet codec in
:mod:`repro.fleet.wire`.  Nothing pickles numpy object graphs, and the
blob is exactly what a remote shard would send over a socket.

Determinism contract (tested, and gated in CI by the
``fleet-throughput-sharded`` bench case):

* patient work is a pure function of the patient profile — synthesis
  seeds live on the profile, per-patient stream seeds are derived from
  the master seed and the patient id, never from the shard index;
* the batched encode/recover paths are row-independent, so a patient's
  numbers do not depend on who shares its batch;
* the merge rebuilds per-patient channels, triage machines, reports
  and governor aggregates **in cohort order** and folds them with the
  same :func:`~repro.fleet.triage.fleet_summary` as the single-process
  path.

Together these make the merged summary byte-identical
(`FleetSummary.to_json`) across any shard count — ``n_shards=4`` equals
``n_shards=1`` equals a plain ``FleetScheduler`` run.
"""

from __future__ import annotations

import json
import struct
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..classification.afib import AfDetector
from ..obs import (Observability, ObsConfig, SCOPE_SHARD,
                   canonical_bundle_json, canonical_view, merge_bundles)
from ..pipeline.node_app import NodeReport
from .cohort import PatientProfile
from .gateway import Gateway, GatewayConfig, PatientChannel
from .node_proxy import NodeProxyConfig, UplinkPacket
from .scheduler import (
    AcuityOverride,
    ExtraLoad,
    FleetScheduler,
    GovernorFactory,
    RecordTransform,
    SchedulerConfig,
    UplinkChannel,
)
from .transport import make_transport
from .triage import FleetSummary, PatientTriage, TriageBoard, fleet_summary
from .wire import WireFormatError, _pack_str, _unpack_str

#: First bytes of a shard-result blob.
SHARD_MAGIC = b"RPS1"

#: Shard-result layout version (bump on any change).  v2 appended the
#: u32-length-prefixed observability bundle after the patient rows.
SHARD_VERSION = 2

_SHARD_HEAD = struct.Struct("<4sBIQQdddI")
_ROW_NODE = struct.Struct("<IddII")
_ROW_CHANNEL = struct.Struct("<BIIIQdIIIIId")
_ROW_TRIAGE = struct.Struct("<ddIIBdId")
_ROW_GOVERNOR = struct.Struct("<BIdd")


@dataclass(frozen=True)
class ShardHooks:
    """Per-shard scheduler wiring built *inside* the worker process.

    A hook factory (see :class:`ShardedFleetRunner`) returns one of
    these per shard; the closures it carries never cross a process
    boundary, so they may capture anything.

    Attributes:
        link: Channel model between the shard's nodes and its gateway
            (``None`` = perfect link).  Use :class:`PerPatientLink` to
            keep channel draws shard-layout independent.
        record_transform: Signal-fault hook (scenario injection).
        governor_factory: Per-patient governor builder (governed runs).
        extra_load: Parasitic-watts hook (``battery_drain``).
        acuity_override: Forced-acuity hook (``governor_stress``).
    """

    link: UplinkChannel | None = None
    record_transform: RecordTransform | None = None
    governor_factory: GovernorFactory | None = None
    extra_load: ExtraLoad | None = None
    acuity_override: AcuityOverride | None = None


#: Builds the scenario wiring of one shard, inside the worker process.
#: Must be picklable (a module-level function or a ``functools.partial``
#: of one); receives the shard's patient stripe and the master seed.
#: Any randomness it sets up must be derived per *patient*, never per
#: shard, or the N-shard == 1-shard equivalence breaks.
ShardHookFactory = Callable[[list[PatientProfile], int], ShardHooks]


class PerPatientLink:
    """Demux adapter: one independent channel model per patient.

    A single shared link draws its RNG in global send order, which
    depends on who shares the shard — per-patient links keep every
    channel draw a pure function of ``(master seed, patient id)``, so
    outcomes are identical under any shard layout.  Implements the
    :class:`~repro.fleet.UplinkChannel` protocol by routing each packet
    to its patient's own link (built lazily by ``link_for``).

    Args:
        link_for: Returns the channel model of one patient id.
    """

    def __init__(self, link_for: Callable[[str], UplinkChannel]) -> None:
        self._link_for = link_for
        self._links: dict[str, UplinkChannel] = {}

    def _link(self, patient_id: str) -> UplinkChannel:
        """The (created-on-demand) channel of one patient."""
        if patient_id not in self._links:
            self._links[patient_id] = self._link_for(patient_id)
        return self._links[patient_id]

    def send(self, packet: UplinkPacket,
             now_s: float) -> list[UplinkPacket]:
        """Offer one packet to its patient's own channel."""
        return self._link(packet.patient_id).send(packet, now_s)

    def due(self, now_s: float) -> list[UplinkPacket]:
        """Due deliveries across every patient channel (id order)."""
        out: list[UplinkPacket] = []
        for patient_id in sorted(self._links):
            out.extend(self._links[patient_id].due(now_s))
        return out

    def drain(self) -> list[UplinkPacket]:
        """Everything still in flight, across every patient channel."""
        out: list[UplinkPacket] = []
        for patient_id in sorted(self._links):
            out.extend(self._links[patient_id].drain())
        return out

    def next_due_s(self) -> float | None:
        """Earliest in-flight delivery time across patient channels.

        ``None`` when nothing is in flight or no underlying link
        exposes a due time — the event kernel then falls back to its
        base-grid delivery sweeps.
        """
        dues = []
        for link in self._links.values():
            peek = getattr(link, "next_due_s", None)
            due = peek() if peek is not None else None
            if due is not None:
                dues.append(due)
        return min(dues) if dues else None

    def stats_for(self, patient_id: str) -> dict[str, int]:
        """Channel counters of one patient (empty before first send)."""
        link = self._links.get(patient_id)
        return dict(getattr(link, "stats", {}) or {}) if link else {}

    @property
    def stats(self) -> dict[str, int]:
        """Summed channel counters across every patient link."""
        totals: dict[str, int] = {}
        for link in self._links.values():
            for key, value in (getattr(link, "stats", {}) or {}).items():
                totals[key] = totals.get(key, 0) + value
        return totals


@dataclass(frozen=True)
class ShardPatientRow:
    """Everything one shard reports about one patient.

    The wire-level unit of the shard result: channel counters and SNR
    samples, triage state, node-report aggregates, governor aggregates
    and per-patient link statistics — all the merge (and the campaign's
    shard-backed mode) needs, and nothing heavier.
    """

    patient_id: str
    n_sent: int
    n_reconstructed: int
    n_node_alarms: int
    average_power_w: float
    battery_days: float
    channel: PatientChannel | None
    triage: PatientTriage
    governed: bool
    mode_seconds: dict[str, float]
    governor_switches: int
    final_soc: float
    projected_hours: float
    link_stats: dict[str, int]


@dataclass(frozen=True)
class ShardResult:
    """Decoded outcome of one shard worker.

    Attributes:
        shard_index: Position in the shard layout.
        packets_sent: Uplink packets offered by this shard's nodes.
        dropped: Packets lost to this shard gateway's bounded queue.
        timings_s: The shard scheduler's phase timings.
        rows: Per-patient rows, in the shard's cohort-stripe order.
        obs_bundle: The worker's observability snapshot bundle
            (metrics + trace + flight summary), ``None`` when the run
            was not observed.
    """

    shard_index: int
    packets_sent: int
    dropped: int
    timings_s: dict[str, float]
    rows: list[ShardPatientRow] = field(default_factory=list)
    obs_bundle: dict | None = None


def partition_cohort(cohort: list[PatientProfile],
                     n_shards: int) -> list[list[PatientProfile]]:
    """Round-robin patient stripes: shard ``i`` gets ``cohort[i::n]``.

    Striping balances heterogeneous patients (long AF records cost more
    than quiet sinus ones) better than contiguous chunks; the merge
    never depends on the layout, only on cohort order.

    Raises:
        ValueError: ``n_shards`` below 1 or an empty cohort.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if not cohort:
        raise ValueError("cohort must not be empty")
    n_shards = min(n_shards, len(cohort))
    return [cohort[i::n_shards] for i in range(n_shards)]


def _pack_counter(counts: dict) -> bytes:
    """Serialize a small str -> int counter (u16 count, i64 values)."""
    parts = [struct.pack("<H", len(counts))]
    for key, value in counts.items():
        parts.append(_pack_str(key))
        parts.append(struct.pack("<q", int(value)))
    return b"".join(parts)


def _unpack_counter(buf: memoryview,
                    offset: int) -> tuple[dict[str, int], int]:
    """Inverse of :func:`_pack_counter`."""
    (count,) = struct.unpack_from("<H", buf, offset)
    offset += 2
    out: dict[str, int] = {}
    for _ in range(count):
        key, offset = _unpack_str(buf, offset)
        (value,) = struct.unpack_from("<q", buf, offset)
        out[key] = value
        offset += 8
    return out, offset


def _pack_float_map(values: dict) -> bytes:
    """Serialize a str -> float map preserving insertion order."""
    parts = [struct.pack("<H", len(values))]
    for key, value in values.items():
        parts.append(_pack_str(key))
        parts.append(struct.pack("<d", float(value)))
    return b"".join(parts)


def _unpack_float_map(buf: memoryview,
                      offset: int) -> tuple[dict[str, float], int]:
    """Inverse of :func:`_pack_float_map` (order preserved)."""
    (count,) = struct.unpack_from("<H", buf, offset)
    offset += 2
    out: dict[str, float] = {}
    for _ in range(count):
        key, offset = _unpack_str(buf, offset)
        (value,) = struct.unpack_from("<d", buf, offset)
        out[key] = value
        offset += 8
    return out, offset


def encode_shard_result(result: ShardResult) -> bytes:
    """Serialize one shard outcome to its binary blob."""
    timings = result.timings_s
    parts = [_SHARD_HEAD.pack(
        SHARD_MAGIC, SHARD_VERSION, result.shard_index,
        result.packets_sent, result.dropped,
        timings.get("synthesis+node", 0.0),
        timings.get("uplink+gateway", 0.0),
        timings.get("total", 0.0),
        len(result.rows))]
    for row in result.rows:
        parts.append(_pack_str(row.patient_id))
        parts.append(_ROW_NODE.pack(row.n_node_alarms,
                                    row.average_power_w,
                                    row.battery_days, row.n_sent,
                                    row.n_reconstructed))
        channel = row.channel
        if channel is None:
            parts.append(struct.pack("<B", 0))
        else:
            parts.append(_ROW_CHANNEL.pack(
                1, channel.n_excerpts, channel.n_alarms,
                channel.n_confirmed, channel.payload_bits,
                channel.last_timestamp_s, channel.n_duplicates,
                channel.n_out_of_order, channel.n_gaps,
                channel.n_late_recovered, channel.n_telemetry,
                channel.last_soc))
            parts.append(_pack_str(channel.last_mode))
            snrs = np.asarray(channel.snrs, dtype=np.float64)
            parts.append(struct.pack("<I", snrs.shape[0]))
            parts.append(snrs.tobytes())
        triage = row.triage
        parts.append(_pack_str(triage.state))
        parts.append(_ROW_TRIAGE.pack(
            triage.since_s, triage.last_event_s, triage.n_alerts,
            triage.n_watches, int(triage.stale), triage.last_seen_s,
            triage.n_stale_events, triage.soc))
        parts.append(_pack_str(triage.mode))
        parts.append(_ROW_GOVERNOR.pack(
            int(row.governed), row.governor_switches, row.final_soc,
            row.projected_hours))
        parts.append(_pack_float_map(row.mode_seconds))
        parts.append(_pack_counter(row.link_stats))
    # v2 trailer: the worker's observability bundle as canonical JSON
    # (u32 length prefix; zero when the run was not observed).
    obs_json = (b"" if result.obs_bundle is None
                else json.dumps(result.obs_bundle, sort_keys=True,
                                separators=(",", ":")).encode("utf-8"))
    parts.append(struct.pack("<I", len(obs_json)))
    parts.append(obs_json)
    return b"".join(parts)


def decode_shard_result(data: bytes | bytearray | memoryview, *,
                        copy: bool = True) -> ShardResult:
    """Parse a shard blob back into a :class:`ShardResult`.

    By default SNR buffers are boxed into owned ``list[float]`` (the
    live-gateway channel shape).  With ``copy=False`` they stay
    read-only float64 views aliasing ``data`` — the zero-copy merge
    path, where the caller guarantees the buffer (e.g. a mapped
    shared-memory segment) outlives the fold and materializes any
    retained rows afterwards (see :meth:`ShardedFleetRunner.run`).

    Raises:
        WireFormatError: Bad magic, version mismatch or truncation.
    """
    buf = memoryview(data).toreadonly()
    if len(buf) < _SHARD_HEAD.size:
        raise WireFormatError("truncated shard result: header missing")
    (magic, version, shard_index, packets_sent, dropped, t_node,
     t_gateway, t_total, n_rows) = _SHARD_HEAD.unpack_from(buf, 0)
    if magic != SHARD_MAGIC:
        raise WireFormatError(f"bad shard magic {magic!r}")
    if version != SHARD_VERSION:
        raise WireFormatError(f"unsupported shard version {version}")
    offset = _SHARD_HEAD.size
    rows: list[ShardPatientRow] = []
    try:
        for _ in range(n_rows):
            patient_id, offset = _unpack_str(buf, offset)
            (n_node_alarms, average_power_w, battery_days, n_sent,
             n_reconstructed) = _ROW_NODE.unpack_from(buf, offset)
            offset += _ROW_NODE.size
            (has_channel,) = struct.unpack_from("<B", buf, offset)
            channel: PatientChannel | None = None
            if has_channel:
                (_, n_excerpts, n_alarms, n_confirmed, payload_bits,
                 last_timestamp_s, n_duplicates, n_out_of_order, n_gaps,
                 n_late_recovered, n_telemetry,
                 last_soc) = _ROW_CHANNEL.unpack_from(buf, offset)
                offset += _ROW_CHANNEL.size
                last_mode, offset = _unpack_str(buf, offset)
                (n_snrs,) = struct.unpack_from("<I", buf, offset)
                offset += 4
                if offset + 8 * n_snrs > len(buf):
                    raise WireFormatError(
                        "truncated shard result: SNR buffer")
                snrs = np.frombuffer(
                    buf[offset:offset + 8 * n_snrs],
                    dtype=np.float64)
                offset += 8 * n_snrs
                channel = PatientChannel(
                    patient_id=patient_id, n_excerpts=n_excerpts,
                    n_alarms=n_alarms, n_confirmed=n_confirmed,
                    payload_bits=payload_bits,
                    last_timestamp_s=last_timestamp_s,
                    n_duplicates=n_duplicates,
                    n_out_of_order=n_out_of_order, n_gaps=n_gaps,
                    n_late_recovered=n_late_recovered,
                    snrs=([float(s) for s in snrs] if copy else snrs),
                    n_telemetry=n_telemetry, last_mode=last_mode,
                    last_soc=last_soc)
            else:
                offset += 1
            state, offset = _unpack_str(buf, offset)
            (since_s, last_event_s, n_alerts, n_watches, stale,
             last_seen_s, n_stale_events,
             soc) = _ROW_TRIAGE.unpack_from(buf, offset)
            offset += _ROW_TRIAGE.size
            mode, offset = _unpack_str(buf, offset)
            triage = PatientTriage(
                patient_id=patient_id, state=state, since_s=since_s,
                last_event_s=last_event_s, n_alerts=n_alerts,
                n_watches=n_watches, stale=bool(stale),
                last_seen_s=last_seen_s, n_stale_events=n_stale_events,
                soc=soc, mode=mode)
            (governed, governor_switches, final_soc,
             projected_hours) = _ROW_GOVERNOR.unpack_from(buf, offset)
            offset += _ROW_GOVERNOR.size
            mode_seconds, offset = _unpack_float_map(buf, offset)
            link_stats, offset = _unpack_counter(buf, offset)
            rows.append(ShardPatientRow(
                patient_id=patient_id, n_sent=n_sent,
                n_reconstructed=n_reconstructed,
                n_node_alarms=n_node_alarms,
                average_power_w=average_power_w,
                battery_days=battery_days, channel=channel,
                triage=triage, governed=bool(governed),
                mode_seconds=mode_seconds,
                governor_switches=governor_switches,
                final_soc=final_soc, projected_hours=projected_hours,
                link_stats=link_stats))
        (obs_len,) = struct.unpack_from("<I", buf, offset)
        offset += 4
    except struct.error as exc:
        raise WireFormatError("truncated shard result") from exc
    obs_bundle: dict | None = None
    if obs_len:
        if offset + obs_len > len(buf):
            raise WireFormatError(
                "truncated shard result: observability bundle")
        try:
            obs_bundle = json.loads(
                bytes(buf[offset:offset + obs_len]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireFormatError(
                "corrupt shard observability bundle") from exc
        offset += obs_len
    if offset != len(buf):
        raise WireFormatError(
            f"{len(buf) - offset} trailing bytes after shard result")
    return ShardResult(
        shard_index=shard_index, packets_sent=packets_sent,
        dropped=dropped,
        timings_s={"synthesis+node": t_node, "uplink+gateway": t_gateway,
                   "total": t_total},
        rows=rows, obs_bundle=obs_bundle)


@dataclass(frozen=True)
class _SocView:
    """Battery stand-in carrying only the final state of charge."""

    soc: float


@dataclass(frozen=True)
class _GovernorView:
    """Merged-side stand-in for one shard patient's governor.

    Duck-types exactly what :func:`~repro.fleet.triage.fleet_summary`
    reads from a live :class:`~repro.power.EnergyGovernor`: mode dwell
    (insertion-ordered), switch count, final SoC and the projected
    hours-to-empty.
    """

    mode_seconds: dict[str, float]
    n_switches: int
    battery: _SocView
    _projected_hours: float

    def projected_hours_to_empty(self) -> float:
        """The worker-side projection, carried over the wire."""
        return self._projected_hours


def _node_report_view(duration_s: float, fs: float, n_alarms: int,
                      average_power_w: float,
                      battery_days: float) -> NodeReport:
    """A :class:`NodeReport` carrying the merged-side aggregates.

    Only ``len(alarms)``, ``average_power_w`` and ``battery_days`` are
    read by :func:`~repro.fleet.triage.fleet_summary`; the alarm list
    holds placeholders purely so its length is right.
    """
    return NodeReport(
        duration_s=duration_s, beats=[], alarms=[None] * n_alarms,
        periodic_excerpts=0, transmitted_bits=0, processing_cycles=0.0,
        average_power_w=average_power_w, battery_days=battery_days,
        fs=fs)


def merge_patient_rows(cohort: list[PatientProfile],
                       rows: dict[str, ShardPatientRow],
                       gateway_config: GatewayConfig,
                       duration_s: float, fs: float,
                       dropped: int = 0) -> FleetSummary:
    """Fold per-patient rows (in cohort order) into one fleet summary.

    The single merge path shared by :class:`ShardedFleetRunner` and the
    socket gateway service (:mod:`repro.fleet.serve`): channels, triage
    machines, node reports and governor views are rebuilt **in cohort
    order** and folded with the very same
    :func:`~repro.fleet.triage.fleet_summary` the single-process
    scheduler uses — so any runtime that produces correct per-patient
    rows is byte-identical to the in-process engine by construction.

    Args:
        cohort: Patient profiles in canonical (merge) order.
        rows: One :class:`ShardPatientRow` per cohort member.
        gateway_config: Gateway parameters of the run (queue capacity
            feeds the summary's queue diagnostics).
        duration_s: Simulated duration each row covers.
        fs: Node sampling rate (node-report view reconstruction).
        dropped: Bounded-queue drops summed across every worker.

    Raises:
        WireFormatError: A cohort member has no row.
    """
    missing = [p.patient_id for p in cohort if p.patient_id not in rows]
    if missing:
        raise WireFormatError(
            f"shard results missing patients: {missing[:5]}")
    gateway = Gateway(gateway_config)
    gateway.dropped = dropped
    board = TriageBoard()
    reports: dict[str, NodeReport] = {}
    governors: dict[str, _GovernorView] = {}
    for profile in cohort:
        row = rows[profile.patient_id]
        if row.channel is not None:
            gateway.channels[row.patient_id] = row.channel
        board.patients[row.patient_id] = row.triage
        reports[row.patient_id] = _node_report_view(
            duration_s, fs, row.n_node_alarms, row.average_power_w,
            row.battery_days)
        if row.governed:
            governors[row.patient_id] = _GovernorView(
                mode_seconds=row.mode_seconds,
                n_switches=row.governor_switches,
                battery=_SocView(row.final_soc),
                _projected_hours=row.projected_hours)
    return fleet_summary(reports, gateway, board, duration_s,
                         governors=governors or None)


@dataclass
class ShardedFleetReport:
    """Outcome of one sharded fleet run.

    Attributes:
        summary: The merged fleet summary — byte-identical
            (:meth:`~repro.fleet.FleetSummary.to_json`) across shard
            counts.
        n_shards: Shard layout actually used.
        packets_sent: Uplink packets offered across every shard.
        dropped_packets: Bounded-queue drops across every shard.
        rows: Per-patient rows in cohort order (what the campaign's
            shard-backed mode consumes).
        shard_timings_s: Each shard scheduler's phase timings.
        timings_s: Parent-side wall clock (``total`` spans fork to
            merge).
        obs_bundle: Merged observability bundle across every shard
            plus the parent's merge-cost gauges (``None`` when the run
            was not observed).
    """

    summary: FleetSummary
    n_shards: int
    packets_sent: int
    dropped_packets: int
    rows: dict[str, ShardPatientRow] = field(default_factory=dict)
    shard_timings_s: list[dict[str, float]] = field(default_factory=list)
    timings_s: dict[str, float] = field(default_factory=dict)
    obs_bundle: dict | None = None

    @property
    def patients_per_second(self) -> float:
        """End-to-end fleet throughput of this run."""
        total = self.timings_s.get("total", 0.0)
        return (self.summary.n_patients / total if total > 0
                else float("nan"))

    def canonical_obs_json(self) -> str:
        """Byte-stable fleet-scope view of the merged observability.

        The shard-equivalence surface for metrics and traces: for the
        same master seed this string is byte-identical across shard
        counts and equal to
        :meth:`~repro.obs.Observability.canonical_json` of a plain
        in-process run.

        Raises:
            ValueError: The run was not observed (no ``obs_config``).
        """
        if self.obs_bundle is None:
            raise ValueError("run was not observed: pass obs_config to "
                             "ShardedFleetRunner")
        return canonical_bundle_json(canonical_view(self.obs_bundle))


def _run_shard(shard_index: int, profiles: list[PatientProfile],
               config: SchedulerConfig, node_config: NodeProxyConfig,
               gateway_config: GatewayConfig, master_seed: int,
               hook_factory: ShardHookFactory | None,
               af_detector: AfDetector | None,
               obs_config: ObsConfig | None = None,
               journal_config=None, n_shards: int = 1,
               transport_spec: str = "pickle") -> bytes:
    """Worker body: run one shard's scheduler, publish its wire blob.

    Module-level so a :class:`~concurrent.futures.ProcessPoolExecutor`
    can pickle the call; every argument is a plain dataclass (or a
    picklable callable).  The return value is a transport *handle*
    (:mod:`repro.fleet.transport`): with the pickle backend it inlines
    the blob, with the shared-memory backend the blob is parked in
    segment ``<prefix>.s<shard_index>`` and only the ~40-byte handle
    crosses the process boundary.
    The live :class:`~repro.obs.Observability` bundle is built *here*
    from the picklable ``obs_config`` and returns as a JSON snapshot in
    the blob's v2 trailer.

    With a ``journal_config``
    (:class:`~repro.fleet.journal.JournalConfig`), the worker writes
    its stripe's transcript to the per-shard journal
    (``config.for_shard(shard_index)``), stamping each patient's
    ``hello`` with its *global* cohort index (stripe ``i`` of ``n``
    holds ``cohort[i::n]``, so local slot ``j`` is global ``i + j*n``)
    — which is how a replayer of all N journals recovers the full
    cohort order without being told it.
    """
    hooks = (hook_factory(profiles, master_seed)
             if hook_factory is not None else ShardHooks())
    obs = Observability.from_config(obs_config)
    journal = None
    if journal_config is not None:
        # Deferred import: the journal module imports this one for the
        # merge path, so sharding must not import it at module scope.
        from .journal import JournalWriter, journal_meta

        journal = JournalWriter(
            journal_config.for_shard(shard_index),
            meta=journal_meta(config.duration_s, config.fs,
                              gateway_config),
            obs=obs, resume=False)
    indexes = {profile.patient_id: shard_index + j * n_shards
               for j, profile in enumerate(profiles)}
    scheduler = FleetScheduler(
        profiles, config, node_config=node_config,
        gateway=Gateway(gateway_config, obs=obs),
        af_detector=af_detector,
        link=hooks.link, record_transform=hooks.record_transform,
        governor_factory=hooks.governor_factory,
        extra_load=hooks.extra_load,
        acuity_override=hooks.acuity_override, obs=obs,
        journal=journal, journal_indexes=indexes)
    try:
        fleet = scheduler.run()
    finally:
        if journal is not None:
            journal.close()
    if obs is not None:
        wall = obs.metrics.gauge(
            "shard_wall_seconds",
            "Wall-clock seconds per phase of one shard scheduler.",
            scope=SCOPE_SHARD)
        for phase, seconds in fleet.timings_s.items():
            wall.set(seconds, shard=str(shard_index), phase=phase)
        obs.metrics.gauge(
            "shard_virtual_seconds",
            "Simulated seconds covered by one shard scheduler.",
            scope=SCOPE_SHARD).set(config.duration_s,
                                   shard=str(shard_index))
    reconstructed: dict[str, int] = {}
    for excerpt in fleet.excerpts:
        reconstructed[excerpt.patient_id] = \
            reconstructed.get(excerpt.patient_id, 0) + 1
    link = hooks.link
    rows = []
    for profile in profiles:
        pid = profile.patient_id
        report = fleet.node_reports[pid]
        governor = scheduler.governors.get(pid)
        if isinstance(link, PerPatientLink):
            link_stats = link.stats_for(pid)
        else:
            link_stats = {}
        rows.append(ShardPatientRow(
            patient_id=pid,
            n_sent=scheduler.sent_by_patient.get(pid, 0),
            n_reconstructed=reconstructed.get(pid, 0),
            n_node_alarms=len(report.alarms),
            average_power_w=report.average_power_w,
            battery_days=report.battery_days,
            channel=scheduler.gateway.channels.get(pid),
            triage=scheduler.board.patients[pid],
            governed=governor is not None,
            mode_seconds=(dict(governor.mode_seconds)
                          if governor is not None else {}),
            governor_switches=(governor.n_switches
                               if governor is not None else 0),
            final_soc=(governor.battery.soc
                       if governor is not None else float("nan")),
            projected_hours=(governor.projected_hours_to_empty()
                             if governor is not None else float("nan")),
            link_stats=link_stats))
    result = ShardResult(
        shard_index=shard_index,
        packets_sent=fleet.packets_sent,
        dropped=scheduler.gateway.dropped,
        timings_s=dict(fleet.timings_s),
        rows=rows,
        obs_bundle=(obs.snapshot_bundle() if obs is not None else None))
    transport = make_transport(transport_spec)
    return transport.publish(encode_shard_result(result),
                             f"s{shard_index}")


class ShardedFleetRunner:
    """Partition a cohort across worker processes and merge the run.

    Args:
        cohort: Patient profiles, in the order the merge preserves.
        n_shards: Worker processes (capped at the cohort size;
            ``1`` runs the single stripe inline, no pool).
        config: Scheduler parameters shared by every shard.
        node_config: Uplink policy shared by every node.
        gateway_config: Per-shard gateway parameters.
        master_seed: Seed handed to the hook factory; per-patient
            streams must derive from it plus the patient id.
        hook_factory: Optional per-shard scenario wiring (see
            :data:`ShardHookFactory`); must be picklable.
        af_detector: Trained fleet AF detector (pickled to workers).
        obs_config: Optional :class:`~repro.obs.ObsConfig`.  Each
            worker builds its own :class:`~repro.obs.Observability`
            bundle from it and ships a snapshot home in the blob; the
            parent merges them (plus its own merge-cost gauges) into
            :attr:`ShardedFleetReport.obs_bundle`.
        journal: Optional :class:`~repro.fleet.journal.JournalConfig`.
            Each worker writes its stripe's transcript to the derived
            per-shard journal (``journal.for_shard(i)``); replaying all
            N journals merged reproduces this run's summary
            byte-identically (see :mod:`repro.fleet.journal`).
        transport: Shard-result fabric spec
            (:func:`~repro.fleet.transport.make_transport`):
            ``"auto"`` (shared memory where available, else pickle),
            ``"pickle"`` or ``"shared_memory"``.  The choice never
            affects the merged summary — only how the blobs travel.
    """

    def __init__(self, cohort: list[PatientProfile], n_shards: int = 4,
                 config: SchedulerConfig | None = None,
                 node_config: NodeProxyConfig | None = None,
                 gateway_config: GatewayConfig | None = None,
                 master_seed: int = 2014,
                 hook_factory: ShardHookFactory | None = None,
                 af_detector: AfDetector | None = None,
                 obs_config: ObsConfig | None = None,
                 journal=None, transport: str = "auto") -> None:
        self.transport = transport
        self.shards = partition_cohort(cohort, n_shards)
        self.cohort = list(cohort)
        self.config = config or SchedulerConfig()
        self.node_config = node_config or NodeProxyConfig()
        self.gateway_config = gateway_config or GatewayConfig()
        self.master_seed = master_seed
        self.hook_factory = hook_factory
        self.af_detector = af_detector
        self.obs_config = obs_config
        self.journal = journal

    @property
    def n_shards(self) -> int:
        """Shard layout actually used (cohort-size capped)."""
        return len(self.shards)

    def run(self) -> ShardedFleetReport:
        """Run every shard, decode the blobs and merge in cohort order.

        Shard results come home over the configured
        :class:`~repro.fleet.transport.ShardTransport`: the parent
        pre-registers every expected segment tag, maps each published
        blob read-only, decodes it with ``copy=False`` (SNR buffers
        stay views into the segment for the merge fold), then
        *materializes* the retained per-patient rows and unlinks every
        segment in a ``finally`` — so a worker crash or a
        ``KeyboardInterrupt`` mid-run leaves no orphan segment behind.
        """
        t_start = time.perf_counter()
        transport = make_transport(self.transport)
        tasks = [(i, profiles, self.config, self.node_config,
                  self.gateway_config, self.master_seed,
                  self.hook_factory, self.af_detector, self.obs_config,
                  self.journal, len(self.shards), transport.spec)
                 for i, profiles in enumerate(self.shards)]
        try:
            for i in range(len(tasks)):
                transport.expect(f"s{i}")
            if len(tasks) == 1:
                handles = [_run_shard(*tasks[0])]
            else:
                with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
                    futures = [pool.submit(_run_shard, *task)
                               for task in tasks]
                    handles = [future.result() for future in futures]
            views = [transport.open(handle) for handle in handles]
            results = [decode_shard_result(view.view, copy=False)
                       for view in views]
            t_merge = time.perf_counter()
            report = self._merge(results)
            if self.obs_config is not None:
                report.obs_bundle = self._merge_obs(
                    results, time.perf_counter() - t_merge)
            self._materialize(report)
            del results
            for view in views:
                view.release()
            del views
        finally:
            transport.close()
        report.timings_s["total"] = time.perf_counter() - t_start
        return report

    @staticmethod
    def _materialize(report: ShardedFleetReport) -> None:
        """Replace segment-aliasing SNR views with owned lists.

        The merge fold reads the views zero-copy; the rows *retained*
        on the report (what the campaign's shard-backed mode consumes)
        must survive the segment unlink, so their buffers are boxed
        back into the live-gateway ``list[float]`` shape here — one
        copy, after the fold, instead of one per decode.
        """
        for row in report.rows.values():
            channel = row.channel
            if channel is not None and isinstance(channel.snrs,
                                                  np.ndarray):
                channel.snrs = channel.snrs.tolist()

    def _merge_obs(self, results: list[ShardResult],
                   merge_seconds: float) -> dict:
        """Fold worker bundles with the parent's shard-scope gauges."""
        parent = Observability(ObsConfig(trace=False))
        parent.metrics.gauge(
            "shard_merge_seconds",
            "Parent-side wall seconds to merge shard results.",
            scope=SCOPE_SHARD).set(merge_seconds)
        parent.metrics.gauge(
            "shard_count", "Shard layout of this run.",
            scope=SCOPE_SHARD).set(float(len(results)))
        ordered = sorted(results, key=lambda r: r.shard_index)
        bundles = [r.obs_bundle for r in ordered
                   if r.obs_bundle is not None]
        bundles.append(parent.snapshot_bundle())
        return merge_bundles(bundles)

    def _merge(self, results: list[ShardResult]) -> ShardedFleetReport:
        """Fold decoded shard results into one fleet view.

        Delegates to :func:`merge_patient_rows` — the merge path shared
        with the socket gateway service — so equivalence is structural,
        not coincidental.
        """
        rows: dict[str, ShardPatientRow] = {}
        for result in results:
            for row in result.rows:
                rows[row.patient_id] = row
        dropped = sum(r.dropped for r in results)
        summary = merge_patient_rows(
            self.cohort, rows, self.gateway_config,
            self.config.duration_s, self.config.fs, dropped=dropped)
        return ShardedFleetReport(
            summary=summary,
            n_shards=len(self.shards),
            packets_sent=sum(r.packets_sent for r in results),
            dropped_packets=dropped,
            rows={p.patient_id: rows[p.patient_id]
                  for p in self.cohort},
            shard_timings_s=[r.timings_s for r in
                             sorted(results,
                                    key=lambda r: r.shard_index)],
        )
