"""Fig. 6 — node energy breakdown: No Comp. vs SL-CS vs ML-CS.

Paper: the radio dominates raw streaming; CS cuts average power by 44.7 %
(single-lead) and 56.1 % (multi-lead) at the 20 dB operating points of
Fig. 5.  The bench computes the bars with the radio/MCU/front-end models
at *our* measured 20 dB crossings and asserts the shape: radio-dominated
baseline, small compression slice, large savings with ML > SL.
"""

from __future__ import annotations

from conftest import print_table
from repro.power import NodeEnergyModel, figure6_breakdowns

# 20 dB operating points measured by the Fig. 5 bench on the synthetic
# corpus (paper: SL 65.9 / ML 72.7 on MIT-BIH).
SL_CR_20DB = 50.0
ML_CR_20DB = 63.0


def run_breakdowns():
    model = NodeEnergyModel()
    bars = figure6_breakdowns(SL_CR_20DB, ML_CR_20DB)
    sl_reduction = model.power_reduction_percent(
        bars["single_lead_cs"], bars["no_comp_1lead"])
    ml_reduction = model.power_reduction_percent(
        bars["multi_lead_cs"], bars["no_comp"])
    return bars, sl_reduction, ml_reduction


def test_fig6_energy_breakdown(benchmark):
    bars, sl_reduction, ml_reduction = benchmark.pedantic(
        run_breakdowns, rounds=1, iterations=1)
    rows = []
    for name in ("no_comp_1lead", "single_lead_cs", "no_comp",
                 "multi_lead_cs"):
        uj = bars[name].as_microjoules()
        rows.append((name, uj["radio"], uj["sampling"], uj["compression"],
                     uj["os"], 1e6 * bars[name].total))
    rows.append(("SL reduction %", sl_reduction, "-", "-", "-", "-"))
    rows.append(("ML reduction %", ml_reduction, "-", "-", "-", "-"))
    print_table("Fig. 6: energy per 2 s window [uJ] "
                "(paper reductions: SL 44.7 %, ML 56.1 %)",
                ["scenario", "radio", "sampling", "comp", "os", "total"],
                rows)

    raw = bars["no_comp"]
    assert raw.radio > 0.6 * raw.total                # radio dominates
    for key in ("single_lead_cs", "multi_lead_cs"):
        assert bars[key].compression < 0.1 * bars[key].total
    assert 30.0 <= sl_reduction <= 60.0               # paper: 44.7
    assert 45.0 <= ml_reduction <= 70.0               # paper: 56.1
    assert ml_reduction > sl_reduction                # ML saves more
