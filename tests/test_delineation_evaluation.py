"""Unit tests for the delineation evaluation harness itself."""

import pytest

from repro.delineation import evaluate_delineation
from repro.signals import ABSENT_WAVE, BeatAnnotation, WaveFiducials

FS = 250.0


def _beat(r, p=None, qrs=None, t=None, rhythm="NSR"):
    return BeatAnnotation(
        r_peak=r,
        rhythm=rhythm,
        p_wave=WaveFiducials(*p) if p else ABSENT_WAVE,
        qrs=WaveFiducials(*qrs) if qrs else ABSENT_WAVE,
        t_wave=WaveFiducials(*t) if t else ABSENT_WAVE,
    )


def _full_beat(r):
    return _beat(r, p=(r - 50, r - 40, r - 30), qrs=(r - 12, r, r + 12),
                 t=(r + 40, r + 70, r + 100))


class TestPerfectDetection:
    def test_all_ones(self):
        truth = [_full_beat(r) for r in (500, 700, 900)]
        report = evaluate_delineation(truth, truth, FS)
        assert report.beat_sensitivity == 1.0
        assert report.worst_sensitivity() == 1.0
        assert report.worst_ppv() == 1.0
        assert report.missed_beats == 0
        assert report.spurious_beats == 0

    def test_errors_recorded_as_zero(self):
        truth = [_full_beat(600)]
        report = evaluate_delineation(truth, truth, FS)
        for score in report.fiducials.values():
            assert score.mean_error_s == 0.0


class TestToleranceLogic:
    def test_small_shift_within_tolerance(self):
        truth = [_full_beat(600)]
        shifted = [_full_beat(601)]  # 4 ms shift
        report = evaluate_delineation(truth, shifted, FS)
        assert report.worst_sensitivity() == 1.0
        qrs_on = report.fiducials[("QRS", "onset")]
        assert qrs_on.mean_error_s == pytest.approx(0.004)

    def test_large_shift_counts_both_sides(self):
        truth = [_beat(600, qrs=(588, 600, 612))]
        bad = [_beat(600, qrs=(560, 600, 612))]  # onset off by 112 ms
        report = evaluate_delineation(truth, bad, FS)
        score = report.fiducials[("QRS", "onset")]
        assert score.false_negative == 1
        assert score.false_positive == 1
        assert score.sensitivity == 0.0


class TestBeatMatching:
    def test_missed_beat(self):
        truth = [_full_beat(500), _full_beat(800)]
        detected = [_full_beat(500)]
        report = evaluate_delineation(truth, detected, FS)
        assert report.missed_beats == 1
        assert report.beat_sensitivity == 0.5

    def test_spurious_beat_penalizes_ppv(self):
        truth = [_full_beat(500)]
        detected = [_full_beat(500), _full_beat(900)]
        report = evaluate_delineation(truth, detected, FS)
        assert report.spurious_beats == 1
        assert report.beat_ppv == 0.5
        # The spurious beat's claimed fiducials become false positives.
        assert report.fiducials[("QRS", "onset")].false_positive == 1

    def test_matching_window_limit(self):
        truth = [_full_beat(500)]
        detected = [_full_beat(500 + int(0.2 * FS))]  # 200 ms away
        report = evaluate_delineation(truth, detected, FS)
        assert report.missed_beats == 1
        assert report.spurious_beats == 1


class TestPresence:
    def test_absent_p_correctly_rejected(self):
        truth = [_beat(600, qrs=(588, 600, 612), rhythm="AF")]
        detected = [_beat(600, qrs=(588, 600, 612))]
        report = evaluate_delineation(truth, detected, FS)
        assert report.presence["P"].true_absent == 1
        assert report.presence["P"].specificity == 1.0

    def test_false_p_detection(self):
        truth = [_beat(600, qrs=(588, 600, 612))]
        detected = [_beat(600, p=(540, 555, 570), qrs=(588, 600, 612))]
        report = evaluate_delineation(truth, detected, FS)
        assert report.presence["P"].false_present == 1
        assert report.presence["P"].specificity == 0.0

    def test_missed_p_detection(self):
        truth = [_beat(600, p=(540, 555, 570), qrs=(588, 600, 612))]
        detected = [_beat(600, qrs=(588, 600, 612))]
        report = evaluate_delineation(truth, detected, FS)
        assert report.presence["P"].false_absent == 1
        assert report.presence["P"].sensitivity == 0.0


class TestReportHelpers:
    def test_rows_structure(self):
        truth = [_full_beat(600)]
        report = evaluate_delineation(truth, truth, FS)
        rows = report.rows()
        assert len(rows) == 9
        assert all(len(row) == 6 for row in rows)

    def test_custom_tolerances(self):
        truth = [_full_beat(600)]
        shifted = [_full_beat(603)]  # 12 ms
        strict = evaluate_delineation(truth, shifted, FS,
                                      tolerances_s={("QRS", "onset"): 0.005})
        assert strict.fiducials[("QRS", "onset")].sensitivity == 0.0
