"""Heart-rhythm (RR-interval and beat-label sequence) generators.

The paper's applications span normal sinus rhythm with respiratory sinus
arrhythmia (sleep/stress monitoring, §II), ectopic beats (arrhythmia
detection) and atrial fibrillation (§V).  The generators here produce the
RR-interval series and the per-beat class labels that the synthesizer in
:mod:`repro.signals.synthesis` turns into waveforms.

Sinus RR variability follows the bimodal-spectrum model of McSharry et al.
(a low-frequency Mayer-wave component near 0.1 Hz plus a high-frequency
respiratory component near 0.25 Hz).  AF intervals are serially independent
draws from a positively skewed distribution, reproducing the "irregularly
irregular" RR pattern that the paper's AF detector keys on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .types import BEAT_AF, BEAT_APC, BEAT_NORMAL, BEAT_PVC, RHYTHM_AF, RHYTHM_SINUS


@dataclass(frozen=True)
class RhythmSegment:
    """A run of consecutive beats sharing one rhythm.

    Attributes:
        rhythm: Rhythm label (``NSR`` or ``AF``).
        rr_s: RR interval preceding each beat, in seconds.
        labels: Beat-class label per beat (same length as ``rr_s``).
    """

    rhythm: str
    rr_s: np.ndarray
    labels: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.labels) != self.rr_s.shape[0]:
            raise ValueError("labels and rr_s must have the same length")

    @property
    def n_beats(self) -> int:
        """Number of beats in the segment."""
        return self.rr_s.shape[0]

    @property
    def duration_s(self) -> float:
        """Total duration of the segment in seconds."""
        return float(np.sum(self.rr_s))


def _bimodal_rr_series(n_beats: int, mean_rr_s: float, std_rr_s: float,
                       rng: np.random.Generator,
                       lf_hz: float = 0.1, hf_hz: float = 0.25,
                       lf_hf_ratio: float = 0.5) -> np.ndarray:
    """RR series whose spectrum has LF and HF Gaussian lobes.

    Implements the spectral-synthesis method of McSharry et al.: build the
    target one-sided power spectrum, attach uniform random phases, inverse
    FFT, then rescale to the requested mean/std.
    """
    if n_beats < 2:
        return np.full(max(n_beats, 1), mean_rr_s)
    # Beat-domain frequency axis: treat the series as sampled at the mean
    # heart rate so that `lf_hz`/`hf_hz` land at physiological positions.
    fs_beat = 1.0 / mean_rr_s
    freqs = np.fft.rfftfreq(n_beats, d=1.0 / fs_beat)
    sigma_lf, sigma_hf = 0.01, 0.01
    spectrum = (
        lf_hf_ratio * np.exp(-0.5 * ((freqs - lf_hz) / sigma_lf) ** 2)
        + np.exp(-0.5 * ((freqs - hf_hz) / sigma_hf) ** 2)
    )
    phases = rng.uniform(0.0, 2.0 * np.pi, size=freqs.shape)
    coeffs = np.sqrt(spectrum) * np.exp(1j * phases)
    coeffs[0] = 0.0
    series = np.fft.irfft(coeffs, n=n_beats)
    std = np.std(series)
    if std > 0:
        series = series / std * std_rr_s
    return np.clip(mean_rr_s + series, 0.35, 2.5)


def sinus_rhythm(duration_s: float, mean_hr_bpm: float = 70.0,
                 hrv_std_s: float = 0.04,
                 rng: np.random.Generator | None = None) -> RhythmSegment:
    """Normal sinus rhythm with respiratory sinus arrhythmia.

    Args:
        duration_s: Target duration; the segment stops at the last beat
            that fits inside it.
        mean_hr_bpm: Mean heart rate in beats per minute.
        hrv_std_s: Standard deviation of the RR series in seconds.
        rng: Random generator (a fresh default one if omitted).

    Returns:
        A :class:`RhythmSegment` of all-normal beats.
    """
    rng = rng or np.random.default_rng()
    mean_rr = 60.0 / mean_hr_bpm
    n_estimate = int(np.ceil(duration_s / mean_rr)) + 8
    rr = _bimodal_rr_series(n_estimate, mean_rr, hrv_std_s, rng)
    rr = _truncate_to_duration(rr, duration_s)
    return RhythmSegment(RHYTHM_SINUS, rr, (BEAT_NORMAL,) * rr.shape[0])


def af_rhythm(duration_s: float, mean_hr_bpm: float = 95.0,
              irregularity: float = 0.18,
              rng: np.random.Generator | None = None) -> RhythmSegment:
    """Atrial fibrillation: serially independent, irregular RR intervals.

    Intervals are drawn from a log-normal distribution (positively skewed,
    as observed in AF) with coefficient of variation ``irregularity``,
    typically 15-25 % versus ~5 % in sinus rhythm.
    """
    rng = rng or np.random.default_rng()
    mean_rr = 60.0 / mean_hr_bpm
    n_estimate = int(np.ceil(duration_s / mean_rr)) + 8
    sigma = np.sqrt(np.log1p(irregularity ** 2))
    mu = np.log(mean_rr) - 0.5 * sigma ** 2
    rr = np.clip(rng.lognormal(mu, sigma, size=n_estimate), 0.3, 2.0)
    rr = _truncate_to_duration(rr, duration_s)
    return RhythmSegment(RHYTHM_AF, rr, (BEAT_AF,) * rr.shape[0])


def with_ectopy(segment: RhythmSegment, pvc_fraction: float = 0.0,
                apc_fraction: float = 0.0,
                prematurity: float = 0.35,
                rng: np.random.Generator | None = None) -> RhythmSegment:
    """Inject premature beats into a sinus segment.

    A premature beat shortens its preceding RR interval by ``prematurity``
    (fraction) and — for PVCs — is followed by a compensatory pause that
    keeps the two-beat total duration constant, matching textbook PVC
    timing.

    Args:
        segment: Source rhythm (normally from :func:`sinus_rhythm`).
        pvc_fraction: Fraction of beats converted to PVCs.
        apc_fraction: Fraction of beats converted to APCs.
        prematurity: Relative RR shortening of the ectopic beat.
        rng: Random generator.

    Returns:
        A new :class:`RhythmSegment` with modified labels and intervals.
    """
    if pvc_fraction + apc_fraction > 0.5:
        raise ValueError("ectopic fractions above 50% are not physiological")
    rng = rng or np.random.default_rng()
    rr = segment.rr_s.copy()
    labels = list(segment.labels)
    n = len(labels)
    candidates = [i for i in range(1, n - 1) if labels[i] == BEAT_NORMAL]
    rng.shuffle(candidates)
    n_pvc = int(round(pvc_fraction * n))
    n_apc = int(round(apc_fraction * n))
    used: set[int] = set()
    chosen: list[tuple[int, str]] = []
    for index in candidates:
        if len(chosen) >= n_pvc + n_apc:
            break
        # Keep ectopic beats isolated so prematurity/pause edits don't clash.
        if index - 1 in used or index + 1 in used or index in used:
            continue
        used.update((index - 1, index, index + 1))
        label = BEAT_PVC if len(chosen) < n_pvc else BEAT_APC
        chosen.append((index, label))
    for index, label in chosen:
        labels[index] = label
        shorten = prematurity * rr[index]
        rr[index] -= shorten
        if label == BEAT_PVC and index + 1 < n:
            rr[index + 1] += shorten  # compensatory pause
    return RhythmSegment(segment.rhythm, rr, tuple(labels))


@dataclass
class RhythmSequence:
    """Concatenation of rhythm segments (e.g. NSR -> AF episode -> NSR)."""

    segments: list[RhythmSegment] = field(default_factory=list)

    def append(self, segment: RhythmSegment) -> "RhythmSequence":
        """Append a segment and return self (for chaining)."""
        self.segments.append(segment)
        return self

    @property
    def n_beats(self) -> int:
        """Total number of beats across all segments."""
        return sum(s.n_beats for s in self.segments)

    @property
    def duration_s(self) -> float:
        """Total duration in seconds."""
        return sum(s.duration_s for s in self.segments)

    def flatten(self) -> tuple[np.ndarray, tuple[str, ...], tuple[str, ...]]:
        """Return (rr_s, beat labels, per-beat rhythm labels) arrays."""
        if not self.segments:
            return np.empty(0), (), ()
        rr = np.concatenate([s.rr_s for s in self.segments])
        labels = tuple(label for s in self.segments for label in s.labels)
        rhythms = tuple(s.rhythm for s in self.segments for _ in s.labels)
        return rr, labels, rhythms


def paroxysmal_af(duration_s: float, af_burden: float = 0.4,
                  episode_s: float = 60.0,
                  mean_hr_bpm: float = 72.0,
                  rng: np.random.Generator | None = None) -> RhythmSequence:
    """Sinus rhythm interleaved with AF episodes.

    Args:
        duration_s: Total target duration.
        af_burden: Fraction of time spent in AF.
        episode_s: Approximate duration of each AF episode.
        mean_hr_bpm: Sinus-rhythm heart rate (AF runs faster, ~+25 bpm).
        rng: Random generator.

    Returns:
        A :class:`RhythmSequence` alternating NSR and AF segments.
    """
    if not 0.0 <= af_burden <= 1.0:
        raise ValueError("af_burden must lie in [0, 1]")
    rng = rng or np.random.default_rng()
    sequence = RhythmSequence()
    remaining = duration_s
    if af_burden == 0.0:
        return sequence.append(sinus_rhythm(duration_s, mean_hr_bpm, rng=rng))
    if af_burden == 1.0:
        return sequence.append(af_rhythm(duration_s, mean_hr_bpm + 25, rng=rng))
    sinus_chunk = episode_s * (1.0 - af_burden) / af_burden
    in_af = rng.random() < af_burden
    while remaining > 1.0:
        target = episode_s if in_af else sinus_chunk
        chunk = min(remaining, max(5.0, rng.normal(target, 0.15 * target)))
        if in_af:
            sequence.append(af_rhythm(chunk, mean_hr_bpm + 25, rng=rng))
        else:
            sequence.append(sinus_rhythm(chunk, mean_hr_bpm, rng=rng))
        remaining -= chunk
        in_af = not in_af
    return sequence


def _truncate_to_duration(rr: np.ndarray, duration_s: float) -> np.ndarray:
    """Keep the longest RR prefix whose cumulative sum fits in duration_s."""
    cumulative = np.cumsum(rr)
    keep = int(np.searchsorted(cumulative, duration_s, side="right"))
    keep = max(1, keep)
    return rr[:keep]
