"""Journal replay throughput — recorded live run vs its replay.

Not a paper figure: this benchmarks the `repro.fleet.journal` layer
that gives the gateway a durable packet log.  The same cohort runs
live with a `JournalWriter` attached (pricing the write tax against a
plain run), then the journal streams back through `JournalReplayer`.
Two contracts gate unconditionally: the replayed `FleetSummary` must
be **byte-identical** to the recorded run's, and the replay must beat
the live run by at least 5x — replay skips node-side synthesis, CS
encoding and the link entirely, so anything slower means the recovery
path regressed.
"""

from __future__ import annotations

import time

from conftest import print_table

from repro.fleet import (
    CohortConfig,
    FleetScheduler,
    Gateway,
    GatewayConfig,
    JournalConfig,
    JournalReplayer,
    JournalWriter,
    NodeProxyConfig,
    SchedulerConfig,
    journal_meta,
    make_cohort,
)

N_PATIENTS = 8
DURATION_S = 120.0
FS = 250.0
MIN_SPEEDUP = 5.0


def run_all(journal_dir: str):
    """Plain live run, journaled live run, then the journal replay."""
    cohort = make_cohort(CohortConfig(n_patients=N_PATIENTS, seed=7))
    config = SchedulerConfig(duration_s=DURATION_S, fs=FS)
    node_config = NodeProxyConfig(stream_telemetry=True)
    gateway_config = GatewayConfig(n_iter=40)

    def live(journal=None):
        return FleetScheduler(
            cohort, config, node_config=node_config,
            gateway=Gateway(gateway_config), journal=journal).run()

    t0 = time.perf_counter()
    plain = live()
    wall_plain = time.perf_counter() - t0
    journal_config = JournalConfig(dir=journal_dir, name="bench")
    t0 = time.perf_counter()
    with JournalWriter(journal_config,
                       meta=journal_meta(DURATION_S, FS, gateway_config),
                       resume=False) as journal:
        recorded = live(journal)
    wall_recorded = time.perf_counter() - t0
    replay = JournalReplayer(journal_config).run()
    return plain, wall_plain, recorded, wall_recorded, journal, replay


def test_fleet_journal_replay(benchmark, tmp_path):
    plain, wall_plain, recorded, wall_recorded, journal, replay = \
        benchmark.pedantic(run_all, args=(str(tmp_path),), rounds=1,
                           iterations=1)
    wall_replay = replay.timings_s["total"]
    speedup = wall_recorded / wall_replay

    print_table(
        f"Journal replay ({N_PATIENTS} patients x {DURATION_S:.0f} s)",
        ["metric", "value"],
        [
            ("plain live wall [s]", wall_plain),
            ("journaled live wall [s]", wall_recorded),
            ("replay wall [s]", wall_replay),
            ("write tax [x]", wall_recorded / wall_plain),
            ("replay speedup [x]", speedup),
            ("journal records", journal.n_records),
            ("journal bytes", journal.n_bytes),
            ("packets replayed", replay.n_packets),
            ("SNR p50 [dB]", replay.summary.snr_p50_db),
        ],
    )

    # The determinism contracts gate unconditionally.
    assert recorded.summary.to_json() == plain.summary.to_json(), \
        "journaling perturbed the live run"
    assert replay.summary.to_json() == recorded.summary.to_json(), \
        "replayed FleetSummary diverged from the recorded run"
    assert replay.n_packets == recorded.packets_sent
    assert replay.torn_tail_bytes == 0
    assert speedup >= MIN_SPEEDUP, \
        f"journal replay only {speedup:.1f}x faster than live"
