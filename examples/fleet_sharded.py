"""Sharded fleet demo: one cohort striped across worker processes.

Runs the same cohort twice — single-process and sharded across N
worker processes, each shard exchanging **wire-encoded** results with
the parent — then proves the two merged fleet summaries are
byte-identical and reports the speedup.  On a multi-core machine the
sharded run should approach a core-count speedup; on one core it shows
the (small) process overhead instead.

Run:  python examples/fleet_sharded.py [--patients 16] [--shards 4]
"""

from __future__ import annotations

import argparse
import os

from repro.fleet import (
    CohortConfig,
    GatewayConfig,
    NodeProxyConfig,
    SchedulerConfig,
    ShardedFleetRunner,
    make_cohort,
    partition_cohort,
)


def main() -> None:
    """Run the single-process vs sharded comparison and print it."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patients", type=int, default=16,
                        help="cohort size")
    parser.add_argument("--shards", type=int, default=4,
                        help="worker processes for the sharded run")
    parser.add_argument("--duration", type=float, default=120.0,
                        help="simulated seconds per patient")
    args = parser.parse_args()

    cohort = make_cohort(CohortConfig(n_patients=args.patients, seed=7))
    stripes = partition_cohort(cohort, args.shards)
    print(f"cohort: {len(cohort)} patients striped over "
          f"{len(stripes)} shards "
          f"({', '.join(str(len(s)) for s in stripes)} patients each); "
          f"{os.cpu_count() or 1} cores available")

    kwargs = dict(
        config=SchedulerConfig(duration_s=args.duration),
        node_config=NodeProxyConfig(stream_telemetry=False),
        gateway_config=GatewayConfig(n_iter=80),
    )
    print("running single-process reference ...")
    single = ShardedFleetRunner(cohort, n_shards=1, **kwargs).run()
    print(f"running {len(stripes)}-shard layout ...")
    sharded = ShardedFleetRunner(cohort, n_shards=args.shards,
                                 **kwargs).run()

    identical = sharded.summary.to_json() == single.summary.to_json()
    print("\n" + sharded.summary.describe())
    wall_1 = single.timings_s["total"]
    wall_n = sharded.timings_s["total"]
    print(f"\nsingle-process: {wall_1:.2f} s "
          f"({single.patients_per_second:.1f} patients/s)")
    print(f"{sharded.n_shards}-shard:        {wall_n:.2f} s "
          f"({sharded.patients_per_second:.1f} patients/s)")
    print(f"speedup: {wall_1 / wall_n:.2f}x")
    print(f"merged summaries byte-identical: {identical}")
    if not identical:
        raise SystemExit("sharding determinism violated!")


if __name__ == "__main__":
    main()
