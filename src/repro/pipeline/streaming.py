"""Sample-at-a-time streaming front of the node application.

The batch pipeline in :mod:`repro.pipeline.node_app` processes whole
recordings; real firmware sees one multi-lead sample per timer interrupt
and must work inside bounded buffers.  :class:`StreamingMonitor` mirrors
the firmware structure: a ring buffer of recent samples, periodic
processing bursts every ``hop_s`` seconds over the buffered history, and
incremental emission of newly confirmed beats.

Equivalence with the batch path on overlapping content is covered by the
tests — the property that lets the batch implementation stand in for the
streaming one in the accuracy benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..delineation.rpeak import RPeakDetector
from ..delineation.wavelet_delineator import WaveletDelineator
from ..signals.types import BeatAnnotation


@dataclass
class StreamingConfig:
    """Streaming parameters.

    Attributes:
        fs: Sampling frequency.
        buffer_s: Ring-buffer length (must cover the delineator's
            look-back, >= ~3 beats).
        hop_s: Interval between processing bursts.
        confirm_margin_s: Beats closer than this to the buffer's leading
            edge are withheld until the next burst (their T wave may not
            be complete yet).
    """

    fs: float = 250.0
    buffer_s: float = 8.0
    hop_s: float = 2.0
    confirm_margin_s: float = 0.8


class StreamingMonitor:
    """Incremental R-peak detection + delineation over a ring buffer.

    Args:
        config: Streaming parameters.

    Usage::

        monitor = StreamingMonitor(StreamingConfig(fs=250.0))
        for sample in samples:          # one lead
            for beat in monitor.push(sample):
                handle(beat)            # absolute sample indices
        for beat in monitor.flush():
            handle(beat)
    """

    def __init__(self, config: StreamingConfig | None = None) -> None:
        self.config = config or StreamingConfig()
        cfg = self.config
        if cfg.buffer_s <= cfg.hop_s:
            raise ValueError("buffer must be longer than the hop")
        self._capacity = int(cfg.buffer_s * cfg.fs)
        self._hop = int(cfg.hop_s * cfg.fs)
        self._margin = int(cfg.confirm_margin_s * cfg.fs)
        # Preallocated circular buffer: O(1) per sample, the ordered view
        # is materialized only once per burst.
        self._buffer = np.empty(self._capacity)
        self._head = 0           # next write position
        self._filled = 0         # valid samples (<= capacity)
        self._total = 0          # absolute samples consumed
        self._since_burst = 0
        self._emitted_up_to = -1  # last confirmed R-peak position
        self._detector = RPeakDetector(cfg.fs)
        self._delineator = WaveletDelineator(cfg.fs)

    @property
    def samples_consumed(self) -> int:
        """Absolute number of samples pushed so far."""
        return self._total

    def push(self, sample: float) -> list[BeatAnnotation]:
        """Consume one sample; return newly confirmed beats (absolute)."""
        self._buffer[self._head] = sample
        self._head = (self._head + 1) % self._capacity
        self._filled = min(self._filled + 1, self._capacity)
        self._total += 1
        self._since_burst += 1
        if self._since_burst >= self._hop:
            self._since_burst = 0
            return self._burst(final=False)
        return []

    def push_block(self, samples: np.ndarray) -> list[BeatAnnotation]:
        """Consume a block of samples with numpy slicing (no per-sample
        python loop); equivalent to ``push`` called once per sample.

        The block is written into the ring buffer one slice per hop
        boundary: between bursts the copy is a (wrap-aware) vectorized
        slice assignment, and a burst fires exactly where the
        sample-at-a-time path would fire it, so emitted beats are
        identical (tested).

        Args:
            samples: 1-D block of consecutive samples (one lead).

        Returns:
            Newly confirmed beats across all bursts the block triggered.
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1:
            raise ValueError("push_block expects a 1-D sample block")
        out: list[BeatAnnotation] = []
        pos = 0
        n = samples.shape[0]
        while pos < n:
            take = min(n - pos, self._hop - self._since_burst)
            self._write(samples[pos:pos + take])
            pos += take
            self._since_burst += take
            if self._since_burst >= self._hop:
                self._since_burst = 0
                out.extend(self._burst(final=False))
        return out

    def _write(self, chunk: np.ndarray) -> None:
        """Copy one chunk into the ring at ``_head`` (wrap-aware)."""
        k = chunk.shape[0]
        if k >= self._capacity:
            # Only the trailing capacity samples survive; realign head.
            self._buffer[:] = chunk[k - self._capacity:]
            self._head = 0
        else:
            first = min(k, self._capacity - self._head)
            self._buffer[self._head:self._head + first] = chunk[:first]
            if k > first:
                self._buffer[:k - first] = chunk[first:]
            self._head = (self._head + k) % self._capacity
        self._filled = min(self._filled + k, self._capacity)
        self._total += k

    def flush(self) -> list[BeatAnnotation]:
        """Process whatever remains (end of recording)."""
        return self._burst(final=True)

    def _window(self) -> np.ndarray:
        """The buffered history in chronological order."""
        if self._filled < self._capacity:
            return self._buffer[:self._filled].copy()
        return np.concatenate((self._buffer[self._head:],
                               self._buffer[:self._head]))

    def _burst(self, final: bool) -> list[BeatAnnotation]:
        window = self._window()
        if window.shape[0] < int(1.5 * self.config.fs):
            return []
        offset = self._total - window.shape[0]
        peaks = self._detector.detect(window)
        beats = self._delineator.delineate(window, peaks)
        horizon = window.shape[0] if final else \
            window.shape[0] - self._margin
        fresh: list[BeatAnnotation] = []
        for beat in beats:
            absolute = beat.r_peak + offset
            if absolute <= self._emitted_up_to or beat.r_peak >= horizon:
                continue
            fresh.append(beat.shifted(offset))
            self._emitted_up_to = absolute
        return fresh


def stream_record(signal: np.ndarray,
                  config: StreamingConfig) -> list[BeatAnnotation]:
    """Run the streaming monitor over a full waveform (test harness)."""
    monitor = StreamingMonitor(config)
    out = monitor.push_block(np.asarray(signal, dtype=float))
    out.extend(monitor.flush())
    return out
