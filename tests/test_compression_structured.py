"""Unit tests for tree-structured CS recovery (§IV-A, ref [17])."""

import numpy as np
import pytest

from repro.compression import (
    CsDecoder,
    CsEncoder,
    TreeCsDecoder,
    reconstruction_snr_db,
    tree_parents,
    tree_project,
)


class TestTreeParents:
    def test_roots_have_no_parent(self):
        parent = tree_parents(64, levels=3)
        approx_len = 8
        assert np.all(parent[:approx_len] == -1)

    def test_coarsest_detail_rooted_at_approximation(self):
        parent = tree_parents(64, levels=3)
        # d_3 band spans [8, 16); its parents are approx coefficients.
        assert np.all(parent[8:16] == np.arange(8))

    def test_binary_fanout(self):
        parent = tree_parents(64, levels=3)
        counts = np.bincount(parent[parent >= 0], minlength=64)
        # Every detail coefficient above the finest band has 2 children
        # (approximation roots have 1: their d_L coefficient).
        assert np.all(counts[8:32] == 2)
        assert np.all(counts[:8] == 1)
        assert np.all(counts[32:] == 0)  # finest band is leaves

    def test_every_chain_terminates(self):
        parent = tree_parents(128, levels=4)
        for start in range(128):
            node, hops = start, 0
            while node >= 0:
                node = int(parent[node])
                hops += 1
                assert hops < 10

    def test_validates_divisibility(self):
        with pytest.raises(ValueError, match="divisible"):
            tree_parents(100, levels=3)


class TestTreeProject:
    def test_keeps_connected_support(self):
        parent = tree_parents(64, levels=3)
        rng = np.random.default_rng(3)
        alpha = rng.standard_normal(64)
        projected = tree_project(alpha, 12, parent)
        kept = np.flatnonzero(projected)
        kept_set = set(kept.tolist())
        for idx in kept:
            p = int(parent[idx])
            assert p == -1 or p in kept_set  # ancestors kept

    def test_budget_respected(self):
        parent = tree_parents(64, levels=3)
        alpha = np.random.default_rng(4).standard_normal(64)
        projected = tree_project(alpha, 10, parent)
        assert np.count_nonzero(projected) <= 10

    def test_large_budget_is_identity(self):
        parent = tree_parents(32, levels=2)
        alpha = np.random.default_rng(5).standard_normal(32)
        assert np.array_equal(tree_project(alpha, 32, parent), alpha)

    def test_kept_values_unchanged(self):
        parent = tree_parents(64, levels=3)
        alpha = np.random.default_rng(6).standard_normal(64)
        projected = tree_project(alpha, 8, parent)
        kept = np.flatnonzero(projected)
        assert np.array_equal(projected[kept], alpha[kept])


class TestTreeCsDecoder:
    def test_recovers_clean_window(self, clean_record):
        x = clean_record.signals[1][1000:1256]
        encoder = CsEncoder(n=256, cr_percent=45.0, seed=3)
        decoder = TreeCsDecoder(encoder.sensing)
        result = decoder.recover(encoder.encode(x))
        assert reconstruction_snr_db(x, result.window) > 18.0

    def test_support_is_tree_connected(self, clean_record):
        x = clean_record.signals[1][1000:1256]
        encoder = CsEncoder(n=256, cr_percent=50.0, seed=3)
        decoder = TreeCsDecoder(encoder.sensing)
        result = decoder.recover(encoder.encode(x))
        kept = set(np.flatnonzero(result.coefficients).tolist())
        for idx in kept:
            p = int(decoder.parent[idx])
            assert p == -1 or p in kept

    def test_competitive_with_l1_at_high_cr(self, clean_record):
        # The §IV-A claim: the tree model helps separate signal structure
        # from recovery artifacts in the underdetermined regime.
        x = clean_record.signals[1][2000:2256]
        encoder = CsEncoder(n=256, cr_percent=70.0, seed=3)
        tree = TreeCsDecoder(encoder.sensing).recover(encoder.encode(x))
        l1 = CsDecoder(encoder.sensing).recover(encoder.encode(x))
        tree_snr = reconstruction_snr_db(x, tree.window)
        l1_snr = reconstruction_snr_db(x, l1.window)
        assert tree_snr > l1_snr - 3.0  # at least competitive

    def test_accepts_raw_measurements(self, clean_record):
        x = clean_record.signals[1][1000:1256]
        encoder = CsEncoder(n=256, cr_percent=45.0, seed=3)
        decoder = TreeCsDecoder(encoder.sensing)
        y = encoder.sensing.matrix @ x
        result = decoder.recover(y)
        assert result.window.shape == (256,)
