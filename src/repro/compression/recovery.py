"""Receiver-side CS recovery: FISTA basis-pursuit denoising and OMP.

The paper's system reconstructs off-node (a phone or server, ref [5]), so
the decoder favours quality over embedded cost.  Windows are sparse in an
orthogonal Daubechies wavelet basis ``W`` (``alpha = W x``); with sensing
matrix ``Phi`` the recovery solves

    min_alpha  0.5 * ||y - Phi W^T alpha||^2 + lam * ||alpha||_1

via FISTA (Beck & Teboulle), followed by a least-squares *debias* step on
the detected support — standard practice that recovers the amplitude lost
to soft thresholding.  Orthogonal matching pursuit is provided as the
greedy baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsp.wavelets import orthogonal_dwt_matrix
from .encoder import EncodedWindow
from .fista_kernels import soft_shrink_update
from .matrices import SensingMatrix


def soft_threshold(x: np.ndarray, threshold: float) -> np.ndarray:
    """Element-wise soft threshold (the l1 proximal operator)."""
    return np.sign(x) * np.maximum(np.abs(x) - threshold, 0.0)


def fista(A: np.ndarray, y: np.ndarray, lam: float, n_iter: int = 200,
          tol: float = 1e-7) -> np.ndarray:
    """FISTA for ``min 0.5 ||y - A a||^2 + lam ||a||_1``.

    Args:
        A: Measurement operator (m x n).
        y: Measurements.
        lam: l1 weight (absolute).
        n_iter: Maximum iterations.
        tol: Stop when the iterate moves less than this (l2, relative).

    Returns:
        The sparse coefficient estimate.
    """
    lipschitz = float(np.linalg.norm(A, 2)) ** 2
    if lipschitz == 0.0:
        return np.zeros(A.shape[1])
    step = 1.0 / lipschitz
    alpha = np.zeros(A.shape[1])
    momentum = alpha.copy()
    t = 1.0
    At = A.T
    # The elementwise tail (shift, soft threshold, momentum) runs
    # through the fused kernel — compiled with numba when available,
    # bit-identical numpy expressions otherwise (see
    # :mod:`repro.compression.fista_kernels`).
    for _ in range(n_iter):
        grad = At @ (A @ momentum - y)
        t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t * t))
        new_alpha, momentum = soft_shrink_update(
            momentum, grad, step, lam * step, alpha,
            (t - 1.0) / t_next)
        moved = np.linalg.norm(new_alpha - alpha)
        scale = max(1e-12, np.linalg.norm(alpha))
        alpha = new_alpha
        t = t_next
        if moved / scale < tol:
            break
    return alpha


def omp(A: np.ndarray, y: np.ndarray, sparsity: int,
        tol: float = 1e-9) -> np.ndarray:
    """Orthogonal matching pursuit with a fixed sparsity budget."""
    m, n = A.shape
    if not 0 < sparsity <= m:
        raise ValueError("sparsity must lie in (0, m]")
    residual = y.astype(float).copy()
    support: list[int] = []
    alpha = np.zeros(n)
    norms = np.linalg.norm(A, axis=0)
    norms[norms == 0] = 1.0
    for _ in range(sparsity):
        correlations = np.abs(A.T @ residual) / norms
        correlations[support] = -1.0
        best = int(np.argmax(correlations))
        support.append(best)
        sub = A[:, support]
        coef, *_ = np.linalg.lstsq(sub, y, rcond=None)
        residual = y - sub @ coef
        if np.linalg.norm(residual) < tol:
            break
    alpha[support] = coef
    return alpha


def debias(A: np.ndarray, y: np.ndarray, alpha: np.ndarray,
           rel_support: float = 0.005) -> np.ndarray:
    """Least-squares refit on the support of ``alpha``.

    Args:
        A: Measurement operator.
        y: Measurements.
        alpha: Sparse estimate whose support is reused.
        rel_support: Entries below this fraction of the largest magnitude
            are excluded from the support.
    """
    magnitude = np.abs(alpha)
    peak = magnitude.max() if magnitude.size else 0.0
    if peak == 0.0:
        return alpha
    support = np.flatnonzero(magnitude > rel_support * peak)
    # Keep the system over-determined.
    if support.shape[0] == 0 or support.shape[0] > A.shape[0]:
        return alpha
    refined = np.zeros_like(alpha)
    coef, *_ = np.linalg.lstsq(A[:, support], y, rcond=None)
    refined[support] = coef
    return refined


@dataclass
class RecoveryResult:
    """Reconstruction output.

    Attributes:
        window: Reconstructed time-domain window.
        coefficients: Recovered wavelet coefficients.
        support_size: Number of significant coefficients kept.
    """

    window: np.ndarray
    coefficients: np.ndarray
    support_size: int


class CsDecoder:
    """Single-lead CS decoder over a Daubechies wavelet basis.

    Args:
        sensing: The sensing matrix shared with the encoder.
        wavelet: Sparsity basis (``haar`` / ``db2`` / ``db4``).
        lam_rel: l1 weight relative to ``max |A^T y|``.
        n_iter: FISTA iteration budget.
        method: ``"fista"`` (default) or ``"omp"``.
        omp_sparsity_frac: OMP support budget as a fraction of m.
    """

    def __init__(self, sensing: SensingMatrix, wavelet: str = "db4",
                 lam_rel: float = 0.002, n_iter: int = 200,
                 method: str = "fista",
                 omp_sparsity_frac: float = 0.33) -> None:
        if method not in ("fista", "omp"):
            raise ValueError("method must be 'fista' or 'omp'")
        self.sensing = sensing
        self.basis = orthogonal_dwt_matrix(sensing.n, wavelet)
        # x = W^T alpha  =>  y = Phi W^T alpha.
        self.A = sensing.matrix @ self.basis.T
        self.lam_rel = lam_rel
        self.n_iter = n_iter
        self.method = method
        self.omp_sparsity_frac = omp_sparsity_frac

    def recover(self, y: np.ndarray | EncodedWindow) -> RecoveryResult:
        """Reconstruct one window from its measurements."""
        if isinstance(y, EncodedWindow):
            y = y.measurements
        y = np.asarray(y, dtype=float)
        if self.method == "omp":
            sparsity = max(1, int(self.omp_sparsity_frac * self.sensing.m))
            alpha = omp(self.A, y, sparsity)
        else:
            lam = self.lam_rel * float(np.max(np.abs(self.A.T @ y)))
            alpha = fista(self.A, y, lam, n_iter=self.n_iter)
            alpha = debias(self.A, y, alpha)
        window = self.basis.T @ alpha
        support = int(np.count_nonzero(alpha))
        return RecoveryResult(window=window, coefficients=alpha,
                              support_size=support)
