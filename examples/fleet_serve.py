"""Served fleet demo: patient nodes as TCP clients of a gateway service.

Starts the asyncio gateway service (`repro.fleet.serve`), runs every
patient of a cohort as a concurrent `FleetClient` streaming
length-delimited wire frames over real loopback sockets, then proves
the merged fleet summary is **byte-identical** to the in-process
engine's for the same cohort and seeds — the serving determinism
contract — and reports the socket tax and service counters.

Run:  python examples/fleet_serve.py [--patients 4] [--duration 60]
"""

from __future__ import annotations

import argparse

from repro.fleet import (
    CohortConfig,
    FleetScheduler,
    Gateway,
    GatewayConfig,
    NodeProxyConfig,
    SchedulerConfig,
    ServeConfig,
    make_cohort,
    run_served_fleet,
)


def main() -> None:
    """Run the in-process vs served comparison and print it."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patients", type=int, default=4,
                        help="cohort size (one TCP client each)")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="simulated seconds per patient")
    parser.add_argument("--lanes", type=int, default=2,
                        help="server session lanes (load balancing)")
    args = parser.parse_args()

    cohort = make_cohort(CohortConfig(n_patients=args.patients, seed=7))
    config = SchedulerConfig(duration_s=args.duration)
    node_config = NodeProxyConfig(stream_telemetry=False)
    gateway_config = GatewayConfig(n_iter=80)

    print(f"running in-process reference over {len(cohort)} patients "
          "...")
    local = FleetScheduler(
        cohort, config, node_config=node_config,
        gateway=Gateway(gateway_config)).run()

    print(f"serving the same cohort over loopback TCP "
          f"({args.lanes} lanes) ...")
    served = run_served_fleet(
        cohort, config=config, node_config=node_config,
        gateway_config=gateway_config,
        serve_config=ServeConfig(n_lanes=args.lanes))

    identical = served.summary.to_json() == local.summary.to_json()
    print("\n" + served.summary.describe())
    stats = served.server_stats
    print(f"\nconnections: {stats['connections']} over "
          f"{stats['n_lanes']} lanes")
    print(f"frames consumed: {stats['frames']} "
          f"(max queue depth {stats['max_queue_depth']})")
    print(f"served wall: {served.timings_s['total']:.2f} s "
          f"({served.packets_sent} packets)")
    print(f"served summary byte-identical: {identical}")
    if not identical:
        raise SystemExit("serving determinism violated!")


if __name__ == "__main__":
    main()
