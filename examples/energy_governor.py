"""Energy governor demo: one node draining through its mode ladder.

The paper's Fig. 6 compares three *fixed* transmission strategies; this
demo closes the loop instead.  A node starts near full charge streaming
raw samples, and as the (deliberately tiny) battery drains the
EnergyGovernor walks it down the ladder — multi-lead CS, single-lead
CS, events-only telemetry — while an AF episode mid-recording forces a
high-fidelity upshift regardless of the budget.  The second half prints
the fleet-lifetime comparison: simulated hours-to-empty of the governor
versus every static Fig. 6 mode on a mixed-acuity day cycle.

Run:  python examples/energy_governor.py [--duration 300] [--soc 0.9]
"""

from __future__ import annotations

import argparse

from repro.fleet import PatientProfile, synthesize_patient
from repro.pipeline import CardiacMonitorNode
from repro.power import (
    ACUITY_ALERT,
    ACUITY_OK,
    Battery,
    BatteryModel,
    EnergyGovernor,
    GovernorConfig,
    MODES,
    ModePowerTable,
    best_admissible_static_cohort,
    compare_policies,
    mixed_acuity_trace,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=300.0,
                        help="simulated seconds of recording")
    parser.add_argument("--soc", type=float, default=0.9,
                        help="starting state of charge (0-1)")
    parser.add_argument("--interval", type=float, default=10.0,
                        help="governor batch interval in seconds")
    parser.add_argument("--lifetime-patients", type=int, default=4,
                        help="cohort size of the lifetime comparison")
    args = parser.parse_args()

    table = ModePowerTable()
    print("mode power table (Fig. 6-consistent, incl. duty-cycle "
          "standing costs):")
    for mode in MODES:
        print(f"  {mode:<18} {1e6 * table.power_w(mode):8.1f} uW")

    profile = PatientProfile(patient_id="demo", rhythm="paroxysmal_af",
                             af_burden=0.4, snr_db=25.0, seed=17)
    record = synthesize_patient(profile, args.duration, 250.0)
    governor = EnergyGovernor(
        config=GovernorConfig(min_dwell_s=2 * args.interval),
        table=table,
        battery=BatteryModel(cell=Battery(capacity_mah=0.05),
                             soc=args.soc))

    def acuity(t_s: float) -> str:
        third = args.duration / 3.0
        return ACUITY_ALERT if third <= t_s < 2 * third else ACUITY_OK

    print(f"\nprocessing {args.duration:.0f} s recording, starting at "
          f"{100 * args.soc:.0f} % charge (alert episode in the middle "
          "third) ...")
    report = CardiacMonitorNode().process_governed(
        record, governor, interval_s=args.interval, acuity_fn=acuity)

    print("mode timeline:")
    for segment in report.segments:
        print(f"  {segment.start_s:6.0f} - {segment.stop_s:6.0f} s  "
              f"{segment.mode}")
    print(f"mode switches: {report.n_switches}")
    print(f"final state of charge: {100 * report.final_soc:.0f} %")
    print(f"average node power: {1e6 * report.average_power_w:.0f} uW")
    print(f"transmitted payload: {report.transmitted_bits / 8e3:.1f} kB "
          f"({len(report.beats)} beats, {len(report.alarms)} alarms)")

    print(f"\nlifetime comparison ({args.lifetime_patients} "
          "mixed-acuity patients, standard 150 mAh cell):")
    cohort = [compare_policies(mixed_acuity_trace(i), table=table,
                               step_s=1800.0)
              for i in range(args.lifetime_patients)]
    hours: dict[str, list[float]] = {}
    violations: dict[str, float] = {}
    for results in cohort:
        for name, res in results.items():
            hours.setdefault(name, []).append(res.hours)
            violations[name] = (violations.get(name, 0.0)
                                + res.acuity_violation_hours)
    best = best_admissible_static_cohort(cohort)
    print(f"  {'policy':<18} {'mean hours':>10} {'violation h':>12}")
    for name in ("governor", *MODES):
        mean_h = sum(hours[name]) / len(hours[name])
        print(f"  {name:<18} {mean_h:>10.0f} {violations[name]:>12.0f}")
    mean_governor = sum(hours["governor"]) / len(hours["governor"])
    mean_best = sum(hours[best]) / len(hours[best])
    print(f"governor vs best admissible static ({best}): "
          f"{mean_governor / mean_best:.2f}x lifetime")


if __name__ == "__main__":
    main()
