"""Compiled FISTA inner-loop kernels with a byte-identical fallback.

The gateway drain's hot loop is batched block FISTA
(:func:`~repro.compression.multilead.group_fista_batch`): per
iteration, two stacked matmuls per lead plus an elementwise
shift → group-shrink → momentum update over the ``(B, n, L)``
coefficient batch.  The matmuls must stay on the fixed 4-row-tile BLAS
path (:func:`~repro.compression.multilead.row_stable_matmul`) — that
tile order is the foundation of every shard/serve/journal
byte-equivalence gate — but the elementwise tail is pure arithmetic
and fuses well.  This module compiles exactly that tail with numba
when it is importable, and otherwise runs a pure-numpy fallback built
from the *same expressions the loop used before this module existed*,
so the fallback is byte-identical to the historical goldens by
construction.

Bit-exactness of the compiled path is by design, not luck:

* every operation is the same IEEE-754 double op in the same order as
  the numpy expression it replaces (numba does not contract ``a*b+c``
  into FMAs unless ``fastmath`` is requested, which we never do);
* the per-row l2 norm sums its ``L`` squares sequentially — numpy's
  pairwise reduction uses a plain sequential loop below 8 elements, so
  the kernels refuse lead counts ``>= 8`` (the dispatcher falls back
  to numpy there; ECG fleets use 1–3 leads);
* ``maximum``/``sign`` NaN semantics mirror ``np.maximum``/``np.sign``
  exactly.

The convergence norms (``moved``/``scale``) are *not* compiled: they
reduce over ``n * L`` elements where numpy's pairwise summation cannot
be reproduced by a naive loop, so both paths keep computing them with
the same numpy call.

Set ``REPRO_NO_NUMBA=1`` to force the fallback even where numba is
installed (the CI fallback-parity leg; also how a container without
numba behaves by default).  :func:`backend` reports which path is
live.
"""

from __future__ import annotations

import os

import numpy as np

#: Lead-count ceiling of the compiled kernels: numpy's pairwise sum is
#: sequential below 8 elements, so a sequential compiled sum matches it
#: bit for bit only there.
MAX_COMPILED_LEADS = 7

HAVE_NUMBA = False
if not os.environ.get("REPRO_NO_NUMBA"):
    try:
        from numba import njit

        HAVE_NUMBA = True
    except ImportError:  # pragma: no cover - depends on environment
        HAVE_NUMBA = False


def backend() -> str:
    """Which inner-loop implementation is live: ``numba`` or ``numpy``."""
    return "numba" if HAVE_NUMBA else "numpy"


def _group_shrink_update_np(mom: np.ndarray, grad: np.ndarray,
                            step: float, thresholds: np.ndarray,
                            old: np.ndarray, ratio: float,
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Pure-numpy fused shift/shrink/momentum step (reference path).

    These are, expression for expression, the lines
    :func:`~repro.compression.multilead.group_fista_batch` ran before
    the kernels existed — the byte-equivalence goldens anchor here.
    """
    shifted = mom - step * grad
    norms = np.linalg.norm(shifted, axis=2, keepdims=True)
    new_alpha = shifted * np.maximum(
        0.0, 1.0 - thresholds[:, None, None] / np.maximum(norms, 1e-12))
    new_momentum = new_alpha + ratio * (new_alpha - old)
    return new_alpha, new_momentum


def _soft_shrink_update_np(mom: np.ndarray, grad: np.ndarray,
                           step: float, threshold: float,
                           old: np.ndarray, ratio: float,
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Pure-numpy fused scalar-l1 step (reference path).

    Mirrors the historical body of
    :func:`~repro.compression.recovery.fista`:
    ``soft_threshold(momentum - step * grad, threshold)`` followed by
    the momentum extrapolation.
    """
    shifted = mom - step * grad
    new_alpha = np.sign(shifted) * np.maximum(
        np.abs(shifted) - threshold, 0.0)
    new_momentum = new_alpha + ratio * (new_alpha - old)
    return new_alpha, new_momentum


if HAVE_NUMBA:

    @njit(cache=True)
    def _group_shrink_update_nb(mom, grad, step, thresholds, old,
                                ratio, new_alpha, new_momentum):
        """Fused (B, n, L) shift/shrink/momentum loop (numba).

        Arithmetic matches :func:`_group_shrink_update_np` op for op;
        the row norm is a sequential sum of squares, valid only for
        ``L < 8`` (see :data:`MAX_COMPILED_LEADS`).
        """
        n_batch, n, n_leads = mom.shape
        for b in range(n_batch):
            threshold = thresholds[b]
            for i in range(n):
                acc = 0.0
                for lead in range(n_leads):
                    v = mom[b, i, lead] - step * grad[b, i, lead]
                    new_alpha[b, i, lead] = v
                    acc += v * v
                norm = np.sqrt(acc)
                # np.maximum(norm, 1e-12): NaN propagates.
                denom = norm if (norm > 1e-12 or norm != norm) else 1e-12
                scale = 1.0 - threshold / denom
                # np.maximum(0.0, scale): NaN propagates.
                if not (scale > 0.0 or scale != scale):
                    scale = 0.0
                for lead in range(n_leads):
                    v = new_alpha[b, i, lead] * scale
                    new_alpha[b, i, lead] = v
                    new_momentum[b, i, lead] = \
                        v + ratio * (v - old[b, i, lead])

    @njit(cache=True)
    def _soft_shrink_update_nb(mom, grad, step, threshold, old, ratio,
                               new_alpha, new_momentum):
        """Fused 1-D soft-threshold/momentum loop (numba).

        Arithmetic matches :func:`_soft_shrink_update_np` op for op,
        including ``np.sign``/``np.maximum`` NaN semantics.
        """
        n = mom.shape[0]
        for i in range(n):
            v = mom[i] - step * grad[i]
            if v > 0.0:
                sign = 1.0
            elif v < 0.0:
                sign = -1.0
            elif v == v:
                sign = 0.0
            else:
                sign = v
            mag = abs(v) - threshold
            if not (mag > 0.0 or mag != mag):
                mag = 0.0
            a = sign * mag
            new_alpha[i] = a
            new_momentum[i] = a + ratio * (a - old[i])


def group_shrink_update(mom: np.ndarray, grad: np.ndarray, step: float,
                        thresholds: np.ndarray, old: np.ndarray,
                        ratio: float) -> tuple[np.ndarray, np.ndarray]:
    """One fused FISTA tail step over a ``(B, n, L)`` batch.

    Computes ``shifted = mom - step * grad``, row-wise group soft
    thresholding with per-window ``thresholds`` (shape ``(B,)``), and
    the momentum extrapolation ``new + ratio * (new - old)`` — in one
    pass when compiled, via the reference numpy expressions otherwise.
    Both paths return bit-identical ``(new_alpha, new_momentum)``.

    Args:
        mom: Momentum batch, shape ``(B, n, L)`` (float64).
        grad: Gradient batch, same shape.
        step: FISTA step size (``1 / L_lipschitz``).
        thresholds: Per-window shrink amounts (``lam * step``).
        old: Previous iterates, same shape as ``mom``.
        ratio: Momentum ratio ``(t - 1) / t_next``.
    """
    if HAVE_NUMBA and mom.shape[2] <= MAX_COMPILED_LEADS:
        new_alpha = np.empty_like(mom)
        new_momentum = np.empty_like(mom)
        _group_shrink_update_nb(
            np.ascontiguousarray(mom), np.ascontiguousarray(grad),
            float(step), np.ascontiguousarray(thresholds),
            np.ascontiguousarray(old), float(ratio), new_alpha,
            new_momentum)
        return new_alpha, new_momentum
    return _group_shrink_update_np(mom, grad, step, thresholds, old,
                                   ratio)


def soft_shrink_update(mom: np.ndarray, grad: np.ndarray, step: float,
                       threshold: float, old: np.ndarray,
                       ratio: float) -> tuple[np.ndarray, np.ndarray]:
    """One fused scalar-l1 FISTA tail step over an ``(n,)`` iterate.

    The single-lead analogue of :func:`group_shrink_update`:
    soft-threshold the shifted iterate, then extrapolate the momentum.
    Both paths return bit-identical ``(new_alpha, new_momentum)``.
    """
    if HAVE_NUMBA:
        new_alpha = np.empty_like(mom)
        new_momentum = np.empty_like(mom)
        _soft_shrink_update_nb(
            np.ascontiguousarray(mom), np.ascontiguousarray(grad),
            float(step), float(threshold), np.ascontiguousarray(old),
            float(ratio), new_alpha, new_momentum)
        return new_alpha, new_momentum
    return _soft_shrink_update_np(mom, grad, step, threshold, old,
                                  ratio)
