"""Fig. 7 orchestration: SC vs MC power for the three WBSN applications.

For each application (3L-MF, 3L-MMD, RP-CLASS) the same workload is mapped
onto the single-core (SC) and the synchronized multi-core (MC) platform;
the required clock follows from the real-time deadline (a window of
samples must be processed within its own duration), the supply voltage
from the V/f table, and the Fig. 7 bars from the event counts.  Every run
is verified against a NumPy reference before its power is reported — a
mis-simulated kernel would silently skew the figure otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compression.matrices import ternary_matrix
from .energy import EnergyModel, PowerReport, power_report
from .kernels import mf3l, mmd3l, rpclass
from .platform import Platform, RunResult

APP_NAMES = ("3L-MF", "3L-MMD", "RP-CLASS")


@dataclass
class AppComparison:
    """SC/MC power comparison of one application.

    Attributes:
        name: Application name.
        sc: Single-core power report.
        mc: Multi-core power report.
        sc_run: SC simulation result (event counts).
        mc_run: MC simulation result.
    """

    name: str
    sc: PowerReport
    mc: PowerReport
    sc_run: RunResult
    mc_run: RunResult

    @property
    def savings_percent(self) -> float:
        """Total-power reduction of MC versus SC."""
        return 100.0 * (1.0 - self.mc.total_w / self.sc.total_w)

    @property
    def processing_power_ratio(self) -> float:
        """Dynamic (core + memories) power ratio SC / MC.

        Isolates the processing-path improvement from leakage floors —
        the quantity the accelerator comparison of ref [19] reports.
        """
        sc_dyn = self.sc.core_w + self.sc.imem_w + self.sc.dmem_w
        mc_dyn = self.mc.core_w + self.mc.imem_w + self.mc.dmem_w
        return sc_dyn / mc_dyn if mc_dyn > 0 else float("inf")


def _verify(condition: bool, app: str, what: str) -> None:
    if not condition:
        raise AssertionError(f"{app}: simulator output mismatch in {what}")


def run_mf3l(signals: np.ndarray, fs: float, width_s: float = 0.048,
             n_cores: int = 3, broadcast: bool = True,
             model: EnergyModel | None = None) -> AppComparison:
    """3L-MF on SC and MC, with functional verification.

    Args:
        signals: Float 3-lead waveforms, shape ``(3, n)``.
        fs: Sampling rate (sets the real-time deadline ``n / fs``).
        width_s: Structuring-element width in seconds.
        n_cores: MC core count (= lead count).
        broadcast: MC broadcast interconnect on/off (Fig. 7 ablation).
        model: Energy model override.
    """
    n_leads, n = signals.shape
    if n_leads != n_cores:
        raise ValueError("3L-MF maps one lead per core")
    width = max(2, int(round(width_s * fs)))
    deadline = n / fs
    reference = mf3l.reference_outputs(signals, width)

    sc_prog = mf3l.build_mf_kernel(n, width, n_leads_loop=n_leads)
    sc_run = Platform(1).run(sc_prog, mf3l.prepare_memories(signals, True))
    sc_out = mf3l.extract_outputs(sc_run.private_memories, n, n_leads, True)
    _verify(np.array_equal(sc_out, reference), "3L-MF", "SC outputs")

    mc_prog = mf3l.build_mf_kernel(n, width, n_leads_loop=1)
    mc_run = Platform(n_cores, broadcast=broadcast).run(
        mc_prog, mf3l.prepare_memories(signals, False))
    mc_out = mf3l.extract_outputs(mc_run.private_memories, n, n_leads, False)
    _verify(np.array_equal(mc_out, reference), "3L-MF", "MC outputs")

    return AppComparison(
        name="3L-MF",
        sc=power_report("3L-MF/SC", sc_run.counters, deadline, 1, model),
        mc=power_report("3L-MF/MC", mc_run.counters, deadline, n_cores,
                        model),
        sc_run=sc_run, mc_run=mc_run)


def run_mmd3l(signals: np.ndarray, fs: float,
              widths_s: tuple[float, float] = mmd3l.DEFAULT_WIDTHS_S,
              n_cores: int = 3, broadcast: bool = True,
              model: EnergyModel | None = None) -> AppComparison:
    """3L-MMD (two analysis scales) on SC and MC, with verification."""
    n_leads, n = signals.shape
    if n_leads != n_cores:
        raise ValueError("3L-MMD maps one lead per core")
    widths = tuple(max(2, int(round(w * fs))) for w in widths_s)
    deadline = n / fs
    scale1, scale2, (best_idx, best_val) = mmd3l.reference_results(
        signals, widths)

    sc_prog = mmd3l.build_mmd_kernel(n, widths, n_leads_loop=n_leads,
                                     n_slots=n_leads)
    sc_run = Platform(1).run(sc_prog, mmd3l.prepare_memories(signals, True))
    _check_mmd_results(sc_run, scale1, scale2, best_idx, best_val, "SC")

    mc_prog = mmd3l.build_mmd_kernel(n, widths, n_leads_loop=1,
                                     n_slots=n_leads)
    mc_run = Platform(n_cores, broadcast=broadcast).run(
        mc_prog, mmd3l.prepare_memories(signals, False))
    _check_mmd_results(mc_run, scale1, scale2, best_idx, best_val, "MC")

    return AppComparison(
        name="3L-MMD",
        sc=power_report("3L-MMD/SC", sc_run.counters, deadline, 1, model),
        mc=power_report("3L-MMD/MC", mc_run.counters, deadline, n_cores,
                        model),
        sc_run=sc_run, mc_run=mc_run)


def _check_mmd_results(run: RunResult, scale1: np.ndarray, scale2: np.ndarray,
                       best_idx: int, best_val: int, tag: str) -> None:
    shared = run.shared_memory
    n_slots = scale1.shape[0]
    for group, per_lead in ((0, scale1), (1, scale2)):
        for lead in range(n_slots):
            slot = 2 * (group * n_slots + lead)
            _verify(int(shared[slot]) == int(per_lead[lead, 0]),
                    "3L-MMD", f"{tag} scale {group + 1} lead {lead} index")
            _verify(int(shared[slot + 1]) == int(per_lead[lead, 1]),
                    "3L-MMD", f"{tag} scale {group + 1} lead {lead} value")
    _verify(int(shared[mmd3l.RESULT_OFFSET]) == best_idx,
            "3L-MMD", f"{tag} global index")
    _verify(int(shared[mmd3l.RESULT_OFFSET + 1]) == best_val,
            "3L-MMD", f"{tag} global value")


def run_rpclass(window: np.ndarray, fs: float, k: int = 36,
                n_classes: int = 5, n_cores: int = 3,
                beat_period_s: float = 0.8, broadcast: bool = True,
                seed: int = 17,
                model: EnergyModel | None = None) -> AppComparison:
    """RP-CLASS on SC and MC, with functional verification.

    Args:
        window: Float beat window (one lead).
        fs: Sampling rate (documentation only; the deadline is the beat
            period).
        k: Projection rows (must divide by ``n_cores``).
        n_classes: Beat classes scored.
        n_cores: MC core count.
        beat_period_s: Real-time budget: one beat must be classified
            before the next arrives.
        broadcast: MC broadcast interconnect on/off.
        seed: Projection/center construction seed.
        model: Energy model override.
    """
    rng = np.random.default_rng(seed)
    window_int = mf3l.quantize_signal(window)
    n = window_int.shape[0]
    ternary = ternary_matrix(k, n, rng)
    rows = np.rint(ternary.matrix / np.sqrt(3.0)).astype(np.int64)
    centers = rng.integers(-2000, 2000, size=(n_classes, k)).astype(np.int64)
    best_cls, best_score = rpclass.reference_class(window_int, rows, centers)
    deadline = beat_period_s

    sc_prog = rpclass.build_rpclass_kernel(n, rows_per_core=k,
                                           n_classes=n_classes, n_slots=1)
    sc_run = Platform(1).run(
        sc_prog, rpclass.prepare_memories(window_int, rows, centers, 1))
    _check_rp_result(sc_run, best_cls, best_score, "SC")

    mc_prog = rpclass.build_rpclass_kernel(n, rows_per_core=k // n_cores,
                                           n_classes=n_classes,
                                           n_slots=n_cores)
    mc_run = Platform(n_cores, broadcast=broadcast).run(
        mc_prog, rpclass.prepare_memories(window_int, rows, centers,
                                          n_cores))
    _check_rp_result(mc_run, best_cls, best_score, "MC")

    return AppComparison(
        name="RP-CLASS",
        sc=power_report("RP-CLASS/SC", sc_run.counters, deadline, 1, model),
        mc=power_report("RP-CLASS/MC", mc_run.counters, deadline, n_cores,
                        model),
        sc_run=sc_run, mc_run=mc_run)


def _check_rp_result(run: RunResult, best_cls: int, best_score: int,
                     tag: str) -> None:
    shared = run.shared_memory
    _verify(int(shared[rpclass.RESULT_OFFSET]) == best_cls,
            "RP-CLASS", f"{tag} class")
    _verify(int(shared[rpclass.RESULT_OFFSET + 1]) == best_score,
            "RP-CLASS", f"{tag} score")


def run_cs_accelerator(window: np.ndarray, fs: float, cr_percent: float = 60.0,
                       d: int = 12, seed: int = 29,
                       model: EnergyModel | None = None) -> AppComparison:
    """CS encoding: baseline RISC vs the [19]-style ISA extension.

    Both variants run on a single core (the accelerator claim is about
    the datapath, not parallelism) and must finish one window within its
    acquisition time.  Results are verified against the NumPy reference.

    Returns:
        An :class:`AppComparison` where ``sc`` is the baseline and ``mc``
        the accelerated variant (reusing the comparison container:
        ``savings_percent`` reports the accelerator's power saving).
    """
    from .kernels import csenc

    rng = np.random.default_rng(seed)
    window_int = mf3l.quantize_signal(window)
    n = window_int.shape[0]
    m = max(1, int(n * (1.0 - cr_percent / 100.0)))
    matrix = csenc.uniform_row_matrix(m, n, d, rng)
    table = csenc.row_table_from_matrix(matrix, d)
    reference = csenc.reference_measurements(window_int, table)
    deadline = n / fs

    results = {}
    for label, accelerated in (("base", False), ("accel", True)):
        program = csenc.build_cs_kernel(m, d, accelerated)
        run = Platform(1).run(program,
                              csenc.prepare_memory(window_int, table))
        out = run.private_memories[0][csenc.OUT_BASE:csenc.OUT_BASE + m]
        _verify(np.array_equal(out, reference), "CS-ENC",
                f"{label} measurements")
        results[label] = run

    return AppComparison(
        name="CS-ENC",
        sc=power_report("CS-ENC/base", results["base"].counters, deadline,
                        1, model),
        mc=power_report("CS-ENC/accel", results["accel"].counters,
                        deadline, 1, model),
        sc_run=results["base"], mc_run=results["accel"])


def compare_all(signals: np.ndarray, beat_window: np.ndarray, fs: float,
                broadcast: bool = True,
                model: EnergyModel | None = None) -> list[AppComparison]:
    """Run all three Fig. 7 applications on SC and MC.

    Args:
        signals: 3-lead waveform block, shape ``(3, n)``.
        beat_window: One beat window for RP-CLASS.
        fs: Sampling rate.
        broadcast: MC broadcast interconnect on/off.
        model: Energy model override.
    """
    return [
        run_mf3l(signals, fs, broadcast=broadcast, model=model),
        run_mmd3l(signals, fs, broadcast=broadcast, model=model),
        run_rpclass(beat_window, fs, broadcast=broadcast, model=model),
    ]
