"""Autonomous sleep/fatigue monitoring (paper §I-II: airline-pilot use).

Sleep monitoring "involves the analysis of heart rate variability over a
time window of the acquired bio-signal" (§I).  This example extracts
HRV/vigilance indicators over sliding windows — the beat-to-beat interval
processing tier of Fig. 1 — and combines them with the PPG-derived pulse
arrival time of §IV-C into a simple drowsiness score.

Run:  python examples/sleep_monitor.py [--segment-s 240]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.delineation import RPeakDetector
from repro.multimodal import measure_pat, time_domain_hrv
from repro.signals import (
    RhythmSequence,
    SynthesisConfig,
    sinus_rhythm,
    synthesize,
    synthesize_ppg,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--segment-s", type=float, default=240.0,
                        help="length of each shift segment in seconds")
    args = parser.parse_args()

    rng = np.random.default_rng(11)
    # A wake -> drowsy transition: heart rate slows and the
    # high-frequency (vagal) HRV rises, as in sleep-onset physiology.
    rhythm = RhythmSequence()
    rhythm.append(sinus_rhythm(args.segment_s, mean_hr_bpm=74.0,
                               hrv_std_s=0.030, rng=rng))
    rhythm.append(sinus_rhythm(args.segment_s, mean_hr_bpm=58.0,
                               hrv_std_s=0.055, rng=rng))
    record = synthesize(rhythm, SynthesisConfig(snr_db=22.0), rng=rng,
                        name="pilot-shift")
    ecg = record.lead(1)
    ppg = synthesize_ppg(record, rng=rng)
    print(f"recording: {record.duration_s / 60:.1f} min, "
          f"{len(record.beats)} beats")

    peaks = RPeakDetector(ecg.fs).detect(ecg.signal)
    pat = measure_pat(ppg, peaks)

    window_s = 60.0
    print(f"\n{'window':>10} {'HR [bpm]':>9} {'SDNN [ms]':>10} "
          f"{'RMSSD [ms]':>11} {'PAT [ms]':>9} {'state':>8}")
    baseline_rmssd = None
    for start in np.arange(0.0, record.duration_s - window_s, window_s):
        lo, hi = start * ecg.fs, (start + window_s) * ecg.fs
        in_window = peaks[(peaks >= lo) & (peaks < hi)]
        if in_window.shape[0] < 10:
            continue
        rr = np.diff(in_window) / ecg.fs
        metrics = time_domain_hrv(rr)
        pat_sel = pat.pat_s[(pat.r_peaks >= lo) & (pat.r_peaks < hi)]
        mean_pat = 1e3 * float(np.mean(pat_sel)) if pat_sel.size else float("nan")
        if baseline_rmssd is None:
            baseline_rmssd = metrics.rmssd_ms
        # Drowsiness indicator: HR drop + vagal (RMSSD) rise.
        drowsy = (metrics.mean_hr_bpm < 65.0
                  and metrics.rmssd_ms > 1.3 * baseline_rmssd)
        state = "DROWSY" if drowsy else "alert"
        print(f"{start:6.0f}-{start + window_s:3.0f}s "
              f"{metrics.mean_hr_bpm:>9.1f} {metrics.sdnn_ms:>10.1f} "
              f"{metrics.rmssd_ms:>11.1f} {mean_pat:>9.1f} {state:>8}")

    # Bandwidth argument (Fig. 1): this application transmits one HRV
    # summary per minute instead of the raw waveform.
    summary_bps = (4 * 16) / window_s
    raw_bps = 3 * ecg.fs * 12
    print(f"\ntransmitted bandwidth: {summary_bps:.1f} bps vs "
          f"{raw_bps:.0f} bps raw ({raw_bps / summary_bps:,.0f}x less)")


if __name__ == "__main__":
    main()
