"""Campaign runner: sweep a cohort across a scenario grid.

One campaign = one cohort x N scenarios.  Every scenario run drives the
full node -> uplink -> gateway -> triage chain through
:class:`~repro.fleet.FleetScheduler`, with the scenario's signal faults
injected into each patient's recording and its link impairments applied
between node and gateway.  The outcome is one structured
:class:`ScenarioResult` per scenario — alarm delivery and false-drop
rates, reconstruction-SNR distribution and degradation versus the clean
control, uplink bytes/patient/day, and link-health counters — bundled
into a JSON-serializable :class:`CampaignReport`.

Reproducibility contract: the entire campaign derives from
``CampaignConfig.master_seed``.  Cohort draw, per-patient recordings,
fault waveforms and per-packet channel draws all use seeds derived with
:func:`~repro.scenarios.derive_seed`; two runs of the same config
produce byte-identical ``report.to_json()``.

The cohort always carries ``n_sentinels`` *sentinel patients*: clean
(noise-free) persistent-AF cases whose alarms are real by construction.
Their end-to-end alarm survival is the campaign's false-drop metric —
the acceptance bar is 0 % under any impairment that does not corrupt
the signal itself.
"""

from __future__ import annotations

import functools
import json
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

import numpy as np

from ..classification.afib import AfDetector
from ..fleet.cohort import CohortConfig, PatientProfile, make_cohort
from ..fleet.gateway import Gateway, GatewayConfig
from ..fleet.journal import (
    JournalConfig,
    JournalReplayer,
    JournalWriter,
    ReplayReport,
    journal_meta,
)
from ..fleet.node_proxy import NodeProxyConfig
from ..fleet.scheduler import FleetReport, FleetScheduler, SchedulerConfig
from ..fleet.sharding import PerPatientLink, ShardedFleetRunner, ShardHooks
from ..fleet.triage import STATE_ALERT, STATES
from ..obs import Observability, SCOPE_SHARD
from ..power.battery import Battery, BatteryModel
from ..power.governor import EnergyGovernor, GovernorConfig, ModePowerTable
from ..signals.dataset import make_corpus
from ..signals.types import MultiLeadEcg
from .channel import ImpairedLink
from .inject import apply_faults
from .spec import (
    FAULT_BATTERY_DRAIN,
    FAULT_GOVERNOR_STRESS,
    ScenarioSpec,
    derive_seed,
)

#: Patient-id prefix of the clean-AF sentinel patients.
SENTINEL_PREFIX = "sentinel"


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters shared by every scenario run of a campaign.

    Attributes:
        n_patients: Cohort size *including* the sentinels.
        n_sentinels: Clean persistent-AF sentinel patients appended to
            the drawn cohort (their alarms define the false-drop rate).
        duration_s: Simulated recording length per patient.
        fs: Node sampling rate.
        master_seed: The one seed everything derives from.
        workers: Thread-pool size for the node phase (0 = inline; keep
            0 when byte-identical float reproducibility matters).
        gateway_n_iter: FISTA budget of the gateway decoder (lower than
            the single-patient default — a campaign reconstructs
            hundreds of windows).
        excerpt_period_s: Node excerpt period.
        stream_telemetry: Run the per-node streaming monitor (off by
            default for campaign speed).
        patient_workers: Opt-in process-pool sweep.  ``0`` (default)
            keeps the joint single-process path: one scheduler per
            scenario over the whole cohort, one shared link RNG drawn in
            packet order.  ``>= 1`` decomposes the grid into independent
            ``(patient, scenario)`` units — each with its own gateway,
            triage machine and per-patient link seed
            (``derive_seed(master, scenario, "link", patient_id)``) —
            executed on up to ``patient_workers`` processes and merged
            by ``(patient_id, scenario)`` key in cohort x grid order.
            Reports are byte-identical across any worker count >= 1
            (tested); they differ from the joint path only in the
            (equally valid) per-patient channel draws.
        shard_workers: Opt-in shard-backed sweep: each scenario runs
            once through a :class:`~repro.fleet.ShardedFleetRunner`
            with this many worker processes, per-patient links seeded
            exactly like the decomposed path, and the per-patient shard
            rows are folded by the same merge machinery.  Byte-identical
            to the ``patient_workers`` path (tested) while running whole
            patient stripes per process instead of one ``(patient,
            scenario)`` unit per task.  Mutually exclusive with
            ``patient_workers``.
        governed: Run every node under a per-patient
            :class:`~repro.power.EnergyGovernor` (closed-loop mode
            adaptation); enables the ``battery_drain`` /
            ``governor_stress`` fault kinds and the governed columns of
            the report.
        governor_capacity_mah: Cell capacity of governed nodes.  The
            default is deliberately tiny so a minutes-long campaign
            walks the whole mode ladder; realistic cells need
            multi-day simulations (see the ``fleet-lifetime`` bench).
        governor_initial_soc: Upper bound of the per-patient starting
            state of charge.
        governor_soc_span: Width of the (seed-derived, per-patient)
            starting-SoC spread below ``governor_initial_soc`` — a
            cohort that all starts at the same SoC switches modes in
            lockstep and exercises nothing.
        governor_min_dwell_s: Governor dwell damping; 0 lets a short
            campaign switch every tick.
        scheduler_engine: Simulation engine of every per-scenario
            :class:`~repro.fleet.FleetScheduler` (``"kernel"`` — the
            event-heap lockstep façade — or the legacy ``"ticks"``
            loop).  The two are byte-identical by contract (tested);
            the knob exists so that contract can be asserted at
            campaign level against the pinned PR-2 goldens.
        journal_dir: Opt-in durable packet log.  When set, every
            scenario's gateway traffic is journaled to
            ``{journal_dir}/{scenario}-NNNNNN.rpj`` segments
            (:class:`~repro.fleet.JournalWriter`), which makes the
            campaign *resumable*: ``run(start_from=...)`` replays
            already-journaled scenarios through
            :class:`~repro.fleet.JournalReplayer` instead of
            re-simulating them, byte-identical by the replay
            determinism contract.  Joint single-process path only —
            mutually exclusive with ``patient_workers`` and
            ``shard_workers``.
    """

    n_patients: int = 20
    n_sentinels: int = 2
    duration_s: float = 60.0
    fs: float = 250.0
    master_seed: int = 2014
    workers: int = 0
    gateway_n_iter: int = 80
    excerpt_period_s: float = 60.0
    stream_telemetry: bool = False
    patient_workers: int = 0
    shard_workers: int = 0
    governed: bool = False
    governor_capacity_mah: float = 0.05
    governor_initial_soc: float = 0.9
    governor_soc_span: float = 0.5
    governor_min_dwell_s: float = 0.0
    scheduler_engine: str = "kernel"
    journal_dir: str | None = None

    def __post_init__(self) -> None:
        if self.n_patients < 1:
            raise ValueError("need at least one patient")
        if not 0 <= self.n_sentinels <= self.n_patients:
            raise ValueError("n_sentinels must be within the cohort")
        if self.patient_workers < 0:
            raise ValueError("patient_workers must be >= 0")
        if self.shard_workers < 0:
            raise ValueError("shard_workers must be >= 0")
        if self.patient_workers and self.shard_workers:
            raise ValueError("patient_workers and shard_workers are "
                             "mutually exclusive sweep modes")
        if self.journal_dir is not None:
            if not self.journal_dir:
                raise ValueError("journal_dir must be a non-empty path")
            if self.patient_workers or self.shard_workers:
                raise ValueError(
                    "journal_dir journals the joint single-process "
                    "path; it is mutually exclusive with "
                    "patient_workers and shard_workers")
        if self.governor_capacity_mah <= 0:
            raise ValueError("governor_capacity_mah must be positive")
        if not 0 < self.governor_initial_soc <= 1:
            raise ValueError("governor_initial_soc must be in (0, 1]")
        if self.governor_soc_span < 0:
            raise ValueError("governor_soc_span must be >= 0")


@dataclass(frozen=True)
class ScenarioResult:
    """Structured outcome of one scenario over the cohort.

    All float metrics are rounded to 6 decimals so the serialized
    report is byte-stable.  ``runtime_s`` and ``unit_runtimes_s`` are
    wall-clock and therefore excluded from :meth:`to_dict` (the
    determinism surface); :meth:`CampaignReport.to_json` can attach
    them out-of-band via ``include_timings=True``.
    """

    scenario: str
    description: str
    n_patients: int
    duration_s: float
    packets_sent: int
    packets_reconstructed: int
    node_alarms: int
    confirmed_alarms: int
    alarm_delivery_rate: float
    sentinel_node_alarms: int
    sentinel_confirmed_alarms: int
    sentinel_false_drop_rate: float
    snr_p10_db: float
    snr_p50_db: float
    snr_p90_db: float
    snr_drop_p50_db: float
    uplink_bytes_per_patient_day: float
    state_counts: dict[str, int]
    stale_patients: int
    duplicate_packets: int
    reassembly_gaps: int
    queue_dropped: int
    link_stats: dict[str, int]
    runtime_s: float = 0.0
    governed: bool = False
    mode_seconds: dict[str, float] = field(default_factory=dict)
    governor_switches: int = 0
    mean_final_soc: float = float("nan")
    telemetry_packets: int = 0
    unit_runtimes_s: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Deterministic dict view (excludes wall-clock runtime)."""
        out = {
            "scenario": self.scenario,
            "description": self.description,
            "n_patients": self.n_patients,
            "duration_s": _round(self.duration_s),
            "packets_sent": self.packets_sent,
            "packets_reconstructed": self.packets_reconstructed,
            "node_alarms": self.node_alarms,
            "confirmed_alarms": self.confirmed_alarms,
            "alarm_delivery_rate": _round(self.alarm_delivery_rate),
            "sentinel_node_alarms": self.sentinel_node_alarms,
            "sentinel_confirmed_alarms": self.sentinel_confirmed_alarms,
            "sentinel_false_drop_rate":
                _round(self.sentinel_false_drop_rate),
            "snr_p10_db": _round(self.snr_p10_db),
            "snr_p50_db": _round(self.snr_p50_db),
            "snr_p90_db": _round(self.snr_p90_db),
            "snr_drop_p50_db": _round(self.snr_drop_p50_db),
            "uplink_bytes_per_patient_day":
                _round(self.uplink_bytes_per_patient_day),
            "state_counts": dict(sorted(self.state_counts.items())),
            "stale_patients": self.stale_patients,
            "duplicate_packets": self.duplicate_packets,
            "reassembly_gaps": self.reassembly_gaps,
            "queue_dropped": self.queue_dropped,
            "link_stats": dict(sorted(self.link_stats.items())),
            "governed": self.governed,
            "mode_seconds": {mode: _round(sec)
                             for mode, sec
                             in sorted(self.mode_seconds.items())
                             if sec > 0},
            "governor_switches": self.governor_switches,
            "mean_final_soc": _round(self.mean_final_soc),
            "telemetry_packets": self.telemetry_packets,
        }
        return out


def _round(value: float, digits: int = 6) -> float | None:
    """JSON-safe rounding (``None`` for nan/inf)."""
    if not np.isfinite(value):
        return None
    return round(float(value), digits)


def _governed_kit(spec: ScenarioSpec, config: CampaignConfig):
    """Scheduler wiring of one governed scenario run.

    Returns ``(governor_factory, extra_load, acuity_override)`` — all
    ``None`` when the campaign is ungoverned.  Per-patient starting SoC
    is seed-derived from the master seed (the cohort must not switch
    modes in lockstep), ``battery_drain`` events become a parasitic
    load averaged over each tick's overlap with the episode, and
    ``governor_stress`` events force the patient's acuity to ``alert``
    for every tick they touch.
    """
    if not config.governed:
        return None, None, None
    table = ModePowerTable()
    gov_config = GovernorConfig(min_dwell_s=config.governor_min_dwell_s)

    def factory(profile: PatientProfile) -> EnergyGovernor:
        frac = derive_seed(config.master_seed, "governor-soc",
                           profile.patient_id) % 10_000 / 10_000.0
        soc = max(0.05, config.governor_initial_soc
                  - config.governor_soc_span * frac)
        return EnergyGovernor(
            config=gov_config, table=table,
            battery=BatteryModel(
                cell=Battery(capacity_mah=config.governor_capacity_mah),
                soc=soc))

    drains = [f for f in spec.faults if f.kind == FAULT_BATTERY_DRAIN]
    stresses = [f for f in spec.faults
                if f.kind == FAULT_GOVERNOR_STRESS]
    period = config.excerpt_period_s

    def extra_load(pid: str, t0: float) -> float:
        total = 0.0
        for fault in drains:
            overlap = (min(fault.stop_s, t0 + period)
                       - max(fault.start_s, t0))
            total += fault.severity * max(0.0, overlap) / period
        return total

    def acuity_override(pid: str, t0: float) -> str | None:
        for fault in stresses:
            if fault.start_s < t0 + period and fault.stop_s > t0:
                return STATE_ALERT
        return None

    return (factory,
            extra_load if drains else None,
            acuity_override if stresses else None)


@dataclass(frozen=True)
class _PatientOutcome:
    """Result of one ``(patient, scenario)`` unit of a decomposed sweep.

    Only the (picklable) numbers the merged :class:`ScenarioResult`
    needs cross the process boundary — never the reconstructed signals.
    """

    patient_id: str
    scenario: str
    packets_sent: int
    packets_reconstructed: int
    node_alarms: int
    confirmed_alarms: int
    payload_bits: int
    duplicates: int
    gaps: int
    queue_dropped: int
    snrs: tuple[float, ...]
    state: str
    stale: bool
    link_stats: dict[str, int]
    runtime_s: float
    mode_seconds: dict[str, float]
    governor_switches: int
    final_soc: float
    telemetry_packets: int


def _patient_link(spec: ScenarioSpec, master_seed: int,
                  patient_id: str) -> ImpairedLink:
    """One patient's channel model, seeded per patient.

    The single seed-derivation site shared by the decomposed
    (``patient_workers``) and shard-backed (``shard_workers``) sweeps —
    their byte-identity depends on both drawing from exactly these
    streams.
    """
    return ImpairedLink(spec.link,
                        seed=derive_seed(master_seed, spec.name,
                                         "link", patient_id))


def _fault_injector(spec: ScenarioSpec, master_seed: int):
    """Per-patient fault injection hook with seed-derived streams.

    Shared by both sweep modes for the same reason as
    :func:`_patient_link`.
    """

    def inject(prof: PatientProfile, record: MultiLeadEcg) -> MultiLeadEcg:
        rng = np.random.default_rng(
            derive_seed(master_seed, spec.name, "faults",
                        prof.patient_id))
        return apply_faults(record, spec.faults, rng)

    return inject


def _patient_unit(spec: ScenarioSpec, profile: PatientProfile,
                  config: CampaignConfig,
                  detector: AfDetector) -> _PatientOutcome:
    """Run one patient through one scenario, fully self-contained.

    Module-level so a :class:`ProcessPoolExecutor` can pickle it.  Every
    random stream is derived from the master seed plus the scenario and
    patient names — the outcome is a pure function of its arguments, so
    any process/worker assignment computes identical numbers.
    """
    t0 = time.perf_counter()
    link = (_patient_link(spec, config.master_seed, profile.patient_id)
            if spec.link.impaired else None)
    inject = _fault_injector(spec, config.master_seed)
    factory, extra_load, acuity_override = _governed_kit(spec, config)
    scheduler = FleetScheduler(
        [profile],
        SchedulerConfig(duration_s=config.duration_s, fs=config.fs,
                        engine=config.scheduler_engine),
        node_config=NodeProxyConfig(
            excerpt_period_s=config.excerpt_period_s,
            stream_telemetry=config.stream_telemetry),
        gateway=Gateway(GatewayConfig(n_iter=config.gateway_n_iter)),
        af_detector=detector,
        link=link,
        record_transform=inject if spec.signal_faults else None,
        governor_factory=factory,
        extra_load=extra_load,
        acuity_override=acuity_override,
    )
    fleet = scheduler.run()
    gateway = scheduler.gateway
    channel = gateway.channels.get(profile.patient_id)
    triage = scheduler.board.patients[profile.patient_id]
    governor = scheduler.governors.get(profile.patient_id)
    return _PatientOutcome(
        patient_id=profile.patient_id,
        scenario=spec.name,
        packets_sent=fleet.packets_sent,
        packets_reconstructed=len(fleet.excerpts),
        node_alarms=len(fleet.node_reports[profile.patient_id].alarms),
        confirmed_alarms=channel.n_confirmed if channel else 0,
        payload_bits=channel.payload_bits if channel else 0,
        duplicates=channel.n_duplicates if channel else 0,
        gaps=channel.n_gaps if channel else 0,
        queue_dropped=gateway.dropped,
        snrs=tuple(channel.snrs) if channel else (),
        state=triage.state,
        stale=triage.stale,
        link_stats=dict(fleet.link_stats),
        runtime_s=time.perf_counter() - t0,
        mode_seconds=(dict(governor.mode_seconds)
                      if governor is not None else {}),
        governor_switches=(governor.n_switches
                           if governor is not None else 0),
        final_soc=(governor.battery.soc
                   if governor is not None else float("nan")),
        telemetry_packets=channel.n_telemetry if channel else 0,
    )


def _scenario_shard_hooks(spec: ScenarioSpec, config: CampaignConfig,
                          profiles: list[PatientProfile],
                          master_seed: int) -> ShardHooks:
    """Shard wiring of one scenario: built inside each worker process.

    Module-level (pickled as a :func:`functools.partial` over ``spec``
    and ``config``) so the :class:`~repro.fleet.ShardedFleetRunner` can
    ship it to workers.  Every random stream comes from the *same*
    per-patient derivation sites as the decomposed path
    (:func:`_patient_link`, :func:`_fault_injector`), which is what
    makes the two sweep modes byte-identical by construction.
    """

    def link_for(patient_id: str):
        """One independent channel per patient, decomposed-path seeds."""
        return _patient_link(spec, master_seed, patient_id)

    factory, extra_load, acuity_override = _governed_kit(spec, config)
    return ShardHooks(
        link=PerPatientLink(link_for) if spec.link.impaired else None,
        record_transform=(_fault_injector(spec, master_seed)
                          if spec.signal_faults else None),
        governor_factory=factory,
        extra_load=extra_load,
        acuity_override=acuity_override,
    )


@dataclass
class CampaignReport:
    """All scenario results of one campaign, plus the reproduce recipe."""

    config: CampaignConfig
    results: list[ScenarioResult] = field(default_factory=list)

    def result(self, scenario: str) -> ScenarioResult:
        """The result of one scenario by name."""
        for res in self.results:
            if res.scenario == scenario:
                return res
        raise KeyError(f"no scenario {scenario!r} in this campaign")

    @property
    def total_runtime_s(self) -> float:
        """Wall-clock seconds across every scenario run."""
        return sum(res.runtime_s for res in self.results)

    def to_dict(self, include_timings: bool = False) -> dict:
        """Deterministic dict view — identical across reruns of the
        same config (the campaign's reproducibility surface).

        Args:
            include_timings: Attach a ``"timings"`` block with
                per-scenario and per-``(patient, scenario)`` wall-clock
                durations.  Off by default: wall time varies across
                reruns, so the block is excluded from the
                byte-reproducibility comparison fields.
        """
        out = {
            "master_seed": self.config.master_seed,
            "n_patients": self.config.n_patients,
            "n_sentinels": self.config.n_sentinels,
            "duration_s": _round(self.config.duration_s),
            "scenarios": [res.to_dict() for res in self.results],
        }
        if include_timings:
            out["timings"] = self.timings_dict()
        return out

    def timings_dict(self) -> dict:
        """Wall-clock attribution: per-scenario and per-unit seconds.

        Keys are sorted for a stable layout, but the values are real
        wall time — never compare this block byte-for-byte.
        """
        return {
            res.scenario: {
                "runtime_s": _round(res.runtime_s),
                "units": {pid: _round(sec) for pid, sec
                          in sorted(res.unit_runtimes_s.items())},
            }
            for res in self.results
        }

    def to_json(self, indent: int | None = 2,
                include_timings: bool = False) -> str:
        """Serialized report (deterministic unless timings included)."""
        return json.dumps(self.to_dict(include_timings=include_timings),
                          indent=indent, sort_keys=True)

    def describe(self) -> str:
        """Fixed-width text table (what the example prints)."""
        header = (f"{'scenario':<14} {'alarms':>7} {'conf':>5} "
                  f"{'fdrop%':>7} {'p50 SNR':>8} {'dSNR':>6} "
                  f"{'kB/pt/day':>10} {'stale':>6} {'dup':>4} "
                  f"{'gaps':>5}")
        lines = [
            f"campaign: {self.config.n_patients} patients "
            f"({self.config.n_sentinels} clean-AF sentinels), "
            f"{self.config.duration_s:.0f} s each, master seed "
            f"{self.config.master_seed}",
            header,
            "-" * len(header),
        ]
        for res in self.results:
            p50 = res.snr_p50_db
            drop = res.snr_drop_p50_db
            lines.append(
                f"{res.scenario:<14} {res.node_alarms:>7} "
                f"{res.confirmed_alarms:>5} "
                f"{100 * res.sentinel_false_drop_rate:>6.1f}% "
                f"{p50:>8.1f} {drop:>6.1f} "
                f"{res.uplink_bytes_per_patient_day / 1e3:>10.1f} "
                f"{res.stale_patients:>6} {res.duplicate_packets:>4} "
                f"{res.reassembly_gaps:>5}")
        return "\n".join(lines)


class CampaignRunner:
    """Run a scenario grid over one reproducible cohort.

    Args:
        scenarios: The grid (order preserved in the report; include
            :func:`~repro.scenarios.clean_scenario` first to anchor the
            SNR-degradation column).
        config: Campaign parameters.
        af_detector: Trained fleet AF detector; trained internally from
            a seed-derived corpus when omitted.
        obs: Optional observability bundle.  The joint in-process path
            threads it through the gateway/scheduler/governor hot
            joints; the decomposed and sharded paths keep it
            parent-side (workers are separate processes) where it
            records per-scenario and per-unit wall-time gauges.
    """

    def __init__(self, scenarios: tuple[ScenarioSpec, ...] | list,
                 config: CampaignConfig | None = None,
                 af_detector: AfDetector | None = None,
                 obs: Observability | None = None) -> None:
        self.scenarios = tuple(scenarios)
        if not self.scenarios:
            raise ValueError("need at least one scenario")
        names = [s.name for s in self.scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"scenario names must be unique, got {names}")
        self.config = config or CampaignConfig()
        self.af_detector = af_detector
        self.obs = obs

    def cohort(self) -> list[PatientProfile]:
        """The campaign cohort: drawn mix + clean-AF sentinels."""
        cfg = self.config
        n_drawn = cfg.n_patients - cfg.n_sentinels
        profiles: list[PatientProfile] = []
        if n_drawn > 0:
            profiles.extend(make_cohort(CohortConfig(
                n_patients=n_drawn,
                seed=derive_seed(cfg.master_seed, "cohort"))))
        for i in range(cfg.n_sentinels):
            profiles.append(PatientProfile(
                patient_id=f"{SENTINEL_PREFIX}{i:02d}",
                rhythm="af",
                mean_hr_bpm=75.0,
                snr_db=None,
                n_leads=3,
                seed=derive_seed(cfg.master_seed, "sentinel", i),
            ))
        return profiles

    def run(self, start_from: str | None = None,
            stop_after: str | None = None) -> CampaignReport:
        """Execute every scenario and assemble the campaign report.

        Args:
            start_from: Resume checkpoint — the first scenario to
                actually *simulate*.  Scenarios earlier in the grid are
                replayed from their ``journal_dir`` segments (recorded
                by a previous, possibly interrupted, run) and fold to
                byte-identical results.  Requires
                ``CampaignConfig.journal_dir``.
            stop_after: Stage checkpoint — stop (and return the partial
                report) after this scenario completes.  With
                ``journal_dir`` set, a later run can pick up where this
                one stopped via ``start_from``.
        """
        cfg = self.config
        start_idx = self._checkpoint_index(start_from, "start_from")
        stop_idx = self._checkpoint_index(stop_after, "stop_after")
        if stop_idx is not None and start_idx and stop_idx < start_idx:
            raise ValueError("stop_after precedes start_from in the "
                             "scenario grid")
        if start_idx and cfg.journal_dir is None:
            raise ValueError("start_from resumes from journal "
                             "segments; set CampaignConfig.journal_dir")
        detector = self.af_detector or self._train_detector()
        cohort = self.cohort()
        report = CampaignReport(config=cfg)
        clean_p50: float | None = None
        if cfg.shard_workers >= 1:
            outcomes = self._run_sharded(cohort, detector)
        elif cfg.patient_workers >= 1:
            outcomes = self._run_decomposed(cohort, detector)
        else:
            outcomes = None
        for i, spec in enumerate(self.scenarios):
            if outcomes is not None:
                result = self._merge_scenario(spec, cohort, outcomes,
                                              clean_p50)
            elif i < (start_idx or 0):
                result = self._replay_scenario(spec, clean_p50)
            else:
                result = self._run_scenario(spec, cohort, detector,
                                            clean_p50)
            if clean_p50 is None and np.isfinite(result.snr_p50_db):
                # First scenario anchors the SNR-degradation column
                # (put the clean control first).
                clean_p50 = result.snr_p50_db
            if self.obs is not None:
                self._note_runtimes(result)
            report.results.append(result)
            if stop_idx is not None and i == stop_idx:
                break
        return report

    def _checkpoint_index(self, name: str | None,
                          what: str) -> int | None:
        """Grid position of a checkpoint scenario name (``None`` off)."""
        if name is None:
            return None
        for i, spec in enumerate(self.scenarios):
            if spec.name == name:
                return i
        raise ValueError(f"{what}={name!r} is not in the scenario grid "
                         f"{[s.name for s in self.scenarios]}")

    def _note_runtimes(self, result: ScenarioResult) -> None:
        """Stamp wall-time attribution gauges (shard scope: wall clock
        is never part of the canonical fleet-scope surface)."""
        scenario_g = self.obs.metrics.gauge(
            "campaign_scenario_runtime_seconds",
            "Wall seconds spent on one scenario", scope=SCOPE_SHARD)
        scenario_g.set(result.runtime_s, scenario=result.scenario)
        unit_g = self.obs.metrics.gauge(
            "campaign_unit_runtime_seconds",
            "Wall seconds per (patient, scenario) unit",
            scope=SCOPE_SHARD)
        for pid, sec in sorted(result.unit_runtimes_s.items()):
            unit_g.set(sec, patient=pid, scenario=result.scenario)

    def _run_decomposed(self, cohort: list[PatientProfile],
                        detector: AfDetector,
                        ) -> dict[tuple[str, str], _PatientOutcome]:
        """Run every ``(patient, scenario)`` unit, keyed — not ordered.

        Results are collected into a dict keyed by ``(patient_id,
        scenario)`` as they *complete* (arbitrary arrival order under a
        process pool); :meth:`_merge_scenario` then reads them back in
        cohort x grid order.  Merging must never depend on arrival
        order — that is what makes a 4-worker run byte-identical to
        ``patient_workers=1`` (tested).
        """
        cfg = self.config
        units = [(spec, profile) for spec in self.scenarios
                 for profile in cohort]
        outcomes: dict[tuple[str, str], _PatientOutcome] = {}
        if cfg.patient_workers == 1:
            for spec, profile in units:
                outcome = _patient_unit(spec, profile, cfg, detector)
                outcomes[(profile.patient_id, spec.name)] = outcome
            return outcomes
        with ProcessPoolExecutor(max_workers=cfg.patient_workers) as pool:
            futures = [pool.submit(_patient_unit, spec, profile, cfg,
                                   detector) for spec, profile in units]
            for future in as_completed(futures):
                outcome = future.result()
                outcomes[(outcome.patient_id, outcome.scenario)] = outcome
        return outcomes

    def _run_sharded(self, cohort: list[PatientProfile],
                     detector: AfDetector,
                     ) -> dict[tuple[str, str], _PatientOutcome]:
        """Shard-backed sweep: one sharded fleet run per scenario.

        Each scenario's cohort is striped across ``shard_workers``
        processes by a :class:`~repro.fleet.ShardedFleetRunner`; the
        decoded per-patient shard rows become the same
        :class:`_PatientOutcome` units the decomposed path produces, so
        :meth:`_merge_scenario` is reused unchanged.  Per-patient link
        and fault seeds match the decomposed path, making the two modes
        byte-identical (tested).  The per-shard gateway's queue-drop
        counter has no per-patient attribution; it is carried on the
        scenario's first cohort row (zero in practice — the merge only
        ever sums it).
        """
        cfg = self.config
        outcomes: dict[tuple[str, str], _PatientOutcome] = {}
        for spec in self.scenarios:
            runner = ShardedFleetRunner(
                cohort,
                n_shards=cfg.shard_workers,
                config=SchedulerConfig(duration_s=cfg.duration_s,
                                       fs=cfg.fs,
                                       engine=cfg.scheduler_engine),
                node_config=NodeProxyConfig(
                    excerpt_period_s=cfg.excerpt_period_s,
                    stream_telemetry=cfg.stream_telemetry),
                gateway_config=GatewayConfig(n_iter=cfg.gateway_n_iter),
                master_seed=cfg.master_seed,
                hook_factory=functools.partial(_scenario_shard_hooks,
                                               spec, cfg),
                af_detector=detector,
            )
            fleet = runner.run()
            per_row_runtime = (fleet.timings_s.get("total", 0.0)
                               / max(1, len(cohort)))
            for i, profile in enumerate(cohort):
                row = fleet.rows[profile.patient_id]
                channel = row.channel
                outcomes[(profile.patient_id, spec.name)] = \
                    _PatientOutcome(
                        patient_id=profile.patient_id,
                        scenario=spec.name,
                        packets_sent=row.n_sent,
                        packets_reconstructed=row.n_reconstructed,
                        node_alarms=row.n_node_alarms,
                        confirmed_alarms=(channel.n_confirmed
                                          if channel else 0),
                        payload_bits=(channel.payload_bits
                                      if channel else 0),
                        duplicates=(channel.n_duplicates
                                    if channel else 0),
                        gaps=channel.n_gaps if channel else 0,
                        queue_dropped=(fleet.dropped_packets
                                       if i == 0 else 0),
                        snrs=tuple(channel.snrs) if channel else (),
                        state=row.triage.state,
                        stale=row.triage.stale,
                        link_stats=dict(row.link_stats),
                        runtime_s=per_row_runtime,
                        mode_seconds=dict(row.mode_seconds),
                        governor_switches=row.governor_switches,
                        final_soc=row.final_soc,
                        telemetry_packets=(channel.n_telemetry
                                           if channel else 0),
                    )
        return outcomes

    def _merge_scenario(self, spec: ScenarioSpec,
                        cohort: list[PatientProfile],
                        outcomes: dict[tuple[str, str], _PatientOutcome],
                        clean_p50: float | None) -> ScenarioResult:
        """Fold one scenario's per-patient outcomes into a result.

        Iterates the cohort in its (seed-derived) order and looks every
        outcome up by ``(patient_id, scenario)`` key, so the merge is
        independent of completion order.
        """
        cfg = self.config
        rows = [outcomes[(profile.patient_id, spec.name)]
                for profile in cohort]
        n = len(rows)
        scale_day = 86400.0 / cfg.duration_s
        node_alarms = sum(r.node_alarms for r in rows)
        confirmed = sum(r.confirmed_alarms for r in rows)
        snrs = np.array([s for r in rows for s in r.snrs], dtype=float)
        p10, p50, p90 = (np.percentile(snrs, (10, 50, 90)) if snrs.size
                         else (float("nan"),) * 3)
        sentinel_rows = [r for r in rows
                         if r.patient_id.startswith(SENTINEL_PREFIX)]
        sent_node = sum(r.node_alarms for r in sentinel_rows)
        sent_conf = sum(r.confirmed_alarms for r in sentinel_rows)
        false_drop = (1.0 - min(sent_conf, sent_node) / sent_node
                      if sent_node else 0.0)
        delivery = confirmed / node_alarms if node_alarms else 1.0
        drop_p50 = (clean_p50 - float(p50)
                    if clean_p50 is not None and np.isfinite(p50) else 0.0)
        states = Counter(r.state for r in rows)
        link_stats: Counter[str] = Counter()
        for r in rows:
            link_stats.update(r.link_stats)
        mode_seconds: dict[str, float] = {}
        for r in rows:
            for mode, sec in r.mode_seconds.items():
                mode_seconds[mode] = mode_seconds.get(mode, 0.0) + sec
        socs = [r.final_soc for r in rows if np.isfinite(r.final_soc)]
        return ScenarioResult(
            scenario=spec.name,
            description=spec.description,
            n_patients=n,
            duration_s=cfg.duration_s,
            packets_sent=sum(r.packets_sent for r in rows),
            packets_reconstructed=sum(r.packets_reconstructed
                                      for r in rows),
            node_alarms=node_alarms,
            confirmed_alarms=confirmed,
            alarm_delivery_rate=delivery,
            sentinel_node_alarms=sent_node,
            sentinel_confirmed_alarms=sent_conf,
            sentinel_false_drop_rate=false_drop,
            snr_p10_db=float(p10),
            snr_p50_db=float(p50),
            snr_p90_db=float(p90),
            snr_drop_p50_db=drop_p50,
            uplink_bytes_per_patient_day=sum(r.payload_bits for r in rows)
            / 8.0 / n * scale_day,
            state_counts={state: states.get(state, 0)
                          for state in STATES},
            stale_patients=sum(1 for r in rows if r.stale),
            duplicate_packets=sum(r.duplicates for r in rows),
            reassembly_gaps=sum(r.gaps for r in rows),
            queue_dropped=sum(r.queue_dropped for r in rows),
            link_stats=dict(link_stats),
            runtime_s=sum(r.runtime_s for r in rows),
            governed=cfg.governed,
            mode_seconds=mode_seconds,
            governor_switches=sum(r.governor_switches for r in rows),
            mean_final_soc=(float(np.mean(socs)) if socs
                            else float("nan")),
            telemetry_packets=sum(r.telemetry_packets for r in rows),
            unit_runtimes_s={r.patient_id: r.runtime_s for r in rows},
        )

    def _train_detector(self) -> AfDetector:
        """Train the fleet AF detector from a seed-derived corpus."""
        corpus = make_corpus(
            "af_mix", n_records=3, duration_s=120.0,
            seed=derive_seed(self.config.master_seed, "af-train"))
        return AfDetector().fit(list(corpus))

    def _journal_config(self, spec: ScenarioSpec) -> JournalConfig:
        """The journal segment family of one scenario's run."""
        return JournalConfig(dir=self.config.journal_dir,
                             name=spec.name)

    def _run_scenario(self, spec: ScenarioSpec,
                      cohort: list[PatientProfile],
                      detector: AfDetector,
                      clean_p50: float | None) -> ScenarioResult:
        cfg = self.config
        gateway_config = GatewayConfig(n_iter=cfg.gateway_n_iter)
        link = (ImpairedLink(spec.link,
                             seed=derive_seed(cfg.master_seed, spec.name,
                                              "link"))
                if spec.link.impaired else None)
        inject = _fault_injector(spec, cfg.master_seed)
        factory, extra_load, acuity_override = _governed_kit(spec, cfg)
        journal = None
        if cfg.journal_dir is not None:
            # A re-run of a live scenario restarts its journal from
            # scratch (resume=False): segments must describe exactly
            # one run to replay byte-identically.
            journal = JournalWriter(
                self._journal_config(spec),
                meta=journal_meta(cfg.duration_s, cfg.fs,
                                  gateway_config),
                obs=self.obs, resume=False)
        scheduler = FleetScheduler(
            cohort,
            SchedulerConfig(duration_s=cfg.duration_s, fs=cfg.fs,
                            workers=cfg.workers,
                            engine=cfg.scheduler_engine),
            node_config=NodeProxyConfig(
                excerpt_period_s=cfg.excerpt_period_s,
                stream_telemetry=cfg.stream_telemetry),
            gateway=Gateway(gateway_config, obs=self.obs),
            af_detector=detector,
            link=link,
            record_transform=inject if spec.signal_faults else None,
            governor_factory=factory,
            extra_load=extra_load,
            acuity_override=acuity_override,
            obs=self.obs,
            journal=journal,
        )
        t0 = time.perf_counter()
        try:
            fleet = scheduler.run()
        finally:
            if journal is not None:
                journal.close()
        runtime = time.perf_counter() - t0
        return self._result_from(spec, fleet, scheduler, clean_p50,
                                 runtime)

    def _replay_scenario(self, spec: ScenarioSpec,
                         clean_p50: float | None) -> ScenarioResult:
        """Fold one already-journaled scenario without re-simulating.

        Streams the scenario's journal segments back through fresh
        gateway cores (:class:`~repro.fleet.JournalReplayer`); the
        replayed summary and rows are byte-identical to the original
        live run's, so the folded :class:`ScenarioResult` is too.
        """
        t0 = time.perf_counter()
        replay = JournalReplayer(self._journal_config(spec)).run()
        runtime = time.perf_counter() - t0
        return self._result_from_replay(spec, replay, clean_p50,
                                        runtime)

    def _result_from_replay(self, spec: ScenarioSpec,
                            replay: ReplayReport,
                            clean_p50: float | None,
                            runtime: float) -> ScenarioResult:
        """Map a replayed journal onto the scenario-result schema.

        Mirrors :meth:`_result_from` field by field, reading from the
        replay's merged summary and per-patient rows instead of the
        live scheduler state.
        """
        summary = replay.summary
        rows = replay.rows
        sentinel_rows = [row for pid, row in rows.items()
                        if pid.startswith(SENTINEL_PREFIX)]
        sent_node = sum(row.n_node_alarms for row in sentinel_rows)
        sent_conf = sum(row.channel.n_confirmed for row in sentinel_rows
                        if row.channel is not None)
        false_drop = (1.0 - min(sent_conf, sent_node) / sent_node
                      if sent_node else 0.0)
        delivery = (summary.confirmed_alarms / summary.node_alarms
                    if summary.node_alarms else 1.0)
        drop_p50 = (clean_p50 - summary.snr_p50_db
                    if clean_p50 is not None
                    and np.isfinite(summary.snr_p50_db) else 0.0)
        return ScenarioResult(
            scenario=spec.name,
            description=spec.description,
            n_patients=summary.n_patients,
            duration_s=summary.duration_s,
            packets_sent=replay.packets_sent,
            packets_reconstructed=sum(row.n_reconstructed
                                      for row in rows.values()),
            node_alarms=summary.node_alarms,
            confirmed_alarms=summary.confirmed_alarms,
            alarm_delivery_rate=delivery,
            sentinel_node_alarms=sent_node,
            sentinel_confirmed_alarms=sent_conf,
            sentinel_false_drop_rate=false_drop,
            snr_p10_db=summary.snr_p10_db,
            snr_p50_db=summary.snr_p50_db,
            snr_p90_db=summary.snr_p90_db,
            snr_drop_p50_db=drop_p50,
            uplink_bytes_per_patient_day=
                summary.uplink_bytes_per_patient_day,
            state_counts=summary.state_counts,
            stale_patients=summary.stale_patients,
            duplicate_packets=summary.duplicate_packets,
            reassembly_gaps=summary.reassembly_gaps,
            queue_dropped=summary.dropped_packets,
            link_stats=replay.link_stats,
            runtime_s=runtime,
            governed=summary.governed,
            mode_seconds=dict(summary.mode_seconds),
            governor_switches=summary.governor_switches,
            mean_final_soc=summary.mean_final_soc,
            telemetry_packets=sum(
                row.channel.n_telemetry for row in rows.values()
                if row.channel is not None),
            unit_runtimes_s={
                pid: runtime / max(1, summary.n_patients)
                for pid in rows},
        )

    def _result_from(self, spec: ScenarioSpec, fleet: FleetReport,
                     scheduler: FleetScheduler,
                     clean_p50: float | None,
                     runtime: float) -> ScenarioResult:
        summary = fleet.summary
        sentinel_ids = [p.patient_id for p in fleet.profiles
                        if p.patient_id.startswith(SENTINEL_PREFIX)]
        sent_node = sum(len(fleet.node_reports[pid].alarms)
                        for pid in sentinel_ids)
        sent_conf = sum(
            scheduler.gateway.channels[pid].n_confirmed
            for pid in sentinel_ids
            if pid in scheduler.gateway.channels)
        false_drop = (1.0 - min(sent_conf, sent_node) / sent_node
                      if sent_node else 0.0)
        delivery = (summary.confirmed_alarms / summary.node_alarms
                    if summary.node_alarms else 1.0)
        drop_p50 = (clean_p50 - summary.snr_p50_db
                    if clean_p50 is not None
                    and np.isfinite(summary.snr_p50_db) else 0.0)
        return ScenarioResult(
            scenario=spec.name,
            description=spec.description,
            n_patients=summary.n_patients,
            duration_s=summary.duration_s,
            packets_sent=fleet.packets_sent,
            packets_reconstructed=len(fleet.excerpts),
            node_alarms=summary.node_alarms,
            confirmed_alarms=summary.confirmed_alarms,
            alarm_delivery_rate=delivery,
            sentinel_node_alarms=sent_node,
            sentinel_confirmed_alarms=sent_conf,
            sentinel_false_drop_rate=false_drop,
            snr_p10_db=summary.snr_p10_db,
            snr_p50_db=summary.snr_p50_db,
            snr_p90_db=summary.snr_p90_db,
            snr_drop_p50_db=drop_p50,
            uplink_bytes_per_patient_day=
                summary.uplink_bytes_per_patient_day,
            state_counts=summary.state_counts,
            stale_patients=summary.stale_patients,
            duplicate_packets=summary.duplicate_packets,
            reassembly_gaps=summary.reassembly_gaps,
            queue_dropped=summary.dropped_packets,
            link_stats=fleet.link_stats,
            runtime_s=runtime,
            governed=summary.governed,
            mode_seconds=dict(summary.mode_seconds),
            governor_switches=summary.governor_switches,
            mean_final_soc=summary.mean_final_soc,
            telemetry_packets=sum(
                ch.n_telemetry
                for ch in scheduler.gateway.channels.values()),
            # The joint path runs the whole cohort in one scheduler
            # loop, so the per-unit split is an even share of the
            # scenario wall time (exact attribution needs the
            # decomposed or sharded path).
            unit_runtimes_s={
                p.patient_id: runtime / max(1, summary.n_patients)
                for p in fleet.profiles},
        )
