"""Tests for the binary uplink wire codec (`repro.fleet.wire`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.encoder import EncodedWindow
from repro.fleet import (
    Gateway,
    NodeProxy,
    NodeProxyConfig,
    PatientProfile,
    StreamDecoder,
    UplinkPacket,
    WIRE_MAGIC,
    WireFormatError,
    decode_packet,
    decode_packets,
    encode_packet,
    encode_packets,
    encode_stream_frame,
    synthesize_patient,
)
from repro.fleet.wire import encode_packet_into
from repro.power.governor import MODES

PROXY_CONFIG = NodeProxyConfig(stream_telemetry=False,
                               excerpt_period_s=30.0)


def assert_packets_equal(a: UplinkPacket, b: UplinkPacket) -> None:
    """Field-by-field exactness check (NaN-aware for telemetry)."""
    for name in ("patient_id", "seq", "timestamp_s", "kind", "start",
                 "payload_bits", "n_leads", "window_n", "cr_percent",
                 "quant_bits", "cs_seed", "fs", "mode"):
        assert getattr(a, name) == getattr(b, name), name
    for name in ("mean_hr_bpm", "soc"):
        x, y = getattr(a, name), getattr(b, name)
        assert x == y or (np.isnan(x) and np.isnan(y)), name
    assert len(a.frames) == len(b.frames)
    for frame_a, frame_b in zip(a.frames, b.frames):
        assert len(frame_a) == len(frame_b)
        for wa, wb in zip(frame_a, frame_b):
            assert np.array_equal(wa.measurements, wb.measurements)
            assert wa.measurements.dtype == wb.measurements.dtype
            assert wa.scale == wb.scale
            assert wa.payload_bits == wb.payload_bits
            assert wa.additions == wb.additions
    if a.reference is None:
        assert b.reference is None
    else:
        assert b.reference is not None
        assert a.reference.shape == b.reference.shape
        assert np.array_equal(a.reference, b.reference)


def _synthetic_packet(rng: np.random.Generator) -> UplinkPacket:
    """One randomized packet across kinds, dtypes and degenerate shapes."""
    kind = rng.choice(["excerpt", "alarm", "telemetry"])
    n_leads = int(rng.integers(1, 4))
    window_n = int(rng.choice([1, 8, 256]))  # single-sample window too
    n_frames = 0 if kind == "telemetry" else int(rng.integers(0, 4))
    dtype = rng.choice([np.float64, np.float32, np.int16])
    frames = tuple(
        tuple(
            EncodedWindow(
                measurements=(rng.normal(size=int(rng.integers(0, 40)))
                              * 100).astype(dtype),
                scale=float(rng.normal()),
                payload_bits=int(rng.integers(0, 4096)),
                additions=int(rng.integers(0, 10_000)))
            for _ in range(n_leads))
        for _ in range(n_frames))
    reference = None
    if rng.random() < 0.5:
        # Degenerate reference shapes included: a 0-window batch.
        ref_frames = int(rng.integers(0, 3))
        reference = rng.normal(size=(ref_frames, n_leads, window_n))
    return UplinkPacket(
        patient_id=f"p{int(rng.integers(0, 10_000)):04d}",
        seq=int(rng.integers(0, 2**40)),
        timestamp_s=float(rng.normal() * 1e3),
        kind=str(kind),
        start=int(rng.integers(0, 2**31)),
        frames=frames,
        payload_bits=int(rng.integers(0, 2**48)),
        n_leads=n_leads,
        window_n=window_n,
        cr_percent=float(rng.uniform(10, 95)),
        quant_bits=int(rng.integers(2, 17)),
        cs_seed=int(rng.integers(-2**31, 2**31)),
        fs=float(rng.choice([250.0, 256.0, 360.0])),
        mean_hr_bpm=(float("nan") if rng.random() < 0.3
                     else float(rng.uniform(40, 180))),
        reference=reference,
        mode=str(rng.choice(list(MODES))),
        soc=(float("nan") if rng.random() < 0.3
             else float(rng.uniform(0, 1))),
    )


class TestRoundTrip:
    def test_seeded_fuzz_round_trip(self):
        # Every packet kind, measurement dtype and degenerate shape
        # must survive encode -> decode bit for bit.
        rng = np.random.default_rng(2014)
        for _ in range(150):
            packet = _synthetic_packet(rng)
            assert_packets_equal(packet, decode_packet(
                encode_packet(packet)))

    def test_real_node_packets_round_trip(self, trained_af_detector):
        profile = PatientProfile(patient_id="wire", rhythm="af",
                                 snr_db=None, seed=9)
        record = synthesize_patient(profile, duration_s=60.0)
        proxy = NodeProxy(profile, PROXY_CONFIG,
                          af_detector=trained_af_detector)
        _, packets = proxy.run(record)
        packets.append(proxy.telemetry_packet(90.0, mean_hr_bpm=70.0,
                                              soc=0.4))
        packets.append(proxy.raw_packet(record, 0, 91.0, soc=0.8))
        packets.append(proxy.single_lead_packet(record, 0, 92.0,
                                                soc=0.2))
        packets.append(proxy.alarm_packet(record, 2000))
        assert {p.kind for p in packets} == {"excerpt", "telemetry",
                                             "alarm"}
        for packet in packets:
            assert_packets_equal(packet, decode_packet(
                encode_packet(packet)))

    def test_to_bytes_from_bytes_helpers(self):
        packet = _synthetic_packet(np.random.default_rng(7))
        assert_packets_equal(packet,
                             UplinkPacket.from_bytes(packet.to_bytes()))

    def test_stream_round_trip(self):
        rng = np.random.default_rng(5)
        packets = [_synthetic_packet(rng) for _ in range(7)]
        decoded = decode_packets(encode_packets(packets))
        assert len(decoded) == len(packets)
        for a, b in zip(packets, decoded):
            assert_packets_equal(a, b)

    def test_empty_stream(self):
        assert decode_packets(encode_packets([])) == []


class TestDecodeErrors:
    def test_every_truncation_raises(self):
        blob = encode_packet(_synthetic_packet(np.random.default_rng(3)))
        for cut in range(0, len(blob), max(1, len(blob) // 60)):
            with pytest.raises(WireFormatError):
                decode_packet(blob[:cut])

    def test_bad_magic_raises(self):
        blob = bytearray(encode_packet(
            _synthetic_packet(np.random.default_rng(4))))
        blob[0] ^= 0xFF
        with pytest.raises(WireFormatError, match="magic"):
            decode_packet(bytes(blob))

    def test_unknown_version_raises(self):
        blob = bytearray(encode_packet(
            _synthetic_packet(np.random.default_rng(4))))
        blob[len(WIRE_MAGIC)] = 0x7F
        with pytest.raises(WireFormatError, match="version"):
            decode_packet(bytes(blob))

    def test_trailing_bytes_raise(self):
        blob = encode_packet(_synthetic_packet(np.random.default_rng(6)))
        with pytest.raises(WireFormatError, match="trailing"):
            decode_packet(blob + b"\x00")

    def test_truncated_stream_raises(self):
        rng = np.random.default_rng(8)
        stream = encode_packets([_synthetic_packet(rng)
                                 for _ in range(3)])
        with pytest.raises(WireFormatError):
            decode_packets(stream[:-5])


class TestGatewayIngestBytes:
    def test_frame_ingest_equals_object_ingest(self, trained_af_detector):
        profile = PatientProfile(patient_id="ib", rhythm="nsr",
                                 snr_db=None, seed=2)
        record = synthesize_patient(profile, duration_s=60.0)
        proxy = NodeProxy(profile, PROXY_CONFIG,
                          af_detector=trained_af_detector)
        _, packets = proxy.run(record)
        by_object, by_bytes = Gateway(), Gateway()
        for packet in packets:
            # The one ingest surface: same method, either payload type.
            assert by_object.ingest(packet)
            assert by_bytes.ingest(encode_packet(packet))
        obj_out = by_object.drain()
        byte_out = by_bytes.drain()
        assert len(obj_out) == len(byte_out)
        for a, b in zip(obj_out, byte_out):
            assert a.patient_id == b.patient_id
            assert a.snr_db == b.snr_db
            assert np.array_equal(a.signal, b.signal)

    def test_frame_ingest_rejects_garbage(self):
        with pytest.raises(WireFormatError):
            Gateway().ingest(b"not a packet")

    def test_ingest_bytes_shim_warns_and_forwards(self):
        packet = _synthetic_packet(np.random.default_rng(3))
        gateway = Gateway()
        with pytest.warns(DeprecationWarning, match="ingest_bytes"):
            assert gateway.ingest_bytes(encode_packet(packet))
        with pytest.warns(DeprecationWarning):
            with pytest.raises(WireFormatError):
                gateway.ingest_bytes(b"junk")
        gateway.flush_reassembly()
        assert gateway.pending == 1

    def test_zero_copy_ingest_batch(self):
        # Bytes ingest aliases the frame; drain's batched
        # reconstruction then reads measurements straight out of it.
        packet = _synthetic_packet(np.random.default_rng(21))
        decoded = decode_packet(encode_packet(packet))
        for frame in decoded.frames:
            for window in frame:
                assert not window.measurements.flags.writeable

    def test_hostile_dtype_token_rejected(self):
        # A crafted frame carrying an object dtype must fail as a
        # format error, never reach numpy's object-array path.
        packet = _synthetic_packet(np.random.default_rng(11))
        blob = encode_packet(packet)
        victim = None
        for token in (b"<f8", b"<f4", b"<i2"):
            idx = blob.find(bytes([len(token)]) + token)
            if idx >= 0:
                victim = (idx, token)
                break
        if victim is None:
            pytest.skip("no array field in this packet draw")
        idx, token = victim
        forged = bytearray(blob)
        forged[idx + 1:idx + 1 + len(token)] = b"O" * len(token)
        with pytest.raises(WireFormatError):
            decode_packet(bytes(forged))


def _packet_of_kind(kind: str, seed: int) -> UplinkPacket:
    """Draw synthetic packets until one of the requested kind appears."""
    rng = np.random.default_rng(seed)
    for _ in range(64):
        packet = _synthetic_packet(rng)
        if packet.kind == kind:
            return packet
    raise AssertionError(f"no {kind!r} packet in 64 draws")  # pragma: no cover


class TestZeroCopyAliasing:
    """The decode aliasing rule: views from immutable sources only."""

    @pytest.mark.parametrize("kind", ["excerpt", "alarm", "telemetry"])
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_mutating_source_never_corrupts_held_packet(self, kind, seed):
        # Decoding from a *writable* buffer must copy: scribbling over
        # the source afterwards cannot reach into the held packet.
        packet = _packet_of_kind(kind, seed)
        source = bytearray(encode_packet(packet))
        decoded = decode_packet(source)
        source[:] = b"\xff" * len(source)
        assert_packets_equal(packet, decoded)

    @pytest.mark.parametrize("kind", ["excerpt", "alarm", "telemetry"])
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_decoded_arrays_are_read_only(self, kind, seed):
        # Both the copy path (bytearray source) and the aliasing path
        # (bytes source) hand out non-writeable arrays.
        packet = _packet_of_kind(kind, seed)
        blob = encode_packet(packet)
        for source in (blob, bytearray(blob)):
            decoded = decode_packet(source)
            arrays = [w.measurements for f in decoded.frames for w in f]
            if decoded.reference is not None:
                arrays.append(decoded.reference)
            for arr in arrays:
                assert not arr.flags.writeable
                if arr.size:
                    with pytest.raises(ValueError):
                        arr[..., 0] = 0

    def test_bytes_decode_aliases_the_frame(self):
        # Measurement arrays decoded from immutable bytes are windows
        # into the frame itself — the zero-copy contract.
        packet = _packet_of_kind("excerpt", 33)
        blob = encode_packet(packet)
        decoded = decode_packet(blob)
        frame_bytes = np.frombuffer(blob, dtype=np.uint8)
        shared = [w.measurements
                  for f in decoded.frames for w in f if w.measurements.size]
        if decoded.reference is not None and decoded.reference.size:
            shared.append(decoded.reference)
        for arr in shared:
            assert np.shares_memory(arr, frame_bytes)

    def test_views_keep_the_buffer_alive(self):
        packet = _packet_of_kind("excerpt", 5)
        decoded = decode_packet(encode_packet(packet))  # blob dropped
        assert_packets_equal(packet, decode_packet(encode_packet(decoded)))

    def test_explicit_copy_flag_overrides_the_auto_rule(self):
        packet = _packet_of_kind("excerpt", 9)
        blob = encode_packet(packet)
        copied = decode_packet(blob, copy=True)
        frame_bytes = np.frombuffer(blob, dtype=np.uint8)
        for frame in copied.frames:
            for window in frame:
                if window.measurements.size:
                    assert not np.shares_memory(window.measurements,
                                                frame_bytes)


class TestEncodeInto:
    def test_pooled_encode_is_byte_identical(self):
        rng = np.random.default_rng(12)
        out = bytearray()
        for _ in range(20):
            packet = _synthetic_packet(rng)
            del out[:]  # pooled-buffer reuse
            n = encode_packet_into(packet, out)
            assert n == len(out)
            assert bytes(out) == encode_packet(packet)

    def test_appends_after_existing_content(self):
        packet = _synthetic_packet(np.random.default_rng(13))
        out = bytearray(b"prefix")
        n = encode_packet_into(packet, out)
        assert out[:6] == b"prefix"
        assert bytes(out[6:]) == encode_packet(packet)
        assert n == len(out) - 6


class TestStreamDecoderViews:
    def test_frames_are_zero_copy_views_over_a_bytes_chunk(self):
        bodies = [b"frame-one", b"frame-two longer"]
        chunk = b"".join(encode_stream_frame(b) for b in bodies)
        decoder = StreamDecoder()
        frames = decoder.feed(chunk)
        assert [bytes(f) for f in frames] == bodies
        for frame in frames:
            assert isinstance(frame, memoryview)
            assert frame.readonly
            # No tail was pending and the chunk is bytes: the views
            # window the chunk itself.
            assert frame.obj is chunk
        assert decoder.pending_bytes == 0

    def test_split_feeds_reassemble(self):
        body = bytes(range(256)) * 3
        stream = encode_stream_frame(body)
        decoder = StreamDecoder()
        collected = []
        for i in range(0, len(stream), 7):
            collected += [bytes(f) for f in decoder.feed(stream[i:i + 7])]
        assert collected == [body]
        decoder.finish()

    def test_views_survive_until_next_feed(self):
        decoder = StreamDecoder()
        first = decoder.feed(encode_stream_frame(b"alpha"))
        held = first[0]
        assert bytes(held) == b"alpha"  # valid now
        decoder.feed(encode_stream_frame(b"beta"))
        # The lifetime contract ends at the next feed; callers that
        # retain must copy first (serve/client do exactly that).

    def test_pending_bytes_tracks_the_tail(self):
        stream = encode_stream_frame(b"0123456789")
        decoder = StreamDecoder()
        decoder.feed(stream[:6])
        assert decoder.pending_bytes == 6
        decoder.feed(stream[6:])
        assert decoder.pending_bytes == 0

    def test_oversize_frame_rejected_from_prefix(self):
        decoder = StreamDecoder(max_frame_bytes=8)
        with pytest.raises(WireFormatError, match="exceeds"):
            decoder.feed(encode_stream_frame(b"far too long for that"))
