"""Pulse-oximetry (SpO2) processing with ECG-assisted ensemble averaging.

Section IV-C: "ECG information can be employed to calculate, among other
parameters, the EA of the pulse oximetry" (ref [21]).  SpO2 derives from
the ratio-of-ratios of the red and infrared PPG channels; averaging the
channels over R-peak-aligned windows before computing the ratio removes
noise that is uncorrelated with the cardiac cycle and stabilizes the
estimate — the benefit quantified in the T5 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..filtering.ensemble import beat_matrix

#: Standard empirical calibration: SpO2 = A - B * R.
CALIBRATION_A = 110.0
CALIBRATION_B = 25.0


def ratio_of_ratios(red: np.ndarray, infrared: np.ndarray) -> float:
    """Ratio-of-ratios R = (AC/DC)_red / (AC/DC)_ir over a signal span.

    Raises:
        ValueError: On empty or mismatched inputs.
    """
    red = np.asarray(red, dtype=float)
    infrared = np.asarray(infrared, dtype=float)
    if red.shape != infrared.shape or red.size == 0:
        raise ValueError("red and infrared spans must match and be non-empty")
    red_dc = float(np.mean(red))
    ir_dc = float(np.mean(infrared))
    if red_dc == 0 or ir_dc == 0:
        raise ValueError("DC component must be non-zero")
    red_ac = float(np.ptp(red))
    ir_ac = float(np.ptp(infrared))
    if ir_ac == 0:
        raise ValueError("infrared AC component must be non-zero")
    return (red_ac / red_dc) / (ir_ac / ir_dc)


def spo2_from_ratio(ratio: float) -> float:
    """Empirical SpO2 calibration, clamped to the physiological range."""
    return float(np.clip(CALIBRATION_A - CALIBRATION_B * ratio, 0.0, 100.0))


@dataclass(frozen=True)
class Spo2Estimate:
    """An SpO2 estimate with its intermediate quantities."""

    spo2_percent: float
    ratio: float
    beats_used: int


def estimate_spo2(red: np.ndarray, infrared: np.ndarray,
                  r_peaks: np.ndarray, fs: float,
                  ensemble: bool = True) -> Spo2Estimate:
    """SpO2 from dual-wavelength PPG, optionally with ECG-locked EA.

    Args:
        red: Red-channel PPG.
        infrared: Infrared-channel PPG.
        r_peaks: ECG R peaks for beat alignment.
        fs: Sampling frequency.
        ensemble: Average beat-aligned windows before the ratio (the
            §IV-C technique); ``False`` computes the raw-span ratio.

    Raises:
        ValueError: When no complete beat window is available.
    """
    if not ensemble:
        ratio = ratio_of_ratios(red, infrared)
        return Spo2Estimate(spo2_percent=spo2_from_ratio(ratio),
                            ratio=ratio, beats_used=0)
    before = int(0.1 * fs)
    after = int(0.7 * fs)
    red_rows = beat_matrix(red, r_peaks, before, after)
    ir_rows = beat_matrix(infrared, r_peaks, before, after)
    n = min(red_rows.shape[0], ir_rows.shape[0])
    if n == 0:
        raise ValueError("no complete beat windows for ensemble averaging")
    ratio = ratio_of_ratios(red_rows[:n].mean(axis=0),
                            ir_rows[:n].mean(axis=0))
    return Spo2Estimate(spo2_percent=spo2_from_ratio(ratio), ratio=ratio,
                        beats_used=n)


def synthesize_dual_ppg(ppg_signal: np.ndarray, spo2_percent: float,
                        rng: np.random.Generator,
                        noise_std: float = 0.02,
                        dc_level: float = 5.0) -> tuple[np.ndarray, np.ndarray]:
    """Red/IR channel pair whose ratio-of-ratios encodes ``spo2_percent``.

    The infrared channel carries the pulse at unit AC gain; the red
    channel's AC gain is scaled so that the clean ratio-of-ratios maps to
    the requested SpO2 through the standard calibration.

    Returns:
        ``(red, infrared)`` waveforms with independent additive noise.
    """
    if not 0.0 < spo2_percent <= 100.0:
        raise ValueError("SpO2 must lie in (0, 100]")
    pulse = np.asarray(ppg_signal, dtype=float)
    target_ratio = (CALIBRATION_A - spo2_percent) / CALIBRATION_B
    infrared = dc_level + pulse + rng.normal(0.0, noise_std, pulse.shape)
    red = dc_level + target_ratio * pulse \
        + rng.normal(0.0, noise_std, pulse.shape)
    return red, infrared
