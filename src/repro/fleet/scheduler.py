"""Fleet scheduler: batched, vectorized many-patient processing.

Processing one patient at a time wastes the structure of the fleet
workload: every node on the same schedule encodes a same-length window
with the same per-lead matrix family.  The scheduler exploits that —
each tick it stacks the current excerpt window of every patient (grouped
by lead count) into one numpy batch and encodes the whole group with a
single matrix product per lead (:class:`BatchExcerptEncoder`), instead
of per-patient ``Phi @ x`` calls.  The per-patient node phase (synthesis,
delineation, AF analysis) is independent across patients and can run on
a :class:`~concurrent.futures.ThreadPoolExecutor` worker pool.

The batch path matches :meth:`CsEncoder.encode` up to float round-off
(BLAS summation order, ~1e-15 relative), so gateway reconstruction
cannot tell which path produced a packet (tested).

The receiving side mirrors this: :meth:`Gateway.drain` groups every
queued window by encoder geometry and reconstructs each group with one
batched FISTA (:meth:`JointCsDecoder.recover_batch`), so both halves of
the uplink run on stacked matrix products instead of per-patient loops.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Protocol

import numpy as np

from ..classification.afib import AfDetector
from ..compression.encoder import EncodedWindow, MultiLeadCsEncoder
from ..compression.multilead import row_stable_matmul
from ..obs import Observability, SCOPE_SHARD
from ..pipeline.node_app import NodeReport
from ..power.governor import (
    MODE_EVENTS_ONLY,
    MODE_MULTI_LEAD_CS,
    MODE_RAW,
    MODE_SINGLE_LEAD_CS,
    EnergyGovernor,
    GovernorDecision,
)
from ..signals.types import MultiLeadEcg
from .cohort import PatientProfile, synthesize_patient
from .gateway import Gateway, GatewayConfig, ReconstructedExcerpt
from .kernel import (
    PRIO_ALARM_EARLY,
    PRIO_ALARM_LATE,
    PRIO_DELIVERY,
    PRIO_DRAIN,
    PRIO_GOVERNOR,
    PRIO_REASSEMBLY,
    PRIO_TRIAGE,
    PRIO_UPLINK,
    EventKernel,
)
from .node_proxy import PACKET_EXCERPT, NodeProxy, NodeProxyConfig, UplinkPacket
from .transport import BufferPool
from .triage import FleetSummary, TriageBoard, fleet_summary
from .wire import ServeMessage, encode_packet_into

#: Simulation clocks :class:`SchedulerConfig.engine` may name.
ENGINES = ("kernel", "ticks")


class UplinkChannel(Protocol):
    """Anything that can sit between the nodes and the gateway.

    :mod:`repro.scenarios` provides the lossy implementation
    (:class:`~repro.scenarios.ImpairedLink`); ``None`` means a perfect
    link (every packet delivered immediately, exactly once).
    """

    def send(self, packet: UplinkPacket,
             now_s: float) -> list[UplinkPacket]:
        """Offer one packet; return those delivered immediately."""
        ...

    def due(self, now_s: float) -> list[UplinkPacket]:
        """Delayed packets whose delivery time has arrived."""
        ...

    def drain(self) -> list[UplinkPacket]:
        """Everything still in flight (end of run)."""
        ...


#: Hook applied to each freshly synthesized record before the node runs
#: (scenario fault injection); receives the profile and the record.
RecordTransform = Callable[[PatientProfile, MultiLeadEcg], MultiLeadEcg]

#: Builds one :class:`~repro.power.EnergyGovernor` per patient; passing
#: a factory to the scheduler turns the fleet run into a *governed* run
#: (closed-loop mode adaptation per tick).
GovernorFactory = Callable[[PatientProfile], EnergyGovernor]

#: Scenario hook: parasitic battery drain in watts for one patient at
#: one tick start (``battery_drain`` fault events).
ExtraLoad = Callable[[str, float], float]

#: Scenario hook: forced triage acuity for one patient at one tick
#: start, or ``None`` to use the board state (``governor_stress``).
AcuityOverride = Callable[[str, float], "str | None"]


class BatchExcerptEncoder:
    """Vectorized CS encoding of many patients' windows at once.

    Wraps the same per-lead sparse-binary matrices as
    :class:`~repro.compression.MultiLeadCsEncoder` (identical seeds) but
    encodes a whole batch per matrix product: for lead ``l`` the
    measurements of all ``P`` patients are ``X[:, l, :] @ Phi_l.T`` —
    one ``(P, n) x (n, m)`` product instead of ``P`` separate ``(m, n) x
    (n,)`` products — followed by vectorized per-window quantization.

    Args:
        n_leads: Leads per window in this batch group.
        n: Window length in samples.
        cr_percent: Compression ratio.
        quant_bits: Measurement word size.
        seed: Base matrix seed (shared with nodes and gateway).
    """

    def __init__(self, n_leads: int, n: int, cr_percent: float = 60.0,
                 quant_bits: int = 12, seed: int = 11) -> None:
        self.template = MultiLeadCsEncoder(
            n_leads=n_leads, n=n, cr_percent=cr_percent,
            quant_bits=quant_bits, seed=seed)
        self.n_leads = n_leads
        self.n = n
        self.quant_bits = quant_bits
        self._matrices = [enc.sensing.matrix.T.copy()
                          for enc in self.template.encoders]
        self._lead_bits = [enc.payload_bits_per_window()
                           for enc in self.template.encoders]
        self._lead_adds = [enc.sensing.additions_per_window()
                           for enc in self.template.encoders]

    def encode_batch(self, windows: np.ndarray,
                     ) -> list[list[EncodedWindow]]:
        """Encode a ``(P, n_leads, n)`` batch; one frame per patient.

        Returns:
            Per-patient lists of per-lead :class:`EncodedWindow`, each
            matching the scalar encoder's output to float round-off.
        """
        windows = np.asarray(windows, dtype=float)
        if windows.ndim != 3 or windows.shape[1:] != (self.n_leads, self.n):
            raise ValueError(
                f"expected batch of shape (P, {self.n_leads}, {self.n}), "
                f"got {windows.shape}")
        n_patients = windows.shape[0]
        levels = 2 ** (self.quant_bits - 1) - 1
        per_lead: list[tuple[np.ndarray, np.ndarray]] = []
        for lead, matrix_t in enumerate(self._matrices):
            # Row-stable so a patient's measurements do not depend on
            # who shares the batch (shard-layout equivalence).
            y = row_stable_matmul(windows[:, lead, :], matrix_t)  # (P, m)
            peak = np.max(np.abs(y), axis=1)
            scale = np.where(peak == 0.0, 1.0, peak / levels)
            quantized = np.rint(y / scale[:, None]) * scale[:, None]
            per_lead.append((quantized, scale))
        out: list[list[EncodedWindow]] = []
        for p in range(n_patients):
            frame = [
                EncodedWindow(
                    measurements=per_lead[lead][0][p],
                    scale=float(per_lead[lead][1][p]),
                    payload_bits=self._lead_bits[lead],
                    additions=self._lead_adds[lead],
                )
                for lead in range(self.n_leads)
            ]
            out.append(frame)
        return out


@dataclass(frozen=True)
class SchedulerConfig:
    """Fleet-run parameters.

    Attributes:
        duration_s: Simulated recording length per patient.
        fs: Node sampling rate.
        workers: Thread-pool size for the per-patient node phase
            (``0`` = run inline).
        drain_per_tick: Gateway packets processed per tick (``None`` =
            drain fully; a finite budget exercises the bounded queue).
        wire_loopback: Route every delivered packet through the binary
            wire codec (:mod:`repro.fleet.wire`) before the gateway
            ingests it — encode to bytes, decode, ingest.  The codec's
            round trip is exact, so results are byte-identical to the
            object path (tested); enabling this in a run proves the
            packets could have crossed a socket.
        engine: Simulation clock driving the uplink/gateway stretch.
            ``"kernel"`` (default) runs the event-heap kernel of
            :mod:`repro.fleet.kernel`: a lockstep sweep schedule when
            every node shares the base uplink period (byte-identical
            to the legacy loop by construction), switching to per-node
            uplink events when any profile carries an
            ``uplink_period_s`` override.  ``"ticks"`` keeps the
            legacy per-tick loop — the regression oracle the kernel
            façade is tested against.
    """

    duration_s: float = 120.0
    fs: float = 250.0
    workers: int = 0
    drain_per_tick: int | None = None
    wire_loopback: bool = False
    engine: str = "kernel"


@dataclass
class FleetReport:
    """Outcome of one scheduled fleet run.

    Attributes:
        profiles: The cohort processed.
        node_reports: Per-patient :class:`NodeReport` (energy/bandwidth).
        summary: Fleet-level aggregates (triage, SNR, uplink, battery).
        excerpts: Gateway outputs in processing order.
        packets_sent: Uplink packets offered by the nodes (before any
            channel impairment).
        timings_s: Wall-clock seconds per phase (``synthesis+node``,
            ``uplink+gateway``, ``total``).
        link_stats: Channel-model counters (empty on a perfect link).
    """

    profiles: list[PatientProfile]
    node_reports: dict[str, NodeReport]
    summary: FleetSummary
    excerpts: list[ReconstructedExcerpt] = field(default_factory=list)
    packets_sent: int = 0
    timings_s: dict[str, float] = field(default_factory=dict)
    link_stats: dict[str, int] = field(default_factory=dict)
    #: Per-patient governors of a governed run (empty when ungoverned);
    #: each carries its decision history and final battery state.
    governors: dict[str, EnergyGovernor] = field(default_factory=dict)
    #: Simulation-clock accounting: engine name, kernel event counts
    #: (by event name) and ``tick_loop_iterations`` — the per-patient
    #: visits the legacy lockstep loop would spend on the same virtual
    #: stretch, the denominator of the event-efficiency ratio the
    #: ``fleet-event-kernel`` bench records.
    kernel_stats: dict = field(default_factory=dict)

    @property
    def patients_per_second(self) -> float:
        """End-to-end fleet throughput of this run."""
        total = self.timings_s.get("total", 0.0)
        return len(self.profiles) / total if total > 0 else float("nan")


class _SchedulerMetrics:
    """Pre-resolved metric families for the scheduler's hot paths."""

    def __init__(self, obs: Observability) -> None:
        metrics = obs.metrics
        self.uplink = metrics.counter(
            "scheduler_uplink_packets_total",
            "Packets offered to the uplink, by kind and governed mode.")
        self.transitions = metrics.counter(
            "governor_transitions_total",
            "Governor mode switches, by from/to mode and cause.")
        self.soc = metrics.gauge(
            "governor_soc",
            "Latest battery state of charge per governed patient.")
        self.wall = metrics.gauge(
            "scheduler_wall_seconds",
            "Wall-clock seconds per scheduler phase (process-local).",
            scope=SCOPE_SHARD)


class _RunState:
    """Mutable accounting threaded through one run's phase methods.

    Both engines (tick loop and event kernel) mutate the same state
    object, so the phase methods they share are engine-agnostic.
    """

    def __init__(self) -> None:
        self.packets_sent = 0
        self.excerpts: list[ReconstructedExcerpt] = []
        #: Governor decisions of the current sweep (lockstep engines).
        self.decisions: dict[str, GovernorDecision] | None = None
        #: Per-node pending decisions (event engine: the governor
        #: event stores here, the same node's uplink event pops).
        self.node_decisions: dict[str, GovernorDecision] = {}
        #: Packets counted by the last ``scheduler.tick`` trace.
        self.last_traced_sent = 0
        #: Exact delivery times already carrying a link event.
        self.scheduled_deliveries: set[float] = set()
        self.kernel_stats: dict = {}


class FleetScheduler:
    """Drives a cohort through nodes, uplink, gateway and triage.

    Args:
        cohort: Patient profiles to simulate.
        config: Run parameters.
        node_config: Uplink policy shared by every node.
        gateway: The receiving gateway (fresh default if omitted).
        board: Triage board (fresh default if omitted).
        af_detector: Trained AF detector shared across the fleet.
        link: Channel model between nodes and gateway (``None`` =
            perfect link).  See :class:`UplinkChannel`.
        record_transform: Hook applied to each synthesized record before
            the node processes it (scenario fault injection).
        governor_factory: Builds one per-patient
            :class:`~repro.power.EnergyGovernor`; when given, each tick
            closes the loop gateway-side: the patient's triage state
            feeds the governor, the governor picks the node's operating
            mode, and the tick's uplink (raw excerpt / CS excerpt /
            events-only telemetry) follows that mode, stamped with
            mode + SoC telemetry.
        extra_load: Scenario hook — parasitic watts per (patient, tick
            start) drained on top of the mode power (``battery_drain``).
        acuity_override: Scenario hook — forces a patient's acuity at a
            tick (``governor_stress``); ``None`` returns mean "use the
            board state".
        obs: Optional :class:`~repro.obs.Observability` bundle.  When
            given, the scheduler advances the bundle's virtual clock
            each tick, counts the uplink mix by mode, wires per-patient
            governor decision observers, and shares the bundle with the
            gateway (unless the gateway already carries its own).  All
            instrumentation is out-of-band: run results are
            byte-identical with and without it.
        journal: Optional
            :class:`~repro.fleet.journal.JournalWriter`.  When given,
            it is attached to the gateway (every delivered packet frame
            is logged at ingest) and the scheduler interleaves the
            control records — ``hello`` / ``period`` at start,
            ``expire`` / ``drain`` / ``sweep`` per sweep, the endgame
            ``flush`` / ``drain`` / ``sweep`` and per-patient
            ``report`` rows plus a fleet ``stats`` record — that make
            the log a complete, replayable transcript of the run
            (duck-typed; this module never imports the journal).
        journal_indexes: Per-patient global cohort positions stamped
            into the journal's ``hello`` records; shard workers pass
            their stripe's global indexes so merged shard journals
            recover the full cohort order (default: local order).
    """

    def __init__(self, cohort: list[PatientProfile],
                 config: SchedulerConfig | None = None,
                 node_config: NodeProxyConfig | None = None,
                 gateway: Gateway | None = None,
                 board: TriageBoard | None = None,
                 af_detector: AfDetector | None = None,
                 link: UplinkChannel | None = None,
                 record_transform: RecordTransform | None = None,
                 governor_factory: GovernorFactory | None = None,
                 extra_load: ExtraLoad | None = None,
                 acuity_override: AcuityOverride | None = None,
                 obs: Observability | None = None,
                 journal=None,
                 journal_indexes: dict[str, int] | None = None) -> None:
        if not cohort:
            raise ValueError("cohort must not be empty")
        self.cohort = cohort
        self.config = config or SchedulerConfig()
        if self.config.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.config.engine!r}; "
                             f"choose from {ENGINES}")
        self.node_config = node_config or NodeProxyConfig()
        #: Per-node uplink periods diverging from the base schedule.
        self._uplink_overrides = {
            p.patient_id: float(p.uplink_period_s) for p in cohort
            if p.uplink_period_s is not None}
        if self._uplink_overrides and self.config.engine == "ticks":
            raise ValueError(
                "per-node uplink_period_s overrides need the event "
                "kernel; the tick loop visits every node every tick "
                "(use engine='kernel')")
        self.obs = obs
        self._obs_m = _SchedulerMetrics(obs) if obs is not None else None
        self.gateway = gateway or Gateway(GatewayConfig(), obs=obs)
        if obs is not None and self.gateway.obs is None:
            self.gateway.attach_obs(obs)
        self.board = board or TriageBoard()
        self.af_detector = af_detector
        self.link = link
        self.record_transform = record_transform
        self.governor_factory = governor_factory
        self.extra_load = extra_load
        self.acuity_override = acuity_override
        self.governors: dict[str, EnergyGovernor] = {}
        self._batch_encoders: dict[int, BatchExcerptEncoder] = {}
        # Scratch for the wire-loopback encode path: frames are built
        # in a leased pooled buffer instead of a fresh bytes object
        # per packet (see repro.fleet.transport.BufferPool).
        self._wire_pool = BufferPool()
        #: Uplink packets offered per patient (before any channel
        #: impairment) — the per-patient split of ``packets_sent``,
        #: which shard workers report row by row.
        self.sent_by_patient: dict[str, int] = {}
        self.journal = journal
        self.journal_indexes = journal_indexes or {}
        #: Virtual time of the sweep being journaled (set by the
        #: reassembly phase, read by the drain phase's record).
        self._journal_now_s = 0.0
        if journal is not None:
            self.gateway.attach_journal(journal)

    def run(self) -> FleetReport:
        """Simulate the full stretch and return the fleet report."""
        cfg = self.config
        t_start = time.perf_counter()
        self.board.register(p.patient_id for p in self.cohort)
        if self.journal is not None:
            for i, profile in enumerate(self.cohort):
                pid = profile.patient_id
                index = self.journal_indexes.get(pid, i)
                self.journal.append_message(ServeMessage(
                    "hello", pid, fields={"index": float(index)}))
        for pid, period in sorted(self._uplink_overrides.items()):
            self.board.set_expected_period(pid, period)
            if self.journal is not None:
                self.journal.append_message(ServeMessage(
                    "period", pid, fields={"period_s": period}))

        # Phase 1 — per-patient node processing (parallelizable).
        def node_phase(profile: PatientProfile,
                       ) -> tuple[NodeProxy, MultiLeadEcg, NodeReport]:
            record = synthesize_patient(profile, cfg.duration_s, cfg.fs)
            if self.record_transform is not None:
                record = self.record_transform(profile, record)
            proxy = NodeProxy(profile, self._node_config_for(profile),
                              self.af_detector)
            report, _ = proxy.run(record, emit_excerpts=False,
                                  emit_alarms=False)
            return proxy, record, report

        if cfg.workers > 0:
            with ThreadPoolExecutor(max_workers=cfg.workers) as pool:
                results = list(pool.map(node_phase, self.cohort))
        else:
            results = [node_phase(profile) for profile in self.cohort]
        t_node = time.perf_counter()

        reports = {proxy.profile.patient_id: report
                   for proxy, _, report in results}
        if self.governor_factory is not None:
            self.governors = {profile.patient_id:
                              self.governor_factory(profile)
                              for profile in self.cohort}
            if self._obs_m is not None:
                for pid, governor in self.governors.items():
                    governor.on_decision = self._governor_observer(pid)

        # Phase 2 — uplink, gateway drain and triage on the configured
        # simulation clock.  Alarm packets are *built at the sweep that
        # uplinks them* (early alarms before the excerpts, late ones
        # after), so each node's sequence numbers follow timestamp
        # order and the gateway's seq-ordered reassembly restores the
        # timeline.
        state = _RunState()
        if cfg.engine == "ticks":
            self._run_ticks(results, state)
        else:
            self._run_kernel(results, state)

        if self.link is not None:  # packets still in flight land now
            for packet in self.link.drain():
                self._ingest(packet)
        if self.journal is not None:
            self.journal.append_message(ServeMessage(
                "flush", "", t_s=cfg.duration_s))
        self.gateway.flush_reassembly()
        if self.journal is not None:
            self.journal.append_message(ServeMessage(
                "drain", "", t_s=cfg.duration_s,
                fields={"budget": -1.0}))
        for excerpt in self.gateway.drain():  # leftovers from budgeting
            self.board.observe(excerpt)
            state.excerpts.append(excerpt)
        if self.journal is not None:
            self.journal.append_message(ServeMessage(
                "sweep", "", t_s=cfg.duration_s))
        self.board.tick(cfg.duration_s)
        self._fold_governed_power(reports)
        if self.journal is not None:
            for profile in self.cohort:
                self.journal.append_message(
                    self.report_message(profile.patient_id, reports))
            link_stats = dict(getattr(self.link, "stats", {}) or {})
            self.journal.append_message(ServeMessage(
                "stats", "", t_s=cfg.duration_s,
                fields={f"link:{key}": float(value)
                        for key, value in link_stats.items()}))
        t_end = time.perf_counter()

        summary = fleet_summary(reports, self.gateway, self.board,
                                cfg.duration_s,
                                governors=self.governors or None)
        timings = {
            "synthesis+node": t_node - t_start,
            "uplink+gateway": t_end - t_node,
            "total": t_end - t_start,
        }
        if self._obs_m is not None:
            for phase, seconds in timings.items():
                self._obs_m.wall.set(seconds, phase=phase)
        return FleetReport(
            profiles=list(self.cohort),
            node_reports=reports,
            summary=summary,
            excerpts=state.excerpts,
            packets_sent=state.packets_sent,
            timings_s=timings,
            link_stats=dict(getattr(self.link, "stats", {}) or {}),
            governors=dict(self.governors),
            kernel_stats=state.kernel_stats,
        )

    def report_message(self, pid: str,
                       reports: dict[str, NodeReport]) -> ServeMessage:
        """Build one patient's end-of-run ``report`` message.

        The single construction of the node-side row aggregates, shared
        by the serve client (which ships it over the wire) and the
        journal (which logs it as the run's last per-patient record).
        Field names mirror
        :class:`~repro.fleet.sharding.ShardPatientRow` exactly;
        governor dwell times go out as ``mode:<name>`` keys *in
        insertion order* (the codec preserves it), so the fleet-wide
        mode-seconds fold downstream sums in the same order as the
        in-process engine — float-exactly.
        """
        report = reports[pid]
        governor = self.governors.get(pid)
        fields: dict[str, float] = {
            "n_sent": float(self.sent_by_patient.get(pid, 0)),
            "n_node_alarms": float(len(report.alarms)),
            "average_power_w": report.average_power_w,
            "battery_days": report.battery_days,
            "governor_switches": float(
                governor.n_switches if governor is not None else 0),
            "final_soc": (governor.battery.soc
                          if governor is not None else float("nan")),
            "projected_hours": (governor.projected_hours_to_empty()
                                if governor is not None
                                else float("nan")),
        }
        if governor is not None:
            for mode, seconds in governor.mode_seconds.items():
                fields[f"mode:{mode}"] = seconds
        # Duck-typed: only the per-patient scenario link
        # (repro.fleet.sharding.PerPatientLink) carries stats_for; a
        # shared ImpairedLink's totals ride the fleet `stats` record.
        stats_for = getattr(self.link, "stats_for", None)
        link_stats = stats_for(pid) if stats_for is not None else {}
        for key, value in link_stats.items():
            fields[f"link:{key}"] = float(value)
        return ServeMessage(
            "report", pid, t_s=self.config.duration_s, fields=fields,
            info={"governed": "1" if governor is not None else "0"})

    # ------------------------------------------------------------------
    # Phase methods shared by both engines.  The tick loop calls them
    # inline; the kernel schedules them as events — same code, same
    # per-timestamp order, so the lockstep façade is byte-identical to
    # the loop by construction.
    # ------------------------------------------------------------------

    def _set_vt(self, now_s: float) -> None:
        """Stamp the ambient virtual clock (no-op without obs)."""
        if self.obs is not None:
            self.obs.set_virtual_time(now_s)

    def _phase_governors(self, now: float, state: _RunState) -> None:
        """Sweep every governor; stash decisions for the uplink phase."""
        state.decisions = self._step_governors(now)

    def _phase_alarms(self, items: list[tuple], now: float,
                      state: _RunState) -> None:
        """Uplink one alarm bucket."""
        state.packets_sent += self._send_alarms(items, now)

    def _phase_excerpts(self, proxies: list[NodeProxy],
                        records: list[MultiLeadEcg], period_idx: int,
                        now: float, state: _RunState,
                        decisions: dict[str, GovernorDecision] | None,
                        ) -> None:
        """Uplink the periodic excerpts of one sweep's member set."""
        state.packets_sent += self._send_excerpt_batch(
            proxies, records, period_idx, now, decisions)

    def _phase_reassembly(self, now: float) -> None:
        """Expire reassembly gaps stalled past the configured grace."""
        if self.journal is not None:
            self.journal.append_message(ServeMessage(
                "expire", "", t_s=now))
            self._journal_now_s = now
        self.gateway.expire_reassembly(now)

    def _phase_drain(self, state: _RunState) -> None:
        """Drain the gateway queue (per-sweep budget) into triage."""
        if self.journal is not None:
            budget = self.config.drain_per_tick
            self.journal.append_message(ServeMessage(
                "drain", "", t_s=self._journal_now_s,
                fields={"budget": (-1.0 if budget is None
                                   else float(budget))}))
        for excerpt in self.gateway.drain(self.config.drain_per_tick):
            self.board.observe(excerpt)
            state.excerpts.append(excerpt)

    def _phase_triage(self, now: float, state: _RunState) -> None:
        """Decay triage states and close the sweep's trace record."""
        if self.journal is not None:
            self.journal.append_message(ServeMessage(
                "sweep", "", t_s=now))
        self.board.tick(now)
        if self.obs is not None and self.obs.trace is not None:
            self.obs.trace.instant(
                now, "scheduler.tick", scope=SCOPE_SHARD,
                n_sent=state.packets_sent - state.last_traced_sent)
        state.last_traced_sent = state.packets_sent

    def _send_overflow_alarms(self, alarms_by_tick: dict[int, list],
                              n_ticks: int, state: _RunState) -> None:
        """Uplink alarm buckets past the last tick before final drain.

        Buckets past ``n_ticks`` exist only when the run is shorter
        than one uplink period (``n_ticks == 0``); sending them at end
        of run means no alarm is silently lost.
        """
        for tick in sorted(alarms_by_tick):
            if tick > n_ticks:
                state.packets_sent += self._send_alarms(
                    alarms_by_tick[tick], self.config.duration_s)

    def _run_ticks(self, results: list[tuple], state: _RunState) -> None:
        """Legacy lockstep loop: every patient visited every tick."""
        cfg = self.config
        proxies = [r[0] for r in results]
        records = [r[1] for r in results]
        period = self.node_config.excerpt_period_s
        n_ticks = int(cfg.duration_s // period)
        alarms_by_tick = self._bucket_alarms(results, period, n_ticks)
        for tick in range(1, n_ticks + 1):
            now = tick * period
            self._set_vt(now)
            # Closed loop: last tick's triage states feed this tick's
            # governor decisions (one-tick feedback latency, like a
            # real gateway round trip).
            if self.governors:
                self._phase_governors(now, state)
            bucket = alarms_by_tick.get(tick, [])
            early = [a for a in bucket if a[2] < now]
            late = [a for a in bucket if a[2] >= now]
            self._phase_alarms(early, now, state)
            self._phase_excerpts(proxies, records, tick - 1, now, state,
                                 state.decisions)
            self._phase_alarms(late, now, state)
            self._deliver_due(now)
            self._phase_reassembly(now)
            self._phase_drain(state)
            self._phase_triage(now, state)
        self._send_overflow_alarms(alarms_by_tick, n_ticks, state)
        state.kernel_stats = {
            "engine": "ticks",
            "n_events": 0,
            "tick_loop_iterations": n_ticks * len(self.cohort),
        }

    def _run_kernel(self, results: list[tuple], state: _RunState) -> None:
        """Phase 2 on the event-heap kernel of :mod:`.kernel`.

        Without per-node period overrides the schedule is the
        *lockstep façade*: one sweep event per legacy tick phase,
        firing in the exact statement order of :meth:`_run_ticks`
        (same code, same order — byte-identical by construction).
        With overrides each node gets its own uplink (and governor)
        event chain at its own period while the gateway-side sweeps
        stay on the base grid, so cost is proportional to events
        rather than ticks × cohort.
        """
        cfg = self.config
        kernel = EventKernel()
        period = self.node_config.excerpt_period_s
        n_ticks = int(cfg.duration_s // period)
        if self._uplink_overrides:
            overflow = self._schedule_node_events(kernel, results, state)
            kernel.run()
            if overflow:
                state.packets_sent += self._send_alarms(
                    overflow, cfg.duration_s)
            engine = "kernel-events"
        else:
            alarms_by_tick = self._schedule_lockstep(
                kernel, results, state, period, n_ticks)
            kernel.run()
            self._send_overflow_alarms(alarms_by_tick, n_ticks, state)
            engine = "kernel-lockstep"
        state.kernel_stats = {
            "engine": engine,
            "n_events": kernel.n_processed,
            "by_name": dict(sorted(kernel.counts_by_name.items())),
            "tick_loop_iterations": n_ticks * len(self.cohort),
        }

    def _schedule_lockstep(self, kernel: EventKernel,
                           results: list[tuple], state: _RunState,
                           period: float, n_ticks: int,
                           ) -> dict[int, list]:
        """Schedule the legacy tick grid as per-phase sweep events."""
        proxies = [r[0] for r in results]
        records = [r[1] for r in results]
        alarms_by_tick = self._bucket_alarms(results, period, n_ticks)
        for tick in range(1, n_ticks + 1):
            now = tick * period
            bucket = alarms_by_tick.get(tick, [])
            self._schedule_tick_sweeps(kernel, tick, now, proxies,
                                       records, bucket, state)
        return alarms_by_tick

    def _schedule_tick_sweeps(self, kernel: EventKernel, tick: int,
                              now: float, proxies: list[NodeProxy],
                              records: list[MultiLeadEcg],
                              bucket: list[tuple],
                              state: _RunState) -> None:
        """One lockstep tick as events: phase order via priorities."""
        early = [a for a in bucket if a[2] < now]
        late = [a for a in bucket if a[2] >= now]

        def governors() -> None:
            self._set_vt(now)
            self._phase_governors(now, state)

        def alarms_early() -> None:
            self._set_vt(now)
            self._phase_alarms(early, now, state)

        def uplinks() -> None:
            self._set_vt(now)
            self._phase_excerpts(proxies, records, tick - 1, now, state,
                                 state.decisions)

        def alarms_late() -> None:
            self._set_vt(now)
            self._phase_alarms(late, now, state)

        def delivery() -> None:
            self._set_vt(now)
            self._deliver_due(now)

        def reassembly() -> None:
            self._set_vt(now)
            self._phase_reassembly(now)

        def drain() -> None:
            self._set_vt(now)
            self._phase_drain(state)

        def triage() -> None:
            self._set_vt(now)
            self._phase_triage(now, state)

        if self.governors:
            kernel.schedule(now, PRIO_GOVERNOR, "sweep.governors",
                            governors)
        if early:
            kernel.schedule(now, PRIO_ALARM_EARLY, "sweep.alarms_early",
                            alarms_early)
        kernel.schedule(now, PRIO_UPLINK, "sweep.uplinks", uplinks)
        if late:
            kernel.schedule(now, PRIO_ALARM_LATE, "sweep.alarms_late",
                            alarms_late)
        if self.link is not None:
            kernel.schedule(now, PRIO_DELIVERY, "link.due_sweep",
                            delivery)
        kernel.schedule(now, PRIO_REASSEMBLY, "gateway.expire",
                        reassembly)
        kernel.schedule(now, PRIO_DRAIN, "gateway.drain", drain)
        kernel.schedule(now, PRIO_TRIAGE, "triage.sweep", triage)

    def _schedule_node_events(self, kernel: EventKernel,
                              results: list[tuple], state: _RunState,
                              ) -> list[tuple]:
        """Per-node uplink event chains plus base-grid gateway sweeps.

        Each node is visited only at its own ``uplink_period_s`` (its
        governor decision, alarms and excerpt ride one event), so a
        sparse delineation-only node costs events proportional to its
        uplinks.  Gateway-side sweeps (link due, grace expiry, drain,
        triage decay) stay on the base excerpt grid — cohort-wide work
        independent of cohort size per sweep.

        Returns:
            Alarm tuples falling past their node's last tick, sorted by
            timestamp (the caller uplinks them at end of run).
        """
        cfg = self.config
        base = self.node_config.excerpt_period_s
        overflow: list[tuple] = []
        for result in results:
            proxy, record, _ = result
            pid = proxy.profile.patient_id
            period = self._uplink_overrides.get(pid, base)
            n_ticks = int(cfg.duration_s // period)
            buckets = self._bucket_alarms([result], period, n_ticks)
            for tick in range(1, n_ticks + 1):
                self._schedule_node_uplink(
                    kernel, proxy, record, tick, tick * period, period,
                    buckets.get(tick, []), state)
            for tick in sorted(buckets):
                if tick > n_ticks:
                    overflow.extend(buckets[tick])
        for tick in range(1, int(cfg.duration_s // base) + 1):
            self._schedule_gateway_sweeps(kernel, tick * base, state)
        overflow.sort(key=lambda item: item[2])
        return overflow

    def _schedule_node_uplink(self, kernel: EventKernel,
                              proxy: NodeProxy, record: MultiLeadEcg,
                              tick: int, now: float, period: float,
                              bucket: list[tuple],
                              state: _RunState) -> None:
        """Schedule one node's uplink (and governor) event at ``now``.

        The governor decision is its own event one priority rank ahead
        of the uplink, mirroring the lockstep phase order: decisions at
        a timestamp always land before the uplinks they steer.
        """
        pid = proxy.profile.patient_id
        early = [a for a in bucket if a[2] < now]
        late = [a for a in bucket if a[2] >= now]

        def decide() -> None:
            self._set_vt(now)
            state.node_decisions[pid] = self._decide_one(
                pid, period, now - period)

        def uplink() -> None:
            self._set_vt(now)
            decisions = ({pid: state.node_decisions.pop(pid)}
                         if self.governors else None)
            self._phase_alarms(early, now, state)
            self._phase_excerpts([proxy], [record], tick - 1, now,
                                 state, decisions)
            self._phase_alarms(late, now, state)
            self._schedule_link_events(kernel, state)

        if self.governors:
            kernel.schedule(now, PRIO_GOVERNOR, "governor.decide",
                            decide, subject=pid)
        kernel.schedule(now, PRIO_UPLINK, "node.uplink", uplink,
                        subject=pid)

    def _schedule_gateway_sweeps(self, kernel: EventKernel, now: float,
                                 state: _RunState) -> None:
        """Schedule the gateway-side sweeps of one base-grid instant."""

        def delivery() -> None:
            self._set_vt(now)
            self._deliver_due(now)
            self._schedule_link_events(kernel, state)

        def reassembly() -> None:
            self._set_vt(now)
            self._phase_reassembly(now)

        def drain() -> None:
            self._set_vt(now)
            self._phase_drain(state)

        def triage() -> None:
            self._set_vt(now)
            self._phase_triage(now, state)

        if self.link is not None:
            kernel.schedule(now, PRIO_DELIVERY, "link.due_sweep",
                            delivery)
        kernel.schedule(now, PRIO_REASSEMBLY, "gateway.expire",
                        reassembly)
        kernel.schedule(now, PRIO_DRAIN, "gateway.drain", drain)
        kernel.schedule(now, PRIO_TRIAGE, "triage.sweep", triage)

    def _schedule_link_events(self, kernel: EventKernel,
                              state: _RunState) -> None:
        """Schedule an exact-time delivery event for the link's next due.

        Links exposing ``next_due_s`` (the
        :class:`~repro.scenarios.ImpairedLink` family) get their
        delayed copies popped at the exact jittered delivery time
        instead of waiting for the next base-grid sweep; one event per
        distinct due time is kept outstanding, and dues past the run's
        end fall through to the end-of-run drain as before.
        """
        if self.link is None:
            return
        next_due = getattr(self.link, "next_due_s", None)
        if next_due is None:
            return
        t_due = next_due()
        if t_due is None or t_due > self.config.duration_s \
                or t_due in state.scheduled_deliveries:
            return
        state.scheduled_deliveries.add(t_due)
        t_fire = max(t_due, kernel.now_s)

        def deliver() -> None:
            self._set_vt(t_fire)
            self._deliver_due(t_fire)
            self._schedule_link_events(kernel, state)

        kernel.schedule(t_fire, PRIO_DELIVERY, "link.delivery", deliver)

    def _governor_observer(self, pid: str):
        """Build one patient's out-of-band governor decision observer.

        The returned callable feeds the SoC gauge on every decision and,
        on a mode switch, the transition counter plus a
        ``governor.switch`` trace instant stamped at the decision's
        virtual time with the full cause (from/to mode, reason, acuity,
        state of charge).
        """
        m = self._obs_m
        trace = self.obs.trace

        def observe(decision: GovernorDecision) -> None:
            m.soc.set(decision.soc, patient=pid)
            if not decision.switched:
                return
            m.transitions.inc(patient=pid,
                              from_mode=decision.prev_mode,
                              to_mode=decision.mode,
                              reason=decision.reason)
            if trace is not None:
                trace.instant(decision.t_s, "governor.switch",
                              subject=pid,
                              from_mode=decision.prev_mode,
                              to_mode=decision.mode,
                              reason=decision.reason,
                              acuity=decision.acuity,
                              soc=decision.soc)

        return observe

    def _step_governors(self, now_s: float) -> dict[str, GovernorDecision]:
        """Advance every patient's governor by one tick interval.

        The acuity fed in is the triage board's state from the previous
        tick (or the scenario override); the decision covers the
        interval *ending* at ``now_s``.
        """
        period = self.node_config.excerpt_period_s
        t0 = now_s - period
        return {profile.patient_id:
                self._decide_one(profile.patient_id, period, t0)
                for profile in self.cohort}

    def _decide_one(self, pid: str, period_s: float,
                    t0: float) -> GovernorDecision:
        """One patient's governor decision for the interval from ``t0``.

        Shared by the cohort-wide lockstep sweep and the per-node
        governor events of the kernel's heterogeneous schedule (where
        ``period_s`` is the node's own uplink period).
        """
        acuity = (self.acuity_override(pid, t0)
                  if self.acuity_override is not None else None)
        if acuity is None:
            acuity = self.board.patient(pid).state
        extra = (self.extra_load(pid, t0)
                 if self.extra_load is not None else 0.0)
        return self.governors[pid].step(period_s, acuity,
                                        extra_load_w=extra)

    def _node_config_for(self, profile: PatientProfile) -> NodeProxyConfig:
        """The node config of one profile, with its period override."""
        period = self._uplink_overrides.get(profile.patient_id)
        if period is None:
            return self.node_config
        return replace(self.node_config, excerpt_period_s=period)

    def _fold_governed_power(self, reports: dict[str, NodeReport]) -> None:
        """Replace static node power with the governor's mode schedule.

        An ungoverned :class:`NodeReport` prices the fixed §V policy;
        under a governor the node's actual power follows the mode dwell
        times, so the per-patient power and battery projections (which
        triage aggregates) are recomputed from them.  Both sides of the
        fleet accounting deliberately use the *mode schedule only*
        (alarm-packet energy — microjoules against a tick's
        milliJoules of streaming — is excluded from the drain and from
        this power alike, keeping SoC and power mutually consistent).
        """
        for pid, governor in self.governors.items():
            total = sum(governor.mode_seconds.values())
            if total <= 0 or pid not in reports:
                continue
            power = sum(governor.table.power_w(mode) * sec
                        for mode, sec in governor.mode_seconds.items()
                        ) / total
            reports[pid].average_power_w = power
            reports[pid].battery_days = (
                governor.battery.cell.lifetime_days(power))

    def _batch_encoder(self, n_leads: int) -> BatchExcerptEncoder:
        """Cached batch encoder of one lead-count group."""
        if n_leads not in self._batch_encoders:
            nc = self.node_config
            self._batch_encoders[n_leads] = BatchExcerptEncoder(
                n_leads=n_leads, n=nc.window_n, cr_percent=nc.cr_percent,
                quant_bits=nc.quant_bits, seed=nc.cs_seed)
        return self._batch_encoders[n_leads]

    def _send_excerpt_batch(self, proxies: list[NodeProxy],
                            records: list[MultiLeadEcg],
                            period_idx: int, now_s: float,
                            decisions: dict[str, GovernorDecision]
                            | None = None) -> int:
        """Encode + ingest every patient's periodic uplink for one tick.

        Ungoverned runs keep the legacy behavior: every patient sends a
        multi-lead CS excerpt, grouped by lead count into one vectorized
        :meth:`BatchExcerptEncoder.encode_batch` call per group.  In a
        governed run each patient's tick uplink follows its governor
        decision instead: raw excerpt / multi- or single-lead CS
        excerpt / events-only telemetry, all stamped with mode and SoC.
        Single-lead-CS members batch together with 1-lead patients —
        same encoder geometry, one matrix product.
        """
        groups: dict[int, list[tuple]] = {}
        n = self.node_config.window_n
        sent = 0
        for proxy, record in zip(proxies, records):
            starts = proxy.excerpt_starts(record.n_samples, record.fs)
            if period_idx >= len(starts):
                continue  # recording too short for this period
            start = starts[period_idx]
            hr = proxy.heart_rates.get(period_idx, float("nan"))
            decision = (decisions.get(proxy.profile.patient_id)
                        if decisions is not None else None)
            if decision is None:
                window = record.signals[:, start:start + n]
                groups.setdefault(record.n_leads, []).append(
                    (proxy, window, start, MODE_MULTI_LEAD_CS,
                     float("nan"), hr, None))
            elif decision.mode == MODE_EVENTS_ONLY:
                self._transmit(proxy.telemetry_packet(
                    now_s, mean_hr_bpm=hr, soc=decision.soc), now_s)
                sent += 1
            elif decision.mode == MODE_RAW:
                self._transmit(proxy.raw_packet(
                    record, start, now_s, mean_hr_bpm=hr,
                    soc=decision.soc), now_s)
                sent += 1
            elif decision.mode == MODE_SINGLE_LEAD_CS:
                lead = proxy.delineation_lead
                window = record.signals[lead:lead + 1, start:start + n]
                groups.setdefault(1, []).append(
                    (proxy, window, start, MODE_SINGLE_LEAD_CS,
                     decision.soc, hr, 1))
            else:
                window = record.signals[:, start:start + n]
                groups.setdefault(record.n_leads, []).append(
                    (proxy, window, start, MODE_MULTI_LEAD_CS,
                     decision.soc, hr, None))
        for n_leads, members in groups.items():
            batch = np.stack([member[1] for member in members])
            frames = self._batch_encoder(n_leads).encode_batch(batch)
            for (proxy, window, start, mode, soc, hr,
                 packet_leads), frame in zip(members, frames):
                packet = proxy.packet_from_frames(
                    kind=PACKET_EXCERPT,
                    timestamp_s=now_s,
                    start=start,
                    frames=[frame],
                    reference=window[np.newaxis]
                    if self.node_config.attach_reference else None,
                    mean_hr_bpm=hr,
                    mode=mode,
                    soc=soc,
                    n_leads=packet_leads,
                )
                self._transmit(packet, now_s)
                sent += 1
        return sent

    def _send_alarms(self, items: list[tuple], now_s: float) -> int:
        """Build and uplink the alarm packets of one tick bucket.

        ``items`` holds ``(proxy, record, timestamp_s, alarm_start)``
        tuples sorted by timestamp, so per-patient sequence numbers are
        assigned in timestamp order.  Alarms always carry CS context in
        every governed mode; governed runs stamp the node's current
        mode and SoC telemetry on the packet.
        """
        for proxy, record, _, alarm_start in items:
            packet = proxy.alarm_packet(record, alarm_start)
            governor = self.governors.get(proxy.profile.patient_id)
            if governor is not None:
                packet = replace(packet, mode=governor.mode,
                                 soc=governor.battery.soc)
            self._transmit(packet, now_s)
        return len(items)

    def _transmit(self, packet: UplinkPacket, now_s: float) -> None:
        """Offer one packet to the link (or straight to the gateway)."""
        self.sent_by_patient[packet.patient_id] = \
            self.sent_by_patient.get(packet.patient_id, 0) + 1
        if self._obs_m is not None:
            self._obs_m.uplink.inc(patient=packet.patient_id,
                                   kind=packet.kind, mode=packet.mode)
        if self.link is None:
            self._ingest(packet)
            return
        for delivered in self.link.send(packet, now_s):
            self._ingest(delivered)

    def _ingest(self, packet: UplinkPacket) -> None:
        """Hand one delivered packet to the gateway.

        With ``wire_loopback`` the packet crosses the binary codec
        first (encode, then the frame path of :meth:`Gateway.ingest`)
        — the run then exercises exactly what a socket-separated
        gateway would see.
        """
        if self.config.wire_loopback:
            # Encode into a leased pooled buffer: the gateway decodes
            # (copying, since the buffer is writable and recycled) and
            # journals synchronously, so nothing aliases the lease
            # after ingest returns.
            with self._wire_pool.lease() as buf:
                encode_packet_into(packet, buf)
                self.gateway.ingest(buf)
        else:
            self.gateway.ingest(packet)

    def _deliver_due(self, now_s: float) -> None:
        """Hand delayed link deliveries whose time has come to ingest."""
        if self.link is None:
            return
        for packet in self.link.due(now_s):
            self._ingest(packet)

    @staticmethod
    def _bucket_alarms(results: list[tuple], period_s: float,
                       n_ticks: int) -> dict[int, list[tuple]]:
        """Group node alarms by uplink tick.

        Returns:
            Tick number -> ``(proxy, record, timestamp_s, alarm_start)``
            tuples sorted by timestamp within each bucket.
        """
        buckets: dict[int, list[tuple]] = {}
        for proxy, record, report in results:
            for alarm in report.alarms:
                ts = alarm.start / record.fs
                tick = min(n_ticks, int(ts // period_s) + 1)
                buckets.setdefault(max(1, tick), []).append(
                    (proxy, record, ts, alarm.start))
        for bucket in buckets.values():
            bucket.sort(key=lambda item: item[2])
        return buckets
