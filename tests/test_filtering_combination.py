"""Unit tests for repro.filtering.combination (RMS lead combination)."""

import numpy as np
import pytest

from repro.filtering import combine_leads, mean_combine, rms_combine
from repro.signals import MultiLeadEcg


class TestMath:
    def test_rms_of_identical_leads(self, rng):
        x = rng.standard_normal(100)
        combined = rms_combine(np.vstack([x, x, x]))
        assert np.allclose(combined, np.abs(x))

    def test_rms_known_values(self):
        signals = np.array([[3.0], [4.0]])
        assert rms_combine(signals)[0] == pytest.approx(np.sqrt(12.5))

    def test_mean_known_values(self):
        signals = np.array([[3.0], [5.0]])
        assert mean_combine(signals)[0] == pytest.approx(4.0)

    def test_rms_resists_polarity_cancellation(self, rng):
        x = rng.standard_normal(200)
        signals = np.vstack([x, -x])
        assert np.allclose(mean_combine(signals), 0.0)
        assert np.allclose(rms_combine(signals), np.abs(x))

    def test_rms_is_nonnegative(self, rng):
        signals = rng.standard_normal((3, 500))
        assert np.all(rms_combine(signals) >= 0)


class TestCombineLeads:
    def test_preserves_annotations(self, nsr_record):
        combined = combine_leads(nsr_record)
        assert combined.r_peaks.tolist() == nsr_record.r_peaks.tolist()
        assert len(combined) == nsr_record.n_samples

    def test_emphasizes_qrs(self, nsr_record):
        combined = combine_leads(nsr_record)
        beat = nsr_record.beats[5]
        window = combined.signal[beat.r_peak - 50:beat.r_peak + 50]
        assert np.argmax(window) == pytest.approx(50, abs=2)

    def test_unknown_method(self, nsr_record):
        with pytest.raises(ValueError, match="unknown combination"):
            combine_leads(nsr_record, method="median")

    def test_mean_method(self, nsr_record):
        combined = combine_leads(nsr_record, method="mean")
        assert combined.name.endswith("/mean")

    def test_centering_removes_offsets(self):
        signals = np.vstack([np.ones(100) * 5.0, np.ones(100) * -3.0])
        record = MultiLeadEcg(250.0, signals)
        combined = combine_leads(record, method="rms", center=True)
        assert np.allclose(combined.signal, 0.0)
