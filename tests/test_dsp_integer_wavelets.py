"""Tests for the integer-only à-trous bank and its delineation fidelity."""

import numpy as np

from repro.delineation import (
    RPeakDetector,
    WaveletDelineator,
    WaveletDelineatorConfig,
    evaluate_delineation,
)
from repro.dsp import atrous_swt, atrous_swt_integer


class TestIntegerAtrous:
    def test_close_to_float_reference(self, rng):
        x = np.cumsum(rng.standard_normal(800)) * 0.01
        float_bank = atrous_swt(x, levels=5)
        int_bank = atrous_swt_integer(x, levels=5, scale_bits=12)
        scale = np.max(np.abs(float_bank)) + 1e-12
        error = np.max(np.abs(float_bank - int_bank)) / scale
        assert error < 0.01

    def test_exact_on_representable_input(self):
        # Inputs that are multiples of 2**-scale_bits quantize losslessly;
        # with small dynamic range the per-level rounding shift is the
        # only deviation and it is bounded by one LSB per level.
        x = np.zeros(400)
        x[200] = 1.0
        float_bank = atrous_swt(x, levels=3)
        int_bank = atrous_swt_integer(x, levels=3, scale_bits=10)
        assert np.max(np.abs(float_bank - int_bank)) < 3.0 / 2 ** 10

    def test_constant_signal_zero_details(self):
        bank = atrous_swt_integer(np.full(300, 0.5), levels=4)
        assert np.allclose(bank, 0.0, atol=1e-9)

    def test_more_scale_bits_reduce_error(self, rng):
        x = np.sin(np.linspace(0, 20 * np.pi, 600)) * 0.8
        reference = atrous_swt(x, levels=4)
        coarse = atrous_swt_integer(x, levels=4, scale_bits=6)
        fine = atrous_swt_integer(x, levels=4, scale_bits=14)
        err_coarse = np.max(np.abs(reference - coarse))
        err_fine = np.max(np.abs(reference - fine))
        assert err_fine < err_coarse / 10


class TestIntegerDelineation:
    """§IV-A: the integer implementation must not cost accuracy."""

    def test_fiducials_match_float_variant(self, nsr_record):
        ecg = nsr_record.lead(1)
        peaks = RPeakDetector(ecg.fs).detect(ecg.signal)
        float_delin = WaveletDelineator(ecg.fs)
        int_delin = WaveletDelineator(
            ecg.fs, WaveletDelineatorConfig(integer_arithmetic=True))
        float_beats = float_delin.delineate(ecg.signal, peaks)
        int_beats = int_delin.delineate(ecg.signal, peaks)
        assert len(float_beats) == len(int_beats)
        diffs = []
        for a, b in zip(float_beats, int_beats):
            for wave in ("p_wave", "qrs", "t_wave"):
                wa, wb = getattr(a, wave), getattr(b, wave)
                if wa.present and wb.present:
                    diffs.append(abs(wa.onset - wb.onset))
                    diffs.append(abs(wa.end - wb.end))
        assert np.mean(diffs) < 1.0  # sub-sample average agreement

    def test_accuracy_preserved(self, nsr_record):
        ecg = nsr_record.lead(1)
        peaks = RPeakDetector(ecg.fs).detect(ecg.signal)
        delineator = WaveletDelineator(
            ecg.fs, WaveletDelineatorConfig(integer_arithmetic=True))
        detected = delineator.delineate(ecg.signal, peaks)
        report = evaluate_delineation(ecg.beats, detected, ecg.fs)
        assert report.worst_sensitivity() >= 0.90
        assert report.worst_ppv() >= 0.90
