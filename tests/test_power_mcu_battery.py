"""Unit tests for MCU/front-end models and battery lifetime."""

import pytest

from repro.power import Battery, FrontEndModel, McuModel


class TestMcuModel:
    def test_energy_per_cycle(self):
        mcu = McuModel(clock_hz=1e6, active_power_w=0.5e-3)
        assert mcu.energy_per_cycle == pytest.approx(0.5e-9)

    def test_compute_energy_linear(self):
        mcu = McuModel()
        assert mcu.compute_energy(2_000_000) == pytest.approx(
            2 * mcu.compute_energy(1_000_000))

    def test_rtos_overhead_scales_with_time(self):
        mcu = McuModel()
        assert mcu.rtos_energy(10.0) == pytest.approx(
            10 * mcu.rtos_energy(1.0))

    def test_rtos_overhead_magnitude(self):
        # 100 Hz tick x 400 cycles = 40k cycles/s: 4 % of a 1 MHz core.
        mcu = McuModel()
        busy_fraction = (mcu.rtos_tick_hz * mcu.rtos_tick_cycles
                         / mcu.clock_hz)
        assert busy_fraction == pytest.approx(0.04)

    def test_idle_energy(self):
        mcu = McuModel(sleep_power_w=2e-6)
        assert mcu.idle_energy(10.0, active_fraction=0.25) == pytest.approx(
            2e-6 * 10.0 * 0.75)


class TestFrontEnd:
    def test_sampling_energy_components(self):
        frontend = FrontEndModel(energy_per_sample_j=50e-9,
                                 bias_power_w=3e-6)
        energy = frontend.sampling_energy(250, 3, 1.0)
        assert energy == pytest.approx(250 * 3 * 50e-9 + 3e-6 * 3)

    def test_more_leads_cost_more(self):
        frontend = FrontEndModel()
        assert frontend.sampling_energy(250, 3, 1.0) > \
            2.9 * frontend.sampling_energy(250, 1, 1.0)


class TestBattery:
    def test_usable_energy(self):
        battery = Battery(capacity_mah=150.0, voltage_v=3.7,
                          usable_fraction=0.85)
        expected = 0.150 * 3600 * 3.7 * 0.85
        assert battery.usable_energy_j == pytest.approx(expected)

    def test_lifetime_inverse_in_power(self):
        battery = Battery(self_discharge_per_month=0.0)
        assert battery.lifetime_days(1e-3) == pytest.approx(
            2 * battery.lifetime_days(2e-3))

    def test_lifetime_week_scale_at_milliwatts(self):
        # A 150 mAh cell at ~2.8 mW lasts about one week — the paper's
        # "mean time between charges is typically one week".
        battery = Battery()
        days = battery.lifetime_days(2.8e-3)
        assert 5.0 <= days <= 9.0

    def test_zero_power_limited_by_self_discharge(self):
        battery = Battery(self_discharge_per_month=0.05)
        assert battery.lifetime_days(0.0) < float("inf")
        no_leak = Battery(self_discharge_per_month=0.0)
        assert no_leak.lifetime_days(0.0) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(capacity_mah=0.0)
        with pytest.raises(ValueError):
            Battery(usable_fraction=1.5)
        with pytest.raises(ValueError):
            Battery().lifetime_days(-1.0)
