"""Fleet gateway demo: 60 wearable nodes feeding one receiving gateway.

Simulates the production topology the paper implies but never builds:
a heterogeneous cohort of patients (mixed rhythms, noise environments,
1- and 3-lead nodes) each running the §V node pipeline and uplinking
CS-compressed excerpts "periodically or when an abnormality is
detected"; a gateway that reconstructs every excerpt server-side with
the joint group-sparse decoder, re-checks node alarms on the
reconstruction, and maintains a fleet triage board.

Run:  python examples/fleet_gateway.py [--patients 60] [--duration 60]
"""

from __future__ import annotations

import argparse

from repro.classification import AfDetector
from repro.fleet import (
    CohortConfig,
    FleetScheduler,
    SchedulerConfig,
    STATE_OK,
    make_cohort,
)
from repro.signals import make_corpus


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patients", type=int, default=60,
                        help="cohort size")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="simulated seconds per patient")
    parser.add_argument("--train-records", type=int, default=4,
                        help="AF-detector training corpus size")
    args = parser.parse_args()
    n_patients = args.patients
    duration_s = args.duration

    print(f"training fleet AF detector on {args.train_records} "
          "paroxysmal-AF records ...")
    train = make_corpus("af_mix", n_records=args.train_records,
                        duration_s=120.0, seed=1)
    detector = AfDetector().fit(list(train))

    cohort = make_cohort(CohortConfig(n_patients=n_patients, seed=7))
    by_rhythm: dict[str, int] = {}
    for profile in cohort:
        by_rhythm[profile.rhythm] = by_rhythm.get(profile.rhythm, 0) + 1
    mix = ", ".join(f"{n} {r}" for r, n in sorted(by_rhythm.items()))
    single = sum(1 for p in cohort if p.n_leads == 1)
    print(f"cohort: {len(cohort)} patients ({mix}; {single} single-lead)")

    scheduler = FleetScheduler(
        cohort,
        SchedulerConfig(duration_s=duration_s),
        af_detector=detector,
    )
    print(f"simulating {duration_s:.0f} s of fleet uplink ...")
    report = scheduler.run()

    print("\n" + report.summary.describe())

    timings = report.timings_s
    print(f"\nthroughput: {report.patients_per_second:.1f} patients/s "
          f"(node phase {timings['synthesis+node']:.1f} s, "
          f"gateway {timings['uplink+gateway']:.1f} s)")
    print(f"packets: {report.packets_sent} sent, "
          f"{len(report.excerpts)} reconstructed, "
          f"{report.summary.dropped_packets} dropped")

    flagged = [t for t in scheduler.board.patients.values()
               if t.state != STATE_OK]
    if flagged:
        print("\npatients needing attention:")
        for triage in sorted(flagged, key=lambda t: t.patient_id):
            channel = scheduler.gateway.channels[triage.patient_id]
            profile = next(p for p in cohort
                           if p.patient_id == triage.patient_id)
            print(f"  {triage.patient_id}  {triage.state:<5}  "
                  f"rhythm={profile.rhythm:<13} "
                  f"alarms={channel.n_alarms} "
                  f"(confirmed {channel.n_confirmed})  "
                  f"snr={channel.mean_snr_db:5.1f} dB")


if __name__ == "__main__":
    main()
