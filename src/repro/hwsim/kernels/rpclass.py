"""RP-CLASS: random-projection heartbeat classification kernel (Fig. 7).

Projects one beat window onto integer ternary rows (multiply-accumulate),
scores each class by L1 distance between the projected features and the
class centers, and picks the argmin class.  The MC mapping splits the
*feature rows* across cores (each core's private bank holds its own rows
and center slices at identical addresses, so the code stays SIMD);
partial class scores meet in shared memory, a barrier closes the
producer-consumer handoff, and core 0 reduces.

Register use: r1 = feature index, r2 = inner index / best class,
r3 = accumulator / best score, r4/r5 = addresses, r6 = window length,
r7 = rows per core, r8/r13 = temporaries, r9 = row pointer,
r10 = load temporary, r11 = class index, r12 = score accumulator,
r14 = center pointer.
"""

from __future__ import annotations

import numpy as np

from ..assembler import Assembler
from ..isa import Instruction
from ..platform import SHARED_BASE
from .common import rp_scores_reference

#: Private-bank layout.
WINDOW_BASE = 0
ROWS_BASE = 1024
CENTERS_BASE = 12288
FEATURES_BASE = 14336
#: Shared-memory slot where core 0 publishes the winning class.
RESULT_OFFSET = 256


def build_rpclass_kernel(window: int, rows_per_core: int, n_classes: int,
                         n_slots: int) -> list[Instruction]:
    """Build the RP-CLASS program.

    Args:
        window: Beat-window length in samples.
        rows_per_core: Projection rows evaluated by this core.
        n_classes: Number of beat classes.
        n_slots: Partial-score producers (SC: 1, MC: n_cores).
    """
    asm = Assembler()
    # Feature loop: f[j] = sum_i rows[j, i] * window[i].
    asm.ldi(9, ROWS_BASE)
    asm.ldi(6, window)
    asm.ldi(7, rows_per_core)
    asm.ldi(1, 0)
    asm.label("feat")
    asm.ldi(3, 0)
    asm.ldi(2, 0)
    asm.label("mac")
    asm.add(5, 9, 2)
    asm.ld(10, 5)
    asm.ld(13, 2, WINDOW_BASE)
    asm.mul(10, 10, 13)
    asm.add(3, 3, 10)
    asm.addi(2, 2, 1)
    asm.blt(2, 6, "mac")
    asm.ldi(8, FEATURES_BASE)
    asm.add(8, 8, 1)
    asm.st(8, 3)
    asm.add(9, 9, 6)
    asm.addi(1, 1, 1)
    asm.blt(1, 7, "feat")
    # Class partial scores: s_c = sum_j |f[j] - centers[c, j]|.
    asm.ldi(11, 0)
    asm.ldi(14, CENTERS_BASE)
    asm.label("cls")
    asm.ldi(12, 0)
    asm.ldi(1, 0)
    asm.label("csum")
    asm.ldi(8, FEATURES_BASE)
    asm.add(8, 8, 1)
    asm.ld(10, 8)
    asm.add(5, 14, 1)
    asm.ld(13, 5)
    asm.sub(10, 10, 13)
    asm.abs_(10, 10)
    asm.add(12, 12, 10)
    asm.addi(1, 1, 1)
    asm.blt(1, 7, "csum")
    # Publish partial score to shared[c * n_slots + cid].
    asm.cid(8)
    asm.ldi(5, n_slots)
    asm.mul(5, 11, 5)
    asm.add(8, 8, 5)
    asm.ldi(5, SHARED_BASE)
    asm.add(5, 5, 8)
    asm.st(5, 12)
    asm.add(14, 14, 7)
    asm.addi(11, 11, 1)
    asm.ldi(8, n_classes)
    asm.blt(11, 8, "cls")
    # Producer-consumer handoff: barrier, then core 0 reduces.
    asm.bar()
    asm.cid(8)
    asm.ldi(5, 0)
    asm.bne(8, 5, "done")
    asm.ldi(11, 0)
    asm.ldi(3, 1 << 30)
    asm.ldi(2, 0)
    asm.label("red_cls")
    asm.ldi(12, 0)
    asm.ldi(1, 0)
    asm.label("red_slot")
    asm.ldi(5, n_slots)
    asm.mul(8, 11, 5)
    asm.add(8, 8, 1)
    asm.ldi(5, SHARED_BASE)
    asm.add(5, 5, 8)
    asm.ld(10, 5)
    asm.add(12, 12, 10)
    asm.addi(1, 1, 1)
    asm.ldi(5, n_slots)
    asm.blt(1, 5, "red_slot")
    asm.bge(12, 3, "red_skip")
    asm.mov(3, 12)
    asm.mov(2, 11)
    asm.label("red_skip")
    asm.addi(11, 11, 1)
    asm.ldi(5, n_classes)
    asm.blt(11, 5, "red_cls")
    asm.ldi(5, SHARED_BASE)
    asm.st(5, 2, RESULT_OFFSET)
    asm.st(5, 3, RESULT_OFFSET + 1)
    asm.label("done")
    asm.halt()
    return asm.assemble()


def prepare_memories(window: np.ndarray, rows: np.ndarray,
                     centers: np.ndarray, n_cores: int,
                     ) -> list[np.ndarray]:
    """Private-bank contents: each core gets its row/center slice.

    Args:
        window: Integer beat window, shape ``(n,)``.
        rows: Integer projection rows, shape ``(k, n)``.
        centers: Integer class centers, shape ``(n_classes, k)``.
        n_cores: 1 (SC) or the MC core count; ``k`` must divide evenly.

    Raises:
        ValueError: If the rows do not split evenly across cores.
    """
    k = rows.shape[0]
    if k % n_cores != 0:
        raise ValueError(f"{k} rows do not split over {n_cores} cores")
    per_core = k // n_cores
    banks = []
    size = FEATURES_BASE + per_core + 1
    for core in range(n_cores):
        bank = np.zeros(size, dtype=np.int64)
        n = window.shape[0]
        bank[WINDOW_BASE:WINDOW_BASE + n] = window
        row_slice = rows[core * per_core:(core + 1) * per_core]
        bank[ROWS_BASE:ROWS_BASE + row_slice.size] = row_slice.ravel()
        center_slice = centers[:, core * per_core:(core + 1) * per_core]
        bank[CENTERS_BASE:CENTERS_BASE + center_slice.size] = \
            center_slice.ravel()
        banks.append(bank)
    return banks


def reference_class(window: np.ndarray, rows: np.ndarray,
                    centers: np.ndarray) -> tuple[int, int]:
    """Reference (class index, score); ties resolve to the lowest index."""
    scores = rp_scores_reference(window, rows, centers)
    best = int(np.argmin(scores))
    return best, int(scores[best])
