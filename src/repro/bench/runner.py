"""BenchRunner: warmup+repeat timing, RSS, baselines, BENCH emission.

The runner executes registered cases with fixed seeds, times each with
``perf_counter`` over ``warmup`` discarded + ``repeats`` scored runs,
derives throughput from the workload's reported work counts, samples the
process RSS high-water mark, and scores the **best** (minimum) wall time
against ``benchmarks/baselines.json`` — best-of-N is the standard
regression statistic because scheduler noise only ever adds time.

Two reading notes on the artifact: ``peak_rss_mb`` is the *process*
high-water mark observed at the end of each case — it is cumulative
across the (alphabetical) case order, so only increases at a case are
attributable to it.  And baselines faster than
:data:`MIN_GATED_WALL_S` are reported with their ratio but never fail
the gate — a sub-millisecond workload cannot be wall-clock-regressed
meaningfully.
"""

from __future__ import annotations

import cProfile
import dataclasses
import io
import json
import platform
import pstats
import resource
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..obs import Observability, SCOPE_SHARD
from .registry import COUNT_KEYS, BenchCase, BenchContext, all_cases
from .schema import SCHEMA_VERSION, validate_report

#: Default allowed slowdown vs baseline before a case fails (25 %).
DEFAULT_TOLERANCE = 0.25

#: Baselines below this are too fast to gate on wall-clock: a scheduler
#: blip dwarfs the workload, so the ratio is reported but never fails.
MIN_GATED_WALL_S = 0.05


def resolve_revision() -> str:
    """Short git revision of the working tree, or ``"local"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True)
        return out.stdout.strip() or "local"
    except (OSError, subprocess.SubprocessError):
        return "local"


def _peak_rss_mb() -> float:
    """Process RSS high-water mark in MiB (monotonic over the run)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    scale = 1024.0 if sys.platform != "darwin" else 1024.0 * 1024.0
    return peak / scale


def load_baselines(path: str | Path) -> dict:
    """Read a baselines file; empty mapping when it does not exist."""
    path = Path(path)
    if not path.exists():
        return {}
    payload = json.loads(path.read_text())
    return payload.get("cases", {})


def write_baselines(path: str | Path, report: "BenchReport",
                    note: str = "") -> None:
    """Re-baseline: write the report's wall times as the new floor."""
    path = Path(path)
    existing = {}
    if path.exists():
        existing = json.loads(path.read_text())
    cases = existing.get("cases", {})
    key = "wall_s_quick" if report.quick else "wall_s"
    for case in report.cases:
        entry = dict(cases.get(case["name"], {}))
        entry[key] = round(case["wall_s"], 6)
        cases[case["name"]] = entry
    payload = {
        "schema_version": SCHEMA_VERSION,
        "revision": report.revision,
        "note": note or existing.get("note", ""),
        "cases": dict(sorted(cases.items())),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@dataclass
class BenchReport:
    """All case outcomes of one runner invocation."""

    revision: str
    quick: bool
    tolerance: float
    cases: list[dict] = field(default_factory=list)
    history: dict = field(default_factory=dict)
    observability: dict | None = None

    @property
    def regressions(self) -> list[str]:
        """Names of the cases that regressed past tolerance."""
        return [c["name"] for c in self.cases
                if c["status"] == "regression"]

    def to_dict(self) -> dict:
        """The schema-validated ``BENCH_<rev>.json`` payload."""
        payload = {
            "schema_version": SCHEMA_VERSION,
            "revision": self.revision,
            "quick": self.quick,
            "tolerance": self.tolerance,
            "environment": {
                "python": platform.python_version(),
                "numpy": np.__version__,
                "platform": platform.platform(),
            },
            "history": self.history,
            "cases": self.cases,
        }
        if self.observability is not None:
            payload["observability"] = self.observability
        validate_report(payload)
        return payload

    def to_json(self) -> str:
        """Serialized artifact (stable key order, trailing newline)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def write(self, out_dir: str | Path = ".") -> Path:
        """Emit ``BENCH_<rev>.json`` into ``out_dir``; returns the path."""
        path = Path(out_dir) / f"BENCH_{self.revision}.json"
        path.write_text(self.to_json())
        return path

    def describe(self) -> str:
        """Fixed-width table of every case (the CLI output)."""
        header = (f"{'case':<26} {'wall [s]':>9} {'base [s]':>9} "
                  f"{'ratio':>6} {'samp/s':>10} {'pt/s':>7} "
                  f"{'rss MB':>7}  status")
        lines = [
            f"bench @ {self.revision} "
            f"({'quick' if self.quick else 'full'} grid, "
            f"tolerance {self.tolerance:.0%})",
            header,
            "-" * len(header),
        ]
        for case in self.cases:
            through = case["throughput"] or {}
            lines.append(
                f"{case['name']:<26} {case['wall_s']:>9.3f} "
                f"{_fmt(case['baseline_wall_s'], '9.3f')} "
                f"{_fmt(case['ratio'], '6.2f')} "
                f"{_fmt(through.get('samples_per_s'), '10.0f')} "
                f"{_fmt(through.get('patients_per_s'), '7.2f')} "
                f"{case['peak_rss_mb']:>7.0f}  {case['status']}")
        if self.regressions:
            lines.append(f"REGRESSIONS: {', '.join(self.regressions)}")
        return "\n".join(lines)


def _fmt(value, spec: str) -> str:
    width = int(spec.split(".")[0])
    if value is None or (isinstance(value, float) and not np.isfinite(value)):
        return "-".rjust(width)
    return format(value, spec)


class BenchRunner:
    """Drive a set of cases and assemble one :class:`BenchReport`.

    Args:
        cases: Cases to run (default: the full registry, sorted by
            name so the artifact is stable).
        quick: CI-sized workloads.
        warmup: Discarded runs before timing starts.
        repeats: Scored runs per case (best-of is the headline number).
        baselines: ``name -> {"wall_s": ...}`` mapping from
            :func:`load_baselines`; empty means every case reports
            ``no-baseline``.
        tolerance: Allowed fractional slowdown before ``regression``.
        seed: Base seed forwarded to every workload.
        obs: Optional observability bundle.  Forwarded to workloads via
            :class:`BenchContext` and stamped with per-case wall-time
            gauges; the report then attaches its snapshot bundle so
            ``BENCH_<rev>.json`` carries the run's metrics.
        profile: Collect a cProfile of one *extra* (untimed) workload
            run per case.  The timed region is never profiled, so the
            scored wall times are unaffected; read the table back with
            :meth:`profile_text`.
    """

    def __init__(self, cases: list[BenchCase] | None = None,
                 quick: bool = False, warmup: int = 1, repeats: int = 3,
                 baselines: dict | None = None,
                 tolerance: float = DEFAULT_TOLERANCE,
                 seed: int = 2014,
                 obs: Observability | None = None,
                 profile: bool = False) -> None:
        if warmup < 0 or repeats < 1:
            raise ValueError("need warmup >= 0 and repeats >= 1")
        self.cases = (sorted(all_cases().values(), key=lambda c: c.name)
                      if cases is None else list(cases))
        self.quick = quick
        self.warmup = warmup
        self.repeats = repeats
        self.baselines = baselines or {}
        self.tolerance = tolerance
        self.seed = seed
        self.obs = obs
        self.profiler = cProfile.Profile() if profile else None

    def run(self, progress=None) -> BenchReport:
        """Execute every case; ``progress`` (optional callable) gets
        each finished case dict as it lands."""
        report = BenchReport(revision=resolve_revision(),
                             quick=self.quick, tolerance=self.tolerance)
        for case in self.cases:
            outcome = self._run_case(case)
            report.cases.append(outcome)
            if progress is not None:
                progress(outcome)
        if self.obs is not None:
            report.observability = self.obs.snapshot_bundle()
        return report

    def profile_text(self, top: int = 25) -> str:
        """Top-``top`` cumulative-time table of the profiled runs.

        Raises:
            ValueError: The runner was built without ``profile=True``.
        """
        if self.profiler is None:
            raise ValueError("runner was not profiling; pass profile=True")
        stream = io.StringIO()
        stats = pstats.Stats(self.profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(top)
        return stream.getvalue()

    def _run_case(self, case: BenchCase) -> dict:
        ctx = BenchContext(quick=self.quick, seed=self.seed, obs=self.obs)
        for _ in range(self.warmup):
            case.workload(ctx)
        walls: list[float] = []
        result: dict = {}
        for _ in range(self.repeats):
            t0 = time.perf_counter()
            result = case.workload(ctx)
            walls.append(time.perf_counter() - t0)
        if self.profiler is not None:
            # One extra run under the profiler, after (never inside)
            # the timed region.  ``profiled=True`` tells the workload
            # its wall clock is distorted by tracing overhead.
            profiled_ctx = dataclasses.replace(ctx, profiled=True)
            self.profiler.enable()
            case.workload(profiled_ctx)
            self.profiler.disable()
        best = min(walls)
        if self.obs is not None:
            self.obs.metrics.gauge(
                "bench_case_wall_seconds",
                "Best scored wall time per bench case",
                scope=SCOPE_SHARD).set(best, case=case.name,
                                       quick=self.quick)
        baseline_key = "wall_s_quick" if self.quick else "wall_s"
        baseline = self.baselines.get(case.name, {}).get(baseline_key)
        if not baseline:
            baseline, ratio, status = None, None, "no-baseline"
        else:
            ratio = best / baseline
            if baseline < MIN_GATED_WALL_S:  # report, never gate
                status = "pass"
            else:
                status = ("regression" if ratio > 1.0 + self.tolerance
                          else "pass")
        counts = {key: result.get(key) for key in COUNT_KEYS}
        throughput = None
        if any(v is not None for v in counts.values()):
            throughput = {
                f"{key}_per_s": (float(value) / best
                                 if value is not None else None)
                for key, value in counts.items()
            }
        metrics = {key: value for key, value in result.items()
                   if key not in COUNT_KEYS}
        metrics.update({key: value for key, value in counts.items()
                        if value is not None})
        return {
            "name": case.name,
            "legacy": case.legacy,
            "summary": case.summary,
            "tags": list(case.tags),
            "wall_s": round(best, 6),
            "wall_s_mean": round(float(np.mean(walls)), 6),
            "wall_s_all": [round(w, 6) for w in walls],
            "repeats": self.repeats,
            "warmup": self.warmup,
            "peak_rss_mb": round(_peak_rss_mb(), 2),
            "throughput": throughput,
            "metrics": _json_safe(metrics),
            "baseline_wall_s": baseline,
            "ratio": round(ratio, 4) if ratio is not None else None,
            "status": status,
        }


def _json_safe(metrics: dict) -> dict:
    """Round floats and strip non-finite values for stable JSON."""
    out = {}
    for key, value in metrics.items():
        if isinstance(value, (np.floating, np.integer)):
            value = value.item()
        if isinstance(value, float):
            value = round(value, 6) if np.isfinite(value) else None
        out[key] = value
    return out
