"""Unit tests for the classification evaluation report."""

import numpy as np
import pytest

from repro.classification import evaluate_classification


class TestConfusion:
    def test_perfect_prediction(self):
        y = np.array(["a", "b", "a", "c"])
        report = evaluate_classification(y, y)
        assert report.accuracy == 1.0
        assert np.trace(report.confusion) == 4

    def test_known_confusion(self):
        truth = np.array(["a", "a", "b", "b"])
        pred = np.array(["a", "b", "b", "b"])
        report = evaluate_classification(truth, pred)
        assert report.accuracy == 0.75
        assert report.sensitivity("a") == 0.5
        assert report.sensitivity("b") == 1.0
        assert report.ppv("b") == pytest.approx(2 / 3)

    def test_specificity(self):
        truth = np.array(["a", "a", "b", "b"])
        pred = np.array(["a", "b", "b", "b"])
        # For class b: TN = 1 (first a), FP = 1 (second a).
        report = evaluate_classification(truth, pred)
        assert report.specificity("b") == 0.5
        assert report.specificity("a") == 1.0

    def test_explicit_class_order(self):
        truth = np.array(["x", "y"])
        pred = np.array(["x", "y"])
        report = evaluate_classification(truth, pred,
                                         classes=["y", "x", "z"])
        assert report.classes == ["y", "x", "z"]
        assert report.sensitivity("z") == 1.0  # vacuous

    def test_unknown_class_lookup(self):
        report = evaluate_classification(np.array(["a"]), np.array(["a"]))
        with pytest.raises(KeyError):
            report.sensitivity("missing")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="same shape"):
            evaluate_classification(np.array(["a"]), np.array(["a", "b"]))

    def test_rows(self):
        truth = np.array(["a", "b"])
        report = evaluate_classification(truth, truth)
        rows = report.rows()
        assert len(rows) == 2
        assert all(len(row) == 4 for row in rows)
