"""Unit tests for the analog CS (A2I) front-end model (§III-A)."""

import numpy as np
import pytest

from repro.compression import (
    A2IConfig,
    AnalogCsFrontEnd,
    CsDecoder,
    a2i_energy,
    nyquist_adc_energy,
    reconstruction_snr_db,
)


class TestIdealChannel:
    def test_matches_nominal_matrix(self, clean_record):
        x = clean_record.signals[1][1000:1256]
        frontend = AnalogCsFrontEnd(n=256, m=128,
                                    config=A2IConfig(adc_bits=16))
        y = frontend.acquire(x, rng=np.random.default_rng(0))
        exact = frontend.nominal_sensing_matrix().matrix @ x
        assert np.max(np.abs(y - exact)) < np.max(np.abs(exact)) / 2 ** 13

    def test_digital_decoder_reconstructs(self, clean_record):
        x = clean_record.signals[1][1000:1256]
        frontend = AnalogCsFrontEnd(n=256, m=140)
        y = frontend.acquire(x, rng=np.random.default_rng(0))
        decoder = CsDecoder(frontend.nominal_sensing_matrix())
        snr = reconstruction_snr_db(x, decoder.recover(y).window)
        assert snr > 18.0

    def test_shape_validation(self):
        frontend = AnalogCsFrontEnd(n=128, m=32)
        with pytest.raises(ValueError, match="expected 128"):
            frontend.acquire(np.zeros(64))

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            AnalogCsFrontEnd(n=64, m=65)


class TestNonIdealities:
    def _snr_with(self, x, config, seed=0):
        frontend = AnalogCsFrontEnd(n=256, m=140, config=config)
        y = frontend.acquire(x, rng=np.random.default_rng(seed))
        decoder = CsDecoder(frontend.nominal_sensing_matrix())
        return reconstruction_snr_db(x, decoder.recover(y).window)

    def test_leak_degrades_reconstruction(self, clean_record):
        x = clean_record.signals[1][1000:1256]
        ideal = self._snr_with(x, A2IConfig())
        leaky = self._snr_with(x, A2IConfig(integrator_leak=0.002))
        assert leaky < ideal - 3.0

    def test_leak_aware_receiver_recovers(self, clean_record):
        # Calibrating the receiver with the droop-weighted matrix undoes
        # most of the integrator loss.
        x = clean_record.signals[1][1000:1256]
        config = A2IConfig(integrator_leak=0.002)
        frontend = AnalogCsFrontEnd(n=256, m=140, config=config)
        y = frontend.acquire(x, rng=np.random.default_rng(0))
        from repro.compression import SensingMatrix

        calibrated = CsDecoder(SensingMatrix(frontend.effective_matrix(),
                                             kind="dense_sign"))
        naive = CsDecoder(frontend.nominal_sensing_matrix())
        snr_cal = reconstruction_snr_db(x, calibrated.recover(y).window)
        snr_naive = reconstruction_snr_db(x, naive.recover(y).window)
        assert snr_cal > snr_naive + 3.0

    def test_jitter_degrades_gracefully(self, clean_record):
        x = clean_record.signals[1][1000:1256]
        ideal = self._snr_with(x, A2IConfig())
        jittery = self._snr_with(x, A2IConfig(chip_jitter_s=0.0005))
        assert jittery < ideal
        assert jittery > 5.0  # degrades, does not collapse

    def test_comparator_noise_lowers_snr(self, clean_record):
        x = clean_record.signals[1][1000:1256]
        ideal = self._snr_with(x, A2IConfig())
        noisy = self._snr_with(x, A2IConfig(comparator_noise=0.01))
        assert noisy < ideal

    def test_config_validation(self):
        with pytest.raises(ValueError, match="integrator_leak"):
            A2IConfig(integrator_leak=1.0)
        with pytest.raises(ValueError, match="ADC bits"):
            A2IConfig(adc_bits=1)


class TestEnergyArgument:
    def test_a2i_digitizes_less(self):
        # §III-A: merging sampling and compression simplifies the
        # converter — m conversions instead of n.
        n, m = 512, 150
        assert a2i_energy(m) < nyquist_adc_energy(n)

    def test_integrator_power_accounted(self):
        cheap = a2i_energy(100, integrator_power_w=0.0)
        real = a2i_energy(100, integrator_power_w=5e-6)
        assert real > cheap
