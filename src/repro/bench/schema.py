"""Schema of the ``BENCH_<rev>.json`` artifact, with a validator.

The schema is expressed as a (subset of) JSON Schema and enforced by a
small built-in validator — the container has no ``jsonschema`` package,
and the subset we need (``type`` / ``required`` / ``properties`` /
``items`` / ``enum`` / nullable unions) is a few dozen lines.  Bump
``SCHEMA_VERSION`` on any breaking change to the artifact layout; the
validator pins the version it understands.
"""

from __future__ import annotations

from typing import Any

SCHEMA_VERSION = 1

_CASE_SCHEMA = {
    "type": "object",
    "required": ["name", "legacy", "summary", "wall_s", "wall_s_mean",
                 "repeats", "warmup", "peak_rss_mb", "throughput",
                 "metrics", "baseline_wall_s", "ratio", "status"],
    "properties": {
        "name": {"type": "string"},
        "legacy": {"type": "string"},
        "summary": {"type": "string"},
        "tags": {"type": "array", "items": {"type": "string"}},
        "wall_s": {"type": "number"},
        "wall_s_mean": {"type": "number"},
        "wall_s_all": {"type": "array", "items": {"type": "number"}},
        "repeats": {"type": "integer"},
        "warmup": {"type": "integer"},
        "peak_rss_mb": {"type": "number"},
        "throughput": {
            "type": ["object", "null"],
            "properties": {
                "samples_per_s": {"type": ["number", "null"]},
                "patients_per_s": {"type": ["number", "null"]},
            },
        },
        "metrics": {"type": "object"},
        "baseline_wall_s": {"type": ["number", "null"]},
        "ratio": {"type": ["number", "null"]},
        "status": {"type": "string",
                   "enum": ["pass", "regression", "no-baseline"]},
    },
}

#: The BENCH artifact schema (subset of JSON Schema draft semantics).
BENCH_SCHEMA = {
    "type": "object",
    "required": ["schema_version", "revision", "quick", "tolerance",
                 "environment", "cases"],
    "properties": {
        "schema_version": {"type": "integer", "enum": [SCHEMA_VERSION]},
        "revision": {"type": "string"},
        "quick": {"type": "boolean"},
        "tolerance": {"type": "number"},
        "environment": {
            "type": "object",
            "required": ["python", "numpy", "platform"],
            "properties": {
                "python": {"type": "string"},
                "numpy": {"type": "string"},
                "platform": {"type": "string"},
            },
        },
        "history": {"type": "object"},
        "cases": {"type": "array", "items": _CASE_SCHEMA},
        # Optional (--obs runs only): the Observability snapshot bundle
        # — additive, so SCHEMA_VERSION stays put.
        "observability": {
            "type": "object",
            "required": ["metrics", "trace", "flight"],
            "properties": {
                "metrics": {"type": "object"},
                "trace": {"type": "object"},
                "flight": {"type": "object"},
            },
        },
    },
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


class BenchSchemaError(ValueError):
    """A BENCH payload does not conform to :data:`BENCH_SCHEMA`."""


def _check_type(value: Any, expected: str | list, path: str) -> None:
    names = expected if isinstance(expected, list) else [expected]
    for name in names:
        python_type = _TYPES[name]
        if isinstance(value, python_type):
            # bool is an int subclass; don't let it satisfy number/int.
            if name in ("number", "integer") and isinstance(value, bool):
                continue
            return
    raise BenchSchemaError(
        f"{path}: expected {' or '.join(names)}, "
        f"got {type(value).__name__}")


def _validate(value: Any, schema: dict, path: str) -> None:
    if "type" in schema:
        _check_type(value, schema["type"], path)
    if "enum" in schema and value not in schema["enum"]:
        raise BenchSchemaError(
            f"{path}: {value!r} not in allowed values {schema['enum']}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                raise BenchSchemaError(f"{path}: missing key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                _validate(value[key], sub, f"{path}.{key}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _validate(item, schema["items"], f"{path}[{i}]")


def validate_report(payload: dict) -> None:
    """Check one BENCH payload against :data:`BENCH_SCHEMA`.

    Raises:
        BenchSchemaError: On the first violation found (with a JSON
            path pointing at it).
    """
    _validate(payload, BENCH_SCHEMA, "$")
