"""Unit tests for repro.filtering.baseline (cubic-spline wander removal)."""

import numpy as np
import pytest

from repro.filtering import (
    estimate_baseline,
    knot_positions,
    knot_values,
    remove_baseline_spline,
)
from repro.signals import EcgRecord, baseline_wander, snr_db


class TestKnots:
    def test_positions_precede_r_peaks(self):
        peaks = np.array([100, 300, 500])
        knots = knot_positions(peaks, fs=250.0, n=600)
        assert np.all(knots < peaks)
        assert np.all(peaks - knots == int(round(0.088 * 250)))

    def test_positions_clipped_to_record(self):
        knots = knot_positions(np.array([5, 300]), fs=250.0, n=400)
        assert np.all(knots >= 0)
        assert knots.shape[0] == 1  # first beat's knot fell before 0

    def test_values_average_window(self):
        signal = np.arange(100, dtype=float)
        values = knot_values(signal, np.array([50]), fs=250.0)
        assert values[0] == pytest.approx(50.0)


class TestBaselineEstimate:
    def test_recovers_slow_drift(self, clean_record, rng):
        fs = clean_record.fs
        lead = clean_record.signals[1][:6000]
        peaks = np.array([b.r_peak for b in clean_record.beats
                          if b.r_peak < 6000])
        drift = baseline_wander(lead.shape[0], fs, rng, amplitude_mv=0.4,
                                max_freq_hz=0.3)
        estimate = estimate_baseline(lead + drift, peaks, fs)
        # The estimate should track the drift far better than a constant.
        residual = drift - estimate
        assert np.std(residual) < 0.4 * np.std(drift)

    def test_few_beats_falls_back_to_mean(self):
        signal = np.ones(500) * 2.5
        estimate = estimate_baseline(signal, np.array([200]), 250.0)
        assert np.allclose(estimate, 2.5)

    def test_removal_improves_snr(self, clean_record, rng):
        fs = clean_record.fs
        lead = clean_record.signals[1][:6000]
        beats = [b for b in clean_record.beats if b.r_peak < 6000]
        drift = baseline_wander(lead.shape[0], fs, rng, amplitude_mv=0.4,
                                max_freq_hz=0.3)
        record = EcgRecord(fs, lead + drift, beats)
        restored = remove_baseline_spline(record)
        assert snr_db(lead, restored.signal) > snr_db(lead, lead + drift) + 6

    def test_removal_accepts_external_peaks(self, clean_record):
        ecg = clean_record.lead(1)
        restored = remove_baseline_spline(ecg, r_peaks=ecg.r_peaks)
        assert len(restored) == len(ecg)
        assert restored.r_peaks.tolist() == ecg.r_peaks.tolist()
