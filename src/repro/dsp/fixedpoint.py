"""Fixed-point arithmetic helpers for integer-only targets.

The platforms in §IV-A "operate at a clock frequency of few MHz and only
support integer arithmetic operations".  The embedded-faithful variants of
the algorithms (wavelet filter bank, Gaussian membership linearization,
sensing-matrix products) therefore run in Qm.f fixed point.  This module
provides the quantization, saturation and rounding primitives they share,
plus an error-analysis helper used by the tests to bound quantization loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QFormat:
    """A signed fixed-point format with ``frac_bits`` fractional bits.

    Attributes:
        total_bits: Word length including the sign bit (16 for the paper's
            MCU class).
        frac_bits: Number of fractional bits.
    """

    total_bits: int = 16
    frac_bits: int = 8

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ValueError("need at least 2 bits (sign + magnitude)")
        if not 0 <= self.frac_bits < self.total_bits:
            raise ValueError("frac_bits must lie in [0, total_bits)")

    @property
    def scale(self) -> int:
        """Scaling factor ``2**frac_bits``."""
        return 1 << self.frac_bits

    @property
    def max_raw(self) -> int:
        """Largest representable raw integer."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_raw(self) -> int:
        """Smallest representable raw integer."""
        return -(1 << (self.total_bits - 1))

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_raw / self.scale

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_raw / self.scale

    @property
    def resolution(self) -> float:
        """Quantization step ``2**-frac_bits``."""
        return 1.0 / self.scale

    def quantize(self, x: np.ndarray | float) -> np.ndarray:
        """Round-to-nearest quantization to raw integers, with saturation."""
        raw = np.rint(np.asarray(x, dtype=float) * self.scale)
        return np.clip(raw, self.min_raw, self.max_raw).astype(np.int64)

    def to_real(self, raw: np.ndarray | int) -> np.ndarray:
        """Convert raw integers back to real values."""
        return np.asarray(raw, dtype=float) / self.scale

    def roundtrip(self, x: np.ndarray | float) -> np.ndarray:
        """Quantize then dequantize (the value the integer target sees)."""
        return self.to_real(self.quantize(x))

    def saturating_add(self, a: np.ndarray | int,
                       b: np.ndarray | int) -> np.ndarray:
        """Raw-domain addition with saturation (no wraparound)."""
        total = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
        return np.clip(total, self.min_raw, self.max_raw)

    def multiply(self, a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray:
        """Raw-domain multiply with rescaling and saturation.

        The double-width product is shifted right by ``frac_bits`` with
        round-half-up, matching a MUL + shift sequence on a 16x16->32
        integer multiplier.
        """
        wide = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
        rounded = (wide + (1 << (self.frac_bits - 1))) >> self.frac_bits \
            if self.frac_bits > 0 else wide
        return np.clip(rounded, self.min_raw, self.max_raw)


#: The Q1.14-ish format used for wavelet filter taps on a 16-bit MCU.
Q15 = QFormat(total_bits=16, frac_bits=14)
#: Format used for signal samples after front-end scaling (Q7.8).
SAMPLE_Q = QFormat(total_bits=16, frac_bits=8)


def quantization_snr_db(x: np.ndarray, fmt: QFormat) -> float:
    """SNR (dB) of a signal after a quantization round trip through fmt."""
    x = np.asarray(x, dtype=float)
    error = x - fmt.roundtrip(x)
    signal_power = np.mean(x ** 2)
    noise_power = np.mean(error ** 2)
    if noise_power == 0:
        return np.inf
    return 10.0 * np.log10(signal_power / noise_power)


def fixed_point_fir(x: np.ndarray, taps: np.ndarray,
                    sample_fmt: QFormat = SAMPLE_Q,
                    coeff_fmt: QFormat = Q15) -> np.ndarray:
    """FIR filtering entirely in the raw integer domain.

    Models the MCU implementation: samples in ``sample_fmt``, coefficients
    in ``coeff_fmt``, 32-bit accumulator, final shift back to the sample
    format.  Returns real-valued output (dequantized) for comparison with
    the floating-point reference.
    """
    raw_x = sample_fmt.quantize(x)
    raw_taps = coeff_fmt.quantize(taps)
    n = raw_x.shape[0]
    length = raw_taps.shape[0]
    out = np.zeros(n, dtype=np.int64)
    for m in range(length):
        shifted = np.zeros(n, dtype=np.int64)
        shifted[m:] = raw_x[:n - m] if m > 0 else raw_x
        out += raw_taps[m] * shifted
    # Accumulator carries sample_fmt.frac + coeff_fmt.frac fractional bits.
    shift = coeff_fmt.frac_bits
    rounded = (out + (1 << (shift - 1))) >> shift if shift > 0 else out
    rounded = np.clip(rounded, sample_fmt.min_raw, sample_fmt.max_raw)
    return sample_fmt.to_real(rounded)
