"""Classification evaluation: confusion matrices and per-class metrics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ClassificationReport:
    """Confusion matrix plus derived per-class metrics.

    Attributes:
        classes: Ordered class labels.
        confusion: ``confusion[i, j]`` counts samples of true class ``i``
            predicted as class ``j``.
    """

    classes: list[str]
    confusion: np.ndarray

    @property
    def total(self) -> int:
        """Total number of scored samples."""
        return int(self.confusion.sum())

    @property
    def accuracy(self) -> float:
        """Overall accuracy."""
        total = self.total
        return float(np.trace(self.confusion)) / total if total else 0.0

    def _index(self, label: str) -> int:
        try:
            return self.classes.index(label)
        except ValueError:
            raise KeyError(f"unknown class {label!r}") from None

    def sensitivity(self, label: str) -> float:
        """Recall of one class: TP / (TP + FN)."""
        i = self._index(label)
        row = self.confusion[i].sum()
        return float(self.confusion[i, i]) / row if row else 1.0

    def ppv(self, label: str) -> float:
        """Positive predictivity of one class: TP / (TP + FP)."""
        i = self._index(label)
        col = self.confusion[:, i].sum()
        return float(self.confusion[i, i]) / col if col else 1.0

    def specificity(self, label: str) -> float:
        """One-vs-rest specificity: TN / (TN + FP)."""
        i = self._index(label)
        fp = self.confusion[:, i].sum() - self.confusion[i, i]
        tn = self.total - self.confusion[i].sum() - fp
        denom = tn + fp
        return float(tn) / denom if denom else 1.0

    def rows(self) -> list[tuple[str, float, float, float]]:
        """Report rows: (class, Se, PPV, Sp)."""
        return [(c, self.sensitivity(c), self.ppv(c), self.specificity(c))
                for c in self.classes]


def evaluate_classification(truth: np.ndarray, predicted: np.ndarray,
                            classes: list[str] | None = None,
                            ) -> ClassificationReport:
    """Build a :class:`ClassificationReport` from label arrays.

    Args:
        truth: Ground-truth labels.
        predicted: Predicted labels (same length).
        classes: Class ordering (defaults to the sorted union).
    """
    truth = np.asarray(truth)
    predicted = np.asarray(predicted)
    if truth.shape != predicted.shape:
        raise ValueError("truth and predicted must have the same shape")
    if classes is None:
        classes = sorted(set(truth.tolist()) | set(predicted.tolist()))
    index = {label: i for i, label in enumerate(classes)}
    confusion = np.zeros((len(classes), len(classes)), dtype=int)
    for t, p in zip(truth, predicted):
        confusion[index[t], index[p]] += 1
    return ClassificationReport(classes=list(classes), confusion=confusion)
