"""Cubic-spline baseline-wander removal (Meyer & Keiser 1977, ref [10]).

The method anchors one "knot" per beat inside the electrically silent
PQ segment (just before the QRS complex), where the true ECG is at baseline
level, then interpolates the knots with cubic splines to estimate the
wander, and subtracts it.  Following the original paper, each knot value is
the average of a short window to reject residual noise.
"""

from __future__ import annotations

import numpy as np
from scipy.interpolate import CubicSpline

from ..signals.types import EcgRecord

#: Offset of the PQ silent region before the R peak, in seconds.
PQ_OFFSET_S = 0.088
#: Averaging window length around each knot, in seconds.
KNOT_WINDOW_S = 0.020


def knot_positions(r_peaks: np.ndarray, fs: float, n: int) -> np.ndarray:
    """Knot sample indices: one per beat, inside the PQ silent region."""
    r_peaks = np.asarray(r_peaks, dtype=int)
    knots = r_peaks - int(round(PQ_OFFSET_S * fs))
    knots = knots[(knots >= 0) & (knots < n)]
    return np.unique(knots)


def knot_values(signal: np.ndarray, knots: np.ndarray, fs: float) -> np.ndarray:
    """Average ``signal`` over a short window centred on each knot."""
    half = max(1, int(round(KNOT_WINDOW_S * fs / 2)))
    n = signal.shape[0]
    values = np.empty(knots.shape[0])
    for i, k in enumerate(knots):
        lo = max(0, k - half)
        hi = min(n, k + half + 1)
        values[i] = float(np.mean(signal[lo:hi]))
    return values


def estimate_baseline(signal: np.ndarray, r_peaks: np.ndarray,
                      fs: float) -> np.ndarray:
    """Cubic-spline baseline estimate anchored at per-beat PQ knots.

    With fewer than 3 beats a spline cannot be fit; the mean level is
    returned instead (the best constant baseline estimate).
    """
    signal = np.asarray(signal, dtype=float)
    n = signal.shape[0]
    knots = knot_positions(r_peaks, fs, n)
    if knots.shape[0] < 3:
        return np.full(n, float(np.mean(signal)))
    values = knot_values(signal, knots, fs)
    spline = CubicSpline(knots.astype(float), values, bc_type="natural")
    t = np.arange(n, dtype=float)
    baseline = spline(t)
    # Splines extrapolate poorly: clamp the regions outside the knot span
    # to the nearest knot value.
    baseline[t < knots[0]] = values[0]
    baseline[t > knots[-1]] = values[-1]
    return baseline


def remove_baseline_spline(record: EcgRecord,
                           r_peaks: np.ndarray | None = None) -> EcgRecord:
    """Return a copy of ``record`` with the spline baseline subtracted.

    Args:
        record: Input single-lead record.
        r_peaks: R-peak indices to anchor knots; defaults to the record's
            annotations (a detector output can be passed instead, which is
            what the node firmware does).
    """
    if r_peaks is None:
        r_peaks = record.r_peaks
    baseline = estimate_baseline(record.signal, r_peaks, record.fs)
    return EcgRecord(record.fs, record.signal - baseline,
                     list(record.beats), name=record.name)
