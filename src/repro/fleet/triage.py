"""Per-patient triage state machines and fleet-level aggregates.

Turns the gateway's reconstructed-excerpt stream into the thing a
monitoring service actually shows a clinician: a per-patient state
(``ok`` / ``watch`` / ``alert``) with hysteresis, and fleet statistics —
alarm rates, reconstruction-SNR distribution, uplink bandwidth and
battery projections built on :class:`~repro.power.NodeEnergyModel`
through each node's :class:`~repro.pipeline.NodeReport`.

State machine:

* a gateway-**confirmed** alarm raises ``alert``;
* an **unconfirmed** alarm, or a routine excerpt whose reconstruction
  quality falls below ``snr_watch_db``, raises ``watch`` (never lowers);
* states decay one step at a time after a quiet hold period.

Link health rides on top of the rhythm states: a patient whose node has
been silent for ``stale_after_s`` is flagged **stale** (and escalated to
``watch`` — a silent node is indistinguishable from a detached one).
The flag clears on the next packet.  :meth:`TriageBoard.register` seeds
a state machine per cohort member up front, so a node whose *every*
packet is lost still shows up stale instead of simply not existing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from ..pipeline.node_app import NodeReport
from .gateway import Gateway, ReconstructedExcerpt
from .node_proxy import PACKET_ALARM

STATE_OK = "ok"
STATE_WATCH = "watch"
STATE_ALERT = "alert"

#: Escalation order (index = severity).
STATES = (STATE_OK, STATE_WATCH, STATE_ALERT)


@dataclass(frozen=True)
class TriageConfig:
    """Escalation and decay policy.

    Attributes:
        alert_hold_s: Quiet time before ``alert`` decays to ``watch``.
        watch_hold_s: Quiet time before ``watch`` decays to ``ok``.
        snr_watch_db: Routine excerpts reconstructed below this SNR put
            the patient on ``watch`` (link or electrode trouble).
        stale_after_s: Silence (no packet observed) after which a
            registered patient's link is flagged stale.
    """

    alert_hold_s: float = 300.0
    watch_hold_s: float = 180.0
    snr_watch_db: float = 8.0
    stale_after_s: float = 150.0


@dataclass
class PatientTriage:
    """One patient's triage state with escalation timestamps.

    Attributes:
        stale: Link-health flag: no packet for ``stale_after_s``.
        last_seen_s: Time of the last packet observed (run start when
            nothing has arrived yet).
        n_stale_events: Times the link went stale over the run.
    """

    patient_id: str
    state: str = STATE_OK
    since_s: float = 0.0
    last_event_s: float = float("-inf")
    n_alerts: int = 0
    n_watches: int = 0
    stale: bool = False
    last_seen_s: float = 0.0
    n_stale_events: int = 0
    #: Latest battery state-of-charge telemetry (nan until a governed
    #: packet arrives).
    soc: float = float("nan")
    #: Latest operating-mode telemetry ("" until a packet arrives).
    mode: str = ""
    #: Expected uplink period of this patient's node in seconds (nan =
    #: the fleet-wide default).  Sparse delineation-only nodes
    #: legitimately stay silent for their whole period, so staleness
    #: waits ``max(stale_after_s, 1.5 x expected_period_s)`` before
    #: flagging them detached.
    expected_period_s: float = float("nan")

    def _escalate(self, target: str, now_s: float) -> None:
        if STATES.index(target) > STATES.index(self.state):
            self.state = target
            self.since_s = now_s
        self.last_event_s = max(self.last_event_s, now_s)

    def observe(self, excerpt: ReconstructedExcerpt,
                config: TriageConfig) -> str:
        """Feed one gateway output; return the (possibly new) state."""
        now = excerpt.timestamp_s
        self.last_seen_s = max(self.last_seen_s, now)
        self.stale = False
        self.mode = excerpt.mode
        if np.isfinite(excerpt.soc):
            self.soc = excerpt.soc
        if excerpt.kind == PACKET_ALARM:
            if excerpt.confirmed:
                self.n_alerts += 1
                self._escalate(STATE_ALERT, now)
            else:
                self.n_watches += 1
                self._escalate(STATE_WATCH, now)
        elif np.isfinite(excerpt.snr_db) \
                and excerpt.snr_db < config.snr_watch_db:
            self.n_watches += 1
            self._escalate(STATE_WATCH, now)
        else:
            self.last_event_s = max(self.last_event_s, now)
        return self.state

    def tick(self, now_s: float, config: TriageConfig) -> str:
        """Apply quiet-period decay and link-health check at ``now_s``.

        A stale link keeps the patient at ``watch`` or above for as long
        as the silence lasts (re-asserted every tick, so the quiet-decay
        rule below cannot quietly lower a patient nobody can observe).
        A declared :attr:`expected_period_s` stretches the silence
        allowance so a sparse node between scheduled uplinks is not
        mistaken for a detached one.
        """
        stale_after = config.stale_after_s
        if np.isfinite(self.expected_period_s):
            stale_after = max(stale_after, 1.5 * self.expected_period_s)
        if now_s - self.last_seen_s >= stale_after:
            if not self.stale:
                self.stale = True
                self.n_stale_events += 1
            self._escalate(STATE_WATCH, now_s)
        if self.state == STATE_ALERT \
                and now_s - self.last_event_s >= config.alert_hold_s:
            self.state = STATE_WATCH
            self.since_s = now_s
            self.last_event_s = now_s
        elif self.state == STATE_WATCH \
                and now_s - self.last_event_s >= config.watch_hold_s:
            self.state = STATE_OK
            self.since_s = now_s
        return self.state


@dataclass
class TriageBoard:
    """The fleet-wide triage view: one state machine per patient."""

    config: TriageConfig = field(default_factory=TriageConfig)
    patients: dict[str, PatientTriage] = field(default_factory=dict)

    def patient(self, patient_id: str) -> PatientTriage:
        """The (created-on-demand) state machine of one patient."""
        if patient_id not in self.patients:
            self.patients[patient_id] = PatientTriage(patient_id)
        return self.patients[patient_id]

    def register(self, patient_ids) -> None:
        """Seed a state machine per cohort member (enables staleness).

        Without registration a patient only exists on the board once a
        packet arrives — a fully silent node would never be flagged.
        """
        for patient_id in patient_ids:
            self.patient(patient_id)

    def set_expected_period(self, patient_id: str,
                            period_s: float) -> None:
        """Declare one node's expected uplink period (sparse cohorts).

        Lets staleness detection distinguish a detached node from one
        that is simply between sparse scheduled uplinks; the scheduler
        calls this for every profile carrying an ``uplink_period_s``
        override.
        """
        self.patient(patient_id).expected_period_s = float(period_s)

    def stale_ids(self) -> list[str]:
        """Patients whose link is currently flagged stale (sorted)."""
        return sorted(p.patient_id for p in self.patients.values()
                      if p.stale)

    def observe(self, excerpt: ReconstructedExcerpt) -> str:
        """Route one gateway output to its patient's state machine."""
        return self.patient(excerpt.patient_id).observe(excerpt, self.config)

    def tick(self, now_s: float) -> None:
        """Apply decay to every patient."""
        for triage in self.patients.values():
            triage.tick(now_s, self.config)

    def counts(self) -> dict[str, int]:
        """Patients per state (all three keys always present)."""
        out = {state: 0 for state in STATES}
        for triage in self.patients.values():
            out[triage.state] += 1
        return out

    def link_health(self, diagnostics: dict) -> dict[str, dict]:
        """One link-health row per patient, sorted by id.

        Joins the board's staleness view with the reassembly counters
        from :meth:`~repro.fleet.gateway.Gateway.diagnostics` — the
        supported way to ask "which links are hurting and why" without
        spelunking channel attributes.  A patient known to the gateway
        but never registered on the board reports ``stale=True`` (its
        state machine never existed, so nothing ever cleared it).
        """
        channels = diagnostics.get("channels", {})
        out: dict[str, dict] = {}
        for pid in sorted(set(self.patients) | set(channels)):
            triage = self.patients.get(pid)
            ch = channels.get(pid, {})
            out[pid] = {
                "state": triage.state if triage else STATE_OK,
                "stale": triage.stale if triage else True,
                "n_stale_events":
                    triage.n_stale_events if triage else 0,
                "n_gaps": ch.get("n_gaps", 0),
                "n_duplicates": ch.get("n_duplicates", 0),
                "n_out_of_order": ch.get("n_out_of_order", 0),
                "n_late_recovered": ch.get("n_late_recovered", 0),
                "pending_reassembly": ch.get("pending_reassembly", 0),
                "stalled_ticks": ch.get("stalled_ticks", 0),
            }
        return out


@dataclass(frozen=True)
class FleetSummary:
    """Aggregate fleet statistics over one simulated stretch.

    Attributes:
        n_patients: Cohort size.
        duration_s: Simulated recording duration per patient.
        state_counts: Final triage states (ok / watch / alert).
        node_alarms: Alarms raised on-node across the fleet.
        confirmed_alarms: Alarms upheld by the gateway.
        alarm_rate_per_patient_day: Node alarm rate, extrapolated.
        snr_p10_db / snr_p50_db / snr_p90_db: Reconstruction-SNR
            distribution across all scored excerpts.
        uplink_bytes_per_patient_day: Application payload per patient,
            extrapolated to a day.
        mean_node_power_uw: Mean node power (radio + MCU + front end).
        mean_battery_days: Mean time between charges across the fleet.
        dropped_packets: Packets lost to the bounded ingest queue.
        stale_patients: Patients whose link is stale at end of run.
        duplicate_packets: Duplicates dropped by gateway reassembly.
        reassembly_gaps: Sequence numbers lost for good on the uplink.
        governed: Whether the fleet ran under per-node EnergyGovernors.
        mode_seconds: Fleet-wide seconds spent per operating mode
            (governed runs only; empty otherwise).
        governor_switches: Mode changes across the fleet.
        mean_final_soc: Mean battery state of charge at end of run (nan
            when ungoverned).
        projected_lifetime_h_p50: Median projected hours-to-empty if
            each node's final mode held (nan when ungoverned).
    """

    n_patients: int
    duration_s: float
    state_counts: dict[str, int]
    node_alarms: int
    confirmed_alarms: int
    alarm_rate_per_patient_day: float
    snr_p10_db: float
    snr_p50_db: float
    snr_p90_db: float
    uplink_bytes_per_patient_day: float
    mean_node_power_uw: float
    mean_battery_days: float
    dropped_packets: int
    stale_patients: int = 0
    duplicate_packets: int = 0
    reassembly_gaps: int = 0
    governed: bool = False
    mode_seconds: dict[str, float] = field(default_factory=dict)
    governor_switches: int = 0
    mean_final_soc: float = float("nan")
    projected_lifetime_h_p50: float = float("nan")

    def to_dict(self) -> dict:
        """Canonical dict view: sorted sub-keys, NaN folded to None.

        No rounding is applied — two summaries serialize identically
        *iff* every aggregate matches bit for bit, which is exactly the
        equivalence the sharded runner is tested against
        (N-shard == 1-shard).
        """

        def scrub(value: float) -> float | None:
            """NaN/inf are not JSON; fold them to None determinstically."""
            if isinstance(value, float) and not np.isfinite(value):
                return None
            return value

        return {
            "n_patients": self.n_patients,
            "duration_s": scrub(self.duration_s),
            "state_counts": dict(sorted(self.state_counts.items())),
            "node_alarms": self.node_alarms,
            "confirmed_alarms": self.confirmed_alarms,
            "alarm_rate_per_patient_day":
                scrub(self.alarm_rate_per_patient_day),
            "snr_p10_db": scrub(self.snr_p10_db),
            "snr_p50_db": scrub(self.snr_p50_db),
            "snr_p90_db": scrub(self.snr_p90_db),
            "uplink_bytes_per_patient_day":
                scrub(self.uplink_bytes_per_patient_day),
            "mean_node_power_uw": scrub(self.mean_node_power_uw),
            "mean_battery_days": scrub(self.mean_battery_days),
            "dropped_packets": self.dropped_packets,
            "stale_patients": self.stale_patients,
            "duplicate_packets": self.duplicate_packets,
            "reassembly_gaps": self.reassembly_gaps,
            "governed": self.governed,
            "mode_seconds": {mode: scrub(sec) for mode, sec
                             in sorted(self.mode_seconds.items())},
            "governor_switches": self.governor_switches,
            "mean_final_soc": scrub(self.mean_final_soc),
            "projected_lifetime_h_p50":
                scrub(self.projected_lifetime_h_p50),
        }

    def to_json(self) -> str:
        """Byte-stable serialization of :meth:`to_dict` (sorted keys).

        The byte-equivalence surface of the sharding tests and the
        ``fleet-throughput-sharded`` bench gate.
        """
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def describe(self) -> str:
        """Multi-line human-readable summary (what the example prints)."""
        c = self.state_counts
        return "\n".join([
            f"fleet of {self.n_patients} patients, "
            f"{self.duration_s:.0f} s each",
            f"  triage: {c.get(STATE_OK, 0)} ok / "
            f"{c.get(STATE_WATCH, 0)} watch / "
            f"{c.get(STATE_ALERT, 0)} alert",
            f"  alarms: {self.node_alarms} raised on-node, "
            f"{self.confirmed_alarms} gateway-confirmed "
            f"({self.alarm_rate_per_patient_day:.1f} /patient/day)",
            f"  reconstruction SNR p10/p50/p90: "
            f"{self.snr_p10_db:.1f} / {self.snr_p50_db:.1f} / "
            f"{self.snr_p90_db:.1f} dB",
            f"  uplink: {self.uplink_bytes_per_patient_day / 1e3:.0f} "
            f"kB/patient/day, {self.dropped_packets} dropped",
            f"  link health: {self.stale_patients} stale, "
            f"{self.duplicate_packets} duplicates dropped, "
            f"{self.reassembly_gaps} gaps",
            f"  node power: {self.mean_node_power_uw:.0f} uW mean, "
            f"battery {self.mean_battery_days:.1f} days",
        ] + ([
            f"  governor: {self.governor_switches} mode switches, "
            f"SoC {100 * self.mean_final_soc:.0f} % mean, projected "
            f"lifetime {self.projected_lifetime_h_p50:.0f} h (p50); "
            + ", ".join(f"{mode} {sec / 3600.0:.1f} h"
                        for mode, sec in sorted(self.mode_seconds.items())
                        if sec > 0)
        ] if self.governed else []))


def fleet_summary(reports: dict[str, NodeReport], gateway: Gateway,
                  board: TriageBoard, duration_s: float,
                  governors: dict | None = None) -> FleetSummary:
    """Fold per-node reports, gateway channels and triage into one view.

    Args:
        reports: Per-patient node reports (energy/bandwidth accounting
            from :class:`~repro.power.NodeEnergyModel`).
        gateway: The gateway after draining (channels + drop counter).
        board: The triage board after the run.
        duration_s: Simulated duration each report covers.
        governors: Per-patient :class:`~repro.power.EnergyGovernor`
            instances of a governed run (``None`` = ungoverned fleet);
            folds mode dwell, switch counts, final SoC and projected
            battery lifetime into the summary.
    """
    n = len(reports)
    if n == 0:
        raise ValueError("need at least one node report")
    governed = bool(governors)
    mode_seconds: dict[str, float] = {}
    switches = 0
    socs: list[float] = []
    lifetimes: list[float] = []
    for governor in (governors or {}).values():
        for mode, sec in governor.mode_seconds.items():
            mode_seconds[mode] = mode_seconds.get(mode, 0.0) + sec
        switches += governor.n_switches
        socs.append(governor.battery.soc)
        lifetimes.append(governor.projected_hours_to_empty())
    scale_day = 86400.0 / duration_s
    node_alarms = sum(len(r.alarms) for r in reports.values())
    # Link-health counters come through the gateway's supported
    # diagnostics surface (same integers as the channel attributes, so
    # the summary bytes are unchanged by the indirection).
    diagnostics = gateway.diagnostics()
    totals = diagnostics["totals"]
    confirmed = totals["n_confirmed"]
    payload_bits = totals["payload_bits"]
    snrs = np.array([s for ch in gateway.channels.values()
                     for s in ch.snrs], dtype=float)
    p10, p50, p90 = (np.percentile(snrs, (10, 50, 90)) if snrs.size
                     else (float("nan"),) * 3)
    powers = [r.average_power_w for r in reports.values()]
    batteries = [r.battery_days for r in reports.values()]
    stale = sum(1 for p in board.patients.values() if p.stale)
    duplicates = totals["n_duplicates"]
    gaps = totals["n_gaps"]
    return FleetSummary(
        n_patients=n,
        duration_s=duration_s,
        state_counts=board.counts(),
        node_alarms=node_alarms,
        confirmed_alarms=confirmed,
        alarm_rate_per_patient_day=node_alarms / n * scale_day,
        snr_p10_db=float(p10),
        snr_p50_db=float(p50),
        snr_p90_db=float(p90),
        uplink_bytes_per_patient_day=payload_bits / 8.0 / n * scale_day,
        mean_node_power_uw=1e6 * float(np.mean(powers)),
        mean_battery_days=float(np.mean(batteries)),
        dropped_packets=gateway.dropped,
        stale_patients=stale,
        duplicate_packets=duplicates,
        reassembly_gaps=gaps,
        governed=governed,
        mode_seconds=mode_seconds,
        governor_switches=switches,
        mean_final_soc=(float(np.mean(socs)) if socs else float("nan")),
        projected_lifetime_h_p50=(
            float(np.percentile(np.asarray(lifetimes), 50))
            if lifetimes else float("nan")),
    )
