"""Synthetic multi-lead ECG generation with exact ground truth.

This is the data substrate replacing the PhysioNet recordings used by the
paper (see DESIGN.md §1).  A rhythm generator provides RR intervals and
beat-class labels; each beat is rendered as a sum of time-domain Gaussian
waves (see :mod:`repro.signals.beats`) projected onto a lead set; AF
segments additionally receive fibrillatory baseline activity.  Because every
wave is analytic, the synthesizer emits exact fiducial annotations, which the
delineation and classification evaluations use as their reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .beats import template_for
from .leads import LeadSet, standard_3lead
from .noise import NoiseSpec, RESTING_MIX, add_noise, fibrillatory_waves
from .rhythms import RhythmSegment, RhythmSequence
from .types import BeatAnnotation, MultiLeadEcg, RHYTHM_AF


@dataclass(frozen=True)
class SynthesisConfig:
    """Parameters of the waveform synthesis.

    Attributes:
        fs: Sampling frequency in Hz (the paper's node samples at 250 Hz).
        lead_set: Lead configuration (gains + names).
        start_pad_s: Silence before the first beat (must cover its P wave).
        end_pad_s: Silence after the last beat (must cover its T wave).
        f_wave_amplitude_mv: Amplitude of AF fibrillatory waves.
        snr_db: If not ``None``, mix in noise at this SNR.
        noise_specs: Composition of the noise mixture.
    """

    fs: float = 250.0
    lead_set: LeadSet | None = None
    start_pad_s: float = 0.6
    end_pad_s: float = 0.8
    f_wave_amplitude_mv: float = 0.06
    snr_db: float | None = None
    noise_specs: tuple[NoiseSpec, ...] = RESTING_MIX

    def resolved_leads(self) -> LeadSet:
        """The lead set, defaulting to the standard 3-lead configuration."""
        return self.lead_set if self.lead_set is not None else standard_3lead()


def synthesize(rhythm: RhythmSegment | RhythmSequence,
               config: SynthesisConfig | None = None,
               rng: np.random.Generator | None = None,
               name: str = "synthetic") -> MultiLeadEcg:
    """Render a rhythm into an annotated multi-lead ECG record.

    Args:
        rhythm: RR intervals and beat labels to render.
        config: Synthesis parameters (defaults used if omitted).
        rng: Random generator (needed for noise and f-waves).
        name: Record identifier.

    Returns:
        A :class:`~repro.signals.types.MultiLeadEcg` whose ``beats`` list
        holds exact ground-truth annotations.
    """
    config = config or SynthesisConfig()
    rng = rng or np.random.default_rng()
    leads = config.resolved_leads()
    fs = config.fs

    if isinstance(rhythm, RhythmSegment):
        sequence = RhythmSequence([rhythm])
    else:
        sequence = rhythm
    rr_s, labels, rhythms = sequence.flatten()
    if rr_s.shape[0] == 0:
        raise ValueError("rhythm contains no beats")

    # R-peak instants: the first RR interval positions the first beat.
    r_times = config.start_pad_s + np.cumsum(rr_s)
    n_samples = int(np.ceil((r_times[-1] + config.end_pad_s) * fs))
    signals = np.zeros((leads.n_leads, n_samples))
    annotations: list[BeatAnnotation] = []

    # Cache per-(label, lead) templates; projection is pure scaling.
    projected_cache: dict[tuple[str, int], object] = {}

    for beat_idx, (r_time, label) in enumerate(zip(r_times, labels)):
        rr = float(np.clip(rr_s[beat_idx], 0.4, 1.6))
        r_sample = int(round(r_time * fs))
        base_template = template_for(label)
        lo, hi = _render_window(base_template, rr, r_time, fs, n_samples)
        if hi <= lo:
            continue
        t_rel = np.arange(lo, hi) / fs - r_time
        for lead_idx in range(leads.n_leads):
            key = (label, lead_idx)
            if key not in projected_cache:
                projected_cache[key] = leads.project(base_template, lead_idx)
            template = projected_cache[key]
            signals[lead_idx, lo:hi] += template.render(t_rel, rr)
        annotation = base_template.fiducials(r_sample, rr, fs)
        annotations.append(
            BeatAnnotation(
                r_peak=annotation.r_peak,
                label=label,
                rhythm=rhythms[beat_idx],
                p_wave=annotation.p_wave,
                qrs=annotation.qrs,
                t_wave=annotation.t_wave,
            )
        )

    _add_fibrillatory_activity(signals, annotations, rr_s, r_times, leads,
                               config, rng)

    if config.snr_db is not None:
        for lead_idx in range(leads.n_leads):
            signals[lead_idx] = add_noise(signals[lead_idx], fs, config.snr_db,
                                          rng, config.noise_specs)

    return MultiLeadEcg(fs=fs, signals=signals, beats=annotations,
                        lead_names=tuple(leads.names), name=name)


def _render_window(template, rr: float, r_time: float, fs: float,
                   n_samples: int) -> tuple[int, int]:
    """Sample range covering all of a beat's Gaussian bumps (±4 sigma)."""
    starts = []
    ends = []
    for wave in template.waves():
        if wave.amplitude == 0.0:
            continue
        mu = wave.center_for_rr(rr)
        starts.append(mu - 4.0 * wave.width_s)
        ends.append(mu + 4.0 * wave.width_s)
    if not starts:
        return 0, 0
    lo = int(np.floor((r_time + min(starts)) * fs))
    hi = int(np.ceil((r_time + max(ends)) * fs)) + 1
    return max(0, lo), min(n_samples, hi)


def _add_fibrillatory_activity(signals: np.ndarray,
                               annotations: list[BeatAnnotation],
                               rr_s: np.ndarray, r_times: np.ndarray,
                               leads: LeadSet, config: SynthesisConfig,
                               rng: np.random.Generator) -> None:
    """Add f-waves over every contiguous AF span (atrial activity, P gain)."""
    af_mask = np.array([a.rhythm == RHYTHM_AF for a in annotations])
    if not af_mask.any():
        return
    fs = config.fs
    n_samples = signals.shape[1]
    f_wave = fibrillatory_waves(n_samples, fs, rng,
                                amplitude_mv=config.f_wave_amplitude_mv)
    mask = np.zeros(n_samples)
    for idx, is_af in enumerate(af_mask):
        if not is_af:
            continue
        start = int((r_times[idx] - rr_s[idx]) * fs)
        stop = int((r_times[idx] + 0.35) * fs)
        mask[max(0, start):min(n_samples, stop)] = 1.0
    # Smooth the mask edges to avoid introducing artificial steps.
    edge = max(3, int(0.05 * fs))
    kernel = np.hanning(2 * edge + 1)
    kernel /= kernel.sum()
    mask = np.convolve(mask, kernel, mode="same")
    for lead_idx in range(leads.n_leads):
        atrial_gain = leads.gains[lead_idx, 0]  # P-wave column
        signals[lead_idx] += atrial_gain * mask * f_wave
