"""Streaming sliding-window primitives.

Section IV-A of the paper notes that, with a *flat* structuring element,
morphological erosion/dilation reduce to tracking the minimum/maximum of a
sliding window — which is what makes morphological filtering viable on a
few-MHz integer MCU.  The node firmware view of that optimization is the
monotonic-deque algorithm (van Herk / Lemire, O(1) amortized per sample),
kept here as :class:`StreamingExtremum` for the hardware-kernel reference
models; the batch functions below delegate to
:func:`scipy.ndimage.maximum_filter1d` (the same streaming algorithm in
C), which profiles ~20-50x faster than the python deque and returns
bit-identical output — extrema select existing samples, no arithmetic.
"""

from __future__ import annotations

from collections import deque

import numpy as np
from scipy.ndimage import maximum_filter1d, minimum_filter1d


def sliding_max(x: np.ndarray, width: int) -> np.ndarray:
    """Trailing sliding-window maximum (O(n) total).

    ``out[i] = max(x[max(0, i - width + 1) : i + 1])`` — the window covers
    the current sample and the ``width - 1`` preceding ones, exactly the
    state a streaming implementation on the node would keep
    (:class:`StreamingExtremum` is that implementation; this matches it
    sample for sample).

    Args:
        x: Input samples.
        width: Window length in samples (>= 1).
    """
    if width < 1:
        raise ValueError("window width must be >= 1")
    x = np.asarray(x, dtype=float)
    if x.shape[0] == 0:
        return x.copy()
    # origin=(width-1)//2 shifts the centered filter window to end at the
    # current sample; 'nearest' replicates x[0] on the left, which for an
    # extremum equals clipping the window at the record start.
    return maximum_filter1d(x, size=width, origin=(width - 1) // 2,
                            mode="nearest")


def sliding_min(x: np.ndarray, width: int) -> np.ndarray:
    """Trailing sliding-window minimum (see :func:`sliding_max`)."""
    if width < 1:
        raise ValueError("window width must be >= 1")
    x = np.asarray(x, dtype=float)
    if x.shape[0] == 0:
        return x.copy()
    return minimum_filter1d(x, size=width, origin=(width - 1) // 2,
                            mode="nearest")


def _centered_extremum(x: np.ndarray, width: int, mode: str) -> np.ndarray:
    """Centered sliding extremum with shrinking boundary windows.

    ``out[i] = extremum(x[max(0, i - half) : min(n, i + half + 1)])`` with
    ``half = width // 2`` — the window shrinks at both record edges, the
    convention under which erosion stays anti-extensive and dilation
    extensive all the way to the boundaries.
    """
    x = np.asarray(x, dtype=float)
    n = x.shape[0]
    half = width // 2
    trailing = sliding_max(x, width) if mode == "max" else sliding_min(
        x, width)
    if half == 0:
        return trailing
    out = np.empty_like(trailing)
    # Interior + head: the trailing value at i + half covers exactly
    # [i - half, i + half] (clipped at 0 automatically).
    interior = max(0, n - half)
    out[:interior] = trailing[half:half + interior]
    fn = np.max if mode == "max" else np.min
    for i in range(interior, n):
        out[i] = fn(x[max(0, i - half):n])
    return out


def erosion(x: np.ndarray, width: int) -> np.ndarray:
    """Morphological erosion by a flat, centered structuring element.

    Args:
        x: Input samples.
        width: Structuring-element length (odd lengths center exactly).
    """
    return _centered_extremum(x, width, "min")


def dilation(x: np.ndarray, width: int) -> np.ndarray:
    """Morphological dilation by a flat, centered structuring element."""
    return _centered_extremum(x, width, "max")


def opening(x: np.ndarray, width: int) -> np.ndarray:
    """Morphological opening (erosion then dilation): removes peaks.

    Even widths are rounded up to the next odd value: opening is only
    anti-extensive and idempotent when erosion and dilation use the same
    *symmetric* structuring element.
    """
    width |= 1
    return dilation(erosion(x, width), width)


def closing(x: np.ndarray, width: int) -> np.ndarray:
    """Morphological closing (dilation then erosion): fills pits.

    Even widths are rounded up (see :func:`opening`).
    """
    width |= 1
    return erosion(dilation(x, width), width)


def moving_sum(x: np.ndarray, width: int) -> np.ndarray:
    """Trailing moving sum over ``width`` samples (edge: shorter window)."""
    if width < 1:
        raise ValueError("window width must be >= 1")
    x = np.asarray(x, dtype=float)
    csum = np.cumsum(x)
    out = csum.copy()
    out[width:] = csum[width:] - csum[:-width]
    return out


def moving_average(x: np.ndarray, width: int) -> np.ndarray:
    """Trailing moving average; edges divide by the actual window length."""
    x = np.asarray(x, dtype=float)
    sums = moving_sum(x, width)
    lengths = np.minimum(np.arange(1, x.shape[0] + 1), width)
    return sums / lengths


class StreamingExtremum:
    """Sample-at-a-time sliding max/min, as the node firmware would run it.

    This mirrors :func:`sliding_max`/:func:`sliding_min` but with a
    ``push`` interface, and is used by the hardware-kernel reference models
    to validate the assembly implementations in ``repro.hwsim.kernels``.
    """

    def __init__(self, width: int, mode: str = "max") -> None:
        if width < 1:
            raise ValueError("window width must be >= 1")
        if mode not in ("max", "min"):
            raise ValueError("mode must be 'max' or 'min'")
        self._width = width
        self._sign = 1.0 if mode == "max" else -1.0
        self._values: deque[tuple[int, float]] = deque()
        self._count = 0

    def push(self, value: float) -> float:
        """Insert one sample and return the current window extremum."""
        keyed = self._sign * value
        while self._values and self._values[-1][1] <= keyed:
            self._values.pop()
        self._values.append((self._count, keyed))
        if self._values[0][0] <= self._count - self._width:
            self._values.popleft()
        self._count += 1
        return self._sign * self._values[0][1]
