"""Fleet invariants under uplink impairments.

The no-false-drop guarantee, duplicate suppression and timeline
restoration of the gateway/triage layer, exercised end-to-end through
the scenario channel model.
"""

import numpy as np
import pytest

from repro.fleet import (
    Gateway,
    GatewayConfig,
    NodeProxy,
    NodeProxyConfig,
    PACKET_EXCERPT,
    PatientProfile,
    FleetScheduler,
    SchedulerConfig,
    TriageBoard,
    TriageConfig,
    UplinkPacket,
    synthesize_patient,
)
from repro.scenarios import ImpairedLink, LinkSpec

FAST_NODE = NodeProxyConfig(stream_telemetry=False)


def fake_packet(seq, patient="p0000", ts=None):
    return UplinkPacket(
        patient_id=patient, seq=seq,
        timestamp_s=float(seq) if ts is None else ts,
        kind=PACKET_EXCERPT, start=0, frames=(), payload_bits=64,
        n_leads=1, window_n=256, cr_percent=60.0, quant_bits=12,
        cs_seed=11, fs=250.0)


class TestReassembly:
    def test_in_order_passthrough(self):
        gateway = Gateway()
        for seq in range(5):
            gateway.ingest(fake_packet(seq))
        assert gateway.pending == 5
        assert gateway.channels["p0000"].n_out_of_order == 0

    def test_out_of_order_held_until_gap_fills(self):
        gateway = Gateway()
        gateway.ingest(fake_packet(0))
        gateway.ingest(fake_packet(2))  # gap: 1 missing
        assert gateway.pending == 1
        gateway.ingest(fake_packet(1))  # fills the gap -> releases 1, 2
        assert gateway.pending == 3
        channel = gateway.channels["p0000"]
        assert channel.n_out_of_order == 1
        assert channel.n_gaps == 0

    def test_duplicates_dropped_and_counted(self):
        gateway = Gateway()
        for seq in (0, 1, 1, 0, 2, 2):
            gateway.ingest(fake_packet(seq))
        assert gateway.pending == 3
        assert gateway.channels["p0000"].n_duplicates == 3

    def test_window_overflow_releases_with_gap(self):
        gateway = Gateway(GatewayConfig(reassembly_window=3))
        gateway.ingest(fake_packet(0))
        for seq in (2, 3, 4, 5):  # 1 never arrives; window is 3
            gateway.ingest(fake_packet(seq))
        assert gateway.pending == 5  # 0 plus force-released 2..5
        channel = gateway.channels["p0000"]
        assert channel.n_gaps == 1

    def test_flush_releases_stragglers(self):
        gateway = Gateway()
        gateway.ingest(fake_packet(0))
        gateway.ingest(fake_packet(3))
        gateway.ingest(fake_packet(5))
        assert gateway.pending == 1
        released = gateway.flush_reassembly()
        assert released == 2
        assert gateway.pending == 3
        assert gateway.channels["p0000"].n_gaps == 3  # seqs 1, 2, 4

    def test_late_join_recovers_via_flush(self):
        # A node joining mid-session (first seen seq != 0) buffers until
        # the flush writes the missing prefix off as a gap.
        gateway = Gateway()
        for seq in (40, 41, 42):
            gateway.ingest(fake_packet(seq))
        assert gateway.pending == 0
        assert gateway.flush_reassembly() == 3
        assert gateway.pending == 3
        assert gateway.channels["p0000"].n_gaps == 40

    def test_delayed_first_packet_not_mistaken_for_duplicate(self):
        # A jitter-delayed seq-0 packet overtaken by seq 1 must wait for
        # it, not be written off (it could be an alarm).
        gateway = Gateway()
        gateway.ingest(fake_packet(1))
        assert gateway.pending == 0
        gateway.ingest(fake_packet(0))
        assert gateway.pending == 2
        assert gateway.channels["p0000"].n_duplicates == 0

    def test_per_patient_isolation(self):
        gateway = Gateway()
        gateway.ingest(fake_packet(0, patient="a"))
        gateway.ingest(fake_packet(1, patient="b"))  # b waits for seq 0
        gateway.ingest(fake_packet(1, patient="a"))
        assert gateway.pending == 2
        gateway.ingest(fake_packet(0, patient="b"))
        assert gateway.pending == 4

    def test_written_off_straggler_still_delivered(self):
        # A packet whose seq was force-flushed as a gap (e.g. an ARQ
        # alarm still in flight) must be delivered late, never dropped.
        gateway = Gateway(GatewayConfig(reassembly_window=2))
        gateway.ingest(fake_packet(0))
        for seq in (2, 3, 4):  # overflow: seq 1 written off
            gateway.ingest(fake_packet(seq))
        channel = gateway.channels["p0000"]
        assert channel.n_gaps == 1
        before = gateway.pending
        gateway.ingest(fake_packet(1))  # the straggler arrives
        assert gateway.pending == before + 1
        assert channel.n_gaps == 0  # recovered after all
        assert channel.n_duplicates == 0
        gateway.ingest(fake_packet(1))  # a second copy IS a duplicate
        assert channel.n_duplicates == 1

    def test_expire_bounds_head_of_line_blocking(self):
        # A permanent gap may stall a patient for at most
        # reassembly_gap_ticks expire sweeps, not a whole run.
        gateway = Gateway(GatewayConfig(reassembly_gap_ticks=2))
        gateway.ingest(fake_packet(0))
        gateway.ingest(fake_packet(2))  # seq 1 lost for good
        gateway.ingest(fake_packet(3))
        assert gateway.pending == 1
        assert gateway.expire_reassembly() == 0  # sweep 1: grace
        assert gateway.expire_reassembly() == 2  # sweep 2: force-release
        assert gateway.pending == 3
        assert gateway.channels["p0000"].n_gaps == 1

    def test_expire_grace_resets_on_progress(self):
        gateway = Gateway(GatewayConfig(reassembly_gap_ticks=2))
        gateway.ingest(fake_packet(1))
        gateway.expire_reassembly()
        gateway.ingest(fake_packet(0))  # gap fills: progress
        assert gateway.pending == 2
        gateway.ingest(fake_packet(3))
        assert gateway.expire_reassembly() == 0  # counter restarted
        assert gateway.expire_reassembly() == 1

    def test_queue_bound_enforced_on_release_bursts(self):
        # A gap-filling arrival that releases a burst cannot push the
        # queue past its capacity; the excess is dropped and counted.
        gateway = Gateway(GatewayConfig(queue_capacity=2))
        gateway.ingest(fake_packet(1))
        gateway.ingest(fake_packet(2))
        gateway.ingest(fake_packet(0))  # releases 0, 1, 2 -> cap at 2
        assert gateway.pending == 2
        assert gateway.dropped == 1


class TestConsecutiveSessions:
    def test_second_run_not_mistaken_for_duplicates(self):
        # Hour-by-hour monitoring: consecutive run() calls must keep
        # numbering forward so one gateway channel serves both sessions.
        profile = PatientProfile(patient_id="cont", rhythm="nsr",
                                 snr_db=None, seed=31)
        proxy = NodeProxy(profile, FAST_NODE)
        gateway = Gateway()
        total = 0
        for session_seed in (31, 32):
            record = synthesize_patient(
                PatientProfile(patient_id="cont", rhythm="nsr",
                               snr_db=None, seed=session_seed),
                duration_s=60.0)
            _, packets = proxy.run(record)
            assert packets  # at least the periodic excerpt
            for packet in packets:
                gateway.ingest(packet)
            total += len(packets)
        processed = gateway.drain()
        assert len(processed) == total
        assert gateway.channels["cont"].n_duplicates == 0


@pytest.fixture(scope="module")
def af_uplink(trained_af_detector):
    """(report, packets) of a clean persistent-AF patient."""
    profile = PatientProfile(patient_id="afi", rhythm="af", snr_db=None,
                             seed=42)
    record = synthesize_patient(profile, duration_s=120.0)
    proxy = NodeProxy(profile, FAST_NODE, af_detector=trained_af_detector)
    return proxy.run(record)


class TestDuplicateTriageInvariant:
    def test_no_duplicate_triage_transitions(self, af_uplink):
        # Every packet delivered twice: triage outcome must be identical
        # to single delivery — duplicates die in the gateway.
        report, packets = af_uplink
        outcomes = []
        for copies in (1, 2):
            gateway = Gateway()
            board = TriageBoard()
            for packet in packets:
                for _ in range(copies):
                    gateway.ingest(packet)
            for excerpt in gateway.drain():
                board.observe(excerpt)
            patient = board.patients["afi"]
            outcomes.append((patient.n_alerts, patient.n_watches,
                             patient.state))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][0] == len(report.alarms) >= 1

    def test_duplicate_payload_not_double_counted(self, af_uplink):
        _, packets = af_uplink
        gateway = Gateway()
        for packet in packets:
            gateway.ingest(packet)
            gateway.ingest(packet)
        gateway.drain()
        channel = gateway.channels["afi"]
        assert channel.n_duplicates == len(packets)
        assert channel.payload_bits == sum(p.payload_bits for p in packets)


class TestImpairedFleetRun:
    @pytest.fixture(scope="class")
    def reordered_run(self, trained_af_detector):
        cohort = [
            PatientProfile(patient_id="afa", rhythm="af", snr_db=None,
                           seed=42),
            PatientProfile(patient_id="nsb", rhythm="nsr", snr_db=20.0,
                           seed=43),
            PatientProfile(patient_id="pxc", rhythm="paroxysmal_af",
                           snr_db=18.0, seed=44),
        ]
        link = ImpairedLink(
            LinkSpec(duplicate_rate=0.3, reorder_rate=0.4,
                     reorder_delay_s=70.0, jitter_s=20.0), seed=13)
        scheduler = FleetScheduler(
            cohort, SchedulerConfig(duration_s=240.0),
            node_config=FAST_NODE, af_detector=trained_af_detector,
            link=link)
        return scheduler.run()

    def test_monotone_timestamps_after_reassembly(self, reordered_run):
        # Gateway outputs arrive in reassembly (seq) order; per patient
        # that order must restore the node's timeline.
        report = reordered_run
        by_patient = {}
        for excerpt in report.excerpts:
            by_patient.setdefault(excerpt.patient_id, []).append(
                excerpt.timestamp_s)
        assert by_patient
        for patient_id, stamps in by_patient.items():
            assert stamps == sorted(stamps), \
                f"{patient_id} timeline broken: {stamps}"

    def test_impairment_actually_exercised(self, reordered_run):
        stats = reordered_run.link_stats
        assert stats["duplicated"] > 0
        assert stats["reordered"] > 0

    def test_every_offered_packet_processed_once(self, reordered_run):
        # Duplicates add deliveries, but reconstruction count equals the
        # offered count: nothing lost (no loss configured), nothing
        # processed twice.
        report = reordered_run
        assert len(report.excerpts) == report.packets_sent
        assert report.summary.duplicate_packets == \
            report.link_stats["duplicated"]

    def test_no_false_drop_under_20pct_loss(self, trained_af_detector):
        # Acceptance criterion: ≤ 20 % uniform loss must not drop one
        # clean-AF alarm (ARQ turns loss into delay for alarm packets).
        cohort = [
            PatientProfile(patient_id=f"af{i}", rhythm="af", snr_db=None,
                           seed=42 + i)
            for i in range(3)
        ]
        link = ImpairedLink(LinkSpec(loss_rate=0.20), seed=5)
        scheduler = FleetScheduler(
            cohort, SchedulerConfig(duration_s=120.0),
            node_config=FAST_NODE, af_detector=trained_af_detector,
            link=link)
        report = scheduler.run()
        assert report.summary.node_alarms >= 3
        assert report.summary.confirmed_alarms == \
            report.summary.node_alarms
        for profile in cohort:
            channel = scheduler.gateway.channels[profile.patient_id]
            node_alarms = len(
                report.node_reports[profile.patient_id].alarms)
            assert channel.n_confirmed == node_alarms


class TestStaleLink:
    def test_silent_node_goes_stale_and_watch(self):
        board = TriageBoard(TriageConfig(stale_after_s=150.0))
        board.register(["quiet", "chatty"])
        chatty = board.patient("chatty")
        chatty.last_seen_s = 160.0  # packets kept arriving
        board.tick(200.0)
        quiet = board.patient("quiet")
        assert quiet.stale is True
        assert quiet.state == "watch"
        assert quiet.n_stale_events == 1
        assert board.patient("chatty").stale is False
        assert board.stale_ids() == ["quiet"]

    def test_stale_clears_on_next_packet(self):
        from repro.fleet import ReconstructedExcerpt

        board = TriageBoard(TriageConfig(stale_after_s=100.0))
        board.register(["p"])
        board.tick(150.0)
        assert board.patient("p").stale is True
        board.observe(ReconstructedExcerpt(
            patient_id="p", timestamp_s=160.0, kind="excerpt",
            signal=np.zeros((1, 0)), snr_db=float("nan"),
            confirmed=None))
        assert board.patient("p").stale is False

    def test_stale_patient_never_decays_below_watch(self):
        # A silent node must stay on (at least) watch for as long as the
        # silence lasts — quiet-period decay must not lower a patient
        # nobody can observe.
        board = TriageBoard(TriageConfig(stale_after_s=150.0,
                                         watch_hold_s=180.0))
        board.register(["mute"])
        for now in range(0, 1200, 60):
            board.tick(float(now))
        patient = board.patient("mute")
        assert patient.stale is True
        assert patient.state == "watch"
        assert patient.n_stale_events == 1  # one episode, not re-counted

    def test_total_loss_flags_stale_fleet_wide(self, trained_af_detector):
        # A node whose every packet is lost must surface as stale.
        cohort = [PatientProfile(patient_id="gone", rhythm="nsr",
                                 snr_db=20.0, seed=50)]
        link = ImpairedLink(LinkSpec(loss_rate=0.999999), seed=1)
        board = TriageBoard(TriageConfig(stale_after_s=100.0))
        scheduler = FleetScheduler(
            cohort, SchedulerConfig(duration_s=180.0),
            node_config=FAST_NODE, board=board, link=link)
        report = scheduler.run()
        assert report.summary.stale_patients == 1
        assert board.patient("gone").stale is True
