"""Unit tests for the Fig. 6 node-energy scenarios and the Fig. 1 ladder."""

import pytest

from repro.power import (
    AbstractionLadder,
    LADDER_LEVELS,
    NodeEnergyModel,
    figure6_breakdowns,
)

# The 20 dB operating points measured by the Fig. 5 bench on the
# synthetic corpus (see EXPERIMENTS.md).
SL_CR = 50.0
ML_CR = 63.0


@pytest.fixture(scope="module")
def breakdowns():
    return figure6_breakdowns(SL_CR, ML_CR)


class TestFigure6:
    def test_radio_dominates_raw_streaming(self, breakdowns):
        raw = breakdowns["no_comp"]
        assert raw.radio > 0.6 * raw.total

    def test_cs_reduces_total_energy(self, breakdowns):
        assert breakdowns["single_lead_cs"].total < \
            breakdowns["no_comp_1lead"].total
        assert breakdowns["multi_lead_cs"].total < \
            breakdowns["no_comp"].total

    def test_compression_slice_is_small(self, breakdowns):
        for key in ("single_lead_cs", "multi_lead_cs"):
            bar = breakdowns[key]
            assert bar.compression < 0.1 * bar.total

    def test_reduction_bands(self, breakdowns):
        model = NodeEnergyModel()
        sl = model.power_reduction_percent(breakdowns["single_lead_cs"],
                                           breakdowns["no_comp_1lead"])
        ml = model.power_reduction_percent(breakdowns["multi_lead_cs"],
                                           breakdowns["no_comp"])
        # Paper: 44.7 % (SL) and 56.1 % (ML); shape requirement: both
        # large, ML > SL.
        assert 30.0 <= sl <= 60.0
        assert 45.0 <= ml <= 70.0
        assert ml > sl

    def test_microjoule_export(self, breakdowns):
        uj = breakdowns["no_comp"].as_microjoules()
        assert set(uj) == {"radio", "sampling", "compression", "os"}
        assert uj["radio"] == pytest.approx(1e6 * breakdowns["no_comp"].radio)

    def test_average_power(self, breakdowns):
        bar = breakdowns["no_comp"]
        assert bar.average_power_w == pytest.approx(bar.total / bar.window_s)

    def test_multi_lead_raw_costs_more_than_single(self, breakdowns):
        assert breakdowns["no_comp"].total > \
            2.5 * breakdowns["no_comp_1lead"].radio


class TestAbstractionLadder:
    @pytest.fixture(scope="class")
    def ladder(self):
        return AbstractionLadder()

    def test_bandwidth_strictly_decreasing_to_beat_classes(self, ladder):
        rates = [ladder.bandwidth_bps_for(level)
                 for level in LADDER_LEVELS[:4]]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_alarm_bandwidth_tiny_versus_raw(self, ladder):
        raw = ladder.bandwidth_bps_for("raw_streaming")
        alarms = ladder.bandwidth_bps_for("alarms")
        assert alarms < raw / 100

    def test_total_power_monotone_over_first_rungs(self, ladder):
        totals = [ladder.rung(level).total_power_w
                  for level in LADDER_LEVELS[:4]]
        assert all(a > b for a, b in zip(totals, totals[1:]))

    def test_processing_grows_with_abstraction(self, ladder):
        cycles = [ladder.processing_cycles_per_s(level)
                  for level in ("raw_streaming", "compressed_sensing",
                                "beat_classes")]
        assert cycles[0] < cycles[1] < cycles[2]

    def test_table_covers_all_levels(self, ladder):
        table = ladder.table()
        assert [rung.level for rung in table] == list(LADDER_LEVELS)

    def test_unknown_level_rejected(self, ladder):
        with pytest.raises(ValueError, match="unknown ladder level"):
            ladder.bandwidth_bps_for("magic")
        with pytest.raises(ValueError, match="unknown ladder level"):
            ladder.processing_cycles_per_s("magic")

    def test_net_win_despite_processing_cost(self, ladder):
        # The Fig. 1 thesis: extra on-node DSP is repaid by radio savings.
        raw = ladder.rung("raw_streaming")
        features = ladder.rung("delineated_features")
        assert features.processing_energy_w > raw.processing_energy_w
        assert features.total_power_w < 0.5 * raw.total_power_w
