"""Compressed sensing for ECG transmission (paper §III-A, Fig. 5/6)."""

from .encoder import (
    CsEncoder,
    EncodedWindow,
    MultiLeadCsEncoder,
    raw_payload_bits,
)
from .analog import (
    A2IConfig,
    AnalogCsFrontEnd,
    a2i_energy,
    nyquist_adc_energy,
)
from .matrices import (
    PackedTernary,
    SensingMatrix,
    dense_sign_matrix,
    gaussian_matrix,
    pack_ternary,
    sparse_binary_matrix,
    ternary_matrix,
    unpack_ternary,
)
from .metrics import (
    GOOD_QUALITY_SNR_DB,
    compression_ratio,
    measurements_for_cr,
    prd_percent,
    reconstruction_snr_db,
    snr_crossing_cr,
)
from .multilead import (
    JointCsDecoder,
    MultiLeadRecovery,
    group_fista,
    group_fista_batch,
    group_soft_threshold,
    row_stable_matmul,
)
from .structured import (
    TreeCsDecoder,
    TreeRecoveryResult,
    tree_parents,
    tree_project,
    tree_support,
)
from .recovery import (
    CsDecoder,
    RecoveryResult,
    debias,
    fista,
    omp,
    soft_threshold,
)

__all__ = [
    "A2IConfig",
    "AnalogCsFrontEnd",
    "CsDecoder",
    "CsEncoder",
    "EncodedWindow",
    "GOOD_QUALITY_SNR_DB",
    "JointCsDecoder",
    "MultiLeadCsEncoder",
    "MultiLeadRecovery",
    "PackedTernary",
    "RecoveryResult",
    "SensingMatrix",
    "TreeCsDecoder",
    "TreeRecoveryResult",
    "compression_ratio",
    "debias",
    "dense_sign_matrix",
    "fista",
    "gaussian_matrix",
    "group_fista",
    "group_fista_batch",
    "group_soft_threshold",
    "measurements_for_cr",
    "omp",
    "pack_ternary",
    "prd_percent",
    "raw_payload_bits",
    "reconstruction_snr_db",
    "row_stable_matmul",
    "snr_crossing_cr",
    "soft_threshold",
    "sparse_binary_matrix",
    "ternary_matrix",
    "tree_parents",
    "tree_project",
    "tree_support",
    "unpack_ternary",
    "a2i_energy",
    "nyquist_adc_energy",
]
