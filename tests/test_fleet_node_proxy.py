"""Tests for the per-patient uplink node proxy."""

import numpy as np
import pytest

from repro.fleet import (
    PACKET_ALARM,
    PACKET_EXCERPT,
    NodeProxy,
    NodeProxyConfig,
    PatientProfile,
    synthesize_patient,
)
from repro.fleet.node_proxy import PACKET_HEADER_BITS


@pytest.fixture(scope="module")
def nsr_profile():
    return PatientProfile(patient_id="nsr0", rhythm="nsr", snr_db=25.0,
                          seed=13)


@pytest.fixture(scope="module")
def nsr_patient_record(nsr_profile):
    return synthesize_patient(nsr_profile, duration_s=150.0)


class TestPeriodicExcerpts:
    def test_one_packet_per_period(self, nsr_profile, nsr_patient_record):
        proxy = NodeProxy(nsr_profile, NodeProxyConfig(excerpt_period_s=60.0,
                                                       stream_telemetry=False))
        report, packets = proxy.run(nsr_patient_record)
        excerpts = [p for p in packets if p.kind == PACKET_EXCERPT]
        assert len(excerpts) == int(150.0 // 60.0) == report.periodic_excerpts

    def test_packet_fields(self, nsr_profile, nsr_patient_record):
        config = NodeProxyConfig(stream_telemetry=False)
        proxy = NodeProxy(nsr_profile, config)
        _, packets = proxy.run(nsr_patient_record)
        packet = packets[0]
        assert packet.patient_id == "nsr0"
        assert packet.n_leads == 3
        assert packet.window_n == config.window_n
        assert packet.n_frames == 1
        assert packet.fs == nsr_patient_record.fs
        per_frame = sum(w.payload_bits for w in packet.frames[0])
        assert packet.payload_bits == per_frame + PACKET_HEADER_BITS

    def test_timestamps_sorted_and_seq_unique(self, nsr_profile,
                                              nsr_patient_record):
        proxy = NodeProxy(nsr_profile,
                          NodeProxyConfig(stream_telemetry=False))
        _, packets = proxy.run(nsr_patient_record)
        times = [p.timestamp_s for p in packets]
        assert times == sorted(times)
        seqs = [p.seq for p in packets]
        assert len(set(seqs)) == len(seqs)

    def test_reference_attached_only_when_asked(self, nsr_profile,
                                                nsr_patient_record):
        lean = NodeProxy(nsr_profile, NodeProxyConfig(
            attach_reference=False, stream_telemetry=False))
        _, packets = lean.run(nsr_patient_record)
        assert all(p.reference is None for p in packets)

    def test_reference_matches_signal(self, nsr_profile, nsr_patient_record):
        proxy = NodeProxy(nsr_profile,
                          NodeProxyConfig(stream_telemetry=False))
        _, packets = proxy.run(nsr_patient_record)
        packet = packets[0]
        expected = nsr_patient_record.signals[
            :, packet.start:packet.start + packet.window_n]
        np.testing.assert_array_equal(packet.reference[0], expected)

    def test_streamed_heart_rate_telemetry(self, nsr_profile,
                                           nsr_patient_record):
        proxy = NodeProxy(nsr_profile, NodeProxyConfig())
        _, packets = proxy.run(nsr_patient_record)
        excerpts = [p for p in packets if p.kind == PACKET_EXCERPT]
        rates = [p.mean_hr_bpm for p in excerpts]
        assert any(np.isfinite(r) for r in rates)
        finite = [r for r in rates if np.isfinite(r)]
        # Profile heart rate is 70 bpm by default.
        assert all(40.0 < r < 110.0 for r in finite)


class TestAlarms:
    def test_clean_af_patient_raises_alarm_packets(self, trained_af_detector):
        profile = PatientProfile(patient_id="af0", rhythm="af", snr_db=None,
                                 seed=42)
        record = synthesize_patient(profile, duration_s=120.0)
        proxy = NodeProxy(profile, NodeProxyConfig(stream_telemetry=False),
                          af_detector=trained_af_detector)
        report, packets = proxy.run(record)
        alarms = [p for p in packets if p.kind == PACKET_ALARM]
        assert len(report.alarms) >= 1
        assert len(alarms) == len(report.alarms)

    def test_alarm_context_spans_whole_windows(self, trained_af_detector):
        profile = PatientProfile(patient_id="af1", rhythm="af", snr_db=None,
                                 seed=42)
        record = synthesize_patient(profile, duration_s=120.0)
        config = NodeProxyConfig(alarm_context_s=8.0, stream_telemetry=False)
        proxy = NodeProxy(profile, config, af_detector=trained_af_detector)
        _, packets = proxy.run(record)
        alarm = next(p for p in packets if p.kind == PACKET_ALARM)
        assert alarm.span_samples >= int(8.0 * record.fs)
        assert alarm.span_samples % config.window_n == 0

    def test_single_lead_node_rebinds_detector(self, trained_af_detector):
        profile = PatientProfile(patient_id="one", rhythm="af", snr_db=None,
                                 seed=44, n_leads=1)
        record = synthesize_patient(profile, duration_s=120.0)
        proxy = NodeProxy(profile, NodeProxyConfig(stream_telemetry=False),
                          af_detector=trained_af_detector)
        assert proxy.af_detector.lead == 0
        assert proxy.af_detector.classifier is trained_af_detector.classifier
        report, _ = proxy.run(record)  # must not raise
        assert len(report.beats) > 0


class TestValidation:
    def test_lead_mismatch_rejected(self, nsr_patient_record):
        profile = PatientProfile(patient_id="x", n_leads=1)
        proxy = NodeProxy(profile, NodeProxyConfig(stream_telemetry=False))
        with pytest.raises(ValueError, match="leads"):
            proxy.run(nsr_patient_record)

    def test_period_shorter_than_window_rejected(self, nsr_profile,
                                                 nsr_patient_record):
        proxy = NodeProxy(nsr_profile, NodeProxyConfig(
            excerpt_period_s=0.5, stream_telemetry=False))
        with pytest.raises(ValueError, match="at least one CS window"):
            proxy.run(nsr_patient_record)
