"""BenchCase registry: every benchmark behind one callable API.

A case is a plain function ``workload(ctx) -> dict`` registered with
:func:`register`.  The returned dict carries the case's *work counts*
under the reserved keys ``samples`` and ``patients`` (used by the runner
to derive throughput) plus any case-specific quality metrics (SNR,
sensitivity, ...), all JSON-scalar.

Each case names the legacy pytest benchmark module it mirrors
(``legacy``), so the registry is checkable against ``benchmarks/`` —
the discovery test asserts every ``benchmarks/test_*.py`` has exactly
one case wrapping it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from ..obs import Observability

#: Reserved workload-result keys the runner turns into throughput.
COUNT_KEYS = ("samples", "patients")


@dataclass(frozen=True)
class BenchContext:
    """Execution context handed to every workload.

    Attributes:
        quick: CI-sized workload (seconds) instead of the full one.
        seed: Base seed; workloads must derive all randomness from it
            so repeated runs time identical work.
        obs: Optional shared :class:`~repro.obs.Observability` bundle
            (the ``--obs`` CLI flag); workloads that drive the fleet
            stack may thread it through so the emitted report can
            attach a metrics snapshot.  ``None`` in plain runs.
        profiled: This invocation runs under cProfile (the runner's
            extra untimed pass).  Wall-clock is distorted by tracing
            overhead, so workloads must skip internal timing
            assertions when set.
    """

    quick: bool = False
    seed: int = 2014
    obs: "Observability | None" = None
    profiled: bool = False


@dataclass(frozen=True)
class BenchCase:
    """One registered benchmark.

    Attributes:
        name: Stable kebab-case identifier (key in baselines.json).
        summary: One-line description for the report table.
        legacy: Module stem of the ``benchmarks/`` pytest file this case
            wraps (e.g. ``"test_fleet_throughput"``).
        workload: ``fn(ctx) -> dict`` — runs the benchmark once and
            returns counts + metrics (see module docstring).
        tags: Free-form grouping labels (``"figure"``, ``"table"``,
            ``"systems"``).
    """

    name: str
    summary: str
    legacy: str
    workload: Callable[[BenchContext], dict]
    tags: tuple[str, ...] = field(default_factory=tuple)


_REGISTRY: dict[str, BenchCase] = {}


def register(name: str, summary: str, legacy: str,
             tags: tuple[str, ...] = ()) -> Callable:
    """Decorator registering one workload function as a bench case."""

    def wrap(fn: Callable[[BenchContext], dict]) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"bench case {name!r} already registered")
        _REGISTRY[name] = BenchCase(name=name, summary=summary,
                                    legacy=legacy, workload=fn,
                                    tags=tuple(tags))
        return fn

    return wrap


def all_cases() -> dict[str, BenchCase]:
    """Name -> case for every registered benchmark (discovery import)."""
    from . import cases  # noqa: F401  (import populates the registry)

    return dict(_REGISTRY)


def get_case(name: str) -> BenchCase:
    """Look one case up by name.

    Raises:
        KeyError: Unknown case name (message lists what exists).
    """
    cases = all_cases()
    if name not in cases:
        known = ", ".join(sorted(cases))
        raise KeyError(f"unknown bench case {name!r}; known: {known}")
    return cases[name]
