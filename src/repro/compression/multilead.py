"""Joint multi-lead CS recovery with group sparsity (ref [6], §III-A).

Multi-lead ECGs share wavelet support: the same beat produces coefficients
at the same locations on every lead, scaled by the lead projection ("a
strong correlation between the sparsity structure among the leads, each
lead therefore conveying useful information about other leads").  The
joint decoder exploits this with an l2,1 mixed norm over coefficient rows:

    min_A  0.5 * sum_l ||y_l - Phi_l W^T a_l||^2 + lam * sum_i ||A[i, :]||_2

solved by block FISTA (row-wise group soft thresholding) over *per-lead*
sensing matrices, followed by a per-lead least-squares debias on the union
row support.

Why per-lead matrices matter: with a single shared matrix and strongly
correlated leads, the measurement blocks are nearly proportional and carry
no extra information about the common support.  Giving each lead its own
sparse-binary matrix (same node-side cost) turns the stack into ``L * m``
complementary looks at the shared support — that is what buys the extra
compression Fig. 5 shows for multi-lead CS (20 dB at CR 72.7 % vs 65.9 %
single-lead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..dsp.wavelets import orthogonal_dwt_matrix
from .encoder import EncodedWindow
from .fista_kernels import group_shrink_update
from .matrices import SensingMatrix


#: Row-block height of :func:`row_stable_matmul`.  Fixed so every
#: product runs the same BLAS kernel path no matter how many rows the
#: caller batched together; 4 keeps zero-padding waste low at the
#: FISTA active-set sizes the fleet actually sees.
_MATMUL_TILE = 4


def row_stable_matmul(a: np.ndarray, b: np.ndarray,
                      out: np.ndarray | None = None) -> np.ndarray:
    """``a @ b`` whose per-row results are independent of the batch.

    BLAS chooses different kernels — and therefore different summation
    orders — for different left-operand heights, so ``(a @ b)[i]`` can
    move by an ulp depending on how many rows ride along in the same
    call.  That breaks any equivalence built on batch *partitioning*:
    the sharded fleet runner must produce byte-identical summaries for
    every shard layout, which requires each window's products to be a
    pure function of that window.

    Computing the product in fixed-height row tiles (zero padded to a
    multiple of :data:`_MATMUL_TILE`) pins the kernel path: every row
    is evaluated by the same fixed-shape ``(tile, k) @ (k, m)`` call,
    so its result depends only on the row itself and ``b`` (tested in
    ``tests/test_compression_multilead.py``).  Within a few percent of
    a single full-height gemm at fleet batch sizes.

    Args:
        a: Left operand, shape ``(rows, k)`` (any strides).
        b: Right operand, shape ``(k, m)``.
        out: Optional destination of shape ``(rows, m)`` (any strides).
    """
    a = np.ascontiguousarray(a, dtype=float)
    rows = a.shape[0]
    padded_rows = -(-max(rows, 1) // _MATMUL_TILE) * _MATMUL_TILE
    if padded_rows != rows:
        padded = np.zeros((padded_rows, a.shape[1]), dtype=a.dtype)
        padded[:rows] = a
        a = padded
    tiles = [a[i:i + _MATMUL_TILE] @ b
             for i in range(0, padded_rows, _MATMUL_TILE)]
    full = tiles[0] if len(tiles) == 1 else np.concatenate(tiles)
    if out is not None:
        out[...] = full[:rows]
        return out
    return full[:rows]


def group_soft_threshold(rows: np.ndarray, threshold: float) -> np.ndarray:
    """Row-wise group shrinkage (the l2,1 proximal operator).

    Args:
        rows: Coefficient matrix of shape ``(n, L)``.
        threshold: Shrinkage amount applied to each row's l2 norm.
    """
    norms = np.linalg.norm(rows, axis=1, keepdims=True)
    scale = np.maximum(0.0, 1.0 - threshold / np.maximum(norms, 1e-12))
    return rows * scale


def group_fista(operators: Sequence[np.ndarray], ys: Sequence[np.ndarray],
                lam: float, n_iter: int = 400,
                tol: float = 1e-7) -> np.ndarray:
    """Block FISTA for the l2,1-regularized multi-lead problem.

    Args:
        operators: Per-lead measurement operators, each ``(m, n)``.
        ys: Per-lead measurement vectors.
        lam: Group-l1 weight (absolute).
        n_iter: Maximum iterations.
        tol: Relative-motion stopping criterion.

    Returns:
        Coefficient matrix of shape ``(n, L)``.
    """
    n_leads = len(operators)
    if n_leads == 0 or n_leads != len(ys):
        raise ValueError("need one measurement vector per operator")
    n = operators[0].shape[1]
    lipschitz = max(float(np.linalg.norm(A, 2)) ** 2 for A in operators)
    if lipschitz == 0.0:
        return np.zeros((n, n_leads))
    step = 1.0 / lipschitz
    alpha = np.zeros((n, n_leads))
    momentum = alpha.copy()
    t = 1.0
    threshold = np.array([lam * step])
    for _ in range(n_iter):
        grad = np.stack(
            [operators[lead].T @ (operators[lead] @ momentum[:, lead] - ys[lead])
             for lead in range(n_leads)], axis=1)
        t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t * t))
        new_alpha, new_momentum = group_shrink_update(
            momentum[None], grad[None], step, threshold, alpha[None],
            (t - 1.0) / t_next)
        new_alpha = new_alpha[0]
        momentum = new_momentum[0]
        moved = np.linalg.norm(new_alpha - alpha)
        scale = max(1e-12, np.linalg.norm(alpha))
        alpha = new_alpha
        t = t_next
        if moved / scale < tol:
            break
    return alpha


def group_fista_batch(operators: Sequence[np.ndarray],
                      ys: np.ndarray, lams: np.ndarray,
                      n_iter: int = 400,
                      tol: float = 1e-7) -> np.ndarray:
    """Block FISTA over a whole batch of windows at once.

    Runs the same iteration as :func:`group_fista` for ``W`` independent
    windows that share one operator family, replacing ``W * L`` separate
    matrix-vector products per iteration with ``L`` stacked
    matrix-matrix products.  Each window keeps its own scalar ``lam``
    and its own stopping test: a window whose relative motion falls
    below ``tol`` is frozen (dropped from the active set) exactly where
    the scalar loop would have stopped it, so results match the
    one-window path to float round-off.  The stacked products run
    through :func:`row_stable_matmul`, so each window's trajectory is
    *bit-identical* under any batch partition — the property the
    sharded fleet runner's byte-equivalence rests on.  The elementwise
    tail of each iteration (shift, group shrink, momentum) runs through
    :func:`~repro.compression.fista_kernels.group_shrink_update`, which
    compiles to one fused loop when numba is available and is
    bit-identical to the pure-numpy expressions either way.

    Args:
        operators: Per-lead measurement operators, each ``(m, n)``.
        ys: Measurements, shape ``(W, L, m)``.
        lams: Per-window group-l1 weights, shape ``(W,)``.
        n_iter: Maximum iterations.
        tol: Relative-motion stopping criterion (per window).

    Returns:
        Coefficient batch of shape ``(W, n, L)``.
    """
    n_leads = len(operators)
    ys = np.asarray(ys, dtype=float)
    lams = np.asarray(lams, dtype=float)
    if ys.ndim != 3 or ys.shape[1] != n_leads:
        raise ValueError(f"expected measurements of shape (W, {n_leads}, "
                         f"m), got {ys.shape}")
    n_windows = ys.shape[0]
    n = operators[0].shape[1]
    alpha = np.zeros((n_windows, n, n_leads))
    lipschitz = max(float(np.linalg.norm(A, 2)) ** 2 for A in operators)
    if lipschitz == 0.0 or n_windows == 0:
        return alpha
    step = 1.0 / lipschitz
    ops_t = [A.T.copy() for A in operators]
    active = np.arange(n_windows)
    momentum = alpha.copy()
    t = 1.0
    grad = np.empty((n_windows, n, n_leads))
    for _ in range(n_iter):
        mom = momentum[active]
        grad_act = grad[:active.shape[0]]
        for lead in range(n_leads):
            residual = row_stable_matmul(mom[:, :, lead], ops_t[lead]) \
                - ys[active, lead, :]
            row_stable_matmul(residual, operators[lead],
                              out=grad_act[:, :, lead])
        t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t * t))
        old = alpha[active]
        new_alpha, new_momentum = group_shrink_update(
            mom, grad_act, step, lams[active] * step, old,
            (t - 1.0) / t_next)
        momentum[active] = new_momentum
        moved = np.linalg.norm(new_alpha - old, axis=(1, 2))
        scale = np.maximum(1e-12, np.linalg.norm(old, axis=(1, 2)))
        alpha[active] = new_alpha
        t = t_next
        active = active[moved / scale >= tol]
        if active.shape[0] == 0:
            break
    return alpha


@dataclass
class MultiLeadRecovery:
    """Joint reconstruction output.

    Attributes:
        windows: Reconstructed windows, shape ``(L, n)``.
        coefficients: Recovered coefficients, shape ``(n, L)``.
        support_size: Rows kept by the group threshold.
    """

    windows: np.ndarray
    coefficients: np.ndarray
    support_size: int


class JointCsDecoder:
    """Group-sparse joint decoder for multi-lead windows.

    Args:
        sensing: Per-lead sensing matrices (a single matrix is accepted
            and replicated, but per-lead matrices are what produce the
            multi-lead gain — see the module docstring).
        wavelet: Sparsity basis name.
        lam_rel: Group-l1 weight relative to the largest row norm of the
            stacked correlations.
        n_iter: FISTA iteration budget.
        n_leads: Number of leads when a single matrix is replicated.
    """

    def __init__(self, sensing: SensingMatrix | Sequence[SensingMatrix],
                 wavelet: str = "db4", lam_rel: float = 0.002,
                 n_iter: int = 400, n_leads: int = 3) -> None:
        if isinstance(sensing, SensingMatrix):
            matrices = [sensing] * n_leads
        else:
            matrices = list(sensing)
        if not matrices:
            raise ValueError("need at least one sensing matrix")
        self.sensing = matrices
        n = matrices[0].n
        if any(mt.n != n for mt in matrices):
            raise ValueError("all leads must share the window length")
        self.basis = orthogonal_dwt_matrix(n, wavelet)
        self.operators = [mt.matrix @ self.basis.T for mt in matrices]
        self.lam_rel = lam_rel
        self.n_iter = n_iter

    @property
    def n_leads(self) -> int:
        """Number of leads."""
        return len(self.operators)

    def recover(self,
                measurements: np.ndarray | Sequence[np.ndarray]
                | Sequence[EncodedWindow]) -> MultiLeadRecovery:
        """Jointly reconstruct all leads of one window.

        Args:
            measurements: One measurement vector per lead: an ``(L, m)``
                array, a sequence of vectors, or the encoder's
                :class:`EncodedWindow` list.
        """
        ys = []
        for item in measurements:
            if isinstance(item, EncodedWindow):
                ys.append(np.asarray(item.measurements, dtype=float))
            else:
                ys.append(np.asarray(item, dtype=float))
        if len(ys) != self.n_leads:
            raise ValueError(f"expected {self.n_leads} measurement vectors, "
                             f"got {len(ys)}")
        correlations = np.stack(
            [self.operators[lead].T @ ys[lead] for lead in range(self.n_leads)],
            axis=1)
        lam = self.lam_rel * float(
            np.max(np.linalg.norm(correlations, axis=1)))
        alpha = group_fista(self.operators, ys, lam, n_iter=self.n_iter)
        alpha = self._debias(ys, alpha)
        windows = (self.basis.T @ alpha).T
        support = int(np.count_nonzero(np.linalg.norm(alpha, axis=1)))
        return MultiLeadRecovery(windows=windows, coefficients=alpha,
                                 support_size=support)

    def recover_batch(self, frames: Sequence) -> list[MultiLeadRecovery]:
        """Jointly reconstruct many windows in one vectorized pass.

        All windows must share this decoder's geometry (they do by
        construction when they come from one encoder family).  The batch
        runs :func:`group_fista_batch` — ``L`` stacked matrix products
        per iteration instead of ``W * L`` matrix-vector products — and
        matches per-window :meth:`recover` to float round-off.

        Args:
            frames: Sequence of per-window measurements, each accepted
                in any form :meth:`recover` takes.

        Returns:
            One :class:`MultiLeadRecovery` per input window, in order.
        """
        frames = list(frames)
        if not frames:
            return []
        ys = np.empty((len(frames), self.n_leads,
                       self.operators[0].shape[0]))
        for w, frame in enumerate(frames):
            if len(frame) != self.n_leads:
                raise ValueError(
                    f"expected {self.n_leads} measurement vectors, "
                    f"got {len(frame)}")
            for lead, item in enumerate(frame):
                # Direct assignment casts straight into the float64
                # batch row — wire decode views (read-only ints over
                # the frame buffer) are consumed without a temporary.
                ys[w, lead, :] = (item.measurements
                                  if isinstance(item, EncodedWindow)
                                  else item)
        # Per-window lam from the stacked correlations (same formula as
        # the scalar path): corr[w, :, l] = operators[l].T @ y[w, l].
        corr = np.stack([row_stable_matmul(ys[:, lead, :],
                                           self.operators[lead])
                         for lead in range(self.n_leads)], axis=2)
        lams = self.lam_rel * np.max(
            np.linalg.norm(corr, axis=2), axis=1)
        alphas = group_fista_batch(self.operators, ys, lams,
                                   n_iter=self.n_iter)
        out: list[MultiLeadRecovery] = []
        for w in range(len(frames)):
            alpha = self._debias(list(ys[w]), alphas[w])
            windows = (self.basis.T @ alpha).T
            support = int(np.count_nonzero(np.linalg.norm(alpha, axis=1)))
            out.append(MultiLeadRecovery(windows=windows,
                                         coefficients=alpha,
                                         support_size=support))
        return out

    def _debias(self, ys: Sequence[np.ndarray], alpha: np.ndarray,
                rel_support: float = 0.005) -> np.ndarray:
        """Per-lead least squares on the union (row) support."""
        row_norms = np.linalg.norm(alpha, axis=1)
        peak = row_norms.max() if row_norms.size else 0.0
        if peak == 0.0:
            return alpha
        support = np.flatnonzero(row_norms > rel_support * peak)
        m_min = min(A.shape[0] for A in self.operators)
        if support.shape[0] == 0 or support.shape[0] > m_min:
            return alpha
        refined = np.zeros_like(alpha)
        for lead in range(self.n_leads):
            sub = self.operators[lead][:, support]
            coef, *_ = np.linalg.lstsq(sub, ys[lead], rcond=None)
            refined[support, lead] = coef
        return refined
