"""Multi-lead arrhythmia monitor: the SmartCardia application of §V.

Trains the AF detector, then runs the full node pipeline on a paroxysmal
AF recording: conditioning, RMS lead combination, delineation, AF window
analysis, alarm generation with CS-compressed excerpts, and the node
energy/battery accounting.

Run:  python examples/arrhythmia_monitor.py [--duration 300]
"""

from __future__ import annotations

import argparse

from repro.classification import AF_LABEL, AfDetector
from repro.pipeline import CardiacMonitorNode
from repro.signals import RecordSpec, make_corpus, make_record


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=300.0,
                        help="recording length in seconds")
    parser.add_argument("--train-records", type=int, default=4,
                        help="AF-detector training corpus size")
    parser.add_argument("--train-duration", type=float, default=120.0,
                        help="training record length in seconds")
    args = parser.parse_args()

    # Train the fuzzy AF classifier on an annotated corpus (the paper's
    # detector is trained off-line and ported to the node).
    print(f"training AF detector on {args.train_records} "
          "paroxysmal-AF records ...")
    train = make_corpus("af_mix", n_records=args.train_records,
                        duration_s=args.train_duration, seed=1)
    detector = AfDetector().fit(list(train))

    # An ambulatory recording with a ~35 % AF burden.
    record = make_record(RecordSpec(
        name="patient-42", duration_s=args.duration,
        rhythm="paroxysmal_af", af_burden=0.35, snr_db=18.0, seed=77))
    truth_af_beats = sum(1 for b in record.beats if b.rhythm == "AF")
    print(f"recording: {record.duration_s:.0f} s, {len(record.beats)} "
          f"beats ({truth_af_beats} in AF)")

    # Run the embedded pipeline.
    node = CardiacMonitorNode(af_detector=detector,
                              excerpt_period_s=60.0)
    report = node.process(record)

    print(f"\ndetected beats: {len(report.beats)}  "
          f"mean HR: {report.mean_heart_rate_bpm:.0f} bpm")
    print(f"AF alarms raised: {len(report.alarms)}")
    for i, alarm in enumerate(report.alarms):
        start_s = alarm.start / report.fs
        stop_s = alarm.stop / report.fs
        print(f"  alarm {i}: {alarm.kind} "
              f"[{start_s:7.1f} s .. {stop_s:7.1f} s] "
              f"excerpt {alarm.excerpt_bits / 8:.0f} B")

    # Energy accounting: smart transmission vs. raw streaming.
    raw_bits = 3 * record.n_samples * 12
    print(f"\ntransmitted: {report.transmitted_bits / 8:.0f} B "
          f"(raw streaming would be {raw_bits / 8:.0f} B, "
          f"{raw_bits / max(report.transmitted_bits, 1):.0f}x more)")
    print(f"average node power: {1e6 * report.average_power_w:.0f} uW")
    print(f"battery estimate: {report.battery_days:.1f} days between "
          f"charges (paper: 'typically one week')")

    # Window-level AF decision quality on this recording.
    windows, labels = detector.predict_record(record)
    tp = sum(1 for w, l in zip(windows, labels)
             if w.truth == AF_LABEL and l == AF_LABEL)
    total_af = sum(1 for w in windows if w.truth == AF_LABEL)
    print(f"\nAF windows correctly flagged: {tp}/{total_af}")


if __name__ == "__main__":
    main()
