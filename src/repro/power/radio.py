"""IEEE 802.15.4 radio and MAC energy model (paper §V, Fig. 6).

The paper characterizes its power figures on a WBSN with a "simple medium
access control (MAC) scheme for wireless communication (IEEE 802.15.4)
between the node and the base station".  The model here accounts for the
dominant energy terms of such a link:

* TX airtime at the 802.15.4 rate (250 kb/s) under the PHY/MAC framing
  overhead (preamble, SFD, PHY header, MAC header + FCS per frame, with
  the standard 127-byte MTU limiting the payload per frame);
* receive windows for the per-frame acknowledgements;
* a fixed oscillator/PLL startup cost per radio wake-up (the radio duty
  cycles between windows).

Constants default to a CC2520-class SoC transceiver; every value is a
datasheet-class number documented below.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: 802.15.4 PHY payload limit per frame, bytes.
MTU_BYTES = 127
#: PHY synchronization header + length byte (preamble 4B, SFD 1B, LEN 1B).
PHY_OVERHEAD_BYTES = 6
#: Compact MAC header + FCS for a data frame (short addressing).
MAC_OVERHEAD_BYTES = 11
#: Acknowledgement frame length (PHY + MAC ACK).
ACK_BYTES = 11


@dataclass(frozen=True)
class RadioModel:
    """Energy/timing constants of the transceiver.

    Attributes:
        bitrate_bps: Over-the-air bit rate (802.15.4: 250 kb/s).
        tx_power_w: Supply power while transmitting (CC2520-class at
            0 dBm: ~25.8 mA at 3 V ~= 77 mW; ULP front-ends reach lower —
            the default 36 mW models the low-power operating point the
            paper's node uses).
        rx_power_w: Supply power while receiving (ACK windows).
        startup_energy_j: Oscillator + PLL settling cost per wake-up.
        turnaround_s: TX->RX turnaround per frame awaiting the ACK.
    """

    bitrate_bps: float = 250e3
    tx_power_w: float = 36e-3
    rx_power_w: float = 40e-3
    startup_energy_j: float = 8e-6
    turnaround_s: float = 192e-6

    def energy_per_bit(self) -> float:
        """Raw TX energy per over-the-air bit."""
        return self.tx_power_w / self.bitrate_bps


@dataclass(frozen=True)
class TransmissionCost:
    """Cost of shipping one payload through the MAC.

    Attributes:
        frames: Number of MAC frames used.
        airtime_s: Total TX airtime.
        energy_j: Total radio energy (TX + ACK RX + startup).
    """

    frames: int
    airtime_s: float
    energy_j: float


class Ieee802154Link:
    """Framing + energy accounting for a simple beaconless 802.15.4 link.

    Args:
        radio: Transceiver constants.
        ack_enabled: Model per-frame acknowledgements.
    """

    def __init__(self, radio: RadioModel | None = None,
                 ack_enabled: bool = True) -> None:
        self.radio = radio or RadioModel()
        self.ack_enabled = ack_enabled

    @property
    def payload_per_frame_bytes(self) -> int:
        """Usable payload bytes per frame under the 127-byte MTU."""
        return MTU_BYTES - MAC_OVERHEAD_BYTES

    def frames_for(self, payload_bits: int) -> int:
        """Frames needed for a payload."""
        if payload_bits <= 0:
            return 0
        payload_bytes = int(np.ceil(payload_bits / 8))
        return int(np.ceil(payload_bytes / self.payload_per_frame_bytes))

    def transmit(self, payload_bits: int, wakeups: int = 1,
                 ) -> TransmissionCost:
        """Cost of transmitting ``payload_bits`` (possibly zero).

        Args:
            payload_bits: Application payload size.
            wakeups: Radio wake-ups charged (one per transmission burst).
        """
        frames = self.frames_for(payload_bits)
        if frames == 0:
            return TransmissionCost(frames=0, airtime_s=0.0, energy_j=0.0)
        payload_bytes = int(np.ceil(payload_bits / 8))
        overhead_bytes = frames * (PHY_OVERHEAD_BYTES + MAC_OVERHEAD_BYTES)
        total_bits = 8 * (payload_bytes + overhead_bytes)
        airtime = total_bits / self.radio.bitrate_bps
        energy = airtime * self.radio.tx_power_w
        if self.ack_enabled:
            ack_time = frames * (self.radio.turnaround_s
                                 + 8 * ACK_BYTES / self.radio.bitrate_bps)
            energy += ack_time * self.radio.rx_power_w
        energy += wakeups * self.radio.startup_energy_j
        return TransmissionCost(frames=frames, airtime_s=airtime,
                                energy_j=energy)

    def effective_energy_per_payload_bit(self, payload_bits: int) -> float:
        """Average joules per payload bit including all overheads."""
        if payload_bits <= 0:
            return 0.0
        return self.transmit(payload_bits).energy_j / payload_bits
