"""Compression quality metrics used in Fig. 5 (CR, SNR, PRD).

Definitions follow Mamaghanian et al. [16], the source of the paper's
"SNR over 20 dB corresponds to good reconstruction quality" criterion:

* ``CR = 100 * (n - m) / n`` — the percentage of samples *not* transmitted.
* ``PRD = 100 * ||x - xr|| / ||x||`` — percentage RMS difference.
* ``SNR = 20 * log10(||x|| / ||x - xr||) = -20 * log10(PRD / 100)``.
"""

from __future__ import annotations

import numpy as np

#: The paper's "good reconstruction quality" threshold (Fig. 5).
GOOD_QUALITY_SNR_DB = 20.0


def compression_ratio(n: int, m: int) -> float:
    """CR in percent for an n-sample window compressed to m measurements."""
    if not 0 < m <= n:
        raise ValueError("require 0 < m <= n")
    return 100.0 * (n - m) / n


def measurements_for_cr(n: int, cr_percent: float) -> int:
    """Measurement count m achieving (at least) the requested CR."""
    if not 0.0 <= cr_percent < 100.0:
        raise ValueError("CR must lie in [0, 100)")
    m = int(np.floor(n * (1.0 - cr_percent / 100.0)))
    return max(1, m)


def prd_percent(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Percentage RMS difference between original and reconstruction."""
    original = np.asarray(original, dtype=float)
    reconstructed = np.asarray(reconstructed, dtype=float)
    denom = np.linalg.norm(original)
    if denom == 0:
        return 0.0 if np.linalg.norm(reconstructed) == 0 else np.inf
    return 100.0 * np.linalg.norm(original - reconstructed) / denom


def reconstruction_snr_db(original: np.ndarray,
                          reconstructed: np.ndarray) -> float:
    """Reconstruction SNR in dB (the Fig. 5 y-axis)."""
    prd = prd_percent(original, reconstructed)
    if prd == 0.0:
        return np.inf
    if not np.isfinite(prd):
        return -np.inf
    return -20.0 * np.log10(prd / 100.0)


def snr_crossing_cr(crs: np.ndarray, snrs: np.ndarray,
                    threshold_db: float = GOOD_QUALITY_SNR_DB) -> float:
    """Highest CR at which the SNR curve still meets ``threshold_db``.

    Linear interpolation between sweep points, mirroring how the paper
    reads the 65.9 % / 72.7 % operating points off Fig. 5.

    Returns:
        The interpolated CR, or ``nan`` when the curve never reaches the
        threshold.
    """
    crs = np.asarray(crs, dtype=float)
    snrs = np.asarray(snrs, dtype=float)
    order = np.argsort(crs)
    crs, snrs = crs[order], snrs[order]
    above = snrs >= threshold_db
    if not above.any():
        return float("nan")
    last = int(np.max(np.flatnonzero(above)))
    if last == crs.shape[0] - 1:
        return float(crs[-1])
    c0, c1 = crs[last], crs[last + 1]
    s0, s1 = snrs[last], snrs[last + 1]
    if s0 == s1:
        return float(c0)
    frac = (s0 - threshold_db) / (s0 - s1)
    return float(c0 + frac * (c1 - c0))
