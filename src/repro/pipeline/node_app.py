"""The full SmartCardia-style node application (paper §V).

Wires every stage of Fig. 1 into one processing chain, as the commercial
node runs it: morphological conditioning, RMS lead combination, R-peak
detection, wavelet delineation, AF analysis — and the transmission policy
of §V: "Compressed Sensing is employed to efficiently transmit excerpts of
the acquired signals, periodically or when an abnormality is detected."

The node report accounts bandwidth and energy with the models of
:mod:`repro.power`, so the examples can print end-to-end numbers (events,
bytes, battery life) for a given recording.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..classification.afib import AfDetector, AF_LABEL
from ..compression.encoder import MultiLeadCsEncoder
from ..delineation.rpeak import RPeakDetector
from ..delineation.wavelet_delineator import WaveletDelineator
from ..filtering.combination import combine_leads
from ..filtering.morphological import MorphologicalFilter
from ..power.battery import Battery
from ..power.governor import (
    ACUITY_ALERT,
    ACUITY_OK,
    MODE_EVENTS_ONLY,
    EnergyGovernor,
    GovernorDecision,
)
from ..power.mcu import McuModel
from ..power.node import NodeEnergyModel
from ..signals.types import BeatAnnotation, MultiLeadEcg

#: Bits per delineated-beat event record (9 fiducials x 16 bit + label).
BEAT_EVENT_BITS = 9 * 16 + 8


@dataclass(frozen=True)
class AlarmEvent:
    """One abnormality notification with its transmitted excerpt.

    Attributes:
        start: First sample of the flagged span.
        stop: Last sample of the flagged span.
        kind: Event kind (currently ``"AF"``).
        excerpt_bits: CS-compressed excerpt payload shipped with the alarm.
    """

    start: int
    stop: int
    kind: str
    excerpt_bits: int


@dataclass
class NodeReport:
    """End-to-end outcome of processing one recording on the node.

    Attributes:
        duration_s: Recording duration.
        beats: Delineated beats.
        alarms: Abnormality events raised.
        periodic_excerpts: Periodic CS excerpts transmitted.
        transmitted_bits: Total application payload handed to the radio.
        processing_cycles: Total MCU cycles spent on DSP.
        average_power_w: Node average power (radio + MCU + front-end).
        battery_days: Estimated time between charges.
    """

    duration_s: float
    beats: list[BeatAnnotation]
    alarms: list[AlarmEvent]
    periodic_excerpts: int
    transmitted_bits: int
    processing_cycles: float
    average_power_w: float
    battery_days: float
    fs: float = 250.0

    @property
    def mean_heart_rate_bpm(self) -> float:
        """Mean heart rate over the recording (nan with < 2 beats)."""
        if len(self.beats) < 2:
            return float("nan")
        peaks = np.array([b.r_peak for b in self.beats], dtype=float)
        rr_mean_samples = float(np.mean(np.diff(peaks)))
        if rr_mean_samples <= 0:
            return float("nan")
        return 60.0 * self.fs / rr_mean_samples


@dataclass(frozen=True)
class ModeSegment:
    """A maximal stretch of one recording spent in one operating mode.

    Attributes:
        start_s: Segment start within the recording.
        stop_s: Segment end.
        mode: Operating mode in force (see :data:`repro.power.MODES`).
    """

    start_s: float
    stop_s: float
    mode: str

    @property
    def duration_s(self) -> float:
        """Segment length."""
        return self.stop_s - self.start_s


@dataclass
class GovernedNodeReport:
    """Outcome of one recording processed under an :class:`EnergyGovernor`.

    The DSP chain (conditioning, delineation, AF analysis) runs exactly
    as in :class:`NodeReport`; what changes batch to batch is the
    *uplink*: the governor picks an operating mode each interval and the
    transmitted payload, power and battery drain follow its schedule.

    Attributes:
        duration_s: Recording duration.
        beats: Delineated beats (mode-independent — DSP is always on).
        alarms: Abnormality events raised (always uplinked with CS
            context, in every mode).
        decisions: Per-interval governor decisions, in time order.
        mode_seconds: Seconds spent per operating mode.
        n_switches: Mode changes executed mid-record.
        transmitted_bits: Application payload handed to the radio.
        average_power_w: Node average power under the mode schedule.
        final_soc: Battery state of charge at the end of the recording.
        projected_hours_to_empty: Hours-to-empty if the final mode held.
    """

    duration_s: float
    beats: list[BeatAnnotation]
    alarms: list[AlarmEvent]
    decisions: list[GovernorDecision]
    mode_seconds: dict[str, float]
    n_switches: int
    transmitted_bits: int
    average_power_w: float
    final_soc: float
    projected_hours_to_empty: float
    fs: float = 250.0

    @property
    def segments(self) -> list[ModeSegment]:
        """Consecutive same-mode decisions merged into segments."""
        segments: list[ModeSegment] = []
        for i, decision in enumerate(self.decisions):
            stop = (self.decisions[i + 1].t_s
                    if i + 1 < len(self.decisions) else self.duration_s)
            if segments and segments[-1].mode == decision.mode:
                segments[-1] = ModeSegment(segments[-1].start_s,
                                           stop, decision.mode)
            else:
                segments.append(ModeSegment(decision.t_s, stop,
                                            decision.mode))
        return segments


@dataclass
class CardiacMonitorNode:
    """The embedded cardiac monitor application.

    Args:
        af_detector: Trained AF detector (see
            :class:`repro.classification.afib.AfDetector`); ``None``
            disables AF analysis (no alarms are raised).
        excerpt_period_s: Period of routine CS excerpt transmissions.
        excerpt_window_s: Length of each transmitted excerpt.
        cs_cr_percent: Compression ratio of the excerpt encoder.
        dsp_cycles_per_sample: MCU cost of the always-on DSP chain
            (conditioning + delineation; matches
            ``repro.delineation.resources``).
    """

    af_detector: AfDetector | None = None
    excerpt_period_s: float = 60.0
    excerpt_window_s: float = 2.0
    cs_cr_percent: float = 60.0
    dsp_cycles_per_sample: float = 260.0
    energy_model: NodeEnergyModel = field(default_factory=NodeEnergyModel)
    battery: Battery = field(default_factory=Battery)

    def _delineate(self, record: MultiLeadEcg) -> list[BeatAnnotation]:
        """The always-on DSP chain: condition, combine, detect, delineate."""
        fs = record.fs
        conditioner = MorphologicalFilter(fs)
        conditioned = conditioner.condition_multilead(record)
        combined = combine_leads(conditioned, method="rms")
        r_peaks = RPeakDetector(fs).detect(combined.signal)
        # Delineate on a conditioned single lead (lead II morphology).
        lead_signal = conditioned.signals[min(1, record.n_leads - 1)]
        return WaveletDelineator(fs).delineate(lead_signal, r_peaks)

    def process(self, record: MultiLeadEcg) -> NodeReport:
        """Run the full on-node chain over one recording."""
        fs = record.fs
        beats = self._delineate(record)
        alarms = self._af_alarms(record, fs)
        n_samples = record.n_samples
        duration = record.duration_s

        encoder = MultiLeadCsEncoder(
            n_leads=record.n_leads,
            n=int(self.excerpt_window_s * fs),
            cr_percent=self.cs_cr_percent,
            quant_bits=self.energy_model.sample_bits)
        excerpt_bits = encoder.payload_bits_per_window()
        periodic = int(duration // self.excerpt_period_s)

        beat_bits = len(beats) * BEAT_EVENT_BITS
        alarm_bits = sum(a.excerpt_bits + 64 for a in alarms)
        total_bits = periodic * excerpt_bits + beat_bits + alarm_bits

        dsp_cycles = self.dsp_cycles_per_sample * n_samples * record.n_leads
        cs_cycles = (periodic + len(alarms)) \
            * encoder.additions_per_window() \
            * self.energy_model.cycles_per_addition
        cycles = dsp_cycles + cs_cycles

        power = self._average_power(total_bits, cycles, duration, record)
        return NodeReport(
            duration_s=duration,
            beats=beats,
            alarms=alarms,
            periodic_excerpts=periodic,
            transmitted_bits=int(total_bits),
            processing_cycles=cycles,
            average_power_w=power,
            battery_days=self.battery.lifetime_days(power),
            fs=fs,
        )

    def process_governed(self, record: MultiLeadEcg,
                         governor: EnergyGovernor,
                         interval_s: float | None = None,
                         acuity_fn=None,
                         extra_load_fn=None) -> GovernedNodeReport:
        """Run the chain with the governor switching modes mid-record.

        The DSP chain runs over the whole recording exactly as in
        :meth:`process` (delineation never pauses); the *uplink* follows
        the governor: each batch interval it picks an operating mode
        from battery state of charge and acuity, and the transmitted
        payload and node power follow that schedule.  Alarms always ship
        their CS-compressed context, whatever the mode — the §V policy's
        "when an abnormality is detected" leg is not negotiable.

        Args:
            record: The recording to process.
            governor: The (stateful) mode controller; its battery drains
                across the call, so consecutive recordings continue the
                discharge curve.
            interval_s: Governor batch interval; defaults to the radio
                duty-cycle policy's batching interval.
            acuity_fn: ``fn(t_s) -> acuity`` override.  By default a
                node-local proxy is used: ``alert`` while an on-node
                alarm is within the last 60 s, else ``ok`` (the fleet
                scheduler replaces this with gateway-fed triage state).
            extra_load_fn: ``fn(t_s) -> watts`` of parasitic drain
                (scenario ``battery_drain`` faults).

        Returns:
            The :class:`GovernedNodeReport` with the mode timeline.
        """
        fs = record.fs
        duration = record.duration_s
        beats = self._delineate(record)
        alarms = self._af_alarms(record, fs)
        dt = (interval_s if interval_s is not None
              else governor.table.duty.policy.batch_interval_s)
        if dt <= 0:
            raise ValueError("interval_s must be positive")

        alarm_times = [a.start / fs for a in alarms]

        def default_acuity(t_s: float) -> str:
            recent = any(t_s - 60.0 <= at < t_s + dt for at in alarm_times)
            return ACUITY_ALERT if recent else ACUITY_OK

        acuity_at = acuity_fn or default_acuity
        table = governor.table
        model = self.energy_model
        decisions: list[GovernorDecision] = []
        mode_seconds: dict[str, float] = {}
        total_bits = 0.0
        energy = 0.0
        t = 0.0
        while t < duration - 1e-9:
            step = min(dt, duration - t)
            extra = extra_load_fn(t) if extra_load_fn is not None else 0.0
            # Alarm uplink energy rides through the governor as an
            # extra load, so the battery drain and the reported power
            # stay mutually consistent (decision.power_w covers
            # everything the interval cost).
            interval_alarms = [a for a in alarms
                               if t <= a.start / fs < t + step]
            alarm_bits = sum(a.excerpt_bits + 64 for a in interval_alarms)
            if alarm_bits:
                extra += model.link.transmit(alarm_bits).energy_j / step
            decision = governor.step(step, acuity_at(t), extra_load_w=extra)
            decisions.append(decision)
            mode = decision.mode
            mode_seconds[mode] = mode_seconds.get(mode, 0.0) + step
            energy += decision.power_w * step
            if mode != MODE_EVENTS_ONLY:
                total_bits += table.payload_bits_per_s(mode) * step
            n_interval_beats = sum(1 for b in beats
                                   if t <= b.r_peak / fs < t + step)
            total_bits += n_interval_beats * BEAT_EVENT_BITS
            total_bits += alarm_bits
            t += step

        return GovernedNodeReport(
            duration_s=duration,
            beats=beats,
            alarms=alarms,
            decisions=decisions,
            mode_seconds=mode_seconds,
            n_switches=sum(1 for d in decisions if d.switched),
            transmitted_bits=int(total_bits),
            average_power_w=energy / duration,
            final_soc=governor.battery.soc,
            projected_hours_to_empty=governor.projected_hours_to_empty(),
            fs=fs,
        )

    def _af_alarms(self, record: MultiLeadEcg, fs: float) -> list[AlarmEvent]:
        """AF window decisions merged into alarm events."""
        if self.af_detector is None:
            return []
        windows, labels = self.af_detector.predict_record(record)
        excerpt_bits = MultiLeadCsEncoder(
            n_leads=record.n_leads, n=int(self.excerpt_window_s * fs),
            cr_percent=self.cs_cr_percent).payload_bits_per_window()
        alarms: list[AlarmEvent] = []
        current: list[int] = []
        for window, label in zip(windows, labels):
            if label == AF_LABEL:
                current.append(window.start)
                current.append(window.stop)
            elif current:
                alarms.append(AlarmEvent(start=min(current),
                                         stop=max(current), kind="AF",
                                         excerpt_bits=excerpt_bits))
                current = []
        if current:
            alarms.append(AlarmEvent(start=min(current), stop=max(current),
                                     kind="AF", excerpt_bits=excerpt_bits))
        return alarms

    def _average_power(self, total_bits: float, cycles: float,
                       duration: float, record: MultiLeadEcg) -> float:
        """Node average power from payload, cycles and standing costs."""
        model = self.energy_model
        radio = model.link.transmit(int(total_bits)).energy_j
        mcu: McuModel = model.mcu
        compute = mcu.compute_energy(cycles)
        rtos = mcu.rtos_energy(duration)
        active_fraction = min(1.0, cycles / (mcu.clock_hz * duration))
        sleep = mcu.idle_energy(duration, active_fraction)
        sampling = model.frontend.sampling_energy(
            record.n_samples, record.n_leads, duration)
        return (radio + compute + rtos + sleep + sampling) / duration
