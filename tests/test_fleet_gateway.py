"""Tests for gateway ingest, reconstruction and alarm confirmation."""

import numpy as np
import pytest

from repro.fleet import (
    Gateway,
    GatewayConfig,
    NodeProxy,
    NodeProxyConfig,
    PatientProfile,
    synthesize_patient,
)

PROXY_CONFIG = NodeProxyConfig(stream_telemetry=False)


@pytest.fixture(scope="module")
def clean_af_uplink(trained_af_detector):
    """(report, packets) of a clean persistent-AF patient."""
    profile = PatientProfile(patient_id="afc", rhythm="af", snr_db=None,
                             seed=42)
    record = synthesize_patient(profile, duration_s=120.0)
    proxy = NodeProxy(profile, PROXY_CONFIG,
                      af_detector=trained_af_detector)
    return proxy.run(record)


class TestQueue:
    def test_bounded_queue_drops_and_counts(self, clean_af_uplink):
        _, packets = clean_af_uplink
        gateway = Gateway(GatewayConfig(queue_capacity=1))
        assert gateway.ingest(packets[0]) is True
        assert gateway.ingest(packets[1]) is False
        assert gateway.dropped == 1
        assert gateway.pending == 1

    def test_drain_budget(self, clean_af_uplink):
        _, packets = clean_af_uplink
        gateway = Gateway()
        for packet in packets:
            gateway.ingest(packet)
        first = gateway.drain(max_packets=1)
        assert len(first) == 1
        assert gateway.pending == len(packets) - 1
        rest = gateway.drain()
        assert len(rest) == len(packets) - 1
        assert gateway.pending == 0


class TestReconstruction:
    def test_clean_excerpts_reconstruct_well(self, clean_af_uplink):
        _, packets = clean_af_uplink
        gateway = Gateway()
        for packet in packets:
            gateway.ingest(packet)
        excerpts = gateway.drain()
        snrs = [e.snr_db for e in excerpts if np.isfinite(e.snr_db)]
        assert snrs
        # CR 60 % on clean signals: comfortably useful reconstructions.
        assert np.mean(snrs) > 12.0

    def test_signal_shape(self, clean_af_uplink):
        _, packets = clean_af_uplink
        gateway = Gateway()
        gateway.ingest(packets[0])
        excerpt = gateway.drain()[0]
        assert excerpt.signal.shape == (packets[0].n_leads,
                                        packets[0].span_samples)

    def test_demux_into_channels(self, clean_af_uplink):
        report, packets = clean_af_uplink
        gateway = Gateway()
        for packet in packets:
            gateway.ingest(packet)
        gateway.drain()
        channel = gateway.channels["afc"]
        n_alarm = sum(1 for p in packets if p.kind == "alarm")
        assert channel.n_alarms == n_alarm == len(report.alarms)
        assert channel.n_excerpts == len(packets) - n_alarm
        assert channel.payload_bits == sum(p.payload_bits for p in packets)
        assert np.isfinite(channel.mean_snr_db)

    def test_decoder_cache_reused(self, clean_af_uplink):
        _, packets = clean_af_uplink
        gateway = Gateway()
        for packet in packets:
            gateway.ingest(packet)
        gateway.drain()
        assert len(gateway._decoders) == 1  # one geometry in this uplink


class TestAlarmConfirmation:
    def test_no_false_drops_on_clean_af(self, clean_af_uplink):
        # Acceptance criterion: gateway-confirmed alarms match node-raised
        # AF alarms on clean signals.
        report, packets = clean_af_uplink
        gateway = Gateway()
        for packet in packets:
            gateway.ingest(packet)
        excerpts = gateway.drain()
        alarms = [e for e in excerpts if e.kind == "alarm"]
        assert len(alarms) == len(report.alarms) >= 1
        assert all(e.confirmed for e in alarms)
        assert gateway.channels["afc"].n_confirmed == len(report.alarms)

    def test_regular_rhythm_alarm_refuted(self):
        # A fabricated alarm on clean sinus rhythm must be downgraded.
        profile = PatientProfile(patient_id="nsrf", rhythm="nsr",
                                 snr_db=None, seed=43)
        record = synthesize_patient(profile, duration_s=60.0)
        proxy = NodeProxy(profile, PROXY_CONFIG)
        proxy._fs = record.fs
        packet = proxy.alarm_packet(record, alarm_start=1000)
        gateway = Gateway()
        gateway.ingest(packet)
        excerpt = gateway.drain()[0]
        assert excerpt.confirmed is False

    def test_confirmation_can_be_disabled(self, clean_af_uplink):
        _, packets = clean_af_uplink
        gateway = Gateway(GatewayConfig(confirm_alarms=False))
        for packet in packets:
            gateway.ingest(packet)
        alarms = [e for e in gateway.drain() if e.kind == "alarm"]
        assert all(e.confirmed for e in alarms)

    def test_insufficient_beats_keeps_alarm(self):
        # Too little reconstructed evidence: never overrule the node.
        gateway = Gateway()
        flat = np.zeros((3, 512))
        assert gateway._confirm(flat, fs=250.0) is True


class TestBatchedDrain:
    """drain() batches FISTA by geometry; outputs must match the
    one-packet-at-a-time path."""

    def test_full_drain_equals_budgeted_drain(self, clean_af_uplink):
        _, packets = clean_af_uplink
        batched = Gateway(GatewayConfig(n_iter=60))
        stepwise = Gateway(GatewayConfig(n_iter=60))
        for gateway in (batched, stepwise):
            for packet in packets:
                gateway.ingest(packet)
        all_at_once = batched.drain()
        one_by_one = []
        while stepwise.pending:
            one_by_one.extend(stepwise.drain(1))
        assert len(all_at_once) == len(one_by_one) == len(packets)
        for a, b in zip(all_at_once, one_by_one):
            assert a.patient_id == b.patient_id
            assert a.kind == b.kind
            assert a.confirmed == b.confirmed
            assert np.allclose(a.signal, b.signal, rtol=1e-9, atol=1e-12)


def _seq_packet(seq: int) -> object:
    """Minimal stand-in: the reassembly buffer reads only ``.seq``."""

    class _P:
        """Sequence-number-only packet stub."""

        def __init__(self, s: int) -> None:
            self.seq = s

    return _P(seq)


def _arrival_stream(rng, n_seqs: int, loss: float, dup: float,
                    shuffle_span: float) -> tuple[list[int], set[int]]:
    """Randomized reorder/dup/loss arrival order plus the arrived set."""
    arrivals = []
    for seq in range(n_seqs):
        if rng.random() < loss:
            continue
        copies = 1 + (rng.random() < dup)
        for _ in range(copies):
            arrivals.append((seq + rng.uniform(0, shuffle_span), seq))
    arrivals.sort()
    ordered = [seq for _, seq in arrivals]
    return ordered, set(ordered)


class TestReassemblyOracle:
    """Randomized reorder/dup/loss regression vs a brute-force oracle.

    The oracle is defined on the arrival multiset alone:

    * every distinct arrived seq is delivered exactly once;
    * ``n_duplicates`` == arrivals - distinct arrivals;
    * after the final flush, ``missing`` holds exactly the never-arrived
      numbers below ``next_seq`` and ``n_gaps`` counts them;
    * ``n_gaps`` never dips below zero along the way.
    """

    def _run_episode(self, seed: int) -> None:
        from collections import Counter

        from repro.fleet.gateway import PatientChannel, _ReassemblyBuffer

        rng = np.random.default_rng(seed)
        window = int(rng.integers(1, 8))
        expire_every = int(rng.integers(0, 5))
        ordered, arrived = _arrival_stream(
            rng, n_seqs=int(rng.integers(5, 60)),
            loss=rng.uniform(0, 0.4), dup=rng.uniform(0, 0.4),
            shuffle_span=rng.uniform(0, 12.0))
        buffer = _ReassemblyBuffer(window)
        channel = PatientChannel("p")
        delivered: list[int] = []
        for i, seq in enumerate(ordered):
            delivered.extend(p.seq for p in
                             buffer.offer(_seq_packet(seq), channel))
            assert channel.n_gaps >= 0
            if expire_every and i % expire_every == 0 and buffer.buffer:
                buffer.note_sweep(float(i))
                if buffer.gap_ticks >= 3:
                    delivered.extend(p.seq for p in
                                     buffer.flush(channel))
        delivered.extend(p.seq for p in buffer.flush(channel))
        counts = Counter(delivered)
        assert set(counts) == arrived, "lost or invented sequence numbers"
        assert all(v == 1 for v in counts.values()), "re-delivered seqs"
        assert channel.n_duplicates == len(ordered) - len(arrived)
        holes = set(range(buffer.next_seq)) - arrived
        assert buffer.missing == holes
        assert channel.n_gaps == len(holes)
        assert channel.n_late_recovered >= 0
        assert not buffer.buffer, "flush must empty the window"

    def test_fuzz_against_oracle(self):
        for seed in range(120):
            self._run_episode(seed)

    def test_overflow_flush_counts_each_gap_once(self):
        # Force-release after overflow following a contiguous release:
        # the rewritten single-sweep flush cannot double-count holes.
        from repro.fleet.gateway import PatientChannel, _ReassemblyBuffer

        buffer = _ReassemblyBuffer(window=2)
        channel = PatientChannel("p")
        assert buffer.offer(_seq_packet(0), channel)  # releases 0
        for seq in (4, 7, 9):  # third insert overflows the window
            buffer.offer(_seq_packet(seq), channel)
        assert channel.n_gaps == 6  # {1, 2, 3} + {5, 6} + {8}
        assert buffer.missing == {1, 2, 3, 5, 6, 8}
        assert channel.n_gaps == len(buffer.missing)
        assert buffer.next_seq == 10

    def test_hostile_seq_jump_cannot_balloon_missing(self):
        # One crafted packet with an absurd sequence number must not
        # make the flush materialize billions of written-off numbers
        # (the gateway faces a real socket via `repro.fleet.serve`).
        from repro.fleet.gateway import (
            MAX_TRACKED_GAP,
            PatientChannel,
            _ReassemblyBuffer,
        )

        buffer = _ReassemblyBuffer(window=4)
        channel = PatientChannel("p")
        hostile_seq = 2 ** 40
        buffer.offer(_seq_packet(hostile_seq), channel)
        released = buffer.flush(channel)
        assert [p.seq for p in released] == [hostile_seq]
        assert channel.n_gaps == hostile_seq  # counted in full
        assert len(buffer.missing) == MAX_TRACKED_GAP  # bounded
        # A recent straggler is still recoverable...
        recovered = buffer.offer(_seq_packet(hostile_seq - 1), channel)
        assert [p.seq for p in recovered] == [hostile_seq - 1]
        assert channel.n_late_recovered == 1
        # ...while one beyond the tracked window counts as a duplicate.
        assert buffer.offer(_seq_packet(7), channel) == []
        assert channel.n_duplicates == 1

    def test_second_late_copy_is_a_duplicate(self):
        # First copy of a written-off seq recovers the gap; the second
        # must land on the duplicate path, never be re-delivered.
        from repro.fleet.gateway import PatientChannel, _ReassemblyBuffer

        buffer = _ReassemblyBuffer(window=1)
        channel = PatientChannel("p")
        buffer.offer(_seq_packet(3), channel)
        buffer.offer(_seq_packet(5), channel)  # overflow: gaps 0-2, 4
        assert channel.n_gaps == 4
        first = buffer.offer(_seq_packet(2), channel)
        assert [p.seq for p in first] == [2]
        assert channel.n_gaps == 3
        assert channel.n_late_recovered == 1
        second = buffer.offer(_seq_packet(2), channel)
        assert second == []
        assert channel.n_duplicates == 1
        assert channel.n_gaps == 3  # unchanged: no re-recovery

    def test_late_recovery_does_not_reset_stall_clock(self):
        # A replayed straggler is no progress for packets stalled
        # behind the *current* gap; the grace countdown must keep
        # running or head-of-line blocking becomes unbounded.
        from repro.fleet.gateway import PatientChannel, _ReassemblyBuffer

        buffer = _ReassemblyBuffer(window=8)
        channel = PatientChannel("p")
        buffer.offer(_seq_packet(2), channel)
        buffer.flush(channel)  # writes off 0, 1; next_seq -> 3
        buffer.offer(_seq_packet(5), channel)  # stalls behind 3, 4
        buffer.note_sweep(10.0)  # anchor: head 5 observed waiting
        buffer.note_sweep(40.0)
        assert buffer.gap_ticks == 2
        assert buffer.stall_head == 5
        assert buffer.stalled_for_s(70.0) == 60.0
        released = buffer.offer(_seq_packet(0), channel)  # late replay
        assert [p.seq for p in released] == [0]
        assert buffer.gap_ticks == 2, \
            "straggler replay must not extend head-of-line blocking"
        released = buffer.offer(_seq_packet(3), channel)  # partial fill
        assert [p.seq for p in released] == [3]
        assert buffer.gap_ticks == 2, \
            "head of line (5) is still stuck: a partial release " \
            "behind it must not reset the stall clock"
        assert buffer.stalled_for_s(70.0) == 60.0  # clock kept running
        released = buffer.offer(_seq_packet(4), channel)
        assert [p.seq for p in released] == [4, 5]  # stall fully clears
        assert buffer.gap_ticks == 0  # head released: anchor dropped
        assert buffer.stall_head is None

    def test_straggler_behind_two_gaps_keeps_stall_anchor(self):
        # Regression for the head-of-line accounting bug: with two
        # separate gaps ({1} and {3, 4}) in front of buffered packets,
        # the in-order arrival of seq 0 releases [0] — but the oldest
        # pending seq (2) did not move, so the stall clock must keep
        # counting from its original anchor.
        from repro.fleet.gateway import PatientChannel, _ReassemblyBuffer

        buffer = _ReassemblyBuffer(window=8)
        channel = PatientChannel("p")
        buffer.offer(_seq_packet(2), channel)
        buffer.offer(_seq_packet(5), channel)  # buffer {2, 5}; next 0
        buffer.note_sweep(30.0)  # head 2 anchored at t=30
        buffer.note_sweep(60.0)
        assert (buffer.stall_head, buffer.gap_ticks) == (2, 2)
        released = buffer.offer(_seq_packet(0), channel)
        assert [p.seq for p in released] == [0]  # in-order release
        assert buffer.gap_ticks == 2, \
            "release of seq 0 is progress, but head 2 is still stuck"
        assert buffer.stall_since_s == 30.0
        assert buffer.stalled_for_s(90.0) == 60.0
        buffer.note_sweep(90.0)  # same head: one more sweep counted
        assert buffer.gap_ticks == 3
        released = buffer.offer(_seq_packet(1), channel)
        assert [p.seq for p in released] == [1, 2]  # head 2 makes it out
        assert buffer.gap_ticks == 0
        buffer.note_sweep(120.0)  # next sweep re-anchors on new head 5
        assert (buffer.stall_head, buffer.gap_ticks) == (5, 1)
        assert buffer.stall_since_s == 120.0
