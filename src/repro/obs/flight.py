"""Gateway flight recorder: bounded packet rings dumped on anomaly.

The flight recorder keeps, per patient channel, a ring of the last N
wire-encoded uplink packets and the last N trace events that touched
the channel.  When the gateway detects an anomaly — a reassembly stall
(force-released fragments), a NaN guard trip in a reconstructed
excerpt, or an alarm burst — the recorder freezes the rings into an
:class:`AnomalyRecord` and, when a dump directory is configured,
writes a JSON dump for offline replay.

Dumps are self-contained: wire frames are base64-encoded in the JSON
and :func:`load_flight_dump` / :meth:`AnomalyRecord.packets` decode
them back to byte frames that `Gateway.ingest` can replay.

File naming embeds virtual time, not wall time
(``flight_<kind>_<subject>_t<t_s>.json``), so a seeded rerun produces
identically named, byte-identical dumps.
"""

from __future__ import annotations

import base64
import json
import pathlib
from collections import deque
from dataclasses import dataclass, field

#: Anomaly kinds emitted by the gateway instrumentation.
ANOMALY_REASSEMBLY_STALL = "reassembly-stall"
ANOMALY_NAN_GUARD = "nan-guard"
ANOMALY_ALARM_BURST = "alarm-burst"
ANOMALY_WIRE_ERROR = "wire-error"
ANOMALY_JOURNAL_TRUNCATED = "journal-truncated"


@dataclass
class AnomalyRecord:
    """One frozen anomaly: rings at trip time plus cause metadata.

    Attributes:
        kind: One of the ``ANOMALY_*`` constants.
        subject: Patient channel that tripped the anomaly.
        t_s: Virtual time of the trip.
        detail: Free-form JSON-safe cause payload.
        frames_b64: Wire frames from the channel ring, oldest first,
            base64 text (JSON-safe).
        events: Trace-event dicts from the channel ring, oldest first.
        path: Dump file path when written to disk, else ``None``.
    """

    kind: str
    subject: str
    t_s: float
    detail: dict = field(default_factory=dict)
    frames_b64: list[str] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    path: str | None = None

    def packets(self) -> list[bytes]:
        """Decode the recorded wire frames back to byte strings."""
        return [base64.b64decode(s) for s in self.frames_b64]

    def to_dict(self) -> dict:
        """JSON-ready dict (dump file schema, sorted keys on write)."""
        return {
            "kind": self.kind,
            "subject": self.subject,
            "t_s": float(self.t_s),
            "detail": {k: self.detail[k] for k in sorted(self.detail)},
            "frames_b64": list(self.frames_b64),
            "events": list(self.events),
        }


class FlightRecorder:
    """Per-channel bounded rings of wire frames and trace events.

    Args:
        ring_size: Frames / events retained per channel (last N).
        dump_dir: Directory for anomaly dump files; ``None`` keeps
            anomalies in memory only (:attr:`anomalies`).
        alarm_burst_threshold: Alarms within the burst window that trip
            :data:`ANOMALY_ALARM_BURST` for a channel.
        alarm_burst_window_s: Virtual-time width of the burst window.
    """

    def __init__(self, ring_size: int = 64,
                 dump_dir: str | pathlib.Path | None = None,
                 alarm_burst_threshold: int = 8,
                 alarm_burst_window_s: float = 10.0) -> None:
        self.ring_size = int(ring_size)
        self.dump_dir = (pathlib.Path(dump_dir)
                         if dump_dir is not None else None)
        self.alarm_burst_threshold = int(alarm_burst_threshold)
        self.alarm_burst_window_s = float(alarm_burst_window_s)
        self.anomalies: list[AnomalyRecord] = []
        self._frames: dict[str, deque[bytes]] = {}
        self._events: dict[str, deque[dict]] = {}
        self._alarm_times: dict[str, deque[float]] = {}

    def _ring(self, store: dict, subject: str) -> deque:
        """Get-or-create one channel's bounded ring."""
        ring = store.get(subject)
        if ring is None:
            ring = deque(maxlen=self.ring_size)
            store[subject] = ring
        return ring

    def record_frame(self, subject: str, frame: bytes) -> None:
        """Push one wire-encoded packet onto the channel's frame ring."""
        self._ring(self._frames, subject).append(bytes(frame))

    def record_event(self, subject: str, event: dict) -> None:
        """Push one trace-event dict onto the channel's event ring."""
        self._ring(self._events, subject).append(event)

    def note_alarm(self, subject: str, t_s: float) -> bool:
        """Track one alarm at virtual ``t_s``; report burst detection.

        Returns:
            True when the alarm makes ``alarm_burst_threshold`` alarms
            inside the trailing ``alarm_burst_window_s`` (the caller
            should then raise :data:`ANOMALY_ALARM_BURST`).
        """
        times = self._alarm_times.setdefault(subject, deque())
        times.append(float(t_s))
        horizon = float(t_s) - self.alarm_burst_window_s
        while times and times[0] < horizon:
            times.popleft()
        return len(times) >= self.alarm_burst_threshold

    def anomaly(self, kind: str, subject: str, t_s: float,
                **detail) -> AnomalyRecord:
        """Freeze the channel's rings into a record; dump when configured.

        Returns:
            The :class:`AnomalyRecord`, with :attr:`AnomalyRecord.path`
            set when a dump file was written.
        """
        record = AnomalyRecord(
            kind=kind, subject=subject, t_s=float(t_s),
            detail=detail,
            frames_b64=[base64.b64encode(f).decode("ascii")
                        for f in self._frames.get(subject, ())],
            events=list(self._events.get(subject, ())),
        )
        self.anomalies.append(record)
        if self.dump_dir is not None:
            self.dump_dir.mkdir(parents=True, exist_ok=True)
            stamp = format(float(t_s), ".3f").replace(".", "_")
            name = f"flight_{kind}_{subject}_t{stamp}.json"
            path = self.dump_dir / name
            path.write_text(json.dumps(record.to_dict(), sort_keys=True,
                                       indent=2) + "\n")
            record.path = str(path)
        return record

    def snapshot(self) -> dict:
        """Summary counts for the metrics/debug surface (no payloads)."""
        return {
            "ring_size": self.ring_size,
            "n_channels": len(self._frames),
            "n_anomalies": len(self.anomalies),
            "anomaly_kinds": sorted({a.kind for a in self.anomalies}),
        }


def load_flight_dump(path: str | pathlib.Path) -> AnomalyRecord:
    """Load one anomaly dump file back into an :class:`AnomalyRecord`.

    The returned record's :meth:`AnomalyRecord.packets` frames can be
    replayed through ``Gateway.ingest`` for offline debugging.
    """
    payload = json.loads(pathlib.Path(path).read_text())
    return AnomalyRecord(
        kind=payload["kind"], subject=payload["subject"],
        t_s=payload["t_s"], detail=payload.get("detail", {}),
        frames_b64=payload.get("frames_b64", []),
        events=payload.get("events", []), path=str(path),
    )
