"""Wavelet-based ECG delineation (Rincon et al. 2009 [12], Martinez 2004).

The signal is expanded on the undecimated quadratic-spline wavelet bank
(:func:`repro.dsp.wavelets.atrous_swt`), in which the transform at scale
``2^k`` is proportional to the derivative of a smoothed signal: a
monophasic wave becomes a modulus-maxima pair of opposite signs with a zero
crossing at the wave's peak.  Fiducial points are located by:

* **QRS** — at scale 2² the complex produces a cluster of modulus maxima;
  the onset (end) is found by scanning left (right) from the first (last)
  significant maximum until the modulus falls below a fraction ``xi`` of
  that maximum (Martinez's threshold rule).
* **T and P waves** — at scale 2⁴, inside RR-relative search windows, the
  dominant positive/negative lobe pair is located; the peak is the zero
  crossing between the lobes, and the boundaries come from the same
  outward ``xi`` scan.  A wave is declared **absent** (e.g. the P wave in
  AF) when its strongest lobe does not rise above a multiple of the
  record's robust wavelet noise floor.

For a Gaussian wave of width sigma, scanning outward to
``|w| < 0.15 * |lobe max|`` lands within a few milliseconds of the
``2.5 * sigma`` ground-truth boundary used by the synthesizer, which is why
``xi_bound`` defaults to 0.15 (see tests for the calibration evidence).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsp.wavelets import atrous_swt, atrous_swt_integer
from ..signals.types import ABSENT_WAVE, BeatAnnotation, EcgRecord, WaveFiducials
from .rpeak import RPeakDetector


@dataclass(frozen=True)
class WaveletDelineatorConfig:
    """Tuning constants of the wavelet delineator.

    Attributes:
        levels: Number of dyadic scales computed.
        qrs_scale: Scale index (0-based) used for the QRS complex (2²).
        p_scale: Scale index used for the P wave (2³: the narrow P wave is
            blurred too much at 2⁴, biasing its boundaries outward).
        t_scale: Scale index used for the T wave (2⁴).
        xi_qrs: Modulus fraction ending the QRS onset/end outward scan.
        xi_bound: Modulus fraction ending P/T boundary scans.
        gamma_qrs: Fraction of the window's modulus maximum above which a
            QRS maximum counts as significant.
        gamma_minor: Weaker threshold used to extend the onset/end anchors
            to the small Q/S lobes that ``gamma_qrs`` rejects (two-tier
            rule; without it the onset scan starts from the R lobe and
            lands inside the complex).
        anchor_reach_s: How far beyond the first/last significant maximum
            the minor-lobe extension may look.
        presence_factor: The weaker lobe of a P/T modulus pair must exceed
            this multiple of the *local* background (25th percentile of
            the modulus inside the search window) to count as present.
            The local statistic self-calibrates: in AF the fibrillatory
            waves fill the P window and raise the background, so the
            (absent) P wave is correctly rejected.
        qrs_half_window_s: Half-width of the QRS analysis window.
        p_window_s: (earliest, latest) bounds of the P search window,
            seconds before the R peak (earliest additionally stretches
            with the RR interval).
        t_window_s: (earliest, latest) bounds of the T search window,
            seconds after the R peak.
        refine_half_window_s: Half-width of the raw-signal peak refinement.
        integer_arithmetic: Compute the wavelet bank with the node's
            integer-only filter implementation (§IV-A); the tests verify
            the delineation quality is unchanged.
    """

    levels: int = 5
    qrs_scale: int = 1
    p_scale: int = 2
    t_scale: int = 3
    xi_qrs: float = 0.08
    xi_bound: float = 0.15
    gamma_qrs: float = 0.12
    gamma_minor: float = 0.035
    anchor_reach_s: float = 0.05
    presence_factor: float = 6.0
    qrs_half_window_s: float = 0.14
    p_window_s: tuple[float, float] = (0.32, 0.05)
    t_window_s: tuple[float, float] = (0.08, 0.62)
    refine_half_window_s: float = 0.04
    integer_arithmetic: bool = False


def _scan_boundary(w: np.ndarray, start: int, threshold: float,
                   step: int, limit: int,
                   stop_at_valley: bool = False) -> int:
    """Walk from ``start`` in ``step`` direction until |w| < threshold.

    With ``stop_at_valley`` the scan additionally stops at a local
    modulus minimum followed by a sustained rise — Martinez's "slope
    change" rule.  Without it, a wave that abuts the next complex (the
    P wave at high heart rates) keeps the modulus above the threshold and
    the scan overshoots into the neighbour.
    """
    n = w.shape[0]
    i = start
    valley = start
    rises = 0
    while 0 <= i < n and i != limit and abs(w[i]) >= threshold:
        if stop_at_valley:
            if abs(w[i]) <= abs(w[valley]):
                valley = i
                rises = 0
            else:
                rises += 1
                if rises >= 2 and valley != start:
                    return valley
        i += step
    return int(np.clip(i, 0, n - 1))


def _zero_crossing(w: np.ndarray, lo: int, hi: int) -> int:
    """First sign change of ``w`` in [lo, hi); midpoint fallback."""
    for i in range(lo, min(hi, w.shape[0] - 1)):
        if w[i] == 0.0 or (w[i] > 0) != (w[i + 1] > 0):
            return i
    return (lo + hi) // 2


def _clamp_p_end(p_wave: WaveFiducials, qrs: WaveFiducials) -> WaveFiducials:
    """Clamp the P end at the QRS onset.

    At high heart rates the P wave abuts the QRS and the outward decay
    scan would otherwise ride the Q lobe past the true boundary; the
    P wave ends before the QRS starts by definition.
    """
    if not (p_wave.present and qrs.present and qrs.onset >= 0):
        return p_wave
    if p_wave.end < qrs.onset:
        return p_wave
    return WaveFiducials(onset=p_wave.onset, peak=p_wave.peak,
                         end=max(p_wave.peak, qrs.onset - 1))


def robust_noise_level(w: np.ndarray) -> float:
    """Robust sigma of a wavelet band: ``1.4826 * median(|w|)``.

    The median absolute value is insensitive to the sparse large maxima
    created by the waves themselves, so it tracks the noise floor — and in
    AF it automatically rises with the fibrillatory activity, which is
    exactly the behaviour the P-presence test needs.
    """
    return 1.4826 * float(np.median(np.abs(w)))


class WaveletDelineator:
    """Quadratic-spline wavelet delineator.

    Args:
        fs: Sampling frequency in Hz.
        config: Tuning constants (defaults follow the references).
    """

    def __init__(self, fs: float,
                 config: WaveletDelineatorConfig | None = None) -> None:
        if fs <= 0:
            raise ValueError("sampling frequency must be positive")
        self.fs = fs
        self.config = config or WaveletDelineatorConfig()

    def transform(self, x: np.ndarray) -> np.ndarray:
        """The à-trous transform used by the delineator (levels x n)."""
        x = np.asarray(x, dtype=float)
        if self.config.integer_arithmetic:
            return atrous_swt_integer(x, levels=self.config.levels)
        return atrous_swt(x, levels=self.config.levels)

    def delineate(self, x: np.ndarray,
                  r_peaks: np.ndarray | None = None) -> list[BeatAnnotation]:
        """Delineate every beat of a single-lead waveform.

        Args:
            x: Input waveform (ideally conditioned; the wavelet transform
                itself suppresses baseline wander at the scales used).
            r_peaks: Known R-peak positions; when omitted the shared
                Pan-Tompkins detector runs first, as on the node.

        Returns:
            One :class:`BeatAnnotation` per beat with detected fiducials
            (absent waves are marked with :data:`ABSENT_WAVE`).
        """
        x = np.asarray(x, dtype=float)
        if r_peaks is None:
            r_peaks = RPeakDetector(self.fs).detect(x)
        r_peaks = np.asarray(r_peaks, dtype=int)
        if r_peaks.shape[0] == 0:
            return []
        w = self.transform(x)
        w_qrs = w[self.config.qrs_scale]
        w_p = w[self.config.p_scale]
        w_t = w[self.config.t_scale]
        # Boundary scans must not walk through the noise floor: a scan
        # threshold derived from a small anchor lobe can otherwise sit
        # below the noise and run away from the complex.
        qrs_noise_floor = robust_noise_level(w_qrs)
        annotations = []
        for idx, r in enumerate(r_peaks):
            rr_prev = (r - r_peaks[idx - 1]) / self.fs if idx > 0 else 0.8
            rr_next = ((r_peaks[idx + 1] - r) / self.fs
                       if idx + 1 < r_peaks.shape[0] else 0.8)
            qrs = self._delineate_qrs(w_qrs, int(r), qrs_noise_floor)
            t_wave = self._delineate_wave(
                x, w_t,
                lo=int(r + self.config.t_window_s[0] * self.fs),
                hi=int(r + min(self.config.t_window_s[1],
                               max(0.25, 0.72 * rr_next)) * self.fs),
            )
            p_earliest = self.config.p_window_s[0] * min(1.0, rr_prev / 0.8)
            p_wave = self._delineate_wave(
                x, w_p,
                lo=int(r - max(p_earliest, 0.14) * self.fs),
                hi=int(r - self.config.p_window_s[1] * self.fs),
            )
            p_wave = _clamp_p_end(p_wave, qrs)
            annotations.append(BeatAnnotation(
                r_peak=int(r), p_wave=p_wave, qrs=qrs, t_wave=t_wave))
        return annotations

    def delineate_record(self, record: EcgRecord,
                         use_annotated_r_peaks: bool = False,
                         ) -> list[BeatAnnotation]:
        """Delineate a record (optionally seeding with annotated R peaks)."""
        r_peaks = record.r_peaks if use_annotated_r_peaks else None
        return self.delineate(record.signal, r_peaks)

    def _delineate_qrs(self, w: np.ndarray, r: int,
                       noise_floor: float = 0.0) -> WaveFiducials:
        """QRS onset/end from the modulus-maxima cluster at scale 2^2."""
        half = int(self.config.qrs_half_window_s * self.fs)
        lo = max(0, r - half)
        hi = min(w.shape[0], r + half + 1)
        if hi - lo < 3:
            return ABSENT_WAVE
        window = np.abs(w[lo:hi])
        peak_mod = float(window.max())
        if peak_mod <= 0:
            return ABSENT_WAVE
        local_maxima = np.flatnonzero(
            (window >= np.roll(window, 1)) & (window >= np.roll(window, -1))
        )
        significant = local_maxima[
            window[local_maxima] >= self.config.gamma_qrs * peak_mod]
        if significant.shape[0] == 0:
            significant = np.array([int(np.argmax(window))])
        minor_floor = max(self.config.gamma_minor * peak_mod,
                          3.0 * noise_floor)
        minor = local_maxima[window[local_maxima] >= minor_floor]
        reach = int(self.config.anchor_reach_s * self.fs)
        # Two-tier anchoring: extend outward onto the small Q/S lobes.
        # Single hop only — measuring the reach from the extended anchor
        # would chain through noise lobes into the neighbouring P/T waves.
        first = int(significant[0])
        left_candidates = minor[(minor < first) & (first - minor <= reach)]
        if left_candidates.shape[0]:
            first = int(left_candidates[0])
        last = int(significant[-1])
        right_candidates = minor[(minor > last) & (minor - last <= reach)]
        if right_candidates.shape[0]:
            last = int(right_candidates[-1])
        first += lo
        last += lo
        onset = _scan_boundary(
            w, first,
            max(self.config.xi_qrs * abs(w[first]), noise_floor),
            step=-1, limit=max(0, first - half))
        end = _scan_boundary(
            w, last,
            max(self.config.xi_qrs * abs(w[last]), noise_floor),
            step=+1, limit=min(w.shape[0] - 1, last + half))
        return WaveFiducials(onset=onset, peak=r, end=end)

    def _delineate_wave(self, x: np.ndarray, w: np.ndarray,
                        lo: int, hi: int) -> WaveFiducials:
        """Locate a monophasic wave (P or T) inside [lo, hi)."""
        lo = max(0, lo)
        hi = min(w.shape[0], hi)
        if hi - lo < 5:
            return ABSENT_WAVE
        segment = w[lo:hi]
        pos_idx = int(np.argmax(segment))
        neg_idx = int(np.argmin(segment))
        # A real monophasic wave yields a *balanced* modulus pair, so the
        # presence statistic is the weaker lobe versus the local background.
        pair_strength = float(min(segment[pos_idx], -segment[neg_idx]))
        background = float(np.percentile(np.abs(segment), 25))
        floor = max(background, 1e-4)
        if pair_strength < self.config.presence_factor * floor:
            return ABSENT_WAVE
        first, second = sorted((pos_idx, neg_idx))
        if first == second:
            return ABSENT_WAVE
        # Positive lobe first means a rising edge first: an upward wave.
        upward = pos_idx < neg_idx
        # Peak: zero crossing between the lobes, refined on the waveform.
        crossing = _zero_crossing(w, lo + first, lo + second)
        peak = self._refine_peak(x, crossing, upward)
        scan_span = max(8, second - first)
        onset = _scan_boundary(
            w, lo + first, self.config.xi_bound * abs(segment[first]),
            step=-1, limit=max(0, lo + first - 2 * scan_span),
            stop_at_valley=True)
        end = _scan_boundary(
            w, lo + second, self.config.xi_bound * abs(segment[second]),
            step=+1, limit=min(w.shape[0] - 1, lo + second + 2 * scan_span),
            stop_at_valley=True)
        return WaveFiducials(onset=onset, peak=peak, end=end)

    def _refine_peak(self, x: np.ndarray, around: int, upward: bool) -> int:
        """Snap a peak mark to the local waveform extremum.

        The search is *signed* (max for upward waves, min for downward):
        an unsigned ``argmax(|x - median|)`` ties between the peak and the
        window edges for a symmetric bump and is swayed by noise.
        """
        half = int(self.config.refine_half_window_s * self.fs)
        lo = max(0, around - half)
        hi = min(x.shape[0], around + half + 1)
        window = x[lo:hi]
        if window.shape[0] == 0:
            return around
        return lo + int(np.argmax(window) if upward else np.argmin(window))
