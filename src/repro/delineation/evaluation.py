"""Delineation accuracy evaluation (paper §V in-text results, exp T1).

The paper reports "measured sensitivity and specificity of retrieved
fiducial points ... above 90 % in all cases".  Following the delineation
literature the harness scores, per fiducial type:

* **Sensitivity** Se = TP / (TP + FN) — a ground-truth fiducial counts as
  found when a detected mark of the same type lies within the tolerance.
* **Positive predictivity** PPV = TP / (TP + FP) — detected marks with no
  ground-truth partner are false positives.

For wave *presence* decisions (the P wave may legitimately be absent, e.g.
in AF) the harness also computes presence sensitivity/specificity, which is
what the AF detector consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..signals.types import BeatAnnotation, WAVE_NAMES

#: Matching window for pairing detected beats with ground-truth beats.
BEAT_MATCH_TOLERANCE_S = 0.15

#: Default per-fiducial tolerances in seconds, CSE-style: boundary marks of
#: slow waves get wider windows than sharp peaks.
DEFAULT_TOLERANCES_S = {
    ("QRS", "peak"): 0.040,
    ("QRS", "onset"): 0.020,
    ("QRS", "end"): 0.020,
    ("P", "peak"): 0.024,
    ("P", "onset"): 0.028,
    ("P", "end"): 0.028,
    ("T", "peak"): 0.036,
    ("T", "onset"): 0.048,
    ("T", "end"): 0.048,
}


@dataclass
class FiducialScore:
    """Counts and errors for one fiducial type."""

    true_positive: int = 0
    false_negative: int = 0
    false_positive: int = 0
    errors_s: list[float] = field(default_factory=list)

    @property
    def sensitivity(self) -> float:
        """Se = TP / (TP + FN); 1.0 when nothing was expected."""
        total = self.true_positive + self.false_negative
        return self.true_positive / total if total else 1.0

    @property
    def ppv(self) -> float:
        """PPV = TP / (TP + FP); 1.0 when nothing was detected."""
        total = self.true_positive + self.false_positive
        return self.true_positive / total if total else 1.0

    @property
    def mean_error_s(self) -> float:
        """Mean signed timing error (bias) in seconds."""
        return float(np.mean(self.errors_s)) if self.errors_s else 0.0

    @property
    def std_error_s(self) -> float:
        """Standard deviation of timing error in seconds."""
        return float(np.std(self.errors_s)) if self.errors_s else 0.0


@dataclass
class PresenceScore:
    """Wave presence/absence confusion counts (P-wave in AF, etc.)."""

    true_present: int = 0
    false_absent: int = 0
    true_absent: int = 0
    false_present: int = 0

    @property
    def sensitivity(self) -> float:
        """Fraction of truly present waves that were detected."""
        total = self.true_present + self.false_absent
        return self.true_present / total if total else 1.0

    @property
    def specificity(self) -> float:
        """Fraction of truly absent waves correctly marked absent."""
        total = self.true_absent + self.false_present
        return self.true_absent / total if total else 1.0


@dataclass
class DelineationReport:
    """Full evaluation output of :func:`evaluate_delineation`."""

    fs: float
    fiducials: dict[tuple[str, str], FiducialScore]
    presence: dict[str, PresenceScore]
    matched_beats: int = 0
    missed_beats: int = 0
    spurious_beats: int = 0

    @property
    def beat_sensitivity(self) -> float:
        """Beat-detection sensitivity (QRS detection level)."""
        total = self.matched_beats + self.missed_beats
        return self.matched_beats / total if total else 1.0

    @property
    def beat_ppv(self) -> float:
        """Beat-detection positive predictivity."""
        total = self.matched_beats + self.spurious_beats
        return self.matched_beats / total if total else 1.0

    def worst_sensitivity(self) -> float:
        """Lowest Se across all fiducial types (the paper's ">90 %" gate)."""
        return min(score.sensitivity for score in self.fiducials.values())

    def worst_ppv(self) -> float:
        """Lowest PPV across all fiducial types."""
        return min(score.ppv for score in self.fiducials.values())

    def rows(self) -> list[tuple[str, str, float, float, float, float]]:
        """Report rows: (wave, mark, Se, PPV, bias ms, std ms)."""
        out = []
        for (wave, mark), score in sorted(self.fiducials.items()):
            out.append((wave, mark, score.sensitivity, score.ppv,
                        1e3 * score.mean_error_s, 1e3 * score.std_error_s))
        return out


def _match_beats(truth: list[BeatAnnotation], detected: list[BeatAnnotation],
                 fs: float) -> list[tuple[BeatAnnotation, BeatAnnotation | None]]:
    """Greedy one-to-one pairing of detected beats to ground truth."""
    window = int(BEAT_MATCH_TOLERANCE_S * fs)
    detected_peaks = np.array([b.r_peak for b in detected], dtype=int)
    used: set[int] = set()
    pairs: list[tuple[BeatAnnotation, BeatAnnotation | None]] = []
    for truth_beat in truth:
        best = None
        best_dist = window + 1
        for j, peak in enumerate(detected_peaks):
            if j in used:
                continue
            dist = abs(int(peak) - truth_beat.r_peak)
            if dist <= window and dist < best_dist:
                best, best_dist = j, dist
        if best is None:
            pairs.append((truth_beat, None))
        else:
            used.add(best)
            pairs.append((truth_beat, detected[best]))
    return pairs


def evaluate_delineation(truth: list[BeatAnnotation],
                         detected: list[BeatAnnotation], fs: float,
                         tolerances_s: dict[tuple[str, str], float] | None = None,
                         ) -> DelineationReport:
    """Score detected fiducials against ground truth.

    Args:
        truth: Ground-truth annotations (from the synthesizer).
        detected: Delineator output.
        fs: Sampling frequency (converts tolerances to samples).
        tolerances_s: Per-(wave, mark) tolerance overrides.

    Returns:
        A :class:`DelineationReport`.
    """
    tolerances = dict(DEFAULT_TOLERANCES_S)
    if tolerances_s:
        tolerances.update(tolerances_s)
    fiducials: dict[tuple[str, str], FiducialScore] = {
        key: FiducialScore() for key in tolerances
    }
    presence = {wave: PresenceScore() for wave in WAVE_NAMES}
    pairs = _match_beats(truth, detected, fs)
    matched = sum(1 for _, det in pairs if det is not None)
    missed = len(pairs) - matched
    spurious = len(detected) - matched

    for truth_beat, det_beat in pairs:
        for wave in WAVE_NAMES:
            truth_wave = truth_beat.wave(wave)
            det_wave = det_beat.wave(wave) if det_beat is not None else None
            pres = presence[wave]
            det_present = det_wave is not None and det_wave.present
            if truth_wave.present and det_present:
                pres.true_present += 1
            elif truth_wave.present and not det_present:
                pres.false_absent += 1
            elif not truth_wave.present and det_present:
                pres.false_present += 1
            else:
                pres.true_absent += 1
            for mark in ("onset", "peak", "end"):
                key = (wave, mark)
                if key not in fiducials:
                    continue
                score = fiducials[key]
                truth_pos = getattr(truth_wave, mark)
                det_pos = getattr(det_wave, mark) if det_present else -1
                if truth_wave.present:
                    if det_pos >= 0:
                        error = (det_pos - truth_pos) / fs
                        if abs(error) <= tolerances[key]:
                            score.true_positive += 1
                            score.errors_s.append(error)
                        else:
                            # Out-of-tolerance marks count on both sides,
                            # as in the CSE evaluation protocol.
                            score.false_negative += 1
                            score.false_positive += 1
                    else:
                        score.false_negative += 1
                elif det_pos >= 0:
                    score.false_positive += 1

    # Spurious beats contribute false-positive fiducials for every wave
    # they claim to have found.
    matched_detected = {id(det) for _, det in pairs if det is not None}
    for det_beat in detected:
        if id(det_beat) in matched_detected:
            continue
        for wave in WAVE_NAMES:
            det_wave = det_beat.wave(wave)
            if not det_wave.present:
                continue
            for mark in ("onset", "peak", "end"):
                key = (wave, mark)
                if key in fiducials:
                    fiducials[key].false_positive += 1

    return DelineationReport(fs=fs, fiducials=fiducials, presence=presence,
                             matched_beats=matched, missed_beats=missed,
                             spurious_beats=spurious)
