"""Embedded classification: random projections, fuzzy rules, AF detection."""

from .afib import (
    AF_LABEL,
    AfDetector,
    AfWindow,
    FEATURE_NAMES,
    NON_AF_LABEL,
    rr_irregularity_features,
    window_features,
)
from .evaluation import ClassificationReport, evaluate_classification
from .gaussian import (
    PWL_KNOTS,
    PWL_VALUES,
    gaussian_membership,
    membership_ops,
    pwl_max_error,
    pwl_membership,
)
from .heartbeat import (
    HeartbeatClassifier,
    corpus_beat_dataset,
    train_test_split,
)
from .neurofuzzy import FuzzyRule, NeuroFuzzyClassifier
from .projections import ProjectionCost, RandomProjector

__all__ = [
    "AF_LABEL",
    "AfDetector",
    "AfWindow",
    "ClassificationReport",
    "FEATURE_NAMES",
    "FuzzyRule",
    "HeartbeatClassifier",
    "NON_AF_LABEL",
    "NeuroFuzzyClassifier",
    "PWL_KNOTS",
    "PWL_VALUES",
    "ProjectionCost",
    "RandomProjector",
    "corpus_beat_dataset",
    "evaluate_classification",
    "gaussian_membership",
    "membership_ops",
    "pwl_max_error",
    "pwl_membership",
    "rr_irregularity_features",
    "train_test_split",
    "window_features",
]
