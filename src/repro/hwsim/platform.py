"""Cycle-level simulator of the multi-core WBSN platform (Fig. 3, [18]).

The platform couples N simple cores to multi-bank instruction and data
memories.  The model reproduces the architecture's energy-relevant
behaviour:

* **Lock-step SIMD fetch with broadcast** — per cycle, each bank of the
  instruction memory can service one *address*; when several cores fetch
  the same address, the broadcast interconnect merges them into a single
  access (one I-mem energy event).  Cores whose address loses the bank
  arbitration stall for the cycle — the "program memory conflicts, and
  therefore unnecessary stalls" the paper's mapping methodology avoids.
* **Private + shared data banks** — each core owns a private data bank;
  addresses at/above :data:`SHARED_BASE` live in a single shared bank used
  for producer-consumer exchange.  Same-cycle shared accesses beyond the
  first are charged one serialization cycle each.
* **Hardware barriers** — ``BAR`` parks a core until every running core
  arrives, re-aligning program counters after data-dependent branches so
  broadcast merging resumes (the §IV-B software technique).

The simulator also checks functional correctness: kernels leave their
results in data memory, and the tests compare them against NumPy
references.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .isa import Instruction, Op

#: Data addresses at or above this value map to the shared bank.
SHARED_BASE = 1 << 16

#: Default private/shared data bank sizes (words).
PRIVATE_WORDS = 1 << 16
SHARED_WORDS = 1 << 12


@dataclass
class EventCounters:
    """Architecture events accumulated during a run.

    Attributes map one-to-one onto the energy model's event classes.
    """

    cycles: int = 0
    alu_instructions: int = 0
    mul_instructions: int = 0
    memory_instructions: int = 0
    branch_instructions: int = 0
    imem_accesses: int = 0
    imem_broadcast_merges: int = 0
    imem_conflict_stalls: int = 0
    dmem_private_accesses: int = 0
    dmem_shared_accesses: int = 0
    dmem_serialization_cycles: int = 0
    barrier_wait_cycles: int = 0

    @property
    def total_instructions(self) -> int:
        """All executed instructions."""
        return (self.alu_instructions + self.mul_instructions
                + self.memory_instructions + self.branch_instructions)


@dataclass
class _CoreState:
    """Mutable per-core execution state."""

    core_id: int
    regs: list[int] = field(default_factory=lambda: [0] * 16)
    pc: int = 0
    halted: bool = False
    at_barrier: bool = False


@dataclass
class RunResult:
    """Outcome of one simulation.

    Attributes:
        counters: Event counts for the energy model.
        private_memories: Final private data bank per core.
        shared_memory: Final shared bank contents.
        per_core_instructions: Instructions executed by each core (load
            balance diagnostics; the paper notes fine-tuned balance is not
            required for energy efficiency).
    """

    counters: EventCounters
    private_memories: list[np.ndarray]
    shared_memory: np.ndarray
    per_core_instructions: list[int]


class Platform:
    """The multi-core (or single-core) WBSN processing platform.

    Args:
        n_cores: Number of cores (1 reproduces the paper's SC baseline).
        imem_banks: Instruction-memory banks (word-interleaved).
        broadcast: Enable the fetch-merging broadcast interconnect.
        max_cycles: Safety bound on simulated cycles.
    """

    def __init__(self, n_cores: int = 3, imem_banks: int = 4,
                 broadcast: bool = True, max_cycles: int = 20_000_000) -> None:
        if n_cores < 1:
            raise ValueError("need at least one core")
        if imem_banks < 1:
            raise ValueError("need at least one instruction bank")
        self.n_cores = n_cores
        self.imem_banks = imem_banks
        self.broadcast = broadcast
        self.max_cycles = max_cycles

    def run(self, program: list[Instruction],
            private_init: list[dict[int, int] | np.ndarray] | None = None,
            shared_init: dict[int, int] | None = None) -> RunResult:
        """Execute ``program`` on every core until all halt.

        Args:
            program: The (shared) instruction stream.
            private_init: Per-core initial private-bank contents, either a
                word array or an {address: value} dict.
            shared_init: Initial shared-bank contents.

        Returns:
            A :class:`RunResult`.

        Raises:
            RuntimeError: If the run exceeds ``max_cycles`` (livelock
                guard) or a core accesses memory out of range.
        """
        code = program
        n_instr = len(code)
        cores = [_CoreState(core_id=i) for i in range(self.n_cores)]
        private = [self._init_bank(PRIVATE_WORDS, init)
                   for init in (private_init or [None] * self.n_cores)]
        while len(private) < self.n_cores:
            private.append(np.zeros(PRIVATE_WORDS, dtype=np.int64))
        shared = self._init_bank(SHARED_WORDS, shared_init)
        counters = EventCounters()
        per_core_instr = [0] * self.n_cores

        while True:
            active = [c for c in cores if not c.halted]
            if not active:
                break
            if counters.cycles >= self.max_cycles:
                raise RuntimeError(
                    f"exceeded {self.max_cycles} cycles; livelock?")
            counters.cycles += 1

            # Barrier release: every running core parked at a barrier.
            waiting = [c for c in active if c.at_barrier]
            if waiting and len(waiting) == len(active):
                for c in waiting:
                    c.at_barrier = False
                    c.pc += 1
                continue
            counters.barrier_wait_cycles += len(waiting)

            fetchers = [c for c in active if not c.at_barrier]
            if not fetchers:
                continue

            # Instruction-fetch arbitration per bank.
            by_pc: dict[int, list[_CoreState]] = {}
            for c in fetchers:
                by_pc.setdefault(c.pc, []).append(c)
            by_bank: dict[int, list[int]] = {}
            for pc in by_pc:
                by_bank.setdefault(pc % self.imem_banks, []).append(pc)
            executing: list[_CoreState] = []
            for bank_pcs in by_bank.values():
                bank_pcs.sort()
                winner = bank_pcs[0]
                losers = bank_pcs[1:]
                winner_cores = by_pc[winner]
                if self.broadcast:
                    counters.imem_accesses += 1
                    counters.imem_broadcast_merges += len(winner_cores) - 1
                    executing.extend(winner_cores)
                else:
                    # Without broadcast each access is sequential: only
                    # one core per bank proceeds per cycle.
                    counters.imem_accesses += 1
                    executing.append(winner_cores[0])
                    counters.imem_conflict_stalls += len(winner_cores) - 1
                for pc in losers:
                    counters.imem_conflict_stalls += len(by_pc[pc])

            shared_accesses_this_cycle = 0
            for core in executing:
                if core.pc >= n_instr:
                    core.halted = True
                    continue
                instr = code[core.pc]
                per_core_instr[core.core_id] += 1
                shared_accesses_this_cycle += self._execute(
                    core, instr, private[core.core_id], shared, counters)
            if shared_accesses_this_cycle > 1:
                counters.dmem_serialization_cycles += (
                    shared_accesses_this_cycle - 1)

        return RunResult(counters=counters, private_memories=private,
                         shared_memory=shared,
                         per_core_instructions=per_core_instr)

    @staticmethod
    def _init_bank(size: int,
                   init: dict[int, int] | np.ndarray | None) -> np.ndarray:
        bank = np.zeros(size, dtype=np.int64)
        if init is None:
            return bank
        if isinstance(init, dict):
            for address, value in init.items():
                bank[address] = value
            return bank
        data = np.asarray(init, dtype=np.int64)
        bank[:data.shape[0]] = data
        return bank

    def _execute(self, core: _CoreState, instr: Instruction,
                 private: np.ndarray, shared: np.ndarray,
                 counters: EventCounters) -> int:
        """Execute one instruction; returns 1 if it touched shared memory."""
        op = instr.op
        regs = core.regs
        shared_touch = 0
        next_pc = core.pc + 1
        if op == Op.NOP:
            counters.alu_instructions += 1
        elif op == Op.LDI:
            regs[instr.rd] = instr.imm
            counters.alu_instructions += 1
        elif op == Op.MOV:
            regs[instr.rd] = regs[instr.rs1]
            counters.alu_instructions += 1
        elif op == Op.ADD:
            regs[instr.rd] = regs[instr.rs1] + regs[instr.rs2]
            counters.alu_instructions += 1
        elif op == Op.SUB:
            regs[instr.rd] = regs[instr.rs1] - regs[instr.rs2]
            counters.alu_instructions += 1
        elif op == Op.ADDI:
            regs[instr.rd] = regs[instr.rs1] + instr.imm
            counters.alu_instructions += 1
        elif op == Op.MUL:
            regs[instr.rd] = regs[instr.rs1] * regs[instr.rs2]
            counters.mul_instructions += 1
        elif op == Op.MIN:
            regs[instr.rd] = min(regs[instr.rs1], regs[instr.rs2])
            counters.alu_instructions += 1
        elif op == Op.MAX:
            regs[instr.rd] = max(regs[instr.rs1], regs[instr.rs2])
            counters.alu_instructions += 1
        elif op == Op.ABS:
            regs[instr.rd] = abs(regs[instr.rs1])
            counters.alu_instructions += 1
        elif op == Op.SHL:
            regs[instr.rd] = regs[instr.rs1] << instr.imm
            counters.alu_instructions += 1
        elif op == Op.SHR:
            regs[instr.rd] = regs[instr.rs1] >> instr.imm
            counters.alu_instructions += 1
        elif op == Op.LD:
            address = regs[instr.rs1] + instr.imm
            if address >= SHARED_BASE:
                regs[instr.rd] = int(shared[address - SHARED_BASE])
                counters.dmem_shared_accesses += 1
                shared_touch = 1
            else:
                regs[instr.rd] = int(private[address])
                counters.dmem_private_accesses += 1
            counters.memory_instructions += 1
        elif op == Op.ST:
            address = regs[instr.rs1] + instr.imm
            if address >= SHARED_BASE:
                shared[address - SHARED_BASE] = regs[instr.rs2]
                counters.dmem_shared_accesses += 1
                shared_touch = 1
            else:
                private[address] = regs[instr.rs2]
                counters.dmem_private_accesses += 1
            counters.memory_instructions += 1
        elif op == Op.BEQ:
            if regs[instr.rs1] == regs[instr.rs2]:
                next_pc = instr.imm
            counters.branch_instructions += 1
        elif op == Op.BNE:
            if regs[instr.rs1] != regs[instr.rs2]:
                next_pc = instr.imm
            counters.branch_instructions += 1
        elif op == Op.BLT:
            if regs[instr.rs1] < regs[instr.rs2]:
                next_pc = instr.imm
            counters.branch_instructions += 1
        elif op == Op.BGE:
            if regs[instr.rs1] >= regs[instr.rs2]:
                next_pc = instr.imm
            counters.branch_instructions += 1
        elif op == Op.JMP:
            next_pc = instr.imm
            counters.branch_instructions += 1
        elif op == Op.CSA:
            # Accelerator extension: indirect load through the index
            # table, accumulate into rd, post-increment the pointer.
            # Both accesses hit the private bank (the accelerator's
            # local buffers), charged as two D-mem accesses in 1 cycle.
            pointer = regs[instr.rs1]
            index = int(private[pointer])
            regs[instr.rd] += int(private[index])
            regs[instr.rs1] = pointer + 1
            counters.dmem_private_accesses += 2
            counters.memory_instructions += 1
        elif op == Op.BAR:
            counters.alu_instructions += 1
            if self.n_cores == 1:
                pass  # single core: barrier is a no-op
            else:
                core.at_barrier = True
                return shared_touch  # pc advances on release
        elif op == Op.CID:
            regs[instr.rd] = core.core_id
            counters.alu_instructions += 1
        elif op == Op.HALT:
            core.halted = True
            counters.alu_instructions += 1
            return shared_touch
        else:  # pragma: no cover - exhaustive over Op
            raise RuntimeError(f"unknown opcode {op}")
        core.pc = next_pc
        return shared_touch
