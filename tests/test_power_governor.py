"""Unit tests for the closed-loop EnergyGovernor (`repro.power.governor`)."""

import pytest

from repro.power import (
    ACUITY_ALERT,
    ACUITY_OK,
    ACUITY_WATCH,
    Battery,
    BatteryModel,
    EnergyGovernor,
    GovernorConfig,
    MODE_EVENTS_ONLY,
    MODE_MULTI_LEAD_CS,
    MODE_RAW,
    MODE_SINGLE_LEAD_CS,
    MODES,
    ModePowerTable,
    best_admissible_static,
    compare_policies,
    mixed_acuity_trace,
    mode_fidelity,
    simulate_lifetime,
)

TABLE = ModePowerTable()  # shared: construction builds CS matrices


def make_governor(soc: float = 1.0, mode: str = MODE_MULTI_LEAD_CS,
                  **config) -> EnergyGovernor:
    return EnergyGovernor(
        config=GovernorConfig(**config),
        table=TABLE,
        battery=BatteryModel(cell=Battery(capacity_mah=0.05), soc=soc),
        mode=mode,
    )


class TestModePowerTable:
    def test_power_strictly_ordered_by_fidelity(self):
        powers = [TABLE.power_w(mode) for mode in MODES]
        assert powers[0] > powers[1] > powers[2] > powers[3]

    def test_every_mode_pays_the_standing_costs(self):
        common = TABLE.common_power_w()
        for mode in MODES:
            assert TABLE.power_w(mode) > common

    def test_raw_payload_rate_is_all_leads_all_bits(self):
        node = TABLE.node
        assert TABLE.payload_bits_per_s(MODE_RAW) == pytest.approx(
            node.n_leads * node.sample_bits * node.fs)

    def test_events_only_carries_no_compression_cost(self):
        assert TABLE.compression_power_w(MODE_EVENTS_ONLY) == 0.0
        assert TABLE.compression_power_w(MODE_RAW) == 0.0
        assert (TABLE.compression_power_w(MODE_MULTI_LEAD_CS)
                > TABLE.compression_power_w(MODE_SINGLE_LEAD_CS) > 0.0)

    def test_table_lists_every_mode(self):
        assert set(TABLE.table()) == set(MODES)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            TABLE.power_w("turbo")
        with pytest.raises(ValueError, match="unknown mode"):
            mode_fidelity("turbo")


class TestGovernorConfig:
    def test_floors_must_cover_all_modes(self):
        with pytest.raises(ValueError, match="cover exactly"):
            GovernorConfig(soc_floors={MODE_RAW: 0.5})

    def test_floors_must_be_monotone(self):
        floors = {MODE_RAW: 0.2, MODE_MULTI_LEAD_CS: 0.5,
                  MODE_SINGLE_LEAD_CS: 0.1, MODE_EVENTS_ONLY: 0.0}
        with pytest.raises(ValueError, match="non-increasing"):
            GovernorConfig(soc_floors=floors)

    def test_lowest_mode_floor_must_be_zero(self):
        floors = {MODE_RAW: 0.7, MODE_MULTI_LEAD_CS: 0.5,
                  MODE_SINGLE_LEAD_CS: 0.3, MODE_EVENTS_ONLY: 0.1}
        with pytest.raises(ValueError, match="must be 0"):
            GovernorConfig(soc_floors=floors)

    def test_unknown_acuity_falls_back_to_no_constraint(self):
        config = GovernorConfig()
        assert config.acuity_floor_index("???") == mode_fidelity(
            MODE_EVENTS_ONLY)


class TestDecide:
    def test_full_battery_affords_raw(self):
        governor = make_governor(soc=1.0)
        mode, reason = governor.decide(1000.0, ACUITY_OK)
        assert mode == MODE_RAW and reason == "budget"

    def test_low_battery_coasts_on_events(self):
        governor = make_governor(soc=0.1, mode=MODE_SINGLE_LEAD_CS)
        mode, _ = governor.decide(1000.0, ACUITY_OK)
        assert mode == MODE_EVENTS_ONLY

    def test_alert_floor_wins_over_budget(self):
        governor = make_governor(soc=0.1, mode=MODE_EVENTS_ONLY)
        mode, reason = governor.decide(0.0, ACUITY_ALERT)
        assert mode == MODE_MULTI_LEAD_CS and reason == "acuity-floor"

    def test_watch_floor_is_single_lead(self):
        governor = make_governor(soc=0.1, mode=MODE_EVENTS_ONLY)
        mode, _ = governor.decide(0.0, ACUITY_WATCH)
        assert mode == MODE_SINGLE_LEAD_CS

    def test_empty_battery_forces_events_only_even_on_alert(self):
        governor = make_governor(soc=0.0, mode=MODE_MULTI_LEAD_CS)
        mode, reason = governor.decide(0.0, ACUITY_ALERT)
        assert mode == MODE_EVENTS_ONLY and reason == "battery-empty"

    def test_upgrade_needs_hysteresis_headroom(self):
        # SoC sits exactly on the raw floor: entering raw also needs
        # the hysteresis margin, so the governor holds multi-lead.
        governor = make_governor(soc=0.70, hysteresis_soc=0.05)
        mode, reason = governor.decide(1000.0, ACUITY_OK)
        assert mode == MODE_MULTI_LEAD_CS and reason == "hold"
        # With the margin cleared, the upgrade goes through.
        governor.battery.soc = 0.76
        mode, _ = governor.decide(1000.0, ACUITY_OK)
        assert mode == MODE_RAW

    def test_dwell_damps_budget_switches_but_not_alerts(self):
        governor = make_governor(soc=1.0, min_dwell_s=300.0,
                                 mode=MODE_MULTI_LEAD_CS)
        mode, reason = governor.decide(10.0, ACUITY_OK)
        assert mode == MODE_MULTI_LEAD_CS and reason == "dwell"
        # A deteriorating patient bypasses the dwell; with a full
        # battery the upgrade goes all the way to the budget target.
        governor.mode = MODE_EVENTS_ONLY
        mode, reason = governor.decide(10.0, ACUITY_ALERT)
        assert mode == MODE_RAW and reason == "acuity-floor"


class TestStep:
    def test_step_drains_battery_and_records(self):
        governor = make_governor(soc=0.5)
        before = governor.battery.soc
        decision = governor.step(60.0, ACUITY_OK)
        assert governor.battery.soc < before
        assert decision.soc == governor.battery.soc
        assert decision.power_w > 0
        assert governor.mode_seconds[decision.mode] == 60.0
        assert governor.decisions == [decision]

    def test_extra_load_accelerates_drain(self):
        plain = make_governor(soc=0.5)
        loaded = make_governor(soc=0.5)
        plain.step(60.0, ACUITY_OK)
        loaded.step(60.0, ACUITY_OK, extra_load_w=0.01)
        assert loaded.battery.soc < plain.battery.soc

    def test_drained_governor_walks_down_the_ladder(self):
        governor = make_governor(soc=0.95, mode=MODE_RAW,
                                 min_dwell_s=0.0)
        modes = [governor.step(60.0, ACUITY_OK).mode
                 for _ in range(60)]
        seen = [m for i, m in enumerate(modes)
                if i == 0 or m != modes[i - 1]]
        # Monotone descent: raw -> multi -> single -> events, no thrash.
        assert seen == [MODE_RAW, MODE_MULTI_LEAD_CS,
                        MODE_SINGLE_LEAD_CS, MODE_EVENTS_ONLY]
        assert governor.n_switches == 3

    def test_invalid_step_arguments_rejected(self):
        governor = make_governor()
        with pytest.raises(ValueError, match="dt"):
            governor.step(0.0)
        with pytest.raises(ValueError, match="extra load"):
            governor.step(1.0, extra_load_w=-1.0)


class TestLifetime:
    def test_governor_meets_or_beats_best_admissible_static(self):
        results = compare_policies(mixed_acuity_trace(0), table=TABLE,
                                   step_s=1800.0,
                                   horizon_s=45 * 86400.0)
        best = best_admissible_static(results)
        assert results["governor"].hours >= results[best].hours
        assert results["governor"].acuity_violation_hours == 0.0

    def test_static_low_modes_violate_mixed_acuity(self):
        result = simulate_lifetime(MODE_EVENTS_ONLY,
                                   mixed_acuity_trace(1), table=TABLE,
                                   step_s=3600.0,
                                   horizon_s=2 * 86400.0)
        assert result.acuity_violation_hours > 0.0

    def test_trace_is_deterministic_and_mixed(self):
        trace = mixed_acuity_trace(2)
        values = [trace(t * 600.0) for t in range(144)]
        assert values == [trace(t * 600.0) for t in range(144)]
        assert {ACUITY_ALERT, ACUITY_WATCH, ACUITY_OK} <= set(values)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            simulate_lifetime("nope", mixed_acuity_trace(0), table=TABLE)


class TestExtraLoadValidation:
    """`battery_drain` injection must fail loudly on corrupt watts."""

    def test_nan_extra_load_rejected(self):
        governor = EnergyGovernor()
        with pytest.raises(ValueError, match="extra load"):
            governor.step(60.0, extra_load_w=float("nan"))
        assert governor.battery.soc == 1.0  # battery untouched

    def test_infinite_extra_load_rejected(self):
        with pytest.raises(ValueError, match="extra load"):
            EnergyGovernor().step(60.0, extra_load_w=float("inf"))

    def test_negative_extra_load_rejected(self):
        with pytest.raises(ValueError, match="extra load"):
            EnergyGovernor().step(60.0, extra_load_w=-1e-3)
