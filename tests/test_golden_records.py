"""Golden-record regression harness for delineation and AF detection.

Committed checksums (``tests/golden/golden_records.json``) pin the exact
behavior of the detection chain on fixed-seed synthetic records: the
full fiducial table of the wavelet delineator and the per-window
verdicts of the trained AF detector.  Any change to synthesis,
conditioning, delineation or classification that moves a single sample
index or flips one window shows up as a digest mismatch here — catching
silent behavioral drift that threshold-style tests let through.

Regenerate after an *intentional* behavior change with::

    PYTHONPATH=src python tests/test_golden_records.py --regenerate

and review the diff of the JSON like any other code change.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path

import pytest

from repro.delineation import RPeakDetector, WaveletDelineator
from repro.signals import RecordSpec, make_record

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_records.json"

#: The pinned records: name -> spec.  Seeds are arbitrary but frozen.
GOLDEN_SPECS = {
    "nsr-golden": RecordSpec(name="nsr-golden", duration_s=30.0,
                             snr_db=20.0, seed=101),
    "af-golden": RecordSpec(name="af-golden", duration_s=30.0,
                            rhythm="af", snr_db=18.0, seed=202),
    "pxaf-golden": RecordSpec(name="pxaf-golden", duration_s=60.0,
                              rhythm="paroxysmal_af", af_burden=0.5,
                              snr_db=18.0, seed=303),
    "ectopy-golden": RecordSpec(name="ectopy-golden", duration_s=30.0,
                                pvc_fraction=0.10, apc_fraction=0.08,
                                snr_db=20.0, seed=404),
}

DELINEATION_LEAD = 1  # lead II, the repo-wide delineation convention


def _digest(parts) -> str:
    """crc32 (hex) over a comma-joined stringification — platform
    stable, and small enough to eyeball in a diff."""
    joined = ",".join(str(p) for p in parts)
    return f"{zlib.crc32(joined.encode()) & 0xFFFFFFFF:08x}"


def delineation_fingerprint(name: str) -> dict:
    """Fiducial table digest of one golden record."""
    ecg = make_record(GOLDEN_SPECS[name]).lead(DELINEATION_LEAD)
    peaks = RPeakDetector(ecg.fs).detect(ecg.signal)
    beats = WaveletDelineator(ecg.fs).delineate(ecg.signal, peaks)
    cells = []
    for beat in beats:
        cells.extend([beat.r_peak,
                      beat.p_wave.onset, beat.p_wave.peak,
                      beat.p_wave.end,
                      beat.qrs.onset, beat.qrs.peak, beat.qrs.end,
                      beat.t_wave.onset, beat.t_wave.peak,
                      beat.t_wave.end])
    return {
        "n_beats": len(beats),
        "first_r_peak": beats[0].r_peak if beats else -1,
        "last_r_peak": beats[-1].r_peak if beats else -1,
        "fiducial_digest": _digest(cells),
    }


def af_fingerprint(name: str, detector) -> dict:
    """Per-window AF verdict digest of one golden record."""
    record = make_record(GOLDEN_SPECS[name])
    windows, labels = detector.predict_record(record)
    labels = list(labels)
    return {
        "n_windows": len(windows),
        "n_af_windows": sum(1 for label in labels if label == "AF"),
        "verdict_digest": _digest(labels),
    }


def compute_golden(detector) -> dict:
    """The full golden table (what the committed JSON holds)."""
    return {
        name: {
            "delineation": delineation_fingerprint(name),
            "af": af_fingerprint(name, detector),
        }
        for name in sorted(GOLDEN_SPECS)
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    if not GOLDEN_PATH.exists():  # pragma: no cover - repo invariant
        pytest.fail(f"golden fixture missing: {GOLDEN_PATH}; "
                    "regenerate with --regenerate (see module docstring)")
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenRecords:
    def test_every_golden_record_pinned(self, golden):
        assert sorted(golden) == sorted(GOLDEN_SPECS)

    @pytest.mark.parametrize("name", sorted(GOLDEN_SPECS))
    def test_delineation_fiducials_unchanged(self, golden, name):
        expected = golden[name]["delineation"]
        actual = delineation_fingerprint(name)
        assert actual == expected, (
            f"delineation drift on {name}: {actual} != {expected}; if "
            "intentional, regenerate the golden fixture (module "
            "docstring) and review the diff")

    @pytest.mark.parametrize("name", sorted(GOLDEN_SPECS))
    def test_af_verdicts_unchanged(self, golden, name,
                                   trained_af_detector):
        expected = golden[name]["af"]
        actual = af_fingerprint(name, trained_af_detector)
        assert actual == expected, (
            f"AF-verdict drift on {name}: {actual} != {expected}; if "
            "intentional, regenerate the golden fixture (module "
            "docstring) and review the diff")

    def test_golden_records_are_nontrivial(self, golden):
        # Guard against a regeneration accidentally pinning empty runs.
        for name, entry in golden.items():
            assert entry["delineation"]["n_beats"] > 10, name
            assert entry["af"]["n_windows"] >= 1, name
        assert golden["af-golden"]["af"]["n_af_windows"] > 0


def _regenerate() -> None:  # pragma: no cover - manual tool
    from repro.classification import AfDetector
    from repro.signals import make_corpus

    print("training AF detector (fixed corpus, seed 1) ...")
    detector = AfDetector().fit(
        list(make_corpus("af_mix", n_records=3, duration_s=120.0,
                         seed=1)))
    table = compute_golden(detector)
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(table, indent=2, sort_keys=True)
                           + "\n")
    print(f"wrote {GOLDEN_PATH}")
    for name, entry in table.items():
        print(f"  {name}: {entry['delineation']['n_beats']} beats, "
              f"{entry['af']['n_af_windows']}/"
              f"{entry['af']['n_windows']} AF windows")


if __name__ == "__main__":  # pragma: no cover - manual tool
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
